"""Setuptools shim.

The offline environment lacks the ``wheel`` package, so ``pip install -e .``
cannot run its PEP 660 editable build.  ``python setup.py develop`` (or the
``.pth`` fallback in site-packages) provides the same editable install.
"""

from setuptools import setup

setup()
