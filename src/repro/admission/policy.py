"""Pluggable admission policies over a :class:`CapacityCalendar`.

A policy turns "does it physically fit?" into an allocation discipline:

* :class:`FirstComeFirstServed` — admit while the peak stays under
  capacity; arrival order decides who wins a contended window;
* :class:`ProportionalShare` — additionally cap any single buyer's share
  of an interface (SIBRA's bounded-tube idea): no one can corner a link
  even with a deep wallet;
* :class:`OverbookingPolicy` — admit up to ``factor * capacity``,
  betting on no-shows the way airlines do; the data plane still polices
  actual usage, so overbooking trades admission yield against the risk
  of demoting traffic to best effort.

Policies *commit* into the calendar when they admit, so a policy object
plus a calendar is a complete admission authority.
"""

from __future__ import annotations

from typing import NamedTuple

import numpy as np

from repro.admission.calendar import CapacityCalendar, Commitment


# Both records are NamedTuples, not dataclasses: they are created on every
# admission decision (4 per screened path hop pair), and tuple construction
# is several times cheaper than a frozen dataclass __init__.
class AdmissionRequest(NamedTuple):
    """One admission question: bandwidth over a window, for a buyer."""

    bandwidth_kbps: int
    start: float
    end: float
    buyer: str = ""


class AdmissionDecision(NamedTuple):
    """Outcome of one admission question."""

    admitted: bool
    reason: str
    commitment: Commitment | None = None


class AdmissionPolicy:
    """Base class: decide requests against a calendar, committing on admit."""

    name = "base"

    def admit(self, calendar: CapacityCalendar, request: AdmissionRequest) -> AdmissionDecision:
        raise NotImplementedError

    def admit_batch(
        self, calendar: CapacityCalendar, requests: list[AdmissionRequest]
    ) -> list[AdmissionDecision]:
        """Decide many requests; subclasses may vectorize the screening."""
        return [self.admit(calendar, request) for request in requests]

    def release(self, calendar: CapacityCalendar, decision: AdmissionDecision) -> None:
        """Undo an admitted decision (expiry, failed downstream transaction)."""
        if decision.commitment is not None:
            calendar.release(decision.commitment.commitment_id)


class FirstComeFirstServed(AdmissionPolicy):
    """Admit while the window's peak commitment stays within capacity."""

    name = "fcfs"

    def admit(self, calendar: CapacityCalendar, request: AdmissionRequest) -> AdmissionDecision:
        commitment = calendar.try_commit(
            request.bandwidth_kbps, request.start, request.end, tag=request.buyer
        )
        if commitment is None:
            headroom = calendar.headroom(request.start, request.end)
            return AdmissionDecision(
                False,
                f"needs {request.bandwidth_kbps} kbps, only {headroom} kbps free",
            )
        return AdmissionDecision(True, "fits", commitment)

    def admit_batch(
        self, calendar: CapacityCalendar, requests: list[AdmissionRequest]
    ) -> list[AdmissionDecision]:
        """Vectorized screen, then sequential commit for the survivors.

        The bulk peak is computed against the calendar as it stood *before*
        the batch.  Commitments only raise the peak, so a pre-screen reject
        is definitive; pre-screen survivors are re-checked (and committed)
        one by one because earlier batch members may have consumed the
        window.
        """
        if not requests:
            return []
        starts = np.array([r.start for r in requests], dtype=np.float64)
        ends = np.array([r.end for r in requests], dtype=np.float64)
        bandwidths = np.array([r.bandwidth_kbps for r in requests], dtype=np.int64)
        fits = calendar.bulk_admissible(bandwidths, starts, ends)
        decisions: list[AdmissionDecision] = []
        for request, fit in zip(requests, fits):
            if not fit:
                decisions.append(
                    AdmissionDecision(
                        False,
                        f"needs {request.bandwidth_kbps} kbps over a window already "
                        "at capacity",
                    )
                )
            else:
                decisions.append(self.admit(calendar, request))
        return decisions


class ProportionalShare(FirstComeFirstServed):
    """FCFS plus a per-buyer cap: no buyer exceeds ``max_fraction`` of capacity."""

    name = "proportional-share"

    def __init__(self, max_fraction: float = 0.25) -> None:
        if not 0 < max_fraction <= 1:
            raise ValueError("max_fraction must be in (0, 1]")
        self.max_fraction = max_fraction

    def admit(self, calendar: CapacityCalendar, request: AdmissionRequest) -> AdmissionDecision:
        buyer_cap = int(self.max_fraction * calendar.capacity_kbps)
        buyer_peak = calendar.tag_peak(request.buyer, request.start, request.end)
        if buyer_peak + request.bandwidth_kbps > buyer_cap:
            return AdmissionDecision(
                False,
                f"buyer {request.buyer!r} would hold {buyer_peak + request.bandwidth_kbps} "
                f"of {buyer_cap} kbps allowed ({self.max_fraction:.0%} share cap)",
            )
        return super().admit(calendar, request)


class OverbookingPolicy(AdmissionPolicy):
    """Admit up to ``factor * capacity``, betting that demand won't all show.

    ``max_fraction`` optionally keeps :class:`ProportionalShare`'s
    per-buyer cap alive under overbooking.  The cap is enforced against
    the *physical* capacity, not the overbooked limit: the share cap is a
    promise about the link a buyer can corner, and the link does not get
    bigger because the AS bet on no-shows — when the bet is lost and
    everyone shows up, a buyer still holds at most ``max_fraction`` of
    what physically exists.
    """

    name = "overbooking"

    def __init__(self, factor: float = 1.5, max_fraction: float | None = None) -> None:
        if factor < 1:
            raise ValueError("overbooking factor must be >= 1")
        if max_fraction is not None and not 0 < max_fraction <= 1:
            raise ValueError("max_fraction must be in (0, 1]")
        self.factor = factor
        self.max_fraction = max_fraction

    def limit_factor(self, calendar: CapacityCalendar) -> float:
        """The overbooking factor in force for this calendar (static here;
        :class:`repro.reclaim.AdaptiveOverbooking` steers it per interface)."""
        return self.factor

    def admit(self, calendar: CapacityCalendar, request: AdmissionRequest) -> AdmissionDecision:
        if self.max_fraction is not None:
            buyer_cap = int(self.max_fraction * calendar.capacity_kbps)
            buyer_peak = calendar.tag_peak(request.buyer, request.start, request.end)
            if buyer_peak + request.bandwidth_kbps > buyer_cap:
                return AdmissionDecision(
                    False,
                    f"buyer {request.buyer!r} would hold "
                    f"{buyer_peak + request.bandwidth_kbps} of {buyer_cap} kbps "
                    f"allowed ({self.max_fraction:.0%} share cap, physical)",
                )
        factor = self.limit_factor(calendar)
        limit = int(factor * calendar.capacity_kbps)
        peak = calendar.peak_commitment(request.start, request.end)
        if peak + request.bandwidth_kbps > limit:
            return AdmissionDecision(
                False,
                f"needs {request.bandwidth_kbps} kbps, overbooked limit {limit} kbps "
                f"already carries {peak} kbps",
            )
        commitment = calendar.commit(
            request.bandwidth_kbps, request.start, request.end, tag=request.buyer
        )
        return AdmissionDecision(True, f"fits under {factor}x overbooking", commitment)
