"""Time-sharded capacity calendars: one hot object per *day*, not per link.

A single :class:`~repro.admission.calendar.CapacityCalendar` per
(interface, direction) serializes every admit/release on a busy link
through one sorted boundary list: point mutations pay an ``O(n)`` list
insert against *all* boundaries ever committed, and ``expire`` rescans
every live commitment.  At 10^6..10^7 reservations per link — the scale
Hummingbird's admission story targets — that single object is the
bottleneck, the same per-link hot spot Flyover-style reservation systems
shard away.

:class:`ShardedCalendar` splits the **time axis** into fixed-width
segments (``shard_seconds``, default one day), each backed by an
independent :class:`CapacityCalendar`:

* point operations touch only the shards a window overlaps — a two-hour
  reservation lands in one (occasionally two) day-shards, so the boundary
  lists it mutates hold one day's commitments, not the whole horizon;
* a commitment spanning a shard boundary is **recorded once** at the top
  level and *projected* into each overlapped shard as a clipped piece;
  every piece carries the commitment's tag, so per-shard ``tag_peak``
  sweeps stay exact;
* ``bulk_peak`` partitions the query windows per shard and reduces with
  one vectorized pass per shard — each pass runs against that shard's
  (small) compiled step function;
* ``expire(now)`` drops whole shards strictly behind ``now`` in O(1)
  each, instead of scanning every commitment; only the single shard
  containing ``now`` is swept piecewise.

The deliberate semantic relaxation: dropping a shard forgets the
*history* of commitments that extend past ``now`` (their pieces behind
``now`` vanish), so queries about windows before the expire watermark may
under-report.  Admission only ever asks about the present and future, so
the monolithic and sharded calendars agree exactly on every window at or
after the watermark — the property the differential suite in
``tests/admission/test_sharded_property.py`` drives.
"""

from __future__ import annotations

import dataclasses
import itertools
import math

import numpy as np

from repro.admission.calendar import (
    AdmissionRejected,
    CapacityCalendar,
    Commitment,
    _commitment_rows,
)

# One projected piece: (the shard calendar holding it, its shard key, the
# piece's commitment id *inside that shard*).  The calendar object itself is
# kept so a stale piece — its shard dropped by expire and possibly re-created
# later with fresh ids — can be detected by identity instead of colliding.
_Piece = tuple[CapacityCalendar, int, int]


class ShardedCalendar:
    """Committed-bandwidth ledger sharded into fixed-width time segments.

    Drop-in replacement for :class:`CapacityCalendar`: same mutation and
    query surface, same admission semantics, same
    :class:`~repro.admission.calendar.Commitment` records.  Shards are
    created on demand and dropped when emptied or expired, so memory
    tracks the *live* horizon, not calendar history.

    >>> calendar = ShardedCalendar(capacity_kbps=1000, shard_seconds=100)
    >>> spanning = calendar.admit(600, 50, 250)      # projects into 3 shards
    >>> calendar.shard_count
    3
    >>> calendar.peak_commitment(0, 300)
    600
    >>> calendar.admit(600, 240, 260)                # doctest: +ELLIPSIS
    Traceback (most recent call last):
        ...
    repro.admission.calendar.AdmissionRejected: ...
    """

    def __init__(self, capacity_kbps: int, shard_seconds: float = 86_400.0) -> None:
        if capacity_kbps <= 0:
            raise ValueError("capacity must be positive")
        if not shard_seconds > 0:
            raise ValueError("shard width must be positive")
        self.capacity_kbps = int(capacity_kbps)
        self.shard_seconds = float(shard_seconds)
        self._shards: dict[int, CapacityCalendar] = {}
        self._commitments: dict[int, Commitment] = {}
        self._by_end_shard: dict[int, set[int]] = {}  # end shard key -> ids
        self._projections: dict[int, list[_Piece]] = {}
        self._ids = itertools.count()
        #: Lifetime count of whole shards discarded by :meth:`expire`
        #: (telemetry reads this as a monotonic counter).
        self.shards_dropped = 0

    # Same validation rules (and error messages) as the monolithic calendar.
    _check_window = staticmethod(CapacityCalendar._check_window)
    _check_commitment = CapacityCalendar._check_commitment

    # Projection materializes one piece per overlapped shard, so a single
    # commitment spanning millions of shards (a mistyped far-future end, or
    # a shard width far too small for the workload's horizon) would hang the
    # dense key loop and exhaust memory before any admission check ran.
    MAX_SPAN_SHARDS = 100_000

    def _check_span(self, start: float, end: float) -> None:
        span = self._last_key(end) - self._first_key(start) + 1
        if span > self.MAX_SPAN_SHARDS:
            raise ValueError(
                f"commitment [{start}, {end}) spans {span} shards of "
                f"{self.shard_seconds}s (limit {self.MAX_SPAN_SHARDS}); "
                "use a larger shard_seconds for horizons this long"
            )

    # -- shard geometry -----------------------------------------------------------

    def _first_key(self, start: float) -> int:
        return math.floor(start / self.shard_seconds)

    def _last_key(self, end: float) -> int:
        """Shard containing the window's last instant (``end`` exclusive)."""
        return math.ceil(end / self.shard_seconds) - 1

    def _shard(self, key: int) -> CapacityCalendar:
        found = self._shards.get(key)
        if found is None:
            found = CapacityCalendar(self.capacity_kbps)
            self._shards[key] = found
        return found

    def _overlapping(self, start: float, end: float):
        """Existing shards intersecting ``[start, end)``, in key order."""
        first, last = self._first_key(start), self._last_key(end)
        if last - first + 1 <= len(self._shards):
            for key in range(first, last + 1):
                calendar = self._shards.get(key)
                if calendar is not None:
                    yield key, calendar
        else:  # sparse shards under a huge window: walk the dict instead
            for key in sorted(self._shards):
                if first <= key <= last:
                    yield key, self._shards[key]

    def _clip(self, key: int, start: float, end: float) -> tuple[float, float]:
        width = self.shard_seconds
        return max(start, key * width), min(end, (key + 1) * width)

    # -- queries ------------------------------------------------------------------

    def peak_commitment(self, start: float, end: float) -> int:
        """Maximum committed kbps anywhere in ``[start, end)``."""
        CapacityCalendar._check_window(start, end)
        peak = 0
        for key, calendar in self._overlapping(start, end):
            clip_start, clip_end = self._clip(key, start, end)
            peak = max(peak, calendar.peak_commitment(clip_start, clip_end))
        return peak

    def headroom(self, start: float, end: float) -> int:
        return self.capacity_kbps - self.peak_commitment(start, end)

    def utilization(self, start: float, end: float) -> float:
        return self.peak_commitment(start, end) / self.capacity_kbps

    def mean_commitment(self, start: float, end: float) -> float:
        """Time-weighted average committed kbps over ``[start, end)``."""
        CapacityCalendar._check_window(start, end)
        total = 0.0
        for key, calendar in self._overlapping(start, end):
            clip_start, clip_end = self._clip(key, start, end)
            total += calendar.mean_commitment(clip_start, clip_end) * (
                clip_end - clip_start
            )
        return total / (end - start)  # missing shards contribute level 0

    def tag_peak(self, tag: str, start: float, end: float) -> int:
        """Peak committed kbps attributable to one tag over the window.

        Every projected piece carries its commitment's tag and any time
        instant lives in exactly one shard, so the window's tag peak is the
        max of the per-shard sweeps over the clipped windows.
        """
        CapacityCalendar._check_window(start, end)
        peak = 0
        for key, calendar in self._overlapping(start, end):
            clip_start, clip_end = self._clip(key, start, end)
            peak = max(peak, calendar.tag_peak(tag, clip_start, clip_end))
        return peak

    # -- vectorized bulk path -----------------------------------------------------

    def bulk_peak(self, starts, ends) -> np.ndarray:
        """Vectorized :meth:`peak_commitment` over parallel window arrays.

        Query windows are partitioned per shard: each shard sees only the
        windows overlapping its span, clipped to it, and answers them with
        one vectorized :meth:`CapacityCalendar.bulk_peak` pass; the per-
        shard answers reduce into the output with ``np.maximum``.
        """
        starts = np.asarray(starts, dtype=np.float64)
        ends = np.asarray(ends, dtype=np.float64)
        if starts.shape != ends.shape:
            raise ValueError("starts and ends must have the same shape")
        if starts.size == 0:
            return np.zeros(0, dtype=np.int64)
        if not np.all(ends > starts):
            raise ValueError("every window must satisfy end > start")
        out = np.zeros(starts.shape, dtype=np.int64)
        width = self.shard_seconds
        for key, calendar in self._overlapping(float(starts.min()), float(ends.max())):
            shard_start, shard_end = key * width, (key + 1) * width
            mask = (starts < shard_end) & (ends > shard_start)
            if not mask.any():
                continue
            clipped_starts = np.maximum(starts[mask], shard_start)
            clipped_ends = np.minimum(ends[mask], shard_end)
            out[mask] = np.maximum(
                out[mask], calendar.bulk_peak(clipped_starts, clipped_ends)
            )
        return out

    def bulk_headroom(self, starts, ends) -> np.ndarray:
        return self.capacity_kbps - self.bulk_peak(starts, ends)

    def bulk_admissible(self, bandwidth_kbps, starts, ends) -> np.ndarray:
        bandwidth = np.asarray(bandwidth_kbps, dtype=np.int64)
        return self.bulk_peak(starts, ends) + bandwidth <= self.capacity_kbps

    # -- mutations ----------------------------------------------------------------

    def admit(self, bandwidth_kbps: int, start: float, end: float, tag: str = "") -> Commitment:
        """Commit the bandwidth if it fits; raise :class:`AdmissionRejected`."""
        self._check_commitment(int(bandwidth_kbps), start, end)
        headroom = self.headroom(start, end)
        if bandwidth_kbps > headroom:
            raise AdmissionRejected(
                f"{bandwidth_kbps} kbps over [{start}, {end}) exceeds headroom "
                f"{headroom} of {self.capacity_kbps} kbps"
            )
        return self.commit(bandwidth_kbps, start, end, tag)

    def try_commit(
        self, bandwidth_kbps: int, start: float, end: float, tag: str = ""
    ) -> Commitment | None:
        """Commit if every shard still has headroom; ``None`` otherwise.

        The non-raising fused form of :meth:`admit`: one pass peak-checks
        the existing shards (missing shards are empty and always fit), a
        second pass commits the per-shard pieces — instead of a full
        ``headroom`` walk followed by an independent ``commit`` walk.
        """
        bandwidth_kbps = int(bandwidth_kbps)
        self._check_commitment(bandwidth_kbps, start, end)
        self._check_span(start, end)
        limit = self.capacity_kbps - bandwidth_kbps
        for key, calendar in self._overlapping(start, end):
            clip_start, clip_end = self._clip(key, start, end)
            if calendar.peak_commitment(clip_start, clip_end) > limit:
                return None
        return self._commit_checked(bandwidth_kbps, start, end, tag)

    def commit(self, bandwidth_kbps: int, start: float, end: float, tag: str = "") -> Commitment:
        """Record a commitment unconditionally, projected into its shards."""
        bandwidth_kbps = int(bandwidth_kbps)
        self._check_commitment(bandwidth_kbps, start, end)
        self._check_span(start, end)
        return self._commit_checked(bandwidth_kbps, start, end, tag)

    def _commit_checked(
        self, bandwidth_kbps: int, start: float, end: float, tag: str
    ) -> Commitment:
        commitment = Commitment(
            next(self._ids), bandwidth_kbps, float(start), float(end), tag
        )
        pieces: list[_Piece] = []
        for key in range(self._first_key(start), self._last_key(end) + 1):
            calendar = self._shard(key)
            clip_start, clip_end = self._clip(key, start, end)
            piece = calendar.commit(bandwidth_kbps, clip_start, clip_end, tag)
            pieces.append((calendar, key, piece.commitment_id))
        self._register(commitment, pieces)
        return commitment

    def commit_batch(self, bandwidths, starts, ends, tag: str = "", track: bool = True):
        """Bulk-load many commitments, one vectorized pass per shard.

        Rows are partitioned by the shard their (remaining) window starts
        in; each shard takes its pieces in a single
        :meth:`CapacityCalendar.commit_batch`, and rows extending past the
        shard edge carry over to the next round clipped at the boundary —
        total work is proportional to the number of *pieces*, and each
        shard rebuilds only its own (small) step function.
        """
        bandwidths = np.asarray(bandwidths, dtype=np.int64)
        starts = np.asarray(starts, dtype=np.float64)
        ends = np.asarray(ends, dtype=np.float64)
        if not (bandwidths.shape == starts.shape == ends.shape):
            raise ValueError("bandwidths, starts and ends must be parallel arrays")
        if bandwidths.size == 0:
            return [] if track else None
        if not np.all(ends > starts) or not np.all(bandwidths > 0):
            raise ValueError("every commitment needs end > start and bandwidth > 0")
        if not (np.all(np.isfinite(starts)) and np.all(np.isfinite(ends))):
            raise ValueError("commitment window must be finite")
        widest = int(np.argmax(ends - starts))
        self._check_span(float(starts[widest]), float(ends[widest]))
        width = self.shard_seconds
        pieces_by_row: list[list[_Piece]] | None = (
            [[] for _ in range(starts.size)] if track else None
        )
        row_ids = np.arange(starts.size)
        cursor_starts, cursor_ends, cursor_bws = starts, ends, bandwidths
        while cursor_starts.size:
            keys = np.floor_divide(cursor_starts, width).astype(np.int64)
            piece_ends = np.minimum(cursor_ends, (keys + 1) * width)
            order = np.argsort(keys, kind="stable")
            breaks = np.flatnonzero(np.diff(keys[order])) + 1
            for group in np.split(order, breaks):
                key = int(keys[group[0]])
                calendar = self._shard(key)
                committed = calendar.commit_batch(
                    cursor_bws[group],
                    cursor_starts[group],
                    piece_ends[group],
                    tag=tag,
                    track=track,
                )
                if track:
                    for position, piece in zip(group, committed):
                        pieces_by_row[int(row_ids[position])].append(
                            (calendar, key, piece.commitment_id)
                        )
            carry = piece_ends < cursor_ends
            cursor_starts = piece_ends[carry]
            cursor_ends = cursor_ends[carry]
            cursor_bws = cursor_bws[carry]
            row_ids = row_ids[carry]
        if not track:
            return None
        commitments = [
            Commitment(next(self._ids), int(bw), float(s), float(e), tag)
            for bw, s, e in zip(bandwidths, starts, ends)
        ]
        for commitment, pieces in zip(commitments, pieces_by_row):
            self._register(commitment, pieces)
        return commitments

    def release(self, commitment_id: int) -> Commitment:
        """Return a commitment's bandwidth to every shard it touches."""
        if commitment_id not in self._commitments:
            raise KeyError(f"unknown commitment {commitment_id}")
        commitment, pieces = self._unregister(commitment_id)
        self._release_pieces(pieces)
        return commitment

    def expire(self, now: float) -> int:
        """Release everything ended by ``now``; drop whole shards behind it.

        Shards whose span lies entirely at or before ``now`` are discarded
        in O(1) each — their pieces (and any untracked bulk load) vanish
        wholesale.  Tracked commitments ending inside those shards are
        counted via the end-shard index without touching their pieces;
        only commitments ending inside the single shard that contains
        ``now`` need a piecewise release.
        """
        now = float(now)
        width = self.shard_seconds
        for key in [k for k in self._shards if (k + 1) * width <= now]:
            del self._shards[key]
            self.shards_dropped += 1
        released = 0
        for key in [k for k in self._by_end_shard if (k + 1) * width <= now]:
            # End shard fully behind now => every piece lived in a dropped
            # shard; unregister without releasing anything piecewise.
            for commitment_id in list(self._by_end_shard[key]):
                self._unregister(commitment_id)
                released += 1
        for key in [
            k for k in self._by_end_shard if k * width < now < (k + 1) * width
        ]:
            for commitment_id in list(self._by_end_shard[key]):
                if self._commitments[commitment_id].end <= now:
                    _, pieces = self._unregister(commitment_id)
                    self._release_pieces(pieces)
                    released += 1
        return released

    def reclaim(self, commitment_id: int, new_bandwidth_kbps: int) -> Commitment:
        """Shrink a live commitment in place across every shard it touches.

        Piece ids stay stable (like :meth:`transfer`), so the projections
        and the end-shard index are untouched; pieces whose shard was
        dropped by :meth:`expire` are skipped.  Strictly partial — full
        reclamation is :meth:`release`.
        """
        new_bandwidth_kbps = int(new_bandwidth_kbps)
        commitment = self._commitments.get(commitment_id)
        if commitment is None:
            raise KeyError(f"unknown commitment {commitment_id}")
        if not 0 < new_bandwidth_kbps < commitment.bandwidth_kbps:
            raise ValueError(
                f"reclaim target {new_bandwidth_kbps} kbps outside "
                f"(0, {commitment.bandwidth_kbps})"
            )
        for calendar, key, piece_id in self._projections[commitment_id]:
            if self._shards.get(key) is calendar:
                calendar.reclaim(piece_id, new_bandwidth_kbps)
        shrunk = dataclasses.replace(commitment, bandwidth_kbps=new_bandwidth_kbps)
        self._commitments[commitment_id] = shrunk
        return shrunk

    # -- commitment surgery (mirrors asset split/fuse/transfer) -------------------

    def split_time(self, commitment_id: int, at: float) -> tuple[Commitment, Commitment]:
        """Split one commitment at ``at``; the committed profile is unchanged."""
        commitment = self._commitments[commitment_id]
        if not commitment.start < at < commitment.end:
            raise ValueError(
                f"split point {at} outside ({commitment.start}, {commitment.end})"
            )
        commitment, pieces = self._unregister(commitment_id)
        first = Commitment(
            next(self._ids), commitment.bandwidth_kbps, commitment.start, at, commitment.tag
        )
        second = Commitment(
            next(self._ids), commitment.bandwidth_kbps, at, commitment.end, commitment.tag
        )
        first_pieces: list[_Piece] = []
        second_pieces: list[_Piece] = []
        for calendar, key, piece_id in pieces:
            if self._shards.get(key) is not calendar:
                continue  # piece history dropped by expire
            piece = calendar.get(piece_id)
            if piece.end <= at:
                first_pieces.append((calendar, key, piece_id))
            elif piece.start >= at:
                second_pieces.append((calendar, key, piece_id))
            else:  # the split point lands inside this shard's piece
                head, tail = calendar.split_time(piece_id, at)
                first_pieces.append((calendar, key, head.commitment_id))
                second_pieces.append((calendar, key, tail.commitment_id))
        self._register(first, first_pieces)
        self._register(second, second_pieces)
        return first, second

    def split_bandwidth(
        self, commitment_id: int, bandwidth_kbps: int
    ) -> tuple[Commitment, Commitment]:
        """Split one commitment into two stacked bandwidth shares."""
        commitment = self._commitments[commitment_id]
        if not 0 < bandwidth_kbps < commitment.bandwidth_kbps:
            raise ValueError(
                f"split bandwidth {bandwidth_kbps} outside (0, {commitment.bandwidth_kbps})"
            )
        commitment, pieces = self._unregister(commitment_id)
        first = Commitment(
            next(self._ids),
            commitment.bandwidth_kbps - bandwidth_kbps,
            commitment.start,
            commitment.end,
            commitment.tag,
        )
        second = Commitment(
            next(self._ids),
            int(bandwidth_kbps),
            commitment.start,
            commitment.end,
            commitment.tag,
        )
        first_pieces: list[_Piece] = []
        second_pieces: list[_Piece] = []
        for calendar, key, piece_id in pieces:
            if self._shards.get(key) is not calendar:
                continue
            head, tail = calendar.split_bandwidth(piece_id, bandwidth_kbps)
            first_pieces.append((calendar, key, head.commitment_id))
            second_pieces.append((calendar, key, tail.commitment_id))
        self._register(first, first_pieces)
        self._register(second, second_pieces)
        return first, second

    def fuse(self, first_id: int, second_id: int) -> Commitment:
        """Recombine two commitments (time-adjacent or same-window)."""
        a = self._commitments[first_id]
        b = self._commitments[second_id]
        if (a.start, a.end) == (b.start, b.end):
            fused = Commitment(
                next(self._ids), a.bandwidth_kbps + b.bandwidth_kbps, a.start, a.end, a.tag
            )
        elif a.bandwidth_kbps == b.bandwidth_kbps and (a.end == b.start or b.end == a.start):
            fused = Commitment(
                next(self._ids),
                a.bandwidth_kbps,
                min(a.start, b.start),
                max(a.end, b.end),
                a.tag,
            )
        else:
            raise ValueError(
                "commitments neither same-window nor time-adjacent with equal bandwidth"
            )
        _, a_pieces = self._unregister(first_id)
        _, b_pieces = self._unregister(second_id)
        if b.tag != a.tag:  # the fused record carries a's tag; re-label b's pieces
            for calendar, key, piece_id in b_pieces:
                if self._shards.get(key) is calendar:
                    calendar.transfer(piece_id, a.tag)
        if (a.start, a.end) == (b.start, b.end):
            pieces = self._fuse_stacked_pieces(a_pieces, b_pieces)
        else:
            pieces = a_pieces + b_pieces
        self._register(fused, pieces)
        return fused

    def _fuse_stacked_pieces(
        self, a_pieces: list[_Piece], b_pieces: list[_Piece]
    ) -> list[_Piece]:
        """Stack two same-window commitments' per-shard projections.

        Every inner piece must carry exactly its commitment's bandwidth —
        ``split_bandwidth`` splits each shard's piece by the same absolute
        share as the outer record.  Concatenating the arms' pieces would
        leave each at its own (smaller) bandwidth, so the pieces are fused
        per shard: first each arm's time-adjacent chain, then the two
        stacked projections.
        """

        def coalesce(pieces: list[_Piece]) -> dict:
            by_key: dict[tuple, tuple] = {}
            for calendar, key, piece_id in pieces:
                if self._shards.get(key) is not calendar:
                    continue  # piece history dropped by expire
                by_key.setdefault(key, (calendar, []))[1].append(piece_id)
            merged = {}
            for key, (calendar, ids) in by_key.items():
                ids.sort(key=lambda piece_id: calendar.get(piece_id).start)
                fused_id = ids[0]
                for piece_id in ids[1:]:
                    fused_id = calendar.fuse(fused_id, piece_id).commitment_id
                merged[key] = (calendar, fused_id)
            return merged

        merged_a = coalesce(a_pieces)
        merged_b = coalesce(b_pieces)
        pieces: list[_Piece] = []
        for key, (calendar, piece_id) in merged_a.items():
            if key in merged_b:
                _, other_id = merged_b.pop(key)
                piece_id = calendar.fuse(piece_id, other_id).commitment_id
            pieces.append((calendar, key, piece_id))
        for key, (calendar, piece_id) in merged_b.items():
            pieces.append((calendar, key, piece_id))
        return pieces

    def transfer(self, commitment_id: int, tag: str) -> Commitment:
        """Re-label a commitment (ownership moved, e.g. a resold asset)."""
        commitment, pieces = self._unregister(commitment_id)
        transferred = dataclasses.replace(commitment, tag=tag)
        for calendar, key, piece_id in pieces:
            if self._shards.get(key) is calendar:
                calendar.transfer(piece_id, tag)  # keeps the piece id stable
        self._register(transferred, pieces)
        return transferred

    # -- introspection ------------------------------------------------------------

    @property
    def commitment_count(self) -> int:
        return len(self._commitments)

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def boundary_count(self) -> int:
        """Total boundaries across shards (shard edges count per shard)."""
        return sum(calendar.boundary_count for calendar in self._shards.values())

    def commitments(self) -> list[Commitment]:
        return list(self._commitments.values())

    def get(self, commitment_id: int) -> Commitment:
        return self._commitments[commitment_id]

    def fingerprint(self) -> tuple:
        """Hashable canonical form of this calendar's complete state.

        Canonicalizes the shard map (each shard's own
        :meth:`CapacityCalendar.fingerprint`), the top-level commitment
        records, the end-shard index, and the piece projections; excludes
        the id counter and per-shard numpy caches.  The multiprocess
        engine's facade produces the *same* tuple shape from worker-held
        shards, which is what lets the crash-recovery suite compare
        calendars across process boundaries.
        """
        return (
            "sharded",
            self.capacity_kbps,
            self.shard_seconds,
            self.shards_dropped,
            tuple(
                sorted(
                    (key, shard.fingerprint())
                    for key, shard in self._shards.items()
                )
            ),
            _commitment_rows(self._commitments),
            tuple(
                sorted(
                    (key, tuple(sorted(ids)))
                    for key, ids in self._by_end_shard.items()
                )
            ),
            tuple(
                sorted(
                    (cid, tuple((key, piece_id) for _, key, piece_id in pieces))
                    for cid, pieces in self._projections.items()
                )
            ),
        )

    # -- internals ----------------------------------------------------------------

    def _register(self, commitment: Commitment, pieces: list[_Piece]) -> None:
        commitment_id = commitment.commitment_id
        self._commitments[commitment_id] = commitment
        self._by_end_shard.setdefault(self._last_key(commitment.end), set()).add(
            commitment_id
        )
        self._projections[commitment_id] = pieces

    def _unregister(self, commitment_id: int) -> tuple[Commitment, list[_Piece]]:
        commitment = self._commitments.pop(commitment_id)
        pieces = self._projections.pop(commitment_id)
        end_key = self._last_key(commitment.end)
        ending = self._by_end_shard.get(end_key)
        if ending is not None:
            ending.discard(commitment_id)
            if not ending:
                del self._by_end_shard[end_key]
        return commitment, pieces

    def _release_pieces(self, pieces: list[_Piece]) -> None:
        for calendar, key, piece_id in pieces:
            if self._shards.get(key) is not calendar:
                continue  # shard already dropped by expire
            calendar.release(piece_id)
            if calendar.commitment_count == 0 and calendar.boundary_count == 0:
                del self._shards[key]  # fully flat again: reclaim the shard
