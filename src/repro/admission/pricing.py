"""Scarcity-responsive pricing: interface utilization -> price multiplier.

Hummingbird delegates allocation fairness to market pricing; for the market
to ration a scarce interface, the posted price must *respond* to scarcity.
:class:`ScarcityPricer` implements a congestion-style curve: the multiplier
is 1 on an empty interface and grows super-linearly as utilization
approaches 1 (an M/M/1-delay-like ``u^k / (1 - u)`` shape, capped so a
nearly-full calendar quotes a large but finite price).

The AS feeds the multiplier into ``price_micromist_per_unit`` whenever it
lists an asset, so successive listings on a filling interface cost more —
the capacity-auction example plots the curve end to end.
"""

from __future__ import annotations

import numpy as np


class Pricer:
    """Interface for utilization-responsive pricing."""

    def multiplier(self, utilization: float) -> float:
        raise NotImplementedError

    def multipliers(self, utilizations) -> np.ndarray:
        """Vectorized :meth:`multiplier` (default: python loop)."""
        return np.array([self.multiplier(float(u)) for u in np.asarray(utilizations)])

    def price(self, base_micromist_per_unit: int, utilization: float) -> int:
        """Scarcity-adjusted unit price, rounded up, never below 1.

        Computed in exact integer arithmetic: the float multiplier's binary
        expansion is a ratio of two ints, so ``ceil(base * num / den)`` never
        round-trips the base through float — a base above 2^53 would silently
        lose its low bits there (10^17 + 1 used to quote 10^17 at multiplier
        1.0, undercharging every unit sold).
        """
        numerator, denominator = float(self.multiplier(utilization)).as_integer_ratio()
        return max(1, -(-int(base_micromist_per_unit) * numerator // denominator))


class FlatPricer(Pricer):
    """No scarcity response: the posted price is the base price."""

    def multiplier(self, utilization: float) -> float:
        return 1.0

    def multipliers(self, utilizations) -> np.ndarray:
        return np.ones(np.asarray(utilizations).shape)


class ScarcityPricer(Pricer):
    """``1 + alpha * u^exponent / (1 - u)``, capped at ``max_multiplier``.

    * ``alpha`` scales how aggressively price reacts to load;
    * ``exponent`` keeps the curve flat at low utilization (a half-empty
      link should not be expensive) while preserving the blow-up near 1;
    * ``max_multiplier`` bounds the quote on a (nearly) full calendar.

    ``multiplier(0) == 1`` exactly, so enabling the pricer changes nothing
    until an interface actually starts to fill.
    """

    def __init__(
        self,
        alpha: float = 0.5,
        exponent: float = 2.0,
        max_multiplier: float = 64.0,
    ) -> None:
        if alpha < 0 or exponent <= 0 or max_multiplier < 1:
            raise ValueError("need alpha >= 0, exponent > 0, max_multiplier >= 1")
        self.alpha = alpha
        self.exponent = exponent
        self.max_multiplier = max_multiplier

    def multiplier(self, utilization: float) -> float:
        u = min(max(float(utilization), 0.0), 1.0)
        if u >= 1.0:
            return self.max_multiplier
        raw = 1.0 + self.alpha * u**self.exponent / (1.0 - u)
        return min(raw, self.max_multiplier)

    def multipliers(self, utilizations) -> np.ndarray:
        u = np.clip(np.asarray(utilizations, dtype=np.float64), 0.0, 1.0)
        with np.errstate(divide="ignore", invalid="ignore"):
            raw = 1.0 + self.alpha * u**self.exponent / (1.0 - u)
        raw = np.where(u >= 1.0, self.max_multiplier, raw)
        return np.minimum(raw, self.max_multiplier)
