"""The per-AS admission authority the control plane consults.

One :class:`AdmissionController` guards every interface of one AS.  It
keeps **two calendar layers** per (interface, direction):

* the **issued** layer counts bandwidth the AS has minted as assets — it
  stops the AS from overselling a physical link across overlapping
  windows, however the assets are later split or resold;
* the **active** layer counts delivered reservations — it is the physical
  backstop (and catches reservations granted outside the market, e.g. by
  simulation scenarios or a reconfigured, shrunken capacity).

Both layers share the interface's physical capacity; the policy decides
how the capacity is handed out, and the pricer turns the issued-layer
utilization into the scarcity-adjusted listing price.
"""

from __future__ import annotations

from repro.admission.calendar import AdmissionRejected, CapacityCalendar, Commitment
from repro.admission.policy import (
    AdmissionDecision,
    AdmissionPolicy,
    AdmissionRequest,
    FirstComeFirstServed,
)
from repro.admission.pricing import FlatPricer, Pricer
from repro.admission.sharded import ShardedCalendar

ISSUED = "issued"
ACTIVE = "active"


class AdmissionController:
    """Capacity calendars + policy + pricing for all interfaces of one AS."""

    def __init__(
        self,
        capacity_kbps: int,
        policy: AdmissionPolicy | None = None,
        pricer: Pricer | None = None,
        capacities: dict[tuple[int, bool], int] | None = None,
        shard_seconds: float | None = None,
    ) -> None:
        """``capacity_kbps`` is the default per-interface-direction capacity;
        ``capacities`` overrides it per ``(interface, is_ingress)`` pair.

        ``shard_seconds`` selects time-sharded calendars
        (:class:`~repro.admission.sharded.ShardedCalendar` with that shard
        width) for every layer; ``None`` keeps the monolithic
        :class:`CapacityCalendar` — the default, and the right choice below
        ~10^5 commitments per interface direction.
        """
        if capacity_kbps <= 0:
            raise ValueError("capacity must be positive")
        if shard_seconds is not None and not shard_seconds > 0:
            raise ValueError("shard width must be positive")
        self.default_capacity_kbps = int(capacity_kbps)
        self.policy = policy if policy is not None else FirstComeFirstServed()
        self.pricer = pricer if pricer is not None else FlatPricer()
        self.shard_seconds = None if shard_seconds is None else float(shard_seconds)
        self._capacities = dict(capacities) if capacities else {}
        self._calendars: dict[
            tuple[str, int, bool], CapacityCalendar | ShardedCalendar
        ] = {}
        self.rejections = 0

    # -- calendars ----------------------------------------------------------------

    def capacity_kbps(self, interface: int, is_ingress: bool) -> int:
        return self._capacities.get((interface, is_ingress), self.default_capacity_kbps)

    def calendar(
        self, interface: int, is_ingress: bool, layer: str = ISSUED
    ) -> CapacityCalendar | ShardedCalendar:
        if layer not in (ISSUED, ACTIVE):
            raise ValueError(f"unknown calendar layer {layer!r}")
        key = (layer, interface, is_ingress)
        found = self._calendars.get(key)
        if found is None:
            capacity = self.capacity_kbps(interface, is_ingress)
            if self.shard_seconds is None:
                found = CapacityCalendar(capacity)
            else:
                found = ShardedCalendar(capacity, shard_seconds=self.shard_seconds)
            self._calendars[key] = found
        return found

    # -- admission ----------------------------------------------------------------

    def admit_issue(
        self,
        interface: int,
        is_ingress: bool,
        bandwidth_kbps: int,
        start: float,
        end: float,
        tag: str = "",
    ) -> AdmissionDecision:
        """May the AS mint (and list) this much more bandwidth here?"""
        return self._admit(ISSUED, interface, is_ingress, bandwidth_kbps, start, end, tag)

    def admit_reservation(
        self,
        interface: int,
        is_ingress: bool,
        bandwidth_kbps: int,
        start: float,
        end: float,
        tag: str = "",
    ) -> AdmissionDecision:
        """May a delivered reservation claim this much live bandwidth here?"""
        return self._admit(ACTIVE, interface, is_ingress, bandwidth_kbps, start, end, tag)

    def _admit(
        self,
        layer: str,
        interface: int,
        is_ingress: bool,
        bandwidth_kbps: int,
        start: float,
        end: float,
        tag: str,
    ) -> AdmissionDecision:
        calendar = self.calendar(interface, is_ingress, layer)
        decision = self.policy.admit(
            calendar, AdmissionRequest(int(bandwidth_kbps), start, end, buyer=tag)
        )
        if not decision.admitted:
            self.rejections += 1
        return decision

    def release(
        self, interface: int, is_ingress: bool, commitment: Commitment, layer: str = ISSUED
    ) -> None:
        self.calendar(interface, is_ingress, layer).release(commitment.commitment_id)

    def expire(self, now: float) -> int:
        """Garbage-collect ended commitments in every calendar, both layers."""
        return sum(calendar.expire(now) for calendar in self._calendars.values())

    # -- pricing ------------------------------------------------------------------

    def utilization(
        self, interface: int, is_ingress: bool, start: float, end: float, layer: str = ISSUED
    ) -> float:
        key = (layer, interface, is_ingress)
        if key not in self._calendars:
            return 0.0
        return self._calendars[key].utilization(start, end)

    def quote(
        self,
        base_micromist_per_unit: int,
        interface: int,
        is_ingress: bool,
        start: float,
        end: float,
    ) -> int:
        """Scarcity-adjusted unit price for a listing over this window.

        Scarcity is the *worse* of the two layers: normally the issued
        calendar leads (assets are minted before reservations activate),
        but direct grants only show up in the active one.
        """
        utilization = max(
            self.utilization(interface, is_ingress, start, end, ISSUED),
            self.utilization(interface, is_ingress, start, end, ACTIVE),
        )
        return self.pricer.price(base_micromist_per_unit, utilization)
