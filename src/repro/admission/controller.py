"""The per-AS admission authority the control plane consults.

One :class:`AdmissionController` guards every interface of one AS.  It
keeps **two calendar layers** per (interface, direction):

* the **issued** layer counts bandwidth the AS has minted as assets — it
  stops the AS from overselling a physical link across overlapping
  windows, however the assets are later split or resold;
* the **active** layer counts delivered reservations — it is the physical
  backstop (and catches reservations granted outside the market, e.g. by
  simulation scenarios or a reconfigured, shrunken capacity).

Both layers share the interface's physical capacity; the policy decides
how the capacity is handed out, and the pricer turns the issued-layer
utilization into the scarcity-adjusted listing price.
"""

from __future__ import annotations

import time

from repro.admission.auction import WindowAuction
from repro.admission.calendar import AdmissionRejected, CapacityCalendar, Commitment
from repro.admission.policy import (
    AdmissionDecision,
    AdmissionPolicy,
    AdmissionRequest,
    FirstComeFirstServed,
)
from repro.admission.pricing import FlatPricer, Pricer
from repro.admission.sharded import ShardedCalendar
from repro.shardengine import EngineSpec, build_engine
from repro.telemetry import get_registry
from repro.telemetry.tracing import current_trace

ISSUED = "issued"
ACTIVE = "active"

AUCTION = "auction"
POSTED = "posted"


class AdmissionController:
    """Capacity calendars + policy + pricing for all interfaces of one AS.

    >>> controller = AdmissionController(capacity_kbps=1000)
    >>> decision = controller.admit_issue(1, True, 600, 0, 3600)
    >>> decision.admitted
    True
    >>> controller.admit_issue(1, True, 600, 0, 3600).admitted  # oversell
    False
    >>> controller.admit_issue(1, False, 600, 0, 3600).admitted # other side
    True
    """

    def __init__(
        self,
        capacity_kbps: int,
        policy: AdmissionPolicy | None = None,
        pricer: Pricer | None = None,
        capacities: dict[tuple[int, bool], int] | None = None,
        shard_seconds: float | None = None,
        auction_interfaces: bool | set[tuple[int, bool]] | None = None,
        telemetry: bool | None = None,
        engine: EngineSpec | str | None = None,
    ) -> None:
        """Configure the admission authority for one AS.

        Args:
            capacity_kbps: default per-interface-direction capacity.
            policy: allocation discipline (default
                :class:`~repro.admission.policy.FirstComeFirstServed`).
            pricer: utilization -> price multiplier (default
                :class:`~repro.admission.pricing.FlatPricer`).
            capacities: per-``(interface, is_ingress)`` capacity overrides.
            shard_seconds: selects time-sharded calendars
                (:class:`~repro.admission.sharded.ShardedCalendar` with that
                shard width) for every layer; ``None`` keeps the monolithic
                :class:`CapacityCalendar` — the default, and the right
                choice below ~10^5 commitments per interface direction.
            auction_interfaces: which interface directions allocate windows
                by sealed-bid auction instead of posted prices — ``None``
                (posted everywhere, the default), ``True`` (auction
                everywhere), or a set of ``(interface, is_ingress)`` pairs.
            telemetry: ``False`` disarms this controller's per-admit
                instrumentation even when the process registry is live —
                the per-op path is then identical to running with
                ``REPRO_TELEMETRY`` unset.  ``None`` (default) follows the
                registry; ``True`` cannot force metrics on a null
                registry.  ``tools/perf_guard.py`` uses the override to
                benchmark an armed and a disarmed controller side by side
                in one process.
            engine: which shard-engine backend answers the calendar
                surface — an :class:`~repro.shardengine.EngineSpec`, a
                kind string (``"monolithic"``, ``"sharded"``,
                ``"multiprocess"``), or ``None`` to derive the backend
                from ``shard_seconds`` (the historical behavior).  The
                multiprocess backend stripes shards across worker
                processes; call :meth:`close` when done with it.

        Raises:
            ValueError: non-positive capacity or shard width.
        """
        if capacity_kbps <= 0:
            raise ValueError("capacity must be positive")
        if shard_seconds is not None and not shard_seconds > 0:
            raise ValueError("shard width must be positive")
        self.default_capacity_kbps = int(capacity_kbps)
        self.policy = policy if policy is not None else FirstComeFirstServed()
        self.pricer = pricer if pricer is not None else FlatPricer()
        self.engine_spec = EngineSpec.resolve(engine, shard_seconds)
        self.engine = build_engine(self.engine_spec)
        self.shard_seconds = self.engine_spec.shard_seconds
        self._capacities = dict(capacities) if capacities else {}
        self._calendars: dict[
            tuple[str, int, bool], CapacityCalendar | ShardedCalendar
        ] = {}
        if auction_interfaces is True:
            self._auction_interfaces: bool | set[tuple[int, bool]] = True
        elif auction_interfaces:
            self._auction_interfaces = set(auction_interfaces)
        else:
            self._auction_interfaces = set()
        self._auctions: dict[tuple[int, bool, float, float], WindowAuction] = {}
        self.rejections = 0
        registry = get_registry()
        self._telemetry = registry.enabled if telemetry is None else (
            bool(telemetry) and registry.enabled
        )
        self._m_decisions = registry.counter(
            "admission_decisions_total",
            "Admission decisions by layer, interface, direction, and outcome.",
            ("layer", "interface", "direction", "outcome"),
        )
        # The per-admit hot cache: (calendar, reject child, admit child)
        # per (layer, interface, direction), so the one dict lookup
        # _admit pays anyway (it needs the calendar) also yields the
        # decision counters.  The telemetry branch's *marginal* cost is
        # then a tick increment, a conditional child pick, and a bare
        # attribute add — it never re-derives label strings or re-enters
        # Family.labels(); the budget is <5 % over the uninstrumented
        # path (enforced by tools/perf_guard.py).
        self._hot: dict[tuple[str, int, bool], tuple] = {}
        admit_seconds = registry.histogram(
            "admission_admit_seconds",
            "Wall-clock latency of one policy.admit call (commit included), "
            "sampled 1 in 16 admits.",
            ("layer",),
        )
        self._m_admit_seconds = {
            ISSUED: admit_seconds.labels(ISSUED),
            ACTIVE: admit_seconds.labels(ACTIVE),
        }
        # Latency is *sampled*: two perf_counter() calls plus a histogram
        # observe per admit would alone eat most of the <5 % budget, and
        # the latency distribution doesn't need every data point the way
        # the decision counters do.  Starting at -1 samples the very first
        # admit, so short runs still populate the histogram.
        self._admit_tick = -1
        self._m_expired = registry.counter(
            "admission_expired_total", "Commitments released by expire()."
        ).labels()
        self._m_shards_dropped = registry.counter(
            "admission_shards_dropped_total",
            "Whole calendar shards dropped in O(1) by sharded expiry.",
        ).labels()

    # -- calendars ----------------------------------------------------------------

    def capacity_kbps(self, interface: int, is_ingress: bool) -> int:
        """Physical capacity of one interface direction, in kbps."""
        return self._capacities.get((interface, is_ingress), self.default_capacity_kbps)

    def calendar(
        self, interface: int, is_ingress: bool, layer: str = ISSUED
    ) -> CapacityCalendar | ShardedCalendar:
        """The capacity calendar of one interface direction and layer.

        Args:
            interface: AS interface identifier.
            is_ingress: direction selector (each direction has its own
                calendars).
            layer: :data:`ISSUED` (minted assets) or :data:`ACTIVE`
                (delivered reservations).

        Returns:
            The lazily created calendar — monolithic or sharded, per the
            controller's ``shard_seconds``.

        Raises:
            ValueError: unknown ``layer``.
        """
        if layer not in (ISSUED, ACTIVE):
            raise ValueError(f"unknown calendar layer {layer!r}")
        key = (layer, interface, is_ingress)
        found = self._calendars.get(key)
        if found is None:
            found = self.engine.calendar(key, self.capacity_kbps(interface, is_ingress))
            self._calendars[key] = found
        return found

    def collect_worker_metrics(self) -> None:
        """Fold shard-engine worker registries into the process registry.

        A no-op for in-process engines; under the multiprocess backend
        this pulls each worker's counters/gauges/histograms over the
        message surface and merges them, so exports and dashboards see
        one coherent registry.
        """
        self.engine.collect_metrics()

    def close(self) -> None:
        """Shut the engine backend down (worker processes, shared memory).

        Worker metrics are collected first.  In-process engines make this
        a no-op; it is safe to call more than once.
        """
        self.engine.close()

    # -- admission ----------------------------------------------------------------

    def admit_issue(
        self,
        interface: int,
        is_ingress: bool,
        bandwidth_kbps: int,
        start: float,
        end: float,
        tag: str = "",
    ) -> AdmissionDecision:
        """May the AS mint (and list) this much more bandwidth here?

        Args:
            interface, is_ingress: the interface direction being sold.
            bandwidth_kbps: bandwidth of the would-be asset.
            start, end: the asset's validity window (seconds).
            tag: free-form owner label recorded on the commitment.

        Returns:
            An :class:`~repro.admission.policy.AdmissionDecision`; when
            ``admitted``, its ``commitment`` holds the issued-calendar
            claim (pass it to :meth:`release` if the mint later fails).
        """
        return self._admit(ISSUED, interface, is_ingress, bandwidth_kbps, start, end, tag)

    def admit_reservation(
        self,
        interface: int,
        is_ingress: bool,
        bandwidth_kbps: int,
        start: float,
        end: float,
        tag: str = "",
    ) -> AdmissionDecision:
        """May a delivered reservation claim this much live bandwidth here?

        Same contract as :meth:`admit_issue`, against the *active* layer
        (the physical backstop for delivered reservations and direct
        grants).
        """
        return self._admit(ACTIVE, interface, is_ingress, bandwidth_kbps, start, end, tag)

    def _admit(
        self,
        layer: str,
        interface: int,
        is_ingress: bool,
        bandwidth_kbps: int,
        start: float,
        end: float,
        tag: str,
    ) -> AdmissionDecision:
        entry = self._hot.get((layer, interface, is_ingress))
        if entry is None:
            entry = self._hot_entry(layer, interface, is_ingress)
        calendar, reject_child, admit_child = entry
        request = AdmissionRequest(int(bandwidth_kbps), start, end, buyer=tag)
        if self._telemetry:
            self._admit_tick = tick = self._admit_tick + 1
            if tick & 15:  # unsampled admit: count the decision only
                decision = self.policy.admit(calendar, request)
            else:
                began = time.perf_counter()
                decision = self.policy.admit(calendar, request)
                self._m_admit_seconds[layer].observe(time.perf_counter() - began)
            (admit_child if decision.admitted else reject_child).value += 1.0
        else:
            decision = self.policy.admit(calendar, request)
        if not decision.admitted:
            self.rejections += 1
        trace = current_trace()
        if trace is not None:
            trace.event(
                "admission.decision",
                layer=layer,
                interface=interface,
                ingress=is_ingress,
                bandwidth_kbps=int(bandwidth_kbps),
                admitted=decision.admitted,
                reason=decision.reason,
            )
        return decision

    def _hot_entry(self, layer: str, interface: int, is_ingress: bool) -> tuple:
        calendar = self.calendar(interface, is_ingress, layer)
        direction = "ingress" if is_ingress else "egress"
        entry = (
            calendar,
            self._m_decisions.labels(layer, interface, direction, "reject"),
            self._m_decisions.labels(layer, interface, direction, "admit"),
        )
        self._hot[(layer, interface, is_ingress)] = entry
        return entry

    def release(
        self, interface: int, is_ingress: bool, commitment: Commitment, layer: str = ISSUED
    ) -> None:
        """Hand an admitted commitment's bandwidth back to its calendar.

        Raises:
            KeyError: the commitment is not (or no longer) tracked there.
        """
        self.calendar(interface, is_ingress, layer).release(commitment.commitment_id)

    def expire(self, now: float) -> int:
        """Garbage-collect ended commitments in every calendar, both layers.

        Returns:
            The number of commitments released.
        """
        released = 0
        shards_dropped = 0
        for calendar in self._calendars.values():
            before = getattr(calendar, "shards_dropped", 0)
            released += calendar.expire(now)
            shards_dropped += getattr(calendar, "shards_dropped", 0) - before
        if self._telemetry:
            if released:
                self._m_expired.inc(released)
            if shards_dropped:
                self._m_shards_dropped.inc(shards_dropped)
        return released

    def record_capacity_gauges(
        self, start: float, end: float, owner: str = ""
    ) -> None:
        """Refresh per-interface utilization/headroom gauges over a window.

        Calendar scans are too costly for the per-admit hot path, so the
        gauges are point-in-time: call this at scenario checkpoints (or
        before exporting) to publish the current picture.  ``owner`` keeps
        several controllers apart in one registry (e.g. the per-AS label).
        A no-op when telemetry is disabled.
        """
        registry = get_registry()
        if not registry.enabled:
            return
        utilization_gauge = registry.gauge(
            "admission_utilization_ratio",
            "Peak committed fraction of capacity over the sampled window.",
            ("owner", "layer", "interface", "direction"),
        )
        headroom_gauge = registry.gauge(
            "admission_headroom_kbps",
            "Remaining bandwidth over the sampled window, in kbps.",
            ("owner", "layer", "interface", "direction"),
        )
        for (layer, interface, is_ingress), calendar in self._calendars.items():
            direction = "ingress" if is_ingress else "egress"
            utilization_gauge.labels(owner, layer, interface, direction).set(
                calendar.utilization(start, end)
            )
            headroom_gauge.labels(owner, layer, interface, direction).set(
                calendar.headroom(start, end)
            )

    # -- auctions -----------------------------------------------------------------

    def allocation_mode(self, interface: int, is_ingress: bool) -> str:
        """How this interface direction hands out windows.

        Returns:
            :data:`AUCTION` when the direction is in
            ``auction_interfaces``, else :data:`POSTED`.
        """
        if self._auction_interfaces is True:
            return AUCTION
        if (interface, is_ingress) in self._auction_interfaces:
            return AUCTION
        return POSTED

    def share_cap_kbps(self, interface: int, is_ingress: bool) -> int | None:
        """Per-bidder award cap seeding an auction's clearing rule.

        Returns:
            ``max_fraction * capacity`` when the controller's policy
            carries a share cap — :class:`~repro.admission.policy.ProportionalShare`,
            or an :class:`~repro.admission.policy.OverbookingPolicy`
            constructed with ``max_fraction`` (an ``isinstance`` check here
            used to drop the cap silently the moment an AS switched to
            overbooking, handing auction bidders an uncapped book) — else
            ``None`` (no cap).
        """
        max_fraction = getattr(self.policy, "max_fraction", None)
        if max_fraction:
            return int(max_fraction * self.capacity_kbps(interface, is_ingress))
        return None

    def open_auction(
        self,
        interface: int,
        is_ingress: bool,
        offered_kbps: int,
        start: float,
        end: float,
        base_price_micromist: int,
        min_fragment_kbps: int = 0,
    ) -> WindowAuction:
        """Open the sealed-bid book for one window of one interface.

        The reserve price is the scarcity-adjusted posted quote for the
        window (so an auction can never clear below what the posted market
        would have charged) and the share cap comes from the controller's
        :class:`~repro.admission.policy.ProportionalShare` policy when one
        is installed.  Capacity accounting is the caller's: issuing the
        auctioned asset claims the issued calendar exactly like a posted
        listing does.

        Args:
            interface, is_ingress: the interface direction being auctioned.
            offered_kbps: bandwidth put up for auction.
            start, end: the calendar window (seconds).
            base_price_micromist: base unit price the reserve is scaled
                from.
            min_fragment_kbps: the asset's minimum bandwidth (clearing
                refuses to strand a smaller remainder).

        Returns:
            The registered :class:`~repro.admission.auction.WindowAuction`.

        Raises:
            ValueError: the direction is in posted mode, or an auction for
                this exact window is already open.
        """
        if self.allocation_mode(interface, is_ingress) != AUCTION:
            raise ValueError(
                f"interface {interface} "
                f"({'ingress' if is_ingress else 'egress'}) allocates by "
                "posted price; enable it in auction_interfaces first"
            )
        key = (interface, is_ingress, float(start), float(end))
        if key in self._auctions:
            raise ValueError(f"auction already open for window {key}")
        auction = WindowAuction(
            interface=interface,
            is_ingress=is_ingress,
            start=float(start),
            end=float(end),
            offered_kbps=int(offered_kbps),
            reserve_micromist=self.quote(
                base_price_micromist, interface, is_ingress, start, end
            ),
            share_cap_kbps=self.share_cap_kbps(interface, is_ingress),
            min_fragment_kbps=int(min_fragment_kbps),
        )
        self._auctions[key] = auction
        return auction

    def auction_for(
        self, interface: int, is_ingress: bool, start: float, end: float
    ) -> WindowAuction | None:
        """The open auction for this exact window, or ``None``."""
        return self._auctions.get((interface, is_ingress, float(start), float(end)))

    def close_auction(
        self, interface: int, is_ingress: bool, start: float, end: float
    ) -> WindowAuction | None:
        """Deregister a settled auction's book; returns it (or ``None``)."""
        return self._auctions.pop(
            (interface, is_ingress, float(start), float(end)), None
        )

    def settle_supply(
        self,
        interface: int,
        is_ingress: bool,
        start: float,
        end: float,
        offered_kbps: int,
    ) -> int:
        """Bandwidth actually sellable at settle time.

        The auctioned asset cleared the *issued* calendar when it was
        minted, but the *active* calendar is the physical backstop: direct
        grants between open and settle can consume live capacity the
        auction assumed it had.  The supply is therefore clamped to the
        active layer's remaining headroom over the window — a window that
        lost headroom before settle clears fewer (possibly zero) winners
        instead of overselling.

        Returns:
            ``max(0, min(offered_kbps, active-layer headroom))``.
        """
        headroom = self.calendar(interface, is_ingress, ACTIVE).headroom(start, end)
        return max(0, min(int(offered_kbps), int(headroom)))

    # -- pricing ------------------------------------------------------------------

    def utilization(
        self, interface: int, is_ingress: bool, start: float, end: float, layer: str = ISSUED
    ) -> float:
        """Peak committed fraction of capacity over the window, in [0, ...).

        Returns 0.0 for interface directions that never saw a commitment
        (their calendars are not materialized just to answer a read).
        """
        key = (layer, interface, is_ingress)
        if key not in self._calendars:
            return 0.0
        return self._calendars[key].utilization(start, end)

    def quote(
        self,
        base_micromist_per_unit: int,
        interface: int,
        is_ingress: bool,
        start: float,
        end: float,
    ) -> int:
        """Scarcity-adjusted unit price for a listing over this window.

        Scarcity is the *worse* of the two layers: normally the issued
        calendar leads (assets are minted before reservations activate),
        but direct grants only show up in the active one.
        """
        utilization = max(
            self.utilization(interface, is_ingress, start, end, ISSUED),
            self.utilization(interface, is_ingress, start, end, ACTIVE),
        )
        return self.pricer.price(base_micromist_per_unit, utilization)
