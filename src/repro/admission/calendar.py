"""Per-interface capacity calendars: committed bandwidth as a step function.

An AS interface (used as ingress *or* egress) has a physical capacity; every
asset the AS issues and every reservation it grants commits part of that
capacity over a time window.  A :class:`CapacityCalendar` tracks the total
committed kbps as a piecewise-constant function of time, so that admission
control can answer "does a ``bw`` kbps commitment over ``[start, end)``
still fit?" — the question SIBRA-style per-link accounting puts at the
heart of any inter-domain reservation system.

Representation: sorted parallel Python lists of *boundary times* and, per
boundary, the committed level in effect from that boundary until the next
one (a sentinel boundary at ``-inf`` carries level 0).  Point operations —
one admit, one release, one peak query — touch only the handful of
boundaries a window overlaps, where interpreter-side ``bisect`` +
``list.insert`` beats an ndarray representation outright: numpy pays
~1-2 us of dispatch per call, which dwarfs the actual work on spans this
small, while a list insert is a single pointer memmove.  Bulk queries take
the opposite trade: they compile the step function into cached numpy
arrays (levels plus per-block maxima) and answer thousands of windows per
call with ``searchsorted`` + three ``maximum.reduceat`` passes — a
two-level range maximum that costs ``O(B + k/B)`` per window (block size
``B``), so batch admission stays fast even at 10^6 concurrent
reservations; bulk loads (:meth:`commit_batch`) rebuild the whole step
function from merged boundary deltas in one vectorized pass.
"""

from __future__ import annotations

import dataclasses
import itertools
from bisect import bisect_left, bisect_right
from dataclasses import dataclass

import numpy as np

_NEG_INF = float("-inf")


def _ranged_max(values: np.ndarray, lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
    """Per-pair ``max(values[lo:hi])``; -1 marks empty ranges (levels are >= 0).

    ``reduceat`` reduces *every* consecutive index pair, including the gaps
    between our queries, so the queries are first sorted by ``lo``: the gap
    ranges then telescope to at most one pass over ``values`` total, instead
    of an arbitrary span per query.  Empty queries collapse to an equal pair
    (``reduceat`` charges nothing for those) and are masked to -1.
    """
    valid = hi > lo
    if not valid.any():
        return np.full(lo.shape, -1, dtype=np.int64)
    order = np.argsort(lo, kind="stable")
    lo_sorted = np.minimum(lo[order], values.size - 1)
    hi_sorted = np.where(valid[order], hi[order], lo_sorted)
    pairs = np.empty(2 * lo_sorted.size, dtype=np.intp)
    pairs[0::2] = lo_sorted
    pairs[1::2] = hi_sorted
    out_sorted = np.where(
        valid[order], np.maximum.reduceat(values, pairs)[0::2], -1
    )
    out = np.empty_like(out_sorted)
    out[order] = out_sorted
    return out


class AdmissionRejected(RuntimeError):
    """A commitment does not fit the calendar's remaining capacity."""


def _commitment_rows(commitments: dict) -> tuple:
    """Canonical sorted rows of a commitment dict (fingerprint helper)."""
    return tuple(
        sorted(
            (cid, c.bandwidth_kbps, c.start, c.end, c.tag)
            for cid, c in commitments.items()
        )
    )


@dataclass(frozen=True)
class Commitment:
    """One accepted claim on interface capacity over a time window."""

    commitment_id: int
    bandwidth_kbps: int
    start: float
    end: float
    tag: str = ""  # free-form owner label (buyer address, asset id, ...)

    @property
    def duration(self) -> float:
        return self.end - self.start


class CapacityCalendar:
    """Committed-bandwidth-over-time ledger for one interface direction.

    >>> calendar = CapacityCalendar(capacity_kbps=1000)
    >>> first = calendar.admit(600, 0, 100)
    >>> calendar.peak_commitment(0, 100)
    600
    >>> calendar.admit(600, 50, 150)            # doctest: +ELLIPSIS
    Traceback (most recent call last):
        ...
    repro.admission.calendar.AdmissionRejected: ...
    >>> _ = calendar.admit(600, 100, 200)       # disjoint in time: fits
    """

    def __init__(self, capacity_kbps: int) -> None:
        if capacity_kbps <= 0:
            raise ValueError("capacity must be positive")
        self.capacity_kbps = int(capacity_kbps)
        self._times: list[float] = [_NEG_INF]
        self._levels: list[int] = [0]
        self._commitments: dict[int, Commitment] = {}
        self._by_tag: dict[str, set[int]] = {}  # tag -> commitment ids
        self._ids = itertools.count()
        self._dirty = True
        self._np_times: np.ndarray | None = None
        self._np_levels: np.ndarray | None = None
        self._np_block_max: np.ndarray | None = None

    def _install(self, times: list[float], levels: list[int]) -> None:
        """Replace the whole step function (bulk rebuilds)."""
        self._times = times
        self._levels = levels

    # -- queries ---------------------------------------------------------------

    def peak_commitment(self, start: float, end: float) -> int:
        """Maximum committed kbps anywhere in ``[start, end)``."""
        self._check_window(start, end)
        times = self._times
        lo = bisect_right(times, start) - 1
        # Boundaries are unique, so the left insertion point for ``end``
        # is the right one minus (end present).
        hi = bisect_right(times, end, lo)
        if times[hi - 1] == end:
            hi -= 1
        return max(self._levels[lo:hi])

    def headroom(self, start: float, end: float) -> int:
        """Largest bandwidth still admissible over the whole window."""
        return self.capacity_kbps - self.peak_commitment(start, end)

    def utilization(self, start: float, end: float) -> float:
        """Peak committed fraction of capacity over the window, in [0, ...)."""
        return self.peak_commitment(start, end) / self.capacity_kbps

    def mean_commitment(self, start: float, end: float) -> float:
        """Time-weighted average committed kbps over ``[start, end)``."""
        self._check_window(start, end)
        lo = bisect_right(self._times, start) - 1
        hi = bisect_left(self._times, end, lo)
        bounds = [start, *self._times[lo + 1 : hi], end]
        total = sum(
            level * (bounds[i + 1] - bounds[i])
            for i, level in enumerate(self._levels[lo:hi])
        )
        return total / (end - start)

    def tag_peak(self, tag: str, start: float, end: float) -> int:
        """Peak committed kbps attributable to one tag (e.g. one buyer).

        Computed by sweeping that tag's commitments (found through a
        per-tag index, so the cost scales with one owner's holdings, not
        the whole calendar); exact under splits and releases without a
        per-tag calendar.
        """
        self._check_window(start, end)
        events: list[tuple[float, int]] = []
        for commitment_id in self._by_tag.get(tag, ()):
            commitment = self._commitments[commitment_id]
            if commitment.end <= start or commitment.start >= end:
                continue
            events.append((max(commitment.start, start), commitment.bandwidth_kbps))
            events.append((min(commitment.end, end), -commitment.bandwidth_kbps))
        events.sort()
        level = peak = 0
        for _, delta in events:
            level += delta
            peak = max(peak, level)
        return peak

    # -- vectorized bulk path ---------------------------------------------------

    _BLOCK = 128  # two-level range-max block size (~sqrt of typical k)

    def bulk_peak(self, starts, ends) -> np.ndarray:
        """Vectorized :meth:`peak_commitment` over parallel window arrays.

        Compiles the step function once (cached until the next mutation),
        locates every window with two ``searchsorted`` passes, then takes
        the range maximum two-level: whole blocks through the precompiled
        per-block maxima, partial blocks at the edges through the raw
        levels.  Per window that is ``O(B + k/B)`` instead of ``O(k)``, so
        throughput holds up when single windows overlap thousands of
        boundaries.
        """
        starts = np.asarray(starts, dtype=np.float64)
        ends = np.asarray(ends, dtype=np.float64)
        if starts.shape != ends.shape:
            raise ValueError("starts and ends must have the same shape")
        if starts.size == 0:
            return np.zeros(0, dtype=np.int64)
        if not np.all(ends > starts):
            raise ValueError("every window must satisfy end > start")
        times, levels, block_max = self._compiled()
        block = self._BLOCK
        lo = np.searchsorted(times, starts, side="right") - 1
        hi = np.searchsorted(times, ends, side="left")
        lo_block = -(-lo // block)  # first whole block inside the range
        hi_block = hi // block  # first block past the whole-block run
        left = _ranged_max(levels, lo, np.minimum(hi, lo_block * block))
        right = _ranged_max(levels, np.maximum(lo, hi_block * block), hi)
        inner = _ranged_max(block_max, lo_block, hi_block)
        return np.maximum(np.maximum(left, right), inner)

    def bulk_headroom(self, starts, ends) -> np.ndarray:
        return self.capacity_kbps - self.bulk_peak(starts, ends)

    def bulk_admissible(self, bandwidth_kbps, starts, ends) -> np.ndarray:
        """Boolean mask: would each window still fit ``bandwidth_kbps``?

        ``bandwidth_kbps`` may be a scalar or a per-window array.
        """
        bandwidth = np.asarray(bandwidth_kbps, dtype=np.int64)
        return self.bulk_peak(starts, ends) + bandwidth <= self.capacity_kbps

    # -- mutations ---------------------------------------------------------------

    def admit(self, bandwidth_kbps: int, start: float, end: float, tag: str = "") -> Commitment:
        """Commit the bandwidth if it fits; raise :class:`AdmissionRejected`."""
        self._check_commitment(bandwidth_kbps, start, end)
        headroom = self.headroom(start, end)
        if bandwidth_kbps > headroom:
            raise AdmissionRejected(
                f"{bandwidth_kbps} kbps over [{start}, {end}) exceeds headroom "
                f"{headroom} of {self.capacity_kbps} kbps"
            )
        return self.commit(bandwidth_kbps, start, end, tag)

    def try_commit(
        self, bandwidth_kbps: int, start: float, end: float, tag: str = ""
    ) -> Commitment | None:
        """Commit if the window still has headroom; ``None`` otherwise.

        The non-raising single-walk form of :meth:`admit` — the peak check
        and the commit share one traversal, which is what per-hop path
        admission (two directions per hop, every hop on the path) runs in
        its hot loop.
        """
        bandwidth_kbps = int(bandwidth_kbps)
        self._check_commitment(bandwidth_kbps, start, end)
        times = self._times
        lo = bisect_right(times, start) - 1
        hi = bisect_right(times, end, lo)
        if times[hi - 1] == end:
            hi -= 1
        if max(self._levels[lo:hi]) + bandwidth_kbps > self.capacity_kbps:
            return None
        return self.commit(bandwidth_kbps, start, end, tag)

    def commit(self, bandwidth_kbps: int, start: float, end: float, tag: str = "") -> Commitment:
        """Record a commitment unconditionally (policies decide the limit)."""
        # Coerce before validating or touching the levels: the step function
        # and the Commitment record must add/subtract the *same* value, or a
        # float input would leak fractional capacity on release.
        bandwidth_kbps = int(bandwidth_kbps)
        self._check_commitment(bandwidth_kbps, start, end)
        lo, hi = self._ensure_boundaries(start, end)
        levels = self._levels
        levels[lo:hi] = [level + bandwidth_kbps for level in levels[lo:hi]]
        self._prune_endpoints(lo, hi)
        commitment = Commitment(next(self._ids), bandwidth_kbps, start, end, tag)
        self._commitments[commitment.commitment_id] = commitment
        self._index(commitment)
        self._dirty = True
        return commitment

    def commit_batch(self, bandwidths, starts, ends, tag: str = "", track: bool = True):
        """Bulk-load many commitments in ``O((n + m) log(n + m))``.

        Rebuilds the step function from merged boundary deltas instead of
        inserting one window at a time.  With ``track=False`` the individual
        :class:`Commitment` records are not kept (they could not be released
        individually) — the mode benchmarks and scenario generators use to
        load 10^5..10^6 reservations in one call.
        """
        bandwidths = np.asarray(bandwidths, dtype=np.int64)
        starts = np.asarray(starts, dtype=np.float64)
        ends = np.asarray(ends, dtype=np.float64)
        if not (bandwidths.shape == starts.shape == ends.shape):
            raise ValueError("bandwidths, starts and ends must be parallel arrays")
        if bandwidths.size == 0:
            return [] if track else None
        if not np.all(ends > starts) or not np.all(bandwidths > 0):
            raise ValueError("every commitment needs end > start and bandwidth > 0")
        old_times = np.array(self._times[1:], dtype=np.float64)
        old_deltas = np.diff(np.array(self._levels, dtype=np.int64))
        times = np.concatenate([old_times, starts, ends])
        deltas = np.concatenate([old_deltas, bandwidths, -bandwidths])
        unique_times, inverse = np.unique(times, return_inverse=True)
        merged = np.zeros(unique_times.size, dtype=np.int64)
        np.add.at(merged, inverse, deltas)
        change = merged != 0  # drop boundaries that no longer change the level
        levels = np.cumsum(merged[change])
        self._install(
            [_NEG_INF, *unique_times[change].tolist()],
            [0, *levels.tolist()],
        )
        self._dirty = True
        if not track:
            return None
        commitments = [
            Commitment(next(self._ids), int(bw), float(s), float(e), tag)
            for bw, s, e in zip(bandwidths, starts, ends)
        ]
        for commitment in commitments:
            self._commitments[commitment.commitment_id] = commitment
            self._index(commitment)
        return commitments

    def release(self, commitment_id: int) -> Commitment:
        """Return a commitment's bandwidth to the calendar."""
        commitment = self._commitments.pop(commitment_id, None)
        if commitment is None:
            raise KeyError(f"unknown commitment {commitment_id}")
        self._unindex(commitment)
        lo, hi = self._ensure_boundaries(commitment.start, commitment.end)
        levels = self._levels
        bandwidth_kbps = commitment.bandwidth_kbps
        levels[lo:hi] = [level - bandwidth_kbps for level in levels[lo:hi]]
        self._prune_endpoints(lo, hi)
        self._dirty = True
        return commitment

    def expire(self, now: float) -> int:
        """Release every commitment that ended at or before ``now``."""
        ended = [c.commitment_id for c in self._commitments.values() if c.end <= now]
        for commitment_id in ended:
            self.release(commitment_id)
        return len(ended)

    def reclaim(self, commitment_id: int, new_bandwidth_kbps: int) -> Commitment:
        """Shrink a live commitment to ``new_bandwidth_kbps`` in place.

        The no-show reclamation op: the freed ``old - new`` kbps returns
        to the calendar over the commitment's whole window while the
        record keeps its id, window and tag — so policer state, the tag
        index, and marketplace references keyed by the commitment stay
        valid.  Strictly partial: full reclamation is :meth:`release`.

        >>> calendar = CapacityCalendar(capacity_kbps=1000)
        >>> granted = calendar.admit(800, 0, 100)
        >>> calendar.reclaim(granted.commitment_id, 200).bandwidth_kbps
        200
        >>> calendar.headroom(0, 100)
        800
        """
        new_bandwidth_kbps = int(new_bandwidth_kbps)
        commitment = self._commitments.get(commitment_id)
        if commitment is None:
            raise KeyError(f"unknown commitment {commitment_id}")
        if not 0 < new_bandwidth_kbps < commitment.bandwidth_kbps:
            raise ValueError(
                f"reclaim target {new_bandwidth_kbps} kbps outside "
                f"(0, {commitment.bandwidth_kbps})"
            )
        return self._resize(commitment, new_bandwidth_kbps)

    def _resize(self, commitment: Commitment, new_bandwidth_kbps: int) -> Commitment:
        """Unvalidated in-place bandwidth change, either direction.

        The grow direction exists only for crash rollback (a worker that
        half-applied a reclaim batch restores the old bandwidths through
        it); canonical pruning makes the shrink-then-grow round trip
        byte-identical, the same way commit-then-release is.
        """
        delta = new_bandwidth_kbps - commitment.bandwidth_kbps
        lo, hi = self._ensure_boundaries(commitment.start, commitment.end)
        levels = self._levels
        levels[lo:hi] = [level + delta for level in levels[lo:hi]]
        self._prune_endpoints(lo, hi)
        resized = dataclasses.replace(commitment, bandwidth_kbps=new_bandwidth_kbps)
        self._commitments[commitment.commitment_id] = resized
        self._dirty = True
        return resized

    # -- commitment surgery (mirrors asset split/fuse/transfer) -------------------

    def split_time(self, commitment_id: int, at: float) -> tuple[Commitment, Commitment]:
        """Split one commitment at ``at``; the committed profile is unchanged."""
        commitment = self._commitments.pop(commitment_id)
        if not commitment.start < at < commitment.end:
            self._commitments[commitment_id] = commitment
            raise ValueError(f"split point {at} outside ({commitment.start}, {commitment.end})")
        first = Commitment(
            next(self._ids), commitment.bandwidth_kbps, commitment.start, at, commitment.tag
        )
        second = Commitment(
            next(self._ids), commitment.bandwidth_kbps, at, commitment.end, commitment.tag
        )
        self._unindex(commitment)
        for piece in (first, second):
            self._commitments[piece.commitment_id] = piece
            self._index(piece)
        return first, second

    def split_bandwidth(self, commitment_id: int, bandwidth_kbps: int) -> tuple[Commitment, Commitment]:
        """Split one commitment into two stacked bandwidth shares."""
        commitment = self._commitments.pop(commitment_id)
        if not 0 < bandwidth_kbps < commitment.bandwidth_kbps:
            self._commitments[commitment_id] = commitment
            raise ValueError(
                f"split bandwidth {bandwidth_kbps} outside (0, {commitment.bandwidth_kbps})"
            )
        first = Commitment(
            next(self._ids),
            commitment.bandwidth_kbps - bandwidth_kbps,
            commitment.start,
            commitment.end,
            commitment.tag,
        )
        second = Commitment(
            next(self._ids), int(bandwidth_kbps), commitment.start, commitment.end, commitment.tag
        )
        self._unindex(commitment)
        for piece in (first, second):
            self._commitments[piece.commitment_id] = piece
            self._index(piece)
        return first, second

    def fuse(self, first_id: int, second_id: int) -> Commitment:
        """Recombine two commitments (time-adjacent or same-window)."""
        a = self._commitments[first_id]
        b = self._commitments[second_id]
        if (a.start, a.end) == (b.start, b.end):
            fused = Commitment(
                next(self._ids), a.bandwidth_kbps + b.bandwidth_kbps, a.start, a.end, a.tag
            )
        elif a.bandwidth_kbps == b.bandwidth_kbps and (a.end == b.start or b.end == a.start):
            fused = Commitment(
                next(self._ids),
                a.bandwidth_kbps,
                min(a.start, b.start),
                max(a.end, b.end),
                a.tag,
            )
        else:
            raise ValueError("commitments neither same-window nor time-adjacent with equal bandwidth")
        for old in (a, b):
            del self._commitments[old.commitment_id]
            self._unindex(old)
        self._commitments[fused.commitment_id] = fused
        self._index(fused)
        return fused

    def transfer(self, commitment_id: int, tag: str) -> Commitment:
        """Re-label a commitment (ownership moved, e.g. a resold asset)."""
        commitment = self._commitments.pop(commitment_id)
        self._unindex(commitment)
        transferred = dataclasses.replace(commitment, tag=tag)
        self._commitments[transferred.commitment_id] = transferred
        self._index(transferred)
        return transferred

    # -- introspection ------------------------------------------------------------

    @property
    def commitment_count(self) -> int:
        return len(self._commitments)

    @property
    def boundary_count(self) -> int:
        return len(self._times) - 1  # exclude the -inf sentinel

    def commitments(self) -> list[Commitment]:
        return list(self._commitments.values())

    def get(self, commitment_id: int) -> Commitment:
        return self._commitments[commitment_id]

    # -- snapshot / fingerprint ----------------------------------------------------

    def fingerprint(self) -> tuple:
        """Hashable canonical form of this calendar's complete state.

        Includes every piece of state — boundaries, levels, live
        commitments, and the tag index — and excludes the two things that
        are allocators or caches, not state: the ``_ids`` counter and the
        lazily compiled numpy arrays.  Two calendars with equal
        fingerprints answer every query identically.
        """
        return (
            "monolithic",
            self.capacity_kbps,
            tuple(self._times),
            tuple(self._levels),
            _commitment_rows(self._commitments),
            tuple(
                sorted(
                    (tag, tuple(sorted(ids)))
                    for tag, ids in self._by_tag.items()
                )
            ),
        )

    def state(self) -> tuple:
        """Picklable snapshot of the complete calendar state.

        Unlike :meth:`fingerprint` this *does* carry the next commitment
        id, so :meth:`from_state` resumes id allocation exactly where the
        source calendar left off — replaying the same operation sequence
        against a restored calendar reproduces identical commitment ids
        (what the multiprocess shard engine's crash recovery relies on).
        """
        return (
            self.capacity_kbps,
            list(self._times),
            list(self._levels),
            [
                (c.commitment_id, c.bandwidth_kbps, c.start, c.end, c.tag)
                for c in self._commitments.values()
            ],
            self._next_id(),
        )

    @classmethod
    def from_state(cls, state: tuple) -> "CapacityCalendar":
        """Rebuild a calendar byte-identical to the one :meth:`state` saw."""
        capacity_kbps, times, levels, rows, next_id = state
        calendar = cls(capacity_kbps)
        calendar._install(list(times), list(levels))
        for commitment_id, bandwidth_kbps, start, end, tag in rows:
            commitment = Commitment(commitment_id, bandwidth_kbps, start, end, tag)
            calendar._commitments[commitment_id] = commitment
            calendar._index(commitment)
        calendar._ids = itertools.count(next_id)
        return calendar

    def _next_id(self) -> int:
        """The next commitment id ``_ids`` would hand out, without consuming it."""
        return self._ids.__reduce__()[1][0]

    # -- internals ----------------------------------------------------------------

    def _compiled(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        if self._dirty or self._np_times is None:
            self._np_times = np.array(self._times, dtype=np.float64)
            levels = np.array(self._levels, dtype=np.int64)
            # One pad element makes index == len(times) valid for reduceat.
            self._np_levels = np.append(levels, levels[-1])
            count = self._np_times.size
            blocks = -(-count // self._BLOCK)
            padded = np.full(blocks * self._BLOCK, -1, dtype=np.int64)
            padded[:count] = self._np_levels[:count]
            block_max = padded.reshape(blocks, self._BLOCK).max(axis=1)
            self._np_block_max = np.append(block_max, -1)  # reduceat pad
            self._dirty = False
        return self._np_times, self._np_levels, self._np_block_max

    def _index(self, commitment: Commitment) -> None:
        self._by_tag.setdefault(commitment.tag, set()).add(commitment.commitment_id)

    def _unindex(self, commitment: Commitment) -> None:
        ids = self._by_tag.get(commitment.tag)
        if ids is not None:
            ids.discard(commitment.commitment_id)
            if not ids:
                del self._by_tag[commitment.tag]

    def _prune_endpoints(self, lo: int, hi: int) -> None:
        """Restore canonicality after a span add/subtract over ``[lo, hi)``.

        The representation is kept *canonical*: no boundary where the level
        does not change.  A uniform span update shifts every interior
        boundary and its predecessor alike, so only the two endpoints can
        have become redundant — and because the canonical form is a pure
        function of the level profile plus live commitments, a
        commit-then-release round trip restores the lists byte-identically
        (the rollback oracle in :mod:`repro.pathadm.fingerprint`).
        """
        times = self._times
        levels = self._levels
        if hi != lo and levels[hi] == levels[hi - 1]:
            del times[hi]
            del levels[hi]
        if levels[lo] == levels[lo - 1]:
            del times[lo]
            del levels[lo]

    def _ensure_boundaries(self, start: float, end: float) -> tuple[int, int]:
        """Materialize boundaries at ``start`` and ``end``; return their indices."""
        times = self._times
        levels = self._levels
        lo = bisect_right(times, start) - 1
        if times[lo] != start:
            lo += 1
            times.insert(lo, start)
            levels.insert(lo, levels[lo - 1])
        hi = bisect_right(times, end, lo) - 1
        if times[hi] != end:
            hi += 1
            times.insert(hi, end)
            levels.insert(hi, levels[hi - 1])
        return lo, hi

    @staticmethod
    def _check_window(start: float, end: float) -> None:
        if end <= start:
            raise ValueError(f"empty window [{start}, {end})")

    def _check_commitment(self, bandwidth_kbps: int, start: float, end: float) -> None:
        self._check_window(start, end)
        if bandwidth_kbps <= 0:
            raise ValueError("bandwidth must be positive")
        if start == _NEG_INF or end == float("inf"):
            raise ValueError("commitment window must be finite")
