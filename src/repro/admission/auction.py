"""Sealed-bid per-window auctions: market-discovered prices for scarce windows.

Posted scarcity prices (:class:`~repro.admission.pricing.ScarcityPricer`)
ration a filling interface, but the *operator* still guesses the demand
curve; when demand spikes inside a single calendar window, posted prices
leave money and fairness on the table.  A sealed-bid **uniform-price
auction** per window lets the bidders reveal the curve instead: everyone
bids their own value, the market clears where supply runs out, and every
winner pays the same market-clearing price.

The module is deliberately split in two layers:

* :func:`uniform_price_clearing` — the pure clearing rule, shared verbatim
  by the on-chain marketplace contract (``market.settle_auction``) and the
  off-chain preview path, so a host can predict exactly what the ledger
  will decide;
* :class:`WindowAuction` — one window's sealed-bid book as the AS-side
  admission layer sees it: it collects bids, knows the supply it was
  seeded with, and clears against the (possibly shrunken) calendar
  headroom the :class:`~repro.admission.controller.AdmissionController`
  reports at settle time.

Clearing rule (documented here once, asserted in
``tests/admission/test_auction.py`` and ``docs/auctions.md``):

1. bids priced below the **reserve** (the scarcity-adjusted posted quote)
   are rejected outright;
2. remaining bids are sorted by ``(-price, seq)`` — highest price first,
   and among equal prices the **earlier-placed bid wins** (``seq`` is the
   arrival index, so the tie-break is deterministic and replayable);
3. bids are filled greedily: a bid is awarded iff its bandwidth still fits
   the remaining supply, the bidder stays within the per-bidder **share
   cap** (the :class:`~repro.admission.policy.ProportionalShare` bound),
   and awarding it would not strand a remainder fragment smaller than the
   asset's minimum bandwidth;
4. every winner pays the same **clearing price**:
   ``min(lowest winning bid, max(reserve, highest losing bid))`` — the
   classic uniform-price rule with a reserve, clamped so no winner can be
   charged above their own bid.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "Bid",
    "ClearingOutcome",
    "LostBid",
    "WindowAuction",
    "uniform_price_clearing",
]


@dataclass(frozen=True)
class Bid:
    """One sealed bid: ``bandwidth_kbps`` over the window at a unit price.

    ``price_micromist_per_unit`` is the bidder's maximum willingness to pay
    per kbps-second (the same unit posted listings use), and ``seq`` is the
    arrival index the auction assigned — the deterministic tie-breaker.
    """

    bidder: str
    bandwidth_kbps: int
    price_micromist_per_unit: int
    seq: int = 0

    def __post_init__(self) -> None:
        if self.bandwidth_kbps <= 0:
            raise ValueError("bid bandwidth must be positive")
        if self.price_micromist_per_unit <= 0:
            raise ValueError("bid price must be positive")


@dataclass(frozen=True)
class LostBid:
    """A losing bid plus the (deterministic) reason it lost."""

    bid: Bid
    reason: str


@dataclass(frozen=True)
class ClearingOutcome:
    """The result of clearing one sealed-bid window auction.

    ``winners`` is in clearing order (price desc, then arrival order);
    every winner pays ``clearing_price_micromist`` per kbps-second.
    """

    winners: tuple[Bid, ...]
    losers: tuple[LostBid, ...]
    clearing_price_micromist: int
    supply_kbps: int
    reserve_micromist: int
    awarded_kbps: int

    @property
    def cleared(self) -> bool:
        return bool(self.winners)

    def revenue_mist(self, duration_seconds: int) -> int:
        """Total MIST the winners pay for a window of this duration.

        Per winner the charge is ``ceil(bw * duration * clearing / 1e6)``,
        mirroring the marketplace contract's ceil pricing exactly.
        """
        micromist = 1_000_000
        return sum(
            -(-bid.bandwidth_kbps * duration_seconds
              * self.clearing_price_micromist // micromist)
            for bid in self.winners
        )


def uniform_price_clearing(
    bids,
    supply_kbps: int,
    reserve_micromist: int,
    share_cap_kbps: int | None = None,
    total_kbps: int | None = None,
    min_fragment_kbps: int = 0,
) -> ClearingOutcome:
    """Clear sealed bids under the uniform-price rule (module docstring).

    Args:
        bids: iterable of :class:`Bid` (any order; sorting is internal).
        supply_kbps: bandwidth actually for sale — the auctioned amount,
            possibly clamped down by lost calendar headroom at settle time.
        reserve_micromist: minimum acceptable unit price; bids below it are
            rejected and it floors the clearing price.
        share_cap_kbps: per-bidder award cap (the
            :class:`~repro.admission.policy.ProportionalShare` bound);
            ``None`` disables the cap.
        total_kbps: bandwidth of the underlying asset (defaults to
            ``supply_kbps``).  The fragment rule below is computed against
            this, because the *asset* remainder is what must stay sellable.
        min_fragment_kbps: the asset's minimum bandwidth.  A bid is skipped
            when awarding it would leave ``0 < remainder < min`` of the
            asset — such a fragment could neither be listed nor split.

    Returns:
        A :class:`ClearingOutcome`; ``winners`` is empty when nothing
        clears (zero bids, all below reserve, or zero supply), in which
        case ``clearing_price_micromist`` equals the reserve.

    Raises:
        ValueError: on negative supply or a reserve below 1.

    >>> bids = [Bid("a", 400, 90, seq=0), Bid("b", 400, 70, seq=1),
    ...         Bid("c", 400, 50, seq=2)]
    >>> out = uniform_price_clearing(bids, supply_kbps=800, reserve_micromist=20)
    >>> [bid.bidder for bid in out.winners]
    ['a', 'b']
    >>> out.clearing_price_micromist  # highest losing bid sets the price
    50
    """
    if supply_kbps < 0:
        raise ValueError("supply must be non-negative")
    if reserve_micromist < 1:
        raise ValueError("reserve price must be at least 1 micromist")
    total = supply_kbps if total_kbps is None else int(total_kbps)
    ordered = sorted(bids, key=lambda b: (-b.price_micromist_per_unit, b.seq))
    winners: list[Bid] = []
    losers: list[LostBid] = []
    awarded = 0
    taken: dict[str, int] = {}
    best_losing = 0
    for bid in ordered:
        if bid.price_micromist_per_unit < reserve_micromist:
            losers.append(LostBid(bid, "below reserve"))
            continue
        if awarded + bid.bandwidth_kbps > supply_kbps:
            losers.append(LostBid(bid, "supply exhausted"))
            best_losing = max(best_losing, bid.price_micromist_per_unit)
            continue
        if (
            share_cap_kbps is not None
            and taken.get(bid.bidder, 0) + bid.bandwidth_kbps > share_cap_kbps
        ):
            losers.append(LostBid(bid, "share cap"))
            best_losing = max(best_losing, bid.price_micromist_per_unit)
            continue
        remainder = total - (awarded + bid.bandwidth_kbps)
        if 0 < remainder < min_fragment_kbps:
            losers.append(LostBid(bid, "would strand a sub-minimum fragment"))
            best_losing = max(best_losing, bid.price_micromist_per_unit)
            continue
        winners.append(bid)
        awarded += bid.bandwidth_kbps
        taken[bid.bidder] = taken.get(bid.bidder, 0) + bid.bandwidth_kbps
    if winners:
        lowest_winning = winners[-1].price_micromist_per_unit
        clearing = min(lowest_winning, max(reserve_micromist, best_losing))
    else:
        clearing = reserve_micromist
    return ClearingOutcome(
        winners=tuple(winners),
        losers=tuple(losers),
        clearing_price_micromist=int(clearing),
        supply_kbps=int(supply_kbps),
        reserve_micromist=int(reserve_micromist),
        awarded_kbps=int(awarded),
    )


@dataclass
class WindowAuction:
    """One sealed-bid auction for a single (interface, direction, window).

    The AS-side admission view of an on-chain auction: it records the
    offered bandwidth, the scarcity-seeded reserve, the proportional-share
    cap, and the bids as they arrive (``place`` assigns the arrival
    ``seq``).  ``clear`` applies :func:`uniform_price_clearing`, optionally
    against a *smaller* supply than was offered — the controller clamps by
    live calendar headroom at settle time, so a window that lost headroom
    between open and settle cannot be oversold.

    >>> auction = WindowAuction(interface=1, is_ingress=True,
    ...                         start=0, end=600, offered_kbps=1000,
    ...                         reserve_micromist=10)
    >>> _ = auction.place("alice", 600, 80)
    >>> _ = auction.place("bob", 600, 60)
    >>> outcome = auction.clear()            # only alice fits 1000 kbps
    >>> [bid.bidder for bid in outcome.winners], outcome.clearing_price_micromist
    (['alice'], 60)
    >>> outcome = auction.clear(supply_kbps=400)   # headroom shrank: nobody fits
    >>> outcome.winners
    ()
    """

    interface: int
    is_ingress: bool
    start: float
    end: float
    offered_kbps: int
    reserve_micromist: int
    share_cap_kbps: int | None = None
    min_fragment_kbps: int = 0
    bids: list[Bid] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError("auction window must not be empty")
        if self.offered_kbps <= 0:
            raise ValueError("offered bandwidth must be positive")
        if self.reserve_micromist < 1:
            raise ValueError("reserve price must be at least 1 micromist")

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def bid_count(self) -> int:
        return len(self.bids)

    def place(
        self, bidder: str, bandwidth_kbps: int, price_micromist_per_unit: int
    ) -> Bid:
        """Record one sealed bid; returns it with its arrival ``seq``.

        Args:
            bidder: free-form bidder identity (on-chain address, buyer tag).
            bandwidth_kbps: bandwidth wanted over the whole window.
            price_micromist_per_unit: maximum unit price the bidder pays.

        Raises:
            ValueError: non-positive bandwidth or price, or a bid wider
                than the offered bandwidth (it could never win).
        """
        if bandwidth_kbps > self.offered_kbps:
            raise ValueError(
                f"bid of {bandwidth_kbps} kbps exceeds the "
                f"{self.offered_kbps} kbps offered"
            )
        bid = Bid(
            bidder=bidder,
            bandwidth_kbps=int(bandwidth_kbps),
            price_micromist_per_unit=int(price_micromist_per_unit),
            seq=len(self.bids),
        )
        self.bids.append(bid)
        return bid

    def clear(self, supply_kbps: int | None = None) -> ClearingOutcome:
        """Clear the book under the uniform-price rule.

        Args:
            supply_kbps: bandwidth actually available at settle time;
                defaults to the offered amount.  Values above the offer are
                clamped down — an auction can lose supply (headroom), never
                gain it.

        Returns:
            The :class:`ClearingOutcome`; the book is left intact, so a
            preview clear and the authoritative settle see the same bids.
        """
        supply = self.offered_kbps if supply_kbps is None else int(supply_kbps)
        supply = max(0, min(supply, self.offered_kbps))
        return uniform_price_clearing(
            self.bids,
            supply_kbps=supply,
            reserve_micromist=self.reserve_micromist,
            share_cap_kbps=self.share_cap_kbps,
            total_kbps=self.offered_kbps,
            min_fragment_kbps=self.min_fragment_kbps,
        )
