"""Admission control: per-interface capacity calendars, policies, pricing.

The subsystem every AS consults before minting bandwidth assets or
delivering reservations, so physical interface capacity can never be
oversold and posted prices respond to scarcity.
"""

from repro.admission.auction import (
    Bid,
    ClearingOutcome,
    LostBid,
    WindowAuction,
    uniform_price_clearing,
)
from repro.admission.calendar import AdmissionRejected, CapacityCalendar, Commitment
from repro.admission.controller import (
    ACTIVE,
    AUCTION,
    ISSUED,
    POSTED,
    AdmissionController,
)
from repro.admission.policy import (
    AdmissionDecision,
    AdmissionPolicy,
    AdmissionRequest,
    FirstComeFirstServed,
    OverbookingPolicy,
    ProportionalShare,
)
from repro.admission.pricing import FlatPricer, Pricer, ScarcityPricer
from repro.admission.sharded import ShardedCalendar

__all__ = [
    "ACTIVE",
    "AUCTION",
    "ISSUED",
    "POSTED",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionPolicy",
    "AdmissionRejected",
    "AdmissionRequest",
    "Bid",
    "CapacityCalendar",
    "ClearingOutcome",
    "Commitment",
    "FirstComeFirstServed",
    "FlatPricer",
    "LostBid",
    "OverbookingPolicy",
    "Pricer",
    "ProportionalShare",
    "ScarcityPricer",
    "ShardedCalendar",
    "WindowAuction",
    "uniform_price_clearing",
]
