"""Path segments: the control-plane output of beaconing.

A :class:`PathSegment` is an ordered list of AS crossings in *construction
direction* (the direction the beacon travelled), each authenticated by a
chained hop-field MAC.  Segments come in two flavours:

* intra-ISD segments, constructed core → leaf, registered both as *up*
  segments (traversed leaf → core, against construction) and *down*
  segments (traversed core → leaf, in construction direction);
* core segments, constructed origin-core → remote-core, traversed towards
  the origin (against construction).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.crypto.prf import DEFAULT_PRF_FACTORY, PrfFactory
from repro.scion.addresses import IsdAs
from repro.scion.hopfields import chain_segid, compute_hopfield_mac
from repro.scion.topology import Topology


class SegmentKind(enum.Enum):
    INTRA_ISD = "intra_isd"  # usable as up or down segment
    CORE = "core"


@dataclass(frozen=True)
class HopEntry:
    """One AS crossing within a segment, in construction-direction semantics."""

    isd_as: IsdAs
    cons_ingress: int  # interface the beacon entered through (0 at the origin AS)
    cons_egress: int  # interface the beacon left through (0 at the final AS)
    exp_time: int  # 8-bit relative expiry
    mac: bytes  # 6-byte chained hop-field MAC


@dataclass(frozen=True)
class PathSegment:
    """An authenticated, immutable path segment."""

    kind: SegmentKind
    timestamp: int  # beacon origination time (InfoField timestamp)
    beta0: int  # initial SegID chosen by the origin AS
    hops: tuple[HopEntry, ...]
    betas: tuple[int, ...]  # beta_i for i in 0..len(hops); betas[0] == beta0

    @property
    def first_as(self) -> IsdAs:
        return self.hops[0].isd_as

    @property
    def last_as(self) -> IsdAs:
        return self.hops[-1].isd_as

    def __len__(self) -> int:
        return len(self.hops)

    def __repr__(self) -> str:
        route = " -> ".join(str(h.isd_as) for h in self.hops)
        return f"PathSegment({self.kind.value}: {route})"


def build_segment(
    topology: Topology,
    as_route: list[IsdAs],
    kind: SegmentKind,
    timestamp: int,
    beta0: int,
    exp_time: int,
    prf_factory: PrfFactory = DEFAULT_PRF_FACTORY,
) -> PathSegment:
    """Construct an authenticated segment along ``as_route``.

    ``as_route`` is given in construction direction (origin first).  Each
    consecutive pair must be directly linked in the topology.  The function
    performs the per-AS work of beacon extension: pick the ingress/egress
    interfaces, compute the chained MAC, and advance the SegID accumulator.
    """
    if len(as_route) < 1:
        raise ValueError("a segment needs at least one AS")
    hops: list[HopEntry] = []
    betas: list[int] = [beta0]
    seg_id = beta0
    for index, isd_as in enumerate(as_route):
        autonomous_system = topology.as_of(isd_as)
        if index == 0:
            cons_ingress = 0
        else:
            interface = autonomous_system.interface_to(as_route[index - 1])
            if interface is None:
                raise ValueError(f"no link between {as_route[index - 1]} and {isd_as}")
            cons_ingress = interface.ifid
        if index == len(as_route) - 1:
            cons_egress = 0
        else:
            interface = autonomous_system.interface_to(as_route[index + 1])
            if interface is None:
                raise ValueError(f"no link between {isd_as} and {as_route[index + 1]}")
            cons_egress = interface.ifid
        mac = compute_hopfield_mac(
            autonomous_system.forwarding_key,
            seg_id,
            timestamp,
            exp_time,
            cons_ingress,
            cons_egress,
            prf_factory,
        )
        hops.append(HopEntry(isd_as, cons_ingress, cons_egress, exp_time, mac))
        seg_id = chain_segid(seg_id, mac)
        betas.append(seg_id)
    return PathSegment(
        kind=kind,
        timestamp=timestamp,
        beta0=beta0,
        hops=tuple(hops),
        betas=tuple(betas),
    )
