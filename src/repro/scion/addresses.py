"""SCION addressing: ISD-AS identifiers and host addresses.

SCION groups autonomous systems into *isolation domains* (ISDs).  An AS is
globally identified by the pair (16-bit ISD, 48-bit AS number); hosts are
identified by an AS-local address (we model 4-byte IPv4-style addresses).
"""

from __future__ import annotations

from dataclasses import dataclass

ISD_BITS = 16
AS_BITS = 48


@dataclass(frozen=True, order=True)
class IsdAs:
    """A (ISD, AS) pair, e.g. ``1-ff00:0:110`` in SCION notation.

    >>> str(IsdAs(1, 0xff00_0000_0110))
    '1-ff00:0:110'
    """

    isd: int
    asn: int

    def __post_init__(self) -> None:
        if not 0 <= self.isd < 1 << ISD_BITS:
            raise ValueError(f"ISD {self.isd} out of 16-bit range")
        if not 0 <= self.asn < 1 << AS_BITS:
            raise ValueError(f"AS number {self.asn} out of 48-bit range")

    def pack(self) -> bytes:
        """8-byte wire encoding: ISD (2 B) followed by AS number (6 B)."""
        return self.isd.to_bytes(2, "big") + self.asn.to_bytes(6, "big")

    @staticmethod
    def unpack(data: bytes) -> "IsdAs":
        if len(data) != 8:
            raise ValueError(f"ISD-AS encoding must be 8 bytes, got {len(data)}")
        return IsdAs(int.from_bytes(data[:2], "big"), int.from_bytes(data[2:], "big"))

    def __str__(self) -> str:
        high = (self.asn >> 32) & 0xFFFF
        mid = (self.asn >> 16) & 0xFFFF
        low = self.asn & 0xFFFF
        return f"{self.isd}-{high:x}:{mid:x}:{low:x}"


@dataclass(frozen=True, order=True)
class HostAddr:
    """An AS-local 4-byte host address.

    >>> str(HostAddr.from_string('10.0.0.1'))
    '10.0.0.1'
    """

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value < 1 << 32:
            raise ValueError(f"host address {self.value} out of 32-bit range")

    @staticmethod
    def from_string(dotted: str) -> "HostAddr":
        parts = dotted.split(".")
        if len(parts) != 4:
            raise ValueError(f"expected dotted quad, got {dotted!r}")
        value = 0
        for part in parts:
            octet = int(part)
            if not 0 <= octet <= 255:
                raise ValueError(f"octet {octet} out of range in {dotted!r}")
            value = (value << 8) | octet
        return HostAddr(value)

    def pack(self) -> bytes:
        return self.value.to_bytes(4, "big")

    @staticmethod
    def unpack(data: bytes) -> "HostAddr":
        if len(data) != 4:
            raise ValueError(f"host address encoding must be 4 bytes, got {len(data)}")
        return HostAddr(int.from_bytes(data, "big"))

    def __str__(self) -> str:
        return ".".join(str((self.value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


@dataclass(frozen=True, order=True)
class ScionAddr:
    """A fully qualified SCION endpoint: ISD-AS plus host address."""

    isd_as: IsdAs
    host: HostAddr

    def __str__(self) -> str:
        return f"{self.isd_as},{self.host}"
