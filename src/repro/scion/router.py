"""Baseline SCION border router: standard hop-field processing (Algorithm 4).

This is the best-effort data plane Hummingbird extends and the baseline of
the paper's throughput evaluation (dashed lines in Figs. 5/14/15).  The
router is stateless across packets: every check uses only the packet and the
AS-local forwarding key.

Processing one packet at the ingress border router of AS *i*:

1. locate the current hop field via ``CurrHF``;
2. drop if the hop field is expired;
3. verify the chained hop-field MAC (SegID handling depends on the
   construction-direction flag);
4. update the SegID accumulator;
5. advance ``CurrHF`` (twice at segment boundaries, Appendix A.5);
6. forward out the traversal egress interface, or deliver locally.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.clock import Clock
from repro.crypto.prf import DEFAULT_PRF_FACTORY, PrfFactory
from repro.scion.hopfields import absolute_expiry, chain_segid, compute_hopfield_mac
from repro.scion.packet import PacketPath, ScionPacket
from repro.scion.paths import HopFieldData, SegmentInPath
from repro.scion.topology import AutonomousSystem


class Action(enum.Enum):
    FORWARD = "forward"  # send out an egress interface, best effort
    FORWARD_PRIORITY = "forward_priority"  # Hummingbird: reserved bandwidth
    DELIVER = "deliver"  # destination AS reached
    DROP = "drop"


@dataclass(frozen=True)
class Decision:
    """The router's verdict for one packet."""

    action: Action
    egress_ifid: int = 0
    reason: str = ""

    @property
    def forwarded(self) -> bool:
        return self.action in (Action.FORWARD, Action.FORWARD_PRIORITY)


class ScionRouter:
    """Best-effort border router for one AS."""

    def __init__(
        self,
        autonomous_system: AutonomousSystem,
        clock: Clock,
        prf_factory: PrfFactory = DEFAULT_PRF_FACTORY,
    ) -> None:
        self.autonomous_system = autonomous_system
        self.clock = clock
        self.prf_factory = prf_factory

    # -- public API ---------------------------------------------------------

    def process(self, packet: ScionPacket, ingress_ifid: int) -> Decision:
        """Validate and route one packet arriving on ``ingress_ifid``.

        ``ingress_ifid`` is 0 when the packet comes from inside the AS (the
        source host handing the packet to its first border router).
        """
        path = packet.path
        if path.at_end():
            return Decision(Action.DROP, reason="path exhausted")
        decision = self._process_hopfield(path, ingress_ifid, check_ingress=True)
        if decision is not None:
            return decision

        # Segment boundary: traversal egress 0 but more segments follow means
        # this AS owns the first hop field of the next segment too (A.5).
        seg_index, local, segment, _ = self._previous(path)
        ingress, egress = segment.traversal_interfaces(local)
        if egress == 0 and path.curr_hf < path.num_hopfields:
            next_seg_index, _ = path.locate(path.curr_hf)
            if next_seg_index != seg_index + 1:
                return Decision(Action.DROP, reason="CurrHF/SegLen mismatch at boundary")
            path.curr_inf = next_seg_index
            decision = self._process_hopfield(path, ingress_ifid=0, check_ingress=False)
            if decision is not None:
                return decision
            seg_index, local, segment, _ = self._previous(path)
            _, egress = segment.traversal_interfaces(local)

        if egress == 0:
            if not path.at_end():
                return Decision(Action.DROP, reason="egress 0 before end of path")
            return Decision(Action.DELIVER)
        return Decision(Action.FORWARD, egress_ifid=egress)

    # -- internals ----------------------------------------------------------

    def _previous(self, path: PacketPath) -> tuple[int, int, SegmentInPath, HopFieldData]:
        seg_index, local = path.locate(path.curr_hf - 1)
        segment = path.segments[seg_index]
        return seg_index, local, segment, segment.hopfields[local]

    def _process_hopfield(
        self, path: PacketPath, ingress_ifid: int, check_ingress: bool
    ) -> Decision | None:
        """Verify the current hop field and advance; None means success."""
        seg_index, local, segment, hop = path.current()
        if seg_index != path.curr_inf:
            return Decision(Action.DROP, reason="CurrINF does not match CurrHF")

        if check_ingress and ingress_ifid != 0:
            expected_ingress, _ = segment.traversal_interfaces(local)
            if expected_ingress != ingress_ifid:
                return Decision(
                    Action.DROP,
                    reason=f"ingress interface {ingress_ifid} != hop field {expected_ingress}",
                )

        if absolute_expiry(segment.timestamp, hop.exp_time) < self.clock.now():
            return Decision(Action.DROP, reason="hop field expired")

        if not self.verify_and_update_segid(path, seg_index, local, hop.mac):
            return Decision(Action.DROP, reason="hop-field MAC verification failed")

        path.curr_hf += 1
        return None

    def verify_and_update_segid(
        self, path: PacketPath, seg_index: int, local: int, packet_mac: bytes
    ) -> bool:
        """MAC check with direction-dependent SegID chaining.

        In construction direction the SegID already holds :math:`\\beta_i`;
        against construction the router first XORs the packet's MAC bytes to
        recover the candidate :math:`\\beta_i` (a forged MAC produces a wrong
        candidate, so verification fails).
        """
        segment = path.segments[seg_index]
        hop = segment.hopfields[local]
        segid = path.segids[seg_index]
        if segment.cons_dir:
            beta = segid
        else:
            beta = chain_segid(segid, packet_mac)
        expected = compute_hopfield_mac(
            self.autonomous_system.forwarding_key,
            beta,
            segment.timestamp,
            hop.exp_time,
            hop.cons_ingress,
            hop.cons_egress,
            self.prf_factory,
        )
        if expected != packet_mac:
            return False
        if segment.cons_dir:
            path.segids[seg_index] = chain_segid(segid, expected)
        else:
            path.segids[seg_index] = beta
        return True

    def expected_mac(self, path: PacketPath, seg_index: int, local: int) -> bytes:
        """Recompute the hop-field MAC for the current SegID (test helper)."""
        segment = path.segments[seg_index]
        hop = segment.hopfields[local]
        segid = path.segids[seg_index]
        beta = segid if segment.cons_dir else chain_segid(segid, hop.mac)
        return compute_hopfield_mac(
            self.autonomous_system.forwarding_key,
            beta,
            segment.timestamp,
            hop.exp_time,
            hop.cons_ingress,
            hop.cons_egress,
            self.prf_factory,
        )
