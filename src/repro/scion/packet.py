"""SCION packet headers: common header, address header, standard path type.

The wire layout follows the SCION header specification; the Hummingbird path
type (Appendix A) plugs in through the path-codec registry defined here.

Byte layout summary::

    CommonHdr (12 B)   Version|QoS|FlowID, NextHdr|HdrLen|PayloadLen,
                       PathType|DT/DL/ST/SL|RSV
    AddressHdr (24 B)  DstISD|DstAS, SrcISD|SrcAS, DstHost(4), SrcHost(4)
    Path (variable)    per path type

``HdrLen`` counts 4-byte units; the Hummingbird MAC input uses
``PktLen = PayloadLen + 4 * HdrLen`` (Eq. 7d).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.scion.addresses import HostAddr, IsdAs, ScionAddr
from repro.scion.paths import ForwardingPath, HopFieldData, SegmentInPath
from repro.wire.bitfields import BitPacker, BitUnpacker

PATH_TYPE_EMPTY = 0
PATH_TYPE_SCION = 1
PATH_TYPE_HUMMINGBIRD = 5

COMMON_HDR_LEN = 12
ADDR_HDR_LEN = 24
NEXT_HDR_UDP = 17


@dataclass
class PacketPath:
    """Runtime path state inside a packet: segments plus cursors.

    ``segids`` holds the *current* SegID accumulator per segment; routers
    mutate it as the packet travels.  ``curr_hf`` is a logical hop-field
    index across all segments (serializers convert to the wire encoding of
    the respective path type).
    """

    segments: list[SegmentInPath]
    segids: list[int] = field(default_factory=list)
    curr_inf: int = 0
    curr_hf: int = 0

    def __post_init__(self) -> None:
        if not self.segids:
            self.segids = [segment.initial_segid for segment in self.segments]

    @classmethod
    def from_forwarding_path(cls, path: ForwardingPath) -> "PacketPath":
        copied = path.copy()
        return cls(segments=copied.segments)

    @property
    def num_hopfields(self) -> int:
        return sum(len(segment.hopfields) for segment in self.segments)

    def seg_lens(self) -> tuple[int, int, int]:
        lens = [len(segment.hopfields) for segment in self.segments]
        while len(lens) < 3:
            lens.append(0)
        return lens[0], lens[1], lens[2]

    def locate(self, global_hf: int) -> tuple[int, int]:
        """Map a global hop-field index to (segment index, local index)."""
        remaining = global_hf
        for seg_index, segment in enumerate(self.segments):
            if remaining < len(segment.hopfields):
                return seg_index, remaining
            remaining -= len(segment.hopfields)
        raise IndexError(f"hop-field index {global_hf} out of range")

    def current(self) -> tuple[int, int, SegmentInPath, HopFieldData]:
        seg_index, local = self.locate(self.curr_hf)
        segment = self.segments[seg_index]
        return seg_index, local, segment, segment.hopfields[local]

    def at_end(self) -> bool:
        return self.curr_hf >= self.num_hopfields


@dataclass
class ScionPacket:
    """A parsed SCION packet (any path type)."""

    src: ScionAddr
    dst: ScionAddr
    path: PacketPath
    payload: bytes
    path_type: int = PATH_TYPE_SCION
    next_hdr: int = NEXT_HDR_UDP
    flow_id: int = 1
    qos: int = 0

    def header_bytes(self) -> int:
        """Total header length in bytes (common + address + path)."""
        return COMMON_HDR_LEN + ADDR_HDR_LEN + path_codec(self.path_type).size(self.path)

    def hdr_len_units(self) -> int:
        total = self.header_bytes()
        if total % 4 != 0:
            raise ValueError(f"header length {total} not a multiple of 4")
        return total // 4

    def packet_length(self) -> int:
        """``PktLen`` as authenticated by the flyover MAC (Eq. 7d)."""
        return len(self.payload) + self.header_bytes()


# ---------------------------------------------------------------------------
# Path codec registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PathCodec:
    encode: Callable[[PacketPath], bytes]
    decode: Callable[[bytes], PacketPath]
    size: Callable[[PacketPath], int]


_PATH_CODECS: dict[int, PathCodec] = {}


def register_path_codec(path_type: int, codec: PathCodec) -> None:
    _PATH_CODECS[path_type] = codec


def path_codec(path_type: int) -> PathCodec:
    try:
        return _PATH_CODECS[path_type]
    except KeyError:
        raise ValueError(f"no codec registered for path type {path_type}") from None


# ---------------------------------------------------------------------------
# Standard SCION path-type codec (path type 1)
# ---------------------------------------------------------------------------


def _encode_standard_path(path: PacketPath) -> bytes:
    if len(path.segments) > 3:
        raise ValueError("at most three segments")
    seg_lens = path.seg_lens()
    packer = BitPacker()
    packer.put(path.curr_inf, 2)
    packer.put(path.curr_hf, 6)
    packer.put(0, 6)
    for seg_len in seg_lens:
        packer.put(seg_len, 6)
    out = bytearray(packer.to_bytes())
    for seg_index, segment in enumerate(path.segments):
        info = BitPacker()
        info.put(0, 6)  # reserved
        info.put(0, 1)  # peering flag (not modelled)
        info.put(1 if segment.cons_dir else 0, 1)
        info.put(0, 8)  # RSV
        info.put(path.segids[seg_index], 16)
        out += info.to_bytes()
        out += segment.timestamp.to_bytes(4, "big")
    for segment in path.segments:
        for hop in segment.hopfields:
            out += _encode_standard_hopfield(hop)
    return bytes(out)


def _encode_standard_hopfield(hop: HopFieldData) -> bytes:
    packer = BitPacker()
    packer.put(0, 6)  # r (first bit doubles as the flyover bit, 0 here)
    packer.put(0, 1)  # I router alert
    packer.put(0, 1)  # E router alert
    packer.put(hop.exp_time, 8)
    packer.put(hop.cons_ingress, 16)
    packer.put(hop.cons_egress, 16)
    head = packer.to_bytes()
    if len(hop.mac) != 6:
        raise ValueError("hop-field MAC must be 6 bytes")
    return head + hop.mac


def _decode_standard_path(data: bytes) -> PacketPath:
    if len(data) < 4:
        raise ValueError("truncated path meta header")
    meta = BitUnpacker(data[:4])
    curr_inf = meta.take(2)
    curr_hf = meta.take(6)
    meta.take(6)
    seg_lens = [meta.take(6) for _ in range(3)]
    num_inf = sum(1 for seg_len in seg_lens if seg_len > 0)
    for i in range(num_inf, 3):
        if seg_lens[i] > 0:
            raise ValueError("segment length after an empty segment")
    offset = 4
    infos: list[tuple[bool, int, int]] = []
    for _ in range(num_inf):
        info = BitUnpacker(data[offset : offset + 4])
        info.take(6)
        info.take(1)  # peering
        cons_dir = bool(info.take(1))
        info.take(8)
        segid = info.take(16)
        timestamp = int.from_bytes(data[offset + 4 : offset + 8], "big")
        infos.append((cons_dir, segid, timestamp))
        offset += 8
    segments: list[SegmentInPath] = []
    segids: list[int] = []
    for seg_index in range(num_inf):
        cons_dir, segid, timestamp = infos[seg_index]
        hopfields = []
        for _ in range(seg_lens[seg_index]):
            hopfields.append(_decode_standard_hopfield(data[offset : offset + 12]))
            offset += 12
        segments.append(
            SegmentInPath(
                cons_dir=cons_dir,
                timestamp=timestamp,
                initial_segid=segid,
                hopfields=hopfields,
                ases=[],
            )
        )
        segids.append(segid)
    if offset != len(data):
        raise ValueError(f"trailing {len(data) - offset} bytes after path")
    return PacketPath(segments=segments, segids=segids, curr_inf=curr_inf, curr_hf=curr_hf)


def _decode_standard_hopfield(data: bytes) -> HopFieldData:
    if len(data) != 12:
        raise ValueError("standard hop field must be 12 bytes")
    fields = BitUnpacker(data[:6])
    fields.take(6)
    fields.take(1)
    fields.take(1)
    exp_time = fields.take(8)
    cons_ingress = fields.take(16)
    cons_egress = fields.take(16)
    return HopFieldData(cons_ingress, cons_egress, exp_time, data[6:12])


def _standard_path_size(path: PacketPath) -> int:
    return 4 + 8 * len(path.segments) + 12 * path.num_hopfields


register_path_codec(
    PATH_TYPE_SCION,
    PathCodec(
        encode=_encode_standard_path,
        decode=_decode_standard_path,
        size=_standard_path_size,
    ),
)


# ---------------------------------------------------------------------------
# Full packet encode / decode
# ---------------------------------------------------------------------------


def encode_packet(packet: ScionPacket) -> bytes:
    """Serialize a packet to its wire representation."""
    path_bytes = path_codec(packet.path_type).encode(packet.path)
    hdr_len = (COMMON_HDR_LEN + ADDR_HDR_LEN + len(path_bytes)) // 4
    if hdr_len >= 1 << 8:
        raise ValueError("header too long for 8-bit HdrLen")
    if len(packet.payload) >= 1 << 16:
        raise ValueError("payload too long for 16-bit PayloadLen")

    common = BitPacker()
    common.put(0, 4)  # version
    common.put(packet.qos, 8)
    common.put(packet.flow_id, 20)
    common.put(packet.next_hdr, 8)
    common.put(hdr_len, 8)
    common.put(len(packet.payload), 16)
    common.put(packet.path_type, 8)
    common.put(0, 2)  # DT
    common.put(0, 2)  # DL: 4-byte host addresses
    common.put(0, 2)  # ST
    common.put(0, 2)  # SL
    common.put(0, 16)  # RSV

    address = (
        packet.dst.isd_as.pack()
        + packet.src.isd_as.pack()
        + packet.dst.host.pack()
        + packet.src.host.pack()
    )
    return common.to_bytes() + address + path_bytes + packet.payload


def decode_packet(data: bytes) -> ScionPacket:
    """Parse a wire-format packet produced by :func:`encode_packet`."""
    if len(data) < COMMON_HDR_LEN + ADDR_HDR_LEN:
        raise ValueError("packet shorter than fixed headers")
    common = BitUnpacker(data[:COMMON_HDR_LEN])
    version = common.take(4)
    if version != 0:
        raise ValueError(f"unsupported SCION version {version}")
    qos = common.take(8)
    flow_id = common.take(20)
    next_hdr = common.take(8)
    hdr_len = common.take(8)
    payload_len = common.take(16)
    path_type = common.take(8)
    common.take(8)  # DT/DL/ST/SL
    common.take(16)  # RSV

    offset = COMMON_HDR_LEN
    dst_isd_as = IsdAs.unpack(data[offset : offset + 8])
    src_isd_as = IsdAs.unpack(data[offset + 8 : offset + 16])
    dst_host = HostAddr.unpack(data[offset + 16 : offset + 20])
    src_host = HostAddr.unpack(data[offset + 20 : offset + 24])
    offset += ADDR_HDR_LEN

    path_end = hdr_len * 4
    if path_end > len(data):
        raise ValueError("HdrLen exceeds packet size")
    path = path_codec(path_type).decode(data[offset:path_end])
    payload = data[path_end:]
    if len(payload) != payload_len:
        raise ValueError(f"PayloadLen {payload_len} does not match {len(payload)} bytes")
    return ScionPacket(
        src=ScionAddr(src_isd_as, src_host),
        dst=ScionAddr(dst_isd_as, dst_host),
        path=path,
        payload=payload,
        path_type=path_type,
        next_hdr=next_hdr,
        flow_id=flow_id,
        qos=qos,
    )
