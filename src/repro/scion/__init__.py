"""SCION substrate: addressing, topology, beaconing, paths, packets, routers.

Hummingbird is specified as a SCION path type (Appendix A); this package
provides the surrounding architecture: ISD/AS addressing, an AS-level
topology with typed links, beaconing that constructs MAC-chained path
segments, segment combination into forwarding paths, byte-exact packet
headers, and the baseline best-effort border router.
"""

from repro.scion.addresses import HostAddr, IsdAs, ScionAddr
from repro.scion.beaconing import SegmentStore, run_beaconing
from repro.scion.packet import (
    PATH_TYPE_HUMMINGBIRD,
    PATH_TYPE_SCION,
    PacketPath,
    ScionPacket,
    decode_packet,
    encode_packet,
)
from repro.scion.paths import (
    AsCrossing,
    ForwardingPath,
    PathLookup,
    as_crossings,
    build_forwarding_path,
)
from repro.scion.router import Action, Decision, ScionRouter
from repro.scion.segments import PathSegment, SegmentKind, build_segment
from repro.scion.topology import (
    AutonomousSystem,
    LinkType,
    Topology,
    core_mesh_topology,
    linear_topology,
    random_internet_topology,
)

__all__ = [
    "HostAddr",
    "IsdAs",
    "ScionAddr",
    "SegmentStore",
    "run_beaconing",
    "PATH_TYPE_HUMMINGBIRD",
    "PATH_TYPE_SCION",
    "PacketPath",
    "ScionPacket",
    "decode_packet",
    "encode_packet",
    "AsCrossing",
    "ForwardingPath",
    "PathLookup",
    "as_crossings",
    "build_forwarding_path",
    "Action",
    "Decision",
    "ScionRouter",
    "PathSegment",
    "SegmentKind",
    "build_segment",
    "AutonomousSystem",
    "LinkType",
    "Topology",
    "core_mesh_topology",
    "linear_topology",
    "random_internet_topology",
]
