"""Beaconing: origination and propagation of path-segment construction beacons.

Core ASes periodically originate *path-segment construction beacons* (PCBs).
Two processes run side by side:

* **intra-ISD beaconing**: core ASes send PCBs to their customers; each AS
  extends the beacon with its own authenticated hop entry and forwards it
  further down the provider hierarchy.  Completed beacons are registered as
  up-/down-segments.
* **core beaconing**: core ASes flood PCBs over core links; remote cores
  register the received beacons as core segments towards the origin.

The implementation walks the topology deterministically (BFS trees per
origin, plus simple alternative-route enumeration on the core mesh) instead
of exchanging timed messages — the *output* (chained, MAC-authenticated
segments in a :class:`SegmentStore`) is identical to what message-level
beaconing would register, and it is what both the market and the data plane
consume.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass, field
from itertools import islice

import networkx as nx

from repro.crypto.prf import DEFAULT_PRF_FACTORY, PrfFactory
from repro.scion.addresses import IsdAs
from repro.scion.hopfields import DEFAULT_EXP_TIME
from repro.scion.segments import PathSegment, SegmentKind, build_segment
from repro.scion.topology import LinkType, Topology


@dataclass
class SegmentStore:
    """Registered segments, indexed the way path lookup needs them."""

    # (leaf or any AS) -> list of intra-ISD segments ending at that AS
    intra_by_leaf: dict[IsdAs, list[PathSegment]] = field(default_factory=dict)
    # (origin core, remote core) -> core segments constructed origin -> remote
    core_by_pair: dict[tuple[IsdAs, IsdAs], list[PathSegment]] = field(default_factory=dict)

    def register_intra(self, segment: PathSegment) -> None:
        self.intra_by_leaf.setdefault(segment.last_as, []).append(segment)

    def register_core(self, segment: PathSegment) -> None:
        key = (segment.first_as, segment.last_as)
        self.core_by_pair.setdefault(key, []).append(segment)

    def up_segments(self, leaf: IsdAs) -> list[PathSegment]:
        """Segments the AS ``leaf`` can use to reach a core (traversed C=0)."""
        return list(self.intra_by_leaf.get(leaf, []))

    def down_segments(self, leaf: IsdAs) -> list[PathSegment]:
        """Segments others use to reach ``leaf`` (traversed C=1)."""
        return list(self.intra_by_leaf.get(leaf, []))

    def core_segments(self, from_core: IsdAs, to_core: IsdAs) -> list[PathSegment]:
        """Core segments for travelling ``from_core`` -> ``to_core``.

        Traversal is against construction, so these are segments constructed
        with origin ``to_core`` and final AS ``from_core``.
        """
        return list(self.core_by_pair.get((to_core, from_core), []))

    def all_segments(self) -> list[PathSegment]:
        result: list[PathSegment] = []
        for segments in self.intra_by_leaf.values():
            result.extend(segments)
        for segments in self.core_by_pair.values():
            result.extend(segments)
        return result


def run_beaconing(
    topology: Topology,
    timestamp: int,
    exp_time: int = DEFAULT_EXP_TIME,
    prf_factory: PrfFactory = DEFAULT_PRF_FACTORY,
    core_paths_per_pair: int = 3,
    seed: int = 1,
) -> SegmentStore:
    """Run one beaconing round over the whole topology.

    Returns a :class:`SegmentStore` with intra-ISD segments for every AS
    reachable from a core, and up to ``core_paths_per_pair`` core segments
    per ordered pair of core ASes (path diversity feeds the market).
    """
    rng = random.Random(seed)
    store = SegmentStore()
    _intra_isd_beaconing(topology, timestamp, exp_time, prf_factory, store, rng)
    _core_beaconing(
        topology, timestamp, exp_time, prf_factory, store, rng, core_paths_per_pair
    )
    return store


def _intra_isd_beaconing(
    topology: Topology,
    timestamp: int,
    exp_time: int,
    prf_factory: PrfFactory,
    store: SegmentStore,
    rng: random.Random,
) -> None:
    """BFS from each core AS down the provider hierarchy, one PCB per route."""
    for core in topology.core_ases:
        # Each queue entry is the full AS route of an in-flight beacon.
        queue: deque[list[IsdAs]] = deque([[core.isd_as]])
        while queue:
            route = queue.popleft()
            if len(route) > 1:
                beta0 = rng.randrange(1 << 16)
                segment = build_segment(
                    topology,
                    route,
                    SegmentKind.INTRA_ISD,
                    timestamp,
                    beta0,
                    exp_time,
                    prf_factory,
                )
                store.register_intra(segment)
            for child in topology.children_of(route[-1]):
                if child not in route:  # guard against provider cycles
                    queue.append(route + [child])


def _core_beaconing(
    topology: Topology,
    timestamp: int,
    exp_time: int,
    prf_factory: PrfFactory,
    store: SegmentStore,
    rng: random.Random,
    core_paths_per_pair: int,
) -> None:
    """Propagate core beacons; register several simple routes per pair."""
    core_graph = nx.Graph()
    for autonomous_system in topology.core_ases:
        core_graph.add_node(autonomous_system.isd_as)
    for link in topology.links:
        if link.link_type is LinkType.CORE:
            core_graph.add_edge(link.a, link.b)

    cores = sorted(core_graph.nodes)
    for origin in cores:
        for target in cores:
            if origin == target:
                continue
            if not nx.has_path(core_graph, origin, target):
                continue
            routes = islice(
                nx.shortest_simple_paths(core_graph, origin, target),
                core_paths_per_pair,
            )
            for route in routes:
                beta0 = rng.randrange(1 << 16)
                segment = build_segment(
                    topology,
                    list(route),
                    SegmentKind.CORE,
                    timestamp,
                    beta0,
                    exp_time,
                    prf_factory,
                )
                store.register_core(segment)
