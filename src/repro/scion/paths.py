"""Forwarding-path construction: combining segments into end-to-end paths.

A forwarding path is built from one to three segments:

* an *up* segment from the source AS to a core AS (traversed against
  construction, C=0),
* optionally a *core* segment between two core ASes (also C=0, since core
  segments are constructed from the remote origin),
* a *down* segment from a core AS to the destination AS (C=1).

Degenerate combinations (core-only, up-only, down-only, up+down through a
shared core) are supported; SCION peering shortcuts are not modelled.

At segment boundaries the joining AS appears in **both** segments (Appendix
A.5); :func:`as_crossings` merges the two hop fields into one logical AS
crossing, which is the unit the control plane reserves bandwidth for.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.scion.addresses import IsdAs
from repro.scion.beaconing import SegmentStore
from repro.scion.segments import PathSegment


@dataclass
class HopFieldData:
    """A hop field as carried in a packet (construction-direction semantics)."""

    cons_ingress: int
    cons_egress: int
    exp_time: int
    mac: bytes  # 6 bytes

    def copy(self) -> "HopFieldData":
        return HopFieldData(self.cons_ingress, self.cons_egress, self.exp_time, self.mac)


@dataclass
class SegmentInPath:
    """One segment of a forwarding path, hop fields in traversal order."""

    cons_dir: bool  # the C flag
    timestamp: int
    initial_segid: int  # SegID value the source writes into the InfoField
    hopfields: list[HopFieldData]
    ases: list[IsdAs]  # traversal order, parallel to hopfields

    def traversal_interfaces(self, index: int) -> tuple[int, int]:
        """(ingress, egress) in traversal direction for hop ``index``."""
        hop = self.hopfields[index]
        if self.cons_dir:
            return hop.cons_ingress, hop.cons_egress
        return hop.cons_egress, hop.cons_ingress


@dataclass
class ForwardingPath:
    """A complete end-to-end path: ordered segments plus source/destination."""

    src: IsdAs
    dst: IsdAs
    segments: list[SegmentInPath]

    @property
    def num_hopfields(self) -> int:
        return sum(len(segment.hopfields) for segment in self.segments)

    def hopfield_at(self, seg_index: int, hf_index: int) -> HopFieldData:
        return self.segments[seg_index].hopfields[hf_index]

    def copy(self) -> "ForwardingPath":
        """Deep-copy so a packet can mutate SegIDs without sharing state."""
        return ForwardingPath(
            src=self.src,
            dst=self.dst,
            segments=[
                SegmentInPath(
                    cons_dir=segment.cons_dir,
                    timestamp=segment.timestamp,
                    initial_segid=segment.initial_segid,
                    hopfields=[hop.copy() for hop in segment.hopfields],
                    ases=list(segment.ases),
                )
                for segment in self.segments
            ],
        )


@dataclass(frozen=True)
class AsCrossing:
    """One logical AS traversal: the unit of a flyover reservation.

    ``positions`` lists the (segment index, hop-field index) pairs of the hop
    fields belonging to this AS — two entries at segment boundaries, one
    otherwise.  A flyover always attaches to ``positions[0]`` (A.5: "it must
    be placed in the first segment as the first HF of the AS").
    """

    isd_as: IsdAs
    ingress: int  # traversal-direction ingress interface (0 at the source AS)
    egress: int  # traversal-direction egress interface (0 at the destination AS)
    positions: tuple[tuple[int, int], ...]


def _segment_in_path(segment: PathSegment, cons_dir: bool) -> SegmentInPath:
    """Orient a registered segment for traversal."""
    hopfields = [
        HopFieldData(h.cons_ingress, h.cons_egress, h.exp_time, h.mac) for h in segment.hops
    ]
    ases = [h.isd_as for h in segment.hops]
    if cons_dir:
        initial = segment.betas[0]
    else:
        hopfields.reverse()
        ases.reverse()
        initial = segment.betas[len(segment.hops)]
    return SegmentInPath(
        cons_dir=cons_dir,
        timestamp=segment.timestamp,
        initial_segid=initial,
        hopfields=hopfields,
        ases=ases,
    )


def build_forwarding_path(
    src: IsdAs,
    dst: IsdAs,
    up: PathSegment | None,
    core: PathSegment | None,
    down: PathSegment | None,
) -> ForwardingPath:
    """Assemble a forwarding path from a validated segment combination."""
    segments: list[SegmentInPath] = []
    if up is not None:
        segments.append(_segment_in_path(up, cons_dir=False))
    if core is not None:
        segments.append(_segment_in_path(core, cons_dir=False))
    if down is not None:
        segments.append(_segment_in_path(down, cons_dir=True))
    if not segments:
        raise ValueError("a forwarding path needs at least one segment")
    if len(segments) > 3:
        raise ValueError("at most three segments per path")
    return ForwardingPath(src=src, dst=dst, segments=segments)


def as_crossings(path: ForwardingPath) -> list[AsCrossing]:
    """Merge per-segment hop fields into logical AS crossings.

    Consecutive segments share their boundary AS: the first segment ends with
    traversal-egress 0 and the next begins with traversal-ingress 0 at the
    same AS; these merge into a single crossing spanning two hop fields.
    """
    crossings: list[AsCrossing] = []
    pending: tuple[IsdAs, int, tuple[int, int]] | None = None  # (as, ingress, position)
    for seg_index, segment in enumerate(path.segments):
        for hf_index in range(len(segment.hopfields)):
            isd_as = segment.ases[hf_index]
            ingress, egress = segment.traversal_interfaces(hf_index)
            position = (seg_index, hf_index)
            if pending is not None:
                pending_as, pending_ingress, pending_position = pending
                if pending_as != isd_as or ingress != 0:
                    raise ValueError(
                        f"segment boundary mismatch: {pending_as} -> {isd_as}"
                    )
                crossings.append(
                    AsCrossing(
                        isd_as=isd_as,
                        ingress=pending_ingress,
                        egress=egress,
                        positions=(pending_position, position),
                    )
                )
                pending = None
                continue
            is_last_in_segment = hf_index == len(segment.hopfields) - 1
            is_last_segment = seg_index == len(path.segments) - 1
            if is_last_in_segment and not is_last_segment:
                if egress != 0:
                    raise ValueError("segment-final hop must have traversal egress 0")
                pending = (isd_as, ingress, position)
            else:
                crossings.append(
                    AsCrossing(isd_as=isd_as, ingress=ingress, egress=egress, positions=(position,))
                )
    if pending is not None:
        raise ValueError("dangling segment boundary at end of path")
    return crossings


@dataclass
class PathLookup:
    """Path discovery over a :class:`SegmentStore` (what `sciond` does)."""

    store: SegmentStore
    core_of: dict[IsdAs, bool] = field(default_factory=dict)

    def find_paths(self, src: IsdAs, dst: IsdAs, max_paths: int = 8) -> list[ForwardingPath]:
        """Enumerate forwarding paths from ``src`` to ``dst``, shortest first."""
        if src == dst:
            raise ValueError("source and destination AS must differ")
        candidates: list[ForwardingPath] = []

        src_ups = [None] if self._is_core(src) else self.store.up_segments(src)
        dst_downs = [None] if self._is_core(dst) else self.store.down_segments(dst)

        for up in src_ups:
            core_src = src if up is None else up.first_as
            for down in dst_downs:
                core_dst = dst if down is None else down.first_as
                if core_src == core_dst:
                    if up is None and down is None:
                        continue  # src == dst was excluded; nothing to combine
                    candidates.append(build_forwarding_path(src, dst, up, None, down))
                else:
                    for core in self.store.core_segments(core_src, core_dst):
                        candidates.append(build_forwarding_path(src, dst, up, core, down))

        candidates.sort(key=lambda p: (p.num_hopfields, _route_key(p)))
        return candidates[:max_paths]

    def _is_core(self, isd_as: IsdAs) -> bool:
        if isd_as in self.core_of:
            return self.core_of[isd_as]
        # An AS with registered up segments is not core; otherwise assume core.
        return not self.store.up_segments(isd_as)


def _route_key(path: ForwardingPath) -> tuple:
    return tuple(str(a) for segment in path.segments for a in segment.ases)
