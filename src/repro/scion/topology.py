"""AS-level topology: autonomous systems, interfaces, and inter-AS links.

The topology is the static substrate under both planes: beaconing walks it
to construct path segments, the market references its interface identifiers,
and the data-plane simulation forwards packets across its links.

Link types follow SCION:

* ``CORE`` links connect core ASes (traversed by core segments).
* ``PARENT_CHILD`` links connect a provider (parent) to a customer (child)
  and are traversed by up-/down-segments.

Interfaces are AS-local 16-bit identifiers, starting at 1 (0 means "inside
the AS" and marks segment endpoints in hop fields).
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field

import networkx as nx

from repro.crypto.keys import SecretValue
from repro.scion.addresses import IsdAs


class LinkType(enum.Enum):
    CORE = "core"
    PARENT_CHILD = "parent_child"


@dataclass(frozen=True)
class Interface:
    """One endpoint of an inter-AS link."""

    owner: IsdAs
    ifid: int
    neighbor: IsdAs
    neighbor_ifid: int
    link_type: LinkType


@dataclass
class AutonomousSystem:
    """An AS: identity, role, keys, and its interface table."""

    isd_as: IsdAs
    is_core: bool
    forwarding_key: bytes = b""  # K_i: MACs SCION hop fields
    secret_value: SecretValue | None = None  # SV_i: derives Hummingbird keys
    interfaces: dict[int, Interface] = field(default_factory=dict)
    _next_ifid: int = 1

    def __post_init__(self) -> None:
        if not self.forwarding_key:
            self.forwarding_key = SecretValue.from_seed(f"fwd-{self.isd_as}").key
        if self.secret_value is None:
            self.secret_value = SecretValue.from_seed(f"sv-{self.isd_as}")

    def allocate_interface(
        self, neighbor: IsdAs, neighbor_ifid: int, link_type: LinkType
    ) -> Interface:
        ifid = self._next_ifid
        self._next_ifid += 1
        interface = Interface(self.isd_as, ifid, neighbor, neighbor_ifid, link_type)
        self.interfaces[ifid] = interface
        return interface

    def interface_to(self, neighbor: IsdAs) -> Interface | None:
        """First interface facing ``neighbor`` (topologies here use single links)."""
        for interface in self.interfaces.values():
            if interface.neighbor == neighbor:
                return interface
        return None


@dataclass(frozen=True)
class Link:
    """An undirected inter-AS link between two concrete interfaces."""

    a: IsdAs
    a_ifid: int
    b: IsdAs
    b_ifid: int
    link_type: LinkType


class Topology:
    """A mutable AS-level topology with interface bookkeeping.

    >>> topo = Topology()
    >>> a = topo.add_as(IsdAs(1, 1), is_core=True)
    >>> b = topo.add_as(IsdAs(1, 2), is_core=False)
    >>> link = topo.add_link(a.isd_as, b.isd_as, LinkType.PARENT_CHILD)
    >>> topo.as_of(IsdAs(1, 2)).interfaces[1].neighbor == a.isd_as
    True
    """

    def __init__(self) -> None:
        self._ases: dict[IsdAs, AutonomousSystem] = {}
        self._links: list[Link] = []
        self._graph = nx.Graph()

    # -- construction -------------------------------------------------------

    def add_as(self, isd_as: IsdAs, is_core: bool) -> AutonomousSystem:
        if isd_as in self._ases:
            raise ValueError(f"AS {isd_as} already exists")
        autonomous_system = AutonomousSystem(isd_as=isd_as, is_core=is_core)
        self._ases[isd_as] = autonomous_system
        self._graph.add_node(isd_as, is_core=is_core)
        return autonomous_system

    def add_link(self, a: IsdAs, b: IsdAs, link_type: LinkType) -> Link:
        """Create a bidirectional link; for PARENT_CHILD, ``a`` is the parent."""
        as_a = self.as_of(a)
        as_b = self.as_of(b)
        if link_type is LinkType.CORE and not (as_a.is_core and as_b.is_core):
            raise ValueError(f"core link requires two core ASes: {a}, {b}")
        # Interfaces reference each other; allocate in two steps.
        ifid_a = as_a._next_ifid
        ifid_b = as_b._next_ifid
        as_a.allocate_interface(b, ifid_b, link_type)
        as_b.allocate_interface(a, ifid_a, link_type)
        link = Link(a, ifid_a, b, ifid_b, link_type)
        self._links.append(link)
        self._graph.add_edge(a, b, link_type=link_type)
        return link

    # -- queries ------------------------------------------------------------

    def as_of(self, isd_as: IsdAs) -> AutonomousSystem:
        try:
            return self._ases[isd_as]
        except KeyError:
            raise KeyError(f"unknown AS {isd_as}") from None

    @property
    def ases(self) -> list[AutonomousSystem]:
        return list(self._ases.values())

    @property
    def core_ases(self) -> list[AutonomousSystem]:
        return [a for a in self._ases.values() if a.is_core]

    @property
    def links(self) -> list[Link]:
        return list(self._links)

    @property
    def graph(self) -> nx.Graph:
        return self._graph

    def children_of(self, isd_as: IsdAs) -> list[IsdAs]:
        """Customer ASes reachable over PARENT_CHILD links where we are parent."""
        children = []
        for link in self._links:
            if link.link_type is LinkType.PARENT_CHILD and link.a == isd_as:
                children.append(link.b)
        return children

    def parents_of(self, isd_as: IsdAs) -> list[IsdAs]:
        parents = []
        for link in self._links:
            if link.link_type is LinkType.PARENT_CHILD and link.b == isd_as:
                parents.append(link.a)
        return parents

    def core_neighbors(self, isd_as: IsdAs) -> list[IsdAs]:
        neighbors = []
        for link in self._links:
            if link.link_type is not LinkType.CORE:
                continue
            if link.a == isd_as:
                neighbors.append(link.b)
            elif link.b == isd_as:
                neighbors.append(link.a)
        return neighbors


# ---------------------------------------------------------------------------
# Topology generators
# ---------------------------------------------------------------------------


def linear_topology(num_ases: int, isd: int = 1) -> Topology:
    """A chain of ``num_ases`` ASes: one core followed by a provider chain.

    This mirrors the paper's running example (Fig. 1, a path of five ASes)
    and is the workhorse fixture for data-plane tests.
    """
    if num_ases < 1:
        raise ValueError("need at least one AS")
    topo = Topology()
    isd_ases = [IsdAs(isd, 0x0001_0000_0000 + i) for i in range(num_ases)]
    topo.add_as(isd_ases[0], is_core=True)
    for i in range(1, num_ases):
        topo.add_as(isd_ases[i], is_core=False)
        topo.add_link(isd_ases[i - 1], isd_ases[i], LinkType.PARENT_CHILD)
    return topo


def core_mesh_topology(num_cores: int, children_per_core: int, isd: int = 1) -> Topology:
    """A full mesh of core ASes, each with a small provider tree below it."""
    if num_cores < 1:
        raise ValueError("need at least one core AS")
    topo = Topology()
    cores = [IsdAs(isd, 0xC000_0000_0000 + i) for i in range(num_cores)]
    for core in cores:
        topo.add_as(core, is_core=True)
    for i, core_a in enumerate(cores):
        for core_b in cores[i + 1 :]:
            topo.add_link(core_a, core_b, LinkType.CORE)
    for core_index, core in enumerate(cores):
        for child_index in range(children_per_core):
            child = IsdAs(isd, 0x0001_0000_0000 + core_index * 1000 + child_index)
            topo.add_as(child, is_core=False)
            topo.add_link(core, child, LinkType.PARENT_CHILD)
    return topo


def random_internet_topology(
    num_cores: int,
    num_leaves: int,
    seed: int = 7,
    isd: int = 1,
    multihoming_probability: float = 0.3,
) -> Topology:
    """A randomized SCION-like internet: sparse core mesh + multihomed leaves.

    Leaves attach to one or (with ``multihoming_probability``) two providers,
    which produces the path diversity the paper's market analysis relies on
    (§5.3: "between most source/destination pairs, there are more than
    twenty ... paths available").
    """
    rng = random.Random(seed)
    topo = Topology()
    cores = [IsdAs(isd, 0xC000_0000_0000 + i) for i in range(num_cores)]
    for core in cores:
        topo.add_as(core, is_core=True)
    # Ring + random chords keeps the core connected but not complete.
    for i in range(num_cores):
        topo.add_link(cores[i], cores[(i + 1) % num_cores], LinkType.CORE)
    existing = {frozenset((cores[i], cores[(i + 1) % num_cores])) for i in range(num_cores)}
    for i in range(num_cores):
        for j in range(i + 2, num_cores):
            pair = frozenset((cores[i], cores[j]))
            if pair not in existing and rng.random() < 0.4:
                topo.add_link(cores[i], cores[j], LinkType.CORE)
                existing.add(pair)
    for leaf_index in range(num_leaves):
        leaf = IsdAs(isd, 0x0001_0000_0000 + leaf_index)
        topo.add_as(leaf, is_core=False)
        providers = rng.sample(cores, 2 if rng.random() < multihoming_probability else 1)
        for provider in providers:
            topo.add_link(provider, leaf, LinkType.PARENT_CHILD)
    return topo
