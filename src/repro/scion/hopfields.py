"""SCION hop-field MAC computation and SegID chaining.

Every hop field carries a 6-byte MAC computed by the AS it belongs to, keyed
with the AS-local forwarding key :math:`K_i`.  MACs are *chained* through the
16-bit SegID accumulator :math:`\\beta`: the MAC input of hop ``i`` includes
:math:`\\beta_i`, and :math:`\\beta_{i+1} = \\beta_i \\oplus MAC_i[:2]`.
Chaining means a hop field is only valid in the context of the exact segment
prefix it was issued for, which prevents segment splicing.

Routers verify statelessly:

* in construction direction (C=1) the packet's SegID holds :math:`\\beta_i`;
  after verification the router XORs ``MAC[:2]`` into it;
* against construction (C=0) the packet's SegID holds :math:`\\beta_{i+1}`;
  the router XORs the *packet's* MAC bytes first, recovering a candidate
  :math:`\\beta_i`, then verifies (a forged MAC yields a wrong candidate and
  verification fails).
"""

from __future__ import annotations

from repro.crypto.prf import DEFAULT_PRF_FACTORY, PrfFactory

HOP_MAC_LEN = 6
SEGID_BITS = 16

# Relative hop-field expiry: value v means (v+1) * 24h/256 after the segment
# timestamp, as in the SCION specification.
EXP_TIME_UNIT = 24 * 3600 / 256
DEFAULT_EXP_TIME = 63  # 6 hours


def pack_hopfield_mac_input(
    seg_id: int, timestamp: int, exp_time: int, cons_ingress: int, cons_egress: int
) -> bytes:
    """16-byte MAC input per the SCION header specification."""
    if not 0 <= seg_id < 1 << SEGID_BITS:
        raise ValueError(f"SegID {seg_id} out of 16-bit range")
    if not 0 <= timestamp < 1 << 32:
        raise ValueError(f"timestamp {timestamp} out of 32-bit range")
    if not 0 <= exp_time < 1 << 8:
        raise ValueError(f"ExpTime {exp_time} out of 8-bit range")
    if not 0 <= cons_ingress < 1 << 16 or not 0 <= cons_egress < 1 << 16:
        raise ValueError("interface identifiers out of 16-bit range")
    return (
        b"\x00\x00"
        + seg_id.to_bytes(2, "big")
        + timestamp.to_bytes(4, "big")
        + b"\x00"
        + exp_time.to_bytes(1, "big")
        + cons_ingress.to_bytes(2, "big")
        + cons_egress.to_bytes(2, "big")
        + b"\x00\x00"
    )


def compute_hopfield_mac(
    forwarding_key: bytes,
    seg_id: int,
    timestamp: int,
    exp_time: int,
    cons_ingress: int,
    cons_egress: int,
    prf_factory: PrfFactory = DEFAULT_PRF_FACTORY,
) -> bytes:
    """Compute the truncated 6-byte hop-field MAC."""
    block = pack_hopfield_mac_input(seg_id, timestamp, exp_time, cons_ingress, cons_egress)
    return prf_factory(forwarding_key).compute(block)[:HOP_MAC_LEN]


def chain_segid(seg_id: int, mac: bytes) -> int:
    """Advance the SegID accumulator: ``beta ^= MAC[:2]``."""
    return seg_id ^ int.from_bytes(mac[:2], "big")


def absolute_expiry(segment_timestamp: int, exp_time: int) -> float:
    """Absolute hop-field expiry in Unix seconds."""
    return segment_timestamp + (exp_time + 1) * EXP_TIME_UNIT
