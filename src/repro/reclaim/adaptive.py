"""Overbooking that learns: the factor tracks observed show-up rates.

If a fraction ``s`` of admitted bandwidth historically shows up, then
admitting ``L`` kbps materializes as roughly ``s * L`` on the wire; the
factor that fills (but does not exceed) physical capacity in expectation
is ``1 / s``.  :class:`AdaptiveOverbooking` keeps an EWMA of the show-up
rate the reclamation engine observes per interface calendar and sets the
factor to ``clamp(1 / ewma, 1, max_factor)`` — honest demand pushes the
factor back toward 1, chronic no-shows let it climb, and ``max_factor``
bounds the bet either way.
"""

from __future__ import annotations

import weakref

from repro.admission.policy import OverbookingPolicy


class AdaptiveOverbooking(OverbookingPolicy):
    """Per-interface overbooking factor steered by observed show-up rates.

    Until the first :meth:`observe` for a calendar, that calendar admits
    at ``initial_factor`` (default 1.0 — no overbooking before there is
    evidence of no-shows).  State is keyed weakly by calendar object, so
    one policy instance can serve every interface of a controller and
    drops its state with the calendars.

    Args:
        initial_factor: factor for calendars with no observations yet.
        max_factor: hard ceiling on the learned factor.
        alpha: EWMA weight of the newest show-up observation.
        max_fraction: optional per-buyer share cap (of *physical*
            capacity), as in :class:`OverbookingPolicy`.
    """

    name = "adaptive-overbooking"

    def __init__(
        self,
        initial_factor: float = 1.0,
        max_factor: float = 3.0,
        alpha: float = 0.3,
        max_fraction: float | None = None,
    ) -> None:
        super().__init__(initial_factor, max_fraction=max_fraction)
        if max_factor < 1:
            raise ValueError("max_factor must be >= 1")
        if not 0 < alpha <= 1:
            raise ValueError("alpha must be in (0, 1]")
        self.max_factor = float(max_factor)
        self.alpha = float(alpha)
        self._showup: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()
        self._factors: weakref.WeakKeyDictionary = weakref.WeakKeyDictionary()

    def limit_factor(self, calendar) -> float:
        """The factor currently in force for this calendar."""
        return self._factors.get(calendar, self.factor)

    def show_up_ewma(self, calendar) -> float | None:
        """The smoothed show-up rate for this calendar (``None`` = no data)."""
        return self._showup.get(calendar)

    def observe(self, calendar, show_up_rate: float) -> float:
        """Fold one observed show-up rate in; returns the new factor.

        ``show_up_rate`` is observed-priority-rate over booked-rate,
        aggregated over the calendar's tracked reservations (the
        reclamation engine computes it each scan).
        """
        rate = min(max(float(show_up_rate), 0.0), 1.0)
        previous = self._showup.get(calendar)
        ewma = rate if previous is None else (
            (1.0 - self.alpha) * previous + self.alpha * rate
        )
        self._showup[calendar] = ewma
        factor = min(self.max_factor, 1.0 / max(ewma, 1.0 / self.max_factor))
        self._factors[calendar] = max(1.0, factor)
        return self._factors[calendar]
