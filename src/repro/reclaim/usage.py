"""Policer-fed usage sampling: the measurement half of the control loop.

The data plane already counts, per (ingress interface, ResID), the bytes
each reservation actually moved with priority
(:meth:`repro.hummingbird.policing.TokenBucketArray.monitor` adds
``pkt_len`` on every in-profile packet).  :class:`UsageReporter` samples
those **cumulative** counters on a configurable cadence and turns them
into observed rates for the reclamation engine.

Sampling cumulative counters — not instantaneous rates — is the
aliasing guard: a sender bursting exactly *between* (or exactly *at*)
the sampling instants still lands every byte in the counter, so its
observed average rate is exact no matter how its bursts phase against
the sampling clock.  There is no cadence an adversary can hide from, and
therefore no honest burst pattern the loop can mistake for a no-show
(``tests/reclaim/test_reclaim_adversarial.py`` drives this).
"""

from __future__ import annotations

from typing import Callable, Mapping

# The snapshot shape PerInterfacePolicer.usage_snapshot() produces.
UsageSnapshot = Mapping[int, Mapping[int, int]]


class UsageReporter:
    """Samples per-(interface, ResID) priority-byte counters on a cadence.

    Args:
        source: zero-argument callable returning the cumulative usage
            snapshot ``{ingress_ifid: {res_id: priority_bytes}}`` —
            typically ``router.policer.usage_snapshot``.
        interval: minimum seconds between samples; :meth:`sample` calls
            arriving early are no-ops, so the reporter can sit on any
            housekeeping path without flooding the policer.
    """

    def __init__(self, source: Callable[[], UsageSnapshot], interval: float = 0.25) -> None:
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.source = source
        self.interval = float(interval)
        self.samples_taken = 0
        self.last_sample_at: float | None = None
        self._bytes: dict[tuple[int, int], int] = {}

    def sample(self, now: float) -> bool:
        """Take a sample if the cadence allows; returns whether one was taken."""
        if (
            self.last_sample_at is not None
            and now - self.last_sample_at < self.interval
        ):
            return False
        snapshot = self.source()
        for ingress, by_res in snapshot.items():
            for res_id, total in by_res.items():
                self._bytes[(int(ingress), int(res_id))] = int(total)
        self.last_sample_at = float(now)
        self.samples_taken += 1
        return True

    def usage_bytes(self, ingress_ifid: int, res_id: int) -> int:
        """Cumulative priority bytes at the last sample (0 if never seen)."""
        return self._bytes.get((int(ingress_ifid), int(res_id)), 0)

    def observed_kbps(
        self, ingress_ifid: int, res_id: int, active_seconds: float
    ) -> float:
        """Average priority rate over the reservation's active time so far."""
        if active_seconds <= 0:
            return 0.0
        return self.usage_bytes(ingress_ifid, res_id) * 8.0 / 1000.0 / active_seconds
