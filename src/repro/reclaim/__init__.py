"""Usage feedback and no-show reclamation: closing the admission loop.

The data plane's policer counts what each reservation actually moves
(:mod:`repro.hummingbird.policing`); this package feeds those counts
back into the control plane.  :class:`UsageReporter` samples cumulative
per-(interface, ResID) byte counters, :class:`ReclamationEngine` shrinks
no-show commitments on the active calendars and demotes their data-plane
rate, and :class:`AdaptiveOverbooking` steers each interface's
overbooking factor from the observed show-up rates.  See
``docs/reclamation.md`` for the full loop.
"""

from repro.reclaim.adaptive import AdaptiveOverbooking
from repro.reclaim.engine import (
    ReclamationEngine,
    ReclamationEvent,
    TrackedReservation,
)
from repro.reclaim.usage import UsageReporter, UsageSnapshot

__all__ = [
    "AdaptiveOverbooking",
    "ReclamationEngine",
    "ReclamationEvent",
    "TrackedReservation",
    "UsageReporter",
    "UsageSnapshot",
]
