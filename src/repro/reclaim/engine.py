"""No-show detection and reclamation: the actuator half of the control loop.

The :class:`ReclamationEngine` watches tracked reservations through a
:class:`~repro.reclaim.usage.UsageReporter` and, once a reservation is
past its grace period, compares the observed priority rate against what
was booked.  A reservation using less than ``no_show_threshold`` of its
booking is a **no-show**: its active-calendar commitments are shrunk in
place (:meth:`~repro.admission.calendar.CapacityCalendar.reclaim`) down
to ``retain_headroom`` times the observed rate, the data-plane policer
is capped at the retained rate (a late-waking sender is demoted to best
effort beyond it), and the freed bandwidth is handed to ``on_reclaim``
for relisting or re-auction.

Failure model (the matrix ``docs/reclamation.md`` tabulates):

* a calendar-level reclaim that fails — including a shard-engine worker
  crash mid-batch — rolls back byte-identically inside the backend and
  raises a retryable error; the engine leaves the reservation tracked
  with its target pinned and retries on the next scan;
* a reservation spanning several calendars (ingress + egress) reclaims
  them in order; a retryable failure partway leaves the already-shrunk
  calendars shrunk (strictly conservative: capacity was *freed*, never
  oversold) and completes the rest on the next scan — the reclamation
  event, policer demotion, and relist hook all fire only once the last
  calendar is done;
* a commitment that disappeared underneath (released or expired) is
  treated as already reclaimed.

Reclaim targets never go below the observed rate (``retain_headroom >=
1``), so reclamation never lowers an interface's headroom below what the
data plane has actually seen — the invariant the hypothesis suite in
``tests/reclaim/`` drives across every calendar backend.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.admission.controller import ACTIVE, AdmissionController
from repro.reclaim.usage import UsageReporter
from repro.shardengine import EngineRetryable
from repro.telemetry import get_registry

# One active-calendar claim of a tracked reservation:
# (interface, is_ingress, commitment_id).
Handle = tuple[int, bool, int]


@dataclass
class TrackedReservation:
    """One delivered reservation under reclamation watch."""

    res_id: int
    ingress_ifid: int
    booked_kbps: int
    start: float
    end: float
    handles: list[Handle]
    tag: str = ""
    bandwidth_kbps: int = 0  # current (post-reclaim) bandwidth
    pending_target_kbps: int | None = None  # pinned mid-retry target
    done_handles: set[int] = field(default_factory=set)
    reclaimed_at: float | None = None
    reclaimed_to_kbps: int | None = None
    bytes_at_reclaim: int = 0
    false_reclaim: bool = False

    def __post_init__(self) -> None:
        if not self.bandwidth_kbps:
            self.bandwidth_kbps = self.booked_kbps


@dataclass(frozen=True)
class ReclamationEvent:
    """One completed reclamation (all calendars shrunk, demotion installed)."""

    res_id: int
    ingress_ifid: int
    old_kbps: int
    new_kbps: int
    start: float
    end: float
    at: float
    observed_kbps: float
    tag: str = ""

    @property
    def freed_kbps(self) -> int:
        return self.old_kbps - self.new_kbps

    @property
    def freed_bytes(self) -> int:
        """Reclaimed bandwidth-bytes: freed rate over the remaining window."""
        return int(self.freed_kbps * 125 * (self.end - self.at))


class ReclamationEngine:
    """Detects no-shows and reclaims their active-calendar bandwidth.

    Args:
        controller: the AS's admission authority (active-layer calendars).
        reporter: the policer-fed usage sampler.
        grace_seconds: how long after a reservation's start before it can
            be judged — a late joiner inside the grace period is safe.
        no_show_threshold: observed/booked rate below which a reservation
            is a no-show (0.5 = "using less than half of what it booked").
        retain_headroom: the reclaimed reservation keeps
            ``retain_headroom * observed`` kbps (must be >= 1, so the
            retained bandwidth never dips below observed usage).
        min_retained_kbps: floor on the retained bandwidth.
        demote: optional ``(ingress_ifid, res_id, kbps)`` callable capping
            the data-plane policer at the retained rate — typically
            ``router.policer.set_limit``.
        on_reclaim: optional ``(ReclamationEvent)`` callable fired once
            per completed reclamation — the marketplace relist hook.
    """

    def __init__(
        self,
        controller: AdmissionController,
        reporter: UsageReporter,
        grace_seconds: float = 0.5,
        no_show_threshold: float = 0.5,
        retain_headroom: float = 1.5,
        min_retained_kbps: int = 1,
        demote: Callable[[int, int, int], None] | None = None,
        on_reclaim: Callable[[ReclamationEvent], None] | None = None,
    ) -> None:
        if grace_seconds < 0:
            raise ValueError("grace_seconds must be >= 0")
        if not 0 < no_show_threshold <= 1:
            raise ValueError("no_show_threshold must be in (0, 1]")
        if retain_headroom < 1:
            raise ValueError(
                "retain_headroom must be >= 1 (retained bandwidth may never "
                "dip below observed usage)"
            )
        if min_retained_kbps < 1:
            raise ValueError("min_retained_kbps must be >= 1")
        self.controller = controller
        self.reporter = reporter
        self.grace_seconds = float(grace_seconds)
        self.no_show_threshold = float(no_show_threshold)
        self.retain_headroom = float(retain_headroom)
        self.min_retained_kbps = int(min_retained_kbps)
        self.demote = demote
        self.on_reclaim = on_reclaim
        self._tracked: dict[int, TrackedReservation] = {}
        self.events: list[ReclamationEvent] = []
        self.false_reclaims = 0
        self.retries = 0
        self.scans = 0
        #: Per-(interface, is_ingress) show-up rate from the last scan.
        self.last_show_up: dict[tuple[int, bool], float] = {}
        registry = get_registry()
        self._telemetry = registry.enabled
        self._m_reclaimed_bytes = registry.counter(
            "reclaim_reclaimed_bytes_total",
            "Bandwidth-bytes returned to active calendars by reclamation.",
            ("ingress",),
        )
        self._m_reclaims = registry.counter(
            "reclaim_events_total",
            "Completed reclamations (every calendar shrunk, demotion set).",
            ("ingress",),
        )
        self._m_false = registry.counter(
            "reclaim_false_reclaims_total",
            "Reclaimed reservations whose sender later exceeded the "
            "retained rate (the overbooking bet charged to the buyer).",
        ).labels()
        self._m_retries = registry.counter(
            "reclaim_retries_total",
            "Reclaim attempts deferred by a retryable backend failure.",
        ).labels()
        self._m_scans = registry.counter(
            "reclaim_scans_total", "Reclamation scan passes."
        ).labels()
        self._m_factor = registry.gauge(
            "reclaim_overbooking_factor",
            "Live adaptive overbooking factor per interface direction.",
            ("interface", "direction"),
        )

    # -- tracking -----------------------------------------------------------------

    def track(
        self,
        res_id: int,
        ingress_ifid: int,
        bandwidth_kbps: int,
        start: float,
        end: float,
        handles: list[Handle],
        tag: str = "",
    ) -> TrackedReservation:
        """Put one delivered reservation under watch.

        ``handles`` are the active-layer calendar claims the delivery
        made — ``(interface, is_ingress, commitment_id)`` per direction.
        """
        tracked = TrackedReservation(
            res_id=int(res_id),
            ingress_ifid=int(ingress_ifid),
            booked_kbps=int(bandwidth_kbps),
            start=float(start),
            end=float(end),
            handles=list(handles),
            tag=tag,
        )
        self._tracked[tracked.res_id] = tracked
        return tracked

    def forget(self, res_id: int) -> None:
        """Stop watching a reservation (released, expired, or revoked)."""
        self._tracked.pop(int(res_id), None)

    def tracked(self, res_id: int) -> TrackedReservation | None:
        return self._tracked.get(int(res_id))

    @property
    def tracked_count(self) -> int:
        return len(self._tracked)

    # -- the scan -----------------------------------------------------------------

    def scan(self, now: float) -> list[ReclamationEvent]:
        """One control-loop pass: sample, judge, reclaim, adapt.

        Returns the reclamation events *completed* during this pass.
        """
        now = float(now)
        self.reporter.sample(now)
        self.scans += 1
        if self._telemetry:
            self._m_scans.inc()
        events: list[ReclamationEvent] = []
        showup_num: dict[tuple[int, bool], float] = {}
        showup_den: dict[tuple[int, bool], float] = {}
        for tracked in list(self._tracked.values()):
            if now >= tracked.end:
                self.forget(tracked.res_id)
                continue
            if now < tracked.start + self.grace_seconds:
                continue
            active_seconds = now - tracked.start
            observed = self.reporter.observed_kbps(
                tracked.ingress_ifid, tracked.res_id, active_seconds
            )
            for interface, is_ingress, _ in tracked.handles:
                key = (interface, is_ingress)
                showup_num[key] = showup_num.get(key, 0.0) + min(
                    observed, tracked.booked_kbps
                )
                showup_den[key] = showup_den.get(key, 0.0) + tracked.booked_kbps
            if tracked.reclaimed_at is not None:
                self._check_false_reclaim(tracked, now)
                continue
            event = self._judge(tracked, observed, now)
            if event is not None:
                events.append(event)
        self.last_show_up = {
            key: showup_num[key] / showup_den[key] for key in showup_den
        }
        self._adapt()
        self.events.extend(events)
        return events

    def _judge(
        self, tracked: TrackedReservation, observed: float, now: float
    ) -> ReclamationEvent | None:
        """No-show check + reclaim attempt for one live reservation."""
        if tracked.pending_target_kbps is not None:
            # A previous attempt hit a retryable failure: finish it with
            # the pinned target so every calendar lands on the same value.
            target = tracked.pending_target_kbps
        else:
            if observed >= self.no_show_threshold * tracked.booked_kbps:
                return None  # showing up
            target = max(
                self.min_retained_kbps,
                math.ceil(observed * self.retain_headroom),
            )
            if target >= tracked.bandwidth_kbps:
                return None  # nothing worth reclaiming
            tracked.pending_target_kbps = target
        for index, (interface, is_ingress, commitment_id) in enumerate(
            tracked.handles
        ):
            if index in tracked.done_handles:
                continue
            calendar = self.controller.calendar(interface, is_ingress, ACTIVE)
            try:
                calendar.reclaim(commitment_id, target)
            except EngineRetryable:
                self.retries += 1
                if self._telemetry:
                    self._m_retries.inc()
                return None  # backend rolled back; finish on the next scan
            except KeyError:
                pass  # commitment released/expired underneath: nothing to shrink
            tracked.done_handles.add(index)
        old_kbps = tracked.bandwidth_kbps
        tracked.bandwidth_kbps = target
        tracked.pending_target_kbps = None
        tracked.done_handles.clear()
        tracked.reclaimed_at = now
        tracked.reclaimed_to_kbps = target
        tracked.bytes_at_reclaim = self.reporter.usage_bytes(
            tracked.ingress_ifid, tracked.res_id
        )
        if self.demote is not None:
            self.demote(tracked.ingress_ifid, tracked.res_id, target)
        event = ReclamationEvent(
            res_id=tracked.res_id,
            ingress_ifid=tracked.ingress_ifid,
            old_kbps=old_kbps,
            new_kbps=target,
            start=tracked.start,
            end=tracked.end,
            at=now,
            observed_kbps=observed,
            tag=tracked.tag,
        )
        if self._telemetry:
            self._m_reclaims.labels(tracked.ingress_ifid).inc()
            self._m_reclaimed_bytes.labels(tracked.ingress_ifid).inc(
                event.freed_bytes
            )
        if self.on_reclaim is not None:
            self.on_reclaim(event)
        return event

    def _check_false_reclaim(self, tracked: TrackedReservation, now: float) -> None:
        """Flag a reclaimed sender that woke up past its retained rate."""
        if tracked.false_reclaim or now <= tracked.reclaimed_at:
            return
        extra = (
            self.reporter.usage_bytes(tracked.ingress_ifid, tracked.res_id)
            - tracked.bytes_at_reclaim
        )
        rate = extra * 8.0 / 1000.0 / (now - tracked.reclaimed_at)
        if rate > tracked.reclaimed_to_kbps:
            tracked.false_reclaim = True
            self.false_reclaims += 1
            if self._telemetry:
                self._m_false.inc()

    def _adapt(self) -> None:
        """Feed observed show-up rates into an adaptive overbooking policy."""
        observe = getattr(self.controller.policy, "observe", None)
        for (interface, is_ingress), rate in self.last_show_up.items():
            calendar = self.controller.calendar(interface, is_ingress, ACTIVE)
            if observe is not None:
                factor = observe(calendar, rate)
            else:
                factor = getattr(self.controller.policy, "factor", 1.0)
            if self._telemetry:
                self._m_factor.labels(
                    interface, "ingress" if is_ingress else "egress"
                ).set(factor)
