"""Fan-out of the ledger's event stream: one scan, many index subscribers.

Without this layer every consumer of the marketplace pulls the ledger's
append-only event list independently (``MarketIndexer.sync``), and every
*new* consumer replays it from genesis.  The bus fixes both halves:

* :class:`EventBus` delivers the stream to N subscribers from each
  subscriber's **own** cursor, so one :meth:`~EventBus.pump` advances
  everyone and pull (``sync``) and push (``deliver``) consumption compose
  without double-applying — the cursor lives in the subscriber, not the
  bus.
* :class:`SharedMarketIndex` keeps one authoritative
  :class:`~repro.marketdata.indexer.MarketIndexer` checkpointed;
  :meth:`~SharedMarketIndex.attach` bootstraps a private index from the
  latest checkpoint (cost: live listings, not ledger history) and rides
  the bus for the tail.

A subscriber is anything with an integer ``position`` cursor and a
``deliver(event)`` method that applies the ledger event *at* that cursor
and advances it — the contract :class:`MarketIndexer` implements.
"""

from __future__ import annotations


class EventBus:
    """Deliver one append-only event stream to cursor-tracking subscribers.

    >>> from repro.ledger.chain import Ledger
    >>> from repro.ledger.transactions import Event
    >>> class Tail:
    ...     position = 0
    ...     seen = ()
    ...     def deliver(self, event):
    ...         self.position += 1
    ...         self.seen += (event.event_type,)
    >>> ledger = Ledger()
    >>> ledger.events.append(Event("Listed", {}, "tx", 1))
    >>> bus = EventBus(ledger)
    >>> tail = Tail()
    >>> bus.subscribe(tail)
    >>> bus.pump()
    1
    >>> tail.seen
    ('Listed',)
    >>> bus.pump()  # idempotent: the cursor already points past the end
    0
    """

    def __init__(self, ledger) -> None:
        self.ledger = ledger
        self._subscribers: list = []
        self.events_delivered = 0

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    def subscribe(self, subscriber) -> None:
        """Add a subscriber; it is caught up on the next :meth:`pump`.

        Delivery starts from the subscriber's current ``position`` — pass
        one restored from a checkpoint to skip history already folded in.
        """
        if subscriber not in self._subscribers:
            self._subscribers.append(subscriber)

    def unsubscribe(self, subscriber) -> None:
        try:
            self._subscribers.remove(subscriber)
        except ValueError:
            pass

    def pump(self) -> int:
        """Push every undelivered event to every subscriber, in order.

        Each subscriber advances from its own cursor to the end of the
        stream, so mixed-progress subscribers (one fresh from a snapshot,
        one already synced) all converge on the same position.

        Returns:
            Total deliveries made (events times lagging subscribers).
        """
        events = self.ledger.events
        delivered = 0
        for subscriber in list(self._subscribers):
            while subscriber.position < len(events):
                subscriber.deliver(events[subscriber.position])
                delivered += 1
        self.events_delivered += delivered
        return delivered


class SharedMarketIndex:
    """A checkpointed market index many hosts can attach to cheaply.

    One authoritative :class:`~repro.marketdata.indexer.MarketIndexer`
    stays subscribed to the bus; :meth:`attach` clones its state from the
    most recent checkpoint and subscribes the clone, after which a single
    :meth:`pump` keeps the whole fan-out current.  Checkpoints refresh
    lazily every ``checkpoint_every`` ledger events, so an attach never
    replays more than that much tail through the bus.
    """

    def __init__(self, indexer, checkpoint_every: int = 1024) -> None:
        if not checkpoint_every > 0:
            raise ValueError("checkpoint_every must be positive")
        self.indexer = indexer
        self.checkpoint_every = int(checkpoint_every)
        self.bus = EventBus(indexer.ledger)
        self.bus.subscribe(indexer)
        self._checkpoint: dict | None = None
        self.attached = 0

    @property
    def marketplace(self) -> str:
        return self.indexer.marketplace

    def pump(self) -> int:
        """Fan all new ledger events out to every attached index."""
        return self.bus.pump()

    def checkpoint(self) -> dict:
        """Sync the authoritative index and snapshot it, caching the result."""
        self.bus.pump()
        self._checkpoint = self.indexer.snapshot()
        return self._checkpoint

    def attach(self):
        """A private indexer bootstrapped from the checkpoint, bus-fed after.

        The clone starts byte-equal to the authoritative index at the
        checkpoint position and receives the tail on the next pump — it
        never replays the ledger from genesis.
        """
        from repro.marketdata.indexer import MarketIndexer

        stale = (
            self._checkpoint is None
            or len(self.indexer.ledger.events) - self._checkpoint["position"]
            >= self.checkpoint_every
        )
        if stale:
            self.checkpoint()
        clone = MarketIndexer.from_snapshot(self.indexer.ledger, self._checkpoint)
        self.bus.subscribe(clone)
        self.attached += 1
        return clone

    def detach(self, indexer) -> None:
        """Stop feeding a previously attached indexer (it can still sync)."""
        if indexer is not self.indexer:
            self.bus.unsubscribe(indexer)
