"""Declarative marketplace queries and the records the indexer serves.

The v2 discovery API replaces the 9-positional-argument
``find_listing`` call with small dataclasses:

* :class:`ListingQuery` — one interface direction's requirement: a time
  window, a bandwidth, optional start-time slack (``flex_start``), an
  optional budget cap and an exact-window flag;
* :class:`PathSpec` — the same for a whole multi-hop path (one entry per
  AS crossing);
* :class:`IndexedListing` — the indexer's view of one live listing (the
  asset rectangle plus the posted unit price);
* :class:`Candidate` — one priced answer: a listing, the granule-aligned
  window that would actually be bought, and its total price.

The exceptions shared across the marketdata/controlplane split live here
too, so the host client can re-export them without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scion.addresses import IsdAs

MICROMIST = 1_000_000  # price unit: micromist per kbps-second


class ListingNotFound(LookupError):
    """No listing covers the requested interface/time/bandwidth rectangle."""


class IncompatibleGranularity(ListingNotFound):
    """Ingress and egress listings cannot agree on one aligned window.

    Raised instead of a bare :class:`ListingNotFound` when both directions
    of a hop are individually coverable but their time granularities admit
    no common granule-aligned window inside the assets' validity ranges.
    Subclasses :class:`ListingNotFound` so legacy ``except ListingNotFound``
    handlers keep working.
    """


class BudgetExceeded(RuntimeError):
    """A quote or purchase plan costs more than the caller's budget cap."""


@dataclass(frozen=True)
class IndexedListing:
    """One live listing as tracked by the :class:`MarketIndexer`."""

    listing_id: str
    asset_id: str
    marketplace: str
    seller: str
    price_micromist_per_unit: int
    isd: int
    asn: int
    interface: int
    is_ingress: bool
    bandwidth_kbps: int
    start: int
    expiry: int
    granularity: int
    min_bandwidth_kbps: int

    @classmethod
    def from_event(cls, payload: dict) -> "IndexedListing":
        """Build from a Listed/Relisted event snapshot (the producer shape
        defined by ``MarketContract._listing_snapshot``)."""
        return cls(
            listing_id=payload["listing"],
            asset_id=payload["asset"],
            marketplace=payload["marketplace"],
            seller=payload["seller"],
            price_micromist_per_unit=payload["price_micromist_per_unit"],
            isd=payload["isd"],
            asn=payload["asn"],
            interface=payload["interface"],
            is_ingress=payload["is_ingress"],
            bandwidth_kbps=payload["bandwidth_kbps"],
            start=payload["start"],
            expiry=payload["expiry"],
            granularity=payload["granularity"],
            min_bandwidth_kbps=payload["min_bandwidth_kbps"],
        )

    @classmethod
    def from_ledger(
        cls, listing_id: str, listing_payload: dict, asset_payload: dict
    ) -> "IndexedListing":
        """Build from a listing object plus its asset object (rescans)."""
        return cls(
            listing_id=listing_id,
            asset_id=listing_payload["asset"],
            marketplace=listing_payload["marketplace"],
            seller=listing_payload["seller"],
            price_micromist_per_unit=listing_payload["price_micromist_per_unit"],
            isd=asset_payload["isd"],
            asn=asset_payload["asn"],
            interface=asset_payload["interface"],
            is_ingress=asset_payload["is_ingress"],
            bandwidth_kbps=asset_payload["bandwidth_kbps"],
            start=asset_payload["start"],
            expiry=asset_payload["expiry"],
            granularity=asset_payload["granularity"],
            min_bandwidth_kbps=asset_payload["min_bandwidth_kbps"],
        )

    @property
    def key(self) -> tuple[int, int, int, bool]:
        return (self.isd, self.asn, self.interface, self.is_ingress)

    def align(self, start: int, expiry: int) -> tuple[int, int] | None:
        """Smallest granule-aligned window covering ``[start, expiry)``.

        Alignment is relative to this listing's asset anchor (its own
        ``start``); returns None when the request is empty or the aligned
        window escapes the asset's validity interval.
        """
        if expiry <= start:
            return None
        anchor, granularity = self.start, self.granularity
        buy_start = anchor + (start - anchor) // granularity * granularity
        over = (expiry - anchor) % granularity
        buy_expiry = expiry if over == 0 else expiry + granularity - over
        if buy_start < self.start or buy_expiry > self.expiry:
            return None
        return buy_start, buy_expiry

    def sellable(self, bandwidth_kbps: int) -> bool:
        """Can ``bandwidth_kbps`` be carved out without violating minimums?"""
        remainder = self.bandwidth_kbps - bandwidth_kbps
        if bandwidth_kbps < self.min_bandwidth_kbps or remainder < 0:
            return False
        return remainder == 0 or remainder >= self.min_bandwidth_kbps

    def price_for(self, bandwidth_kbps: int, start: int, expiry: int) -> int:
        """MIST price of buying this rectangle (ceil, like the contract)."""
        units = bandwidth_kbps * (expiry - start)
        return -(-units * self.price_micromist_per_unit // MICROMIST)


@dataclass(frozen=True)
class Candidate:
    """One priced discovery answer: buy ``listing`` over ``[start, expiry)``."""

    listing: IndexedListing
    price_mist: int
    start: int
    expiry: int

    def as_tuple(self) -> tuple[str, int, int, int]:
        """Legacy ``find_listing`` return shape (id, price, start, expiry)."""
        return (self.listing.listing_id, self.price_mist, self.start, self.expiry)


@dataclass(frozen=True)
class ListingQuery:
    """What a host wants on ONE interface direction.

    ``flex_start`` is how many seconds later than ``start`` the window may
    begin (the duration is fixed); a planner slides the window inside the
    flex range looking for cheaper granules.  ``exact_window`` demands the
    granule-aligned window equal the requested one — used to match an
    egress asset to an already-resolved ingress window.
    """

    isd_as: IsdAs
    interface: int
    is_ingress: bool
    start: int
    expiry: int
    bandwidth_kbps: int
    flex_start: int = 0
    budget_mist: int | None = None
    exact_window: bool = False

    def __post_init__(self) -> None:
        if self.expiry <= self.start:
            raise ValueError("query window must not be empty")
        if self.bandwidth_kbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.flex_start < 0:
            raise ValueError("flex_start must be non-negative")

    @property
    def duration(self) -> int:
        return self.expiry - self.start

    @property
    def key(self) -> tuple[int, int, int, bool]:
        return (self.isd_as.isd, self.isd_as.asn, self.interface, self.is_ingress)


@dataclass(frozen=True)
class PathSpec:
    """A whole path's reservation requirement (one entry per AS crossing)."""

    crossings: tuple
    start: int
    expiry: int
    bandwidth_kbps: int
    flex_start: int = 0
    budget_mist: int | None = None

    def __post_init__(self) -> None:
        if self.expiry <= self.start:
            raise ValueError("spec window must not be empty")
        if self.bandwidth_kbps <= 0:
            raise ValueError("bandwidth must be positive")
        if self.flex_start < 0:
            raise ValueError("flex_start must be non-negative")
        object.__setattr__(self, "crossings", tuple(self.crossings))

    @staticmethod
    def from_crossings(
        crossings,
        start: int,
        expiry: int,
        bandwidth_kbps: int,
        flex_start: int = 0,
        budget_mist: int | None = None,
    ) -> "PathSpec":
        return PathSpec(
            crossings=tuple(crossings),
            start=start,
            expiry=expiry,
            bandwidth_kbps=bandwidth_kbps,
            flex_start=flex_start,
            budget_mist=budget_mist,
        )

    @property
    def duration(self) -> int:
        return self.expiry - self.start
