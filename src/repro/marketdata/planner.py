"""Price-reactive purchase planning: buy the valley, not the peak.

:class:`PurchasePlanner` turns a declarative :class:`PathSpec` into ranked
:class:`PathQuote`\\ s.  For every candidate start offset inside the flex
range it resolves each AS crossing to an (ingress, egress) listing pair
over ONE shared granule-aligned window, prices the whole path against the
indexed scarcity-adjusted listings, and ranks the results by price — so a
host with start-time slack automatically slides away from expensive peak
windows, the behaviour SIBRA-style systems and the Grid bulk-transfer
literature get from malleable reservations.

Hop resolution handles mixed granularities: each listing accepts windows
on the lattice ``anchor + k*granularity``, and for every candidate
ingress/egress pair the minimal shared window is computed directly on the
intersection of the two lattices (CRT over the anchors, step = lcm of the
granularities) — so 60s and 120s listings settle on the coarser granule
in one step.  When no pair admits a common window inside the assets'
validity ranges, the planner raises :class:`IncompatibleGranularity`
naming both granularities instead of an opaque :class:`ListingNotFound`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.marketdata.indexer import MarketIndexer
from repro.marketdata.query import (
    BudgetExceeded,
    Candidate,
    IncompatibleGranularity,
    ListingNotFound,
    ListingQuery,
    PathSpec,
)

# Cheapest covering listings tried per direction when pairing a hop's
# ingress and egress; bounds the cross-pair lattice search.
_PAIR_SEARCH_LIMIT = 8


@dataclass(frozen=True)
class HopQuote:
    """One AS crossing resolved to an ingress/egress listing pair."""

    isd_as: object
    ingress: int
    egress: int
    ingress_candidate: Candidate
    egress_candidate: Candidate

    @property
    def start(self) -> int:
        return self.ingress_candidate.start

    @property
    def expiry(self) -> int:
        return self.ingress_candidate.expiry

    @property
    def price_mist(self) -> int:
        return self.ingress_candidate.price_mist + self.egress_candidate.price_mist


@dataclass(frozen=True)
class PathQuote:
    """One fully priced way to reserve the path: window shift + hop pairs."""

    start: int  # requested service start after the shift
    expiry: int
    offset: int  # seconds of shift inside the flex range
    bandwidth_kbps: int
    hops: tuple[HopQuote, ...]

    @property
    def price_mist(self) -> int:
        return sum(hop.price_mist for hop in self.hops)


class PurchasePlanner:
    """Ranked path quotes over a :class:`MarketIndexer`.

    >>> from repro.ledger.chain import Ledger
    >>> from repro.ledger.transactions import Event
    >>> from repro.scion.addresses import IsdAs
    >>> def listed(listing, interface, is_ingress, price):
    ...     return Event("Listed", {
    ...         "marketplace": "m", "listing": listing, "asset": listing,
    ...         "seller": "as-7", "price_micromist_per_unit": price,
    ...         "isd": 1, "asn": 7, "interface": interface,
    ...         "is_ingress": is_ingress, "bandwidth_kbps": 10_000,
    ...         "start": 0, "expiry": 3600, "granularity": 60,
    ...         "min_bandwidth_kbps": 100}, "tx", 1)
    >>> ledger = Ledger()
    >>> ledger.events.extend([listed("IN", 1, True, 50),
    ...                       listed("EG", 2, False, 80)])
    >>> planner = PurchasePlanner(MarketIndexer(ledger, "m"))
    >>> hop = planner.resolve_hop(IsdAs(1, 7), 1, 2, 0, 600, 1_000)
    >>> (hop.ingress_candidate.listing.listing_id,
    ...  hop.egress_candidate.listing.listing_id)
    ('IN', 'EG')
    >>> hop.price_mist  # ceil(600k units * 50µ) + ceil(600k units * 80µ)
    78
    """

    def __init__(self, indexer: MarketIndexer) -> None:
        self.indexer = indexer

    # -- single-hop resolution ----------------------------------------------------

    def resolve_hop(
        self,
        isd_as,
        ingress: int,
        egress: int,
        start: int,
        expiry: int,
        bandwidth_kbps: int,
        sync: bool = True,
    ) -> HopQuote:
        """Cheapest ingress/egress pair sharing one aligned window.

        Enumerates the ``_PAIR_SEARCH_LIMIT`` cheapest covering listings
        per direction and, for every cross pair, computes the minimal
        window covering the request that both listings' granule lattices
        accept (their intersection is CRT-recoverable, or empty when the
        anchors are incongruent).  Among feasible pairs, the cheapest at
        its joint window wins — so a cheap listing on an incompatible
        lattice cannot shadow a compatible one.  The search is bounded:
        a feasible pair ranked below the limit in BOTH directions would be
        missed, which at that depth means the market offers dozens of
        cheaper-but-incompatible listings on each side.
        """
        if sync:
            self.indexer.sync()
        ingress_candidates = self.indexer.candidates(
            ListingQuery(isd_as, ingress, True, start, expiry, bandwidth_kbps),
            limit=_PAIR_SEARCH_LIMIT,
            sync=False,
        )
        egress_candidates = self.indexer.candidates(
            ListingQuery(isd_as, egress, False, start, expiry, bandwidth_kbps),
            limit=_PAIR_SEARCH_LIMIT,
            sync=False,
        )
        if not ingress_candidates or not egress_candidates:
            missing = ingress if not ingress_candidates else egress
            direction = "ingress" if not ingress_candidates else "egress"
            raise ListingNotFound(
                f"no listing at {isd_as} if={missing} {direction} covers "
                f"[{start},{expiry})x{bandwidth_kbps}kbps"
            )
        best: HopQuote | None = None
        best_key: tuple | None = None
        for ingress_candidate in ingress_candidates:
            for egress_candidate in egress_candidates:
                joint = _joint_window(
                    ingress_candidate.listing,
                    egress_candidate.listing,
                    (start, expiry),
                )
                if joint is None:
                    continue
                pair = HopQuote(
                    isd_as=isd_as,
                    ingress=ingress,
                    egress=egress,
                    ingress_candidate=_at_window(
                        ingress_candidate.listing, bandwidth_kbps, joint
                    ),
                    egress_candidate=_at_window(
                        egress_candidate.listing, bandwidth_kbps, joint
                    ),
                )
                key = (
                    pair.price_mist,
                    pair.start,
                    pair.ingress_candidate.listing.listing_id,
                    pair.egress_candidate.listing.listing_id,
                )
                if best_key is None or key < best_key:
                    best, best_key = pair, key
        if best is None:
            ingress_granularity = ingress_candidates[0].listing.granularity
            egress_granularity = egress_candidates[0].listing.granularity
            raise IncompatibleGranularity(
                f"{isd_as}: ingress if={ingress} (granularity "
                f"{ingress_granularity}s) and egress if={egress} (granularity "
                f"{egress_granularity}s) admit no common aligned window covering "
                f"[{start},{expiry}); list assets on a shared granule or split "
                "them to compatible boundaries"
            )
        return best

    # -- path planning -----------------------------------------------------------

    def quote(self, spec: PathSpec) -> list[PathQuote]:
        """Every distinct priced way to cover the spec, cheapest first.

        Candidate start offsets are the *breakpoints* of the flex range:
        every hop resolution is piecewise constant in the offset — it can
        only change where the shifted window's start or expiry crosses
        some involved listing's granule lattice — so the planner
        enumerates exactly those lattice crossings (plus the range
        endpoints) instead of stepping linearly through the range.  This
        skips constant-price plateaus outright and lands on valley edges
        exactly: congruence arithmetic gives each listing's crossings in
        closed form, subsuming a per-valley binary search.  It is also
        *more complete* than the historical finest-granularity linear
        scan, which silently skipped windows of listings whose lattice
        anchor was shifted relative to the spec's start.  Quotes that
        resolve to identical listings and windows are deduplicated.

        Args:
            spec: the whole path's requirement (one entry per crossing).

        Returns:
            Non-empty list of :class:`PathQuote`, ranked by (price,
            offset).  The spec's ``budget_mist`` does NOT filter here —
            callers see over-budget quotes ranked too; :meth:`best`
            enforces the budget.

        Raises:
            ListingNotFound: no offset inside the flex range covers every
                hop (the error of the first failing offset).
            IncompatibleGranularity: some hop's listings admit no common
                aligned window at any offset.
        """
        self.indexer.sync()
        offsets = self._flex_offsets(spec)
        quotes: list[PathQuote] = []
        seen: set[tuple] = set()
        first_error: ListingNotFound | None = None
        for offset in offsets:
            try:
                hops = tuple(
                    self.resolve_hop(
                        crossing.isd_as,
                        crossing.ingress,
                        crossing.egress,
                        spec.start + offset,
                        spec.expiry + offset,
                        spec.bandwidth_kbps,
                        sync=False,
                    )
                    for crossing in spec.crossings
                )
            except ListingNotFound as error:
                if first_error is None:
                    first_error = error
                continue
            signature = tuple(
                (
                    hop.ingress_candidate.listing.listing_id,
                    hop.egress_candidate.listing.listing_id,
                    hop.start,
                    hop.expiry,
                )
                for hop in hops
            )
            if signature in seen:
                continue
            seen.add(signature)
            quotes.append(
                PathQuote(
                    start=spec.start + offset,
                    expiry=spec.expiry + offset,
                    offset=offset,
                    bandwidth_kbps=spec.bandwidth_kbps,
                    hops=hops,
                )
            )
        if not quotes:
            if first_error is not None:
                raise first_error
            raise ListingNotFound(f"no quote covers {spec}")
        quotes.sort(key=lambda quote: (quote.price_mist, quote.offset))
        return quotes

    def best(self, spec: PathSpec) -> PathQuote:
        """The cheapest quote; enforces the spec's budget cap.

        Raises:
            BudgetExceeded: the cheapest quote still exceeds
                ``spec.budget_mist``.
            ListingNotFound: nothing covers the spec (see :meth:`quote`).
        """
        cheapest = self.quote(spec)[0]
        if spec.budget_mist is not None and cheapest.price_mist > spec.budget_mist:
            raise BudgetExceeded(
                f"cheapest quote costs {cheapest.price_mist} MIST, over the "
                f"{spec.budget_mist} MIST budget (offset {cheapest.offset}s)"
            )
        return cheapest

    def _flex_offsets(self, spec: PathSpec) -> list[int]:
        """Offsets at which some hop resolution can change, sorted.

        Every quantity :meth:`resolve_hop` computes at offset ``o`` is a
        function of where ``spec.start + o`` and ``spec.expiry + o`` sit
        on each involved listing's granule lattice (aligned windows are
        floors/ceils on that lattice; coverage and joint-window outcomes
        flip only when those aligned values move).  Between two
        consecutive crossings of *any* involved lattice nothing changes,
        so enumerating the crossings — offsets congruent to
        ``listing.start - edge (mod granularity)`` for both window edges
        — plus the endpoints {0, flex_start} visits one representative of
        every constant piece an exhaustive step-1 scan would see.  Joint
        pair lattices need no extra points: their crossings (step = lcm,
        CRT anchor) are a subset of each member's own crossings.
        """
        flex = spec.flex_start
        offsets = {0, flex}
        for listing in self._involved_listings(spec):
            g = listing.granularity
            for edge in (spec.start, spec.expiry):
                first = (listing.start - edge) % g
                offsets.update(range(first, flex + 1, g))
        return sorted(offsets)

    def _involved_listings(self, spec: PathSpec) -> list:
        """Live listings on the spec's interfaces that any offset in the
        flex range could touch."""
        keys = set()
        for crossing in spec.crossings:
            keys.add(
                (crossing.isd_as.isd, crossing.isd_as.asn, crossing.ingress, True)
            )
            keys.add(
                (crossing.isd_as.isd, crossing.isd_as.asn, crossing.egress, False)
            )
        return [
            listing
            for listing in self.indexer.listings()
            if listing.key in keys
            and listing.start < spec.expiry + spec.flex_start
            and listing.expiry > spec.start
        ]


def _at_window(listing, bandwidth_kbps: int, window: tuple[int, int]) -> Candidate:
    """A candidate buying ``listing`` over an explicitly chosen window."""
    return Candidate(
        listing=listing,
        price_mist=listing.price_for(bandwidth_kbps, *window),
        start=window[0],
        expiry=window[1],
    )


def _joint_window(
    first, second, window: tuple[int, int]
) -> tuple[int, int] | None:
    """Smallest window covering ``window`` aligned to BOTH listings.

    Each listing accepts windows on the lattice ``anchor + k*granularity``;
    the intersection of two lattices is either empty (anchors incongruent
    modulo ``gcd``) or another lattice with step ``lcm`` whose offset CRT
    recovers.  Returns None when the lattices don't intersect or the
    aligned window escapes either asset's validity range.
    """
    start, expiry = window
    g1, g2 = first.granularity, second.granularity
    a1, a2 = first.start, second.start
    g = math.gcd(g1, g2)
    if (a2 - a1) % g:
        return None
    step = g1 // g * g2  # lcm
    m = g2 // g
    if m == 1:
        x0 = a1
    else:
        t = (((a2 - a1) // g) * pow((g1 // g) % m, -1, m)) % m
        x0 = a1 + g1 * t
    joint_start = x0 + (start - x0) // step * step
    over = (expiry - x0) % step
    joint_expiry = expiry if over == 0 else expiry + step - over
    if joint_start < max(a1, a2) or joint_expiry > min(first.expiry, second.expiry):
        return None
    return joint_start, joint_expiry
