"""Market data: incremental listing index + declarative purchase planning.

The off-chain half of the marketplace (§3.2): an event-driven
:class:`MarketIndexer` that tracks live listings per interface direction,
and a :class:`PurchasePlanner` that turns declarative
:class:`ListingQuery`/:class:`PathSpec` requirements into ranked,
scarcity-aware :class:`PathQuote` answers.
"""

from repro.marketdata.bus import EventBus, SharedMarketIndex
from repro.marketdata.indexer import MarketIndexer
from repro.marketdata.naive import iter_listings, naive_best_listing
from repro.marketdata.planner import HopQuote, PathQuote, PurchasePlanner
from repro.marketdata.query import (
    MICROMIST,
    BudgetExceeded,
    Candidate,
    IncompatibleGranularity,
    IndexedListing,
    ListingNotFound,
    ListingQuery,
    PathSpec,
)

__all__ = [
    "MICROMIST",
    "BudgetExceeded",
    "Candidate",
    "EventBus",
    "HopQuote",
    "IncompatibleGranularity",
    "IndexedListing",
    "ListingNotFound",
    "ListingQuery",
    "MarketIndexer",
    "PathQuote",
    "PathSpec",
    "PurchasePlanner",
    "SharedMarketIndex",
    "iter_listings",
    "naive_best_listing",
]
