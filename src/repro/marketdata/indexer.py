"""Event-driven market index: incremental, per-interface, vectorized.

The paper's host stack assumes an **off-chain indexer** (§3.2) between the
ledger and the buyers: hosts should never scan the whole object store to
find a listing.  :class:`MarketIndexer` consumes the marketplace's event
stream *incrementally* — ``Listed``/``Relisted`` add listings,
``Delisted`` removes them, ``Sold`` shrinks or removes the listing the
purchase carved from, ``Reclaimed`` annotates the following listing with
its no-show provenance — so the index is always a pure function of the
events applied so far and never needs a rescan.

Listings are bucketed per ``(isd, asn, interface, direction)`` key; each
bucket keeps its listings sorted by asset start and lazily compiles them
into parallel numpy arrays (the same compile-on-demand idiom as
``repro.admission.calendar``).  A rectangle-cover query bisects the sorted
starts for the candidate prefix (``O(log n)`` selection) and prices every
candidate in one vectorized pass — granule alignment, minimum-bandwidth
rules and ceil pricing exactly mirror the market contract, so the quoted
price is the price ``buy`` will charge.

Ties are broken deterministically by (price, aligned start, listing id);
:mod:`repro.marketdata.naive` implements the same contract by full-ledger
scan for differential testing.

Because the index is a pure function of the events applied so far, it
checkpoints for free: :meth:`MarketIndexer.snapshot` captures (cursor,
live listings) and :meth:`MarketIndexer.restore` rebuilds an identical
index without replaying from genesis — the contract the bus layer in
:mod:`repro.marketdata.bus` builds on to fan one event stream out to many
subscribers.
"""

from __future__ import annotations

import bisect
import dataclasses
import time

import numpy as np

from repro.marketdata.query import (
    MICROMIST,
    Candidate,
    IndexedListing,
    ListingQuery,
)
from repro.telemetry import get_registry

_ADD_EVENTS = ("Listed", "Relisted")


class _KeyIndex:
    """All live listings of one (isd, asn, interface, direction) key."""

    __slots__ = (
        "records",
        "_order",
        "_dirty",
        "_ids",
        "_starts",
        "_expiries",
        "_bandwidths",
        "_min_bws",
        "_granularities",
        "_unit_prices",
    )

    def __init__(self) -> None:
        self.records: dict[str, IndexedListing] = {}
        self._order: list[tuple[int, str]] = []  # (start, listing_id), sorted
        self._dirty = False
        self._compile([])

    # -- mutation ---------------------------------------------------------------

    def add(self, record: IndexedListing) -> None:
        # A replayed Listed/Relisted for a live listing must replace, not
        # duplicate: drop the stale order entry before re-inserting, or
        # candidates() would return the listing twice (and a later remove
        # would leave a dangling order entry behind).
        stale = self.records.get(record.listing_id)
        if stale is not None:
            index = bisect.bisect_left(self._order, (stale.start, record.listing_id))
            if index < len(self._order) and self._order[index][1] == record.listing_id:
                del self._order[index]
        self.records[record.listing_id] = record
        bisect.insort(self._order, (record.start, record.listing_id))
        self._dirty = True

    def remove(self, listing_id: str) -> None:
        record = self.records.pop(listing_id, None)
        if record is None:
            return
        index = bisect.bisect_left(self._order, (record.start, listing_id))
        if index < len(self._order) and self._order[index][1] == listing_id:
            del self._order[index]
        self._dirty = True

    def update_rectangle(
        self, listing_id: str, bandwidth_kbps: int, start: int, expiry: int
    ) -> None:
        """Shrink a listing after a partial sale mutated its asset."""
        record = self.records.get(listing_id)
        if record is None:
            return
        if record.start != start:
            index = bisect.bisect_left(self._order, (record.start, listing_id))
            if index < len(self._order) and self._order[index][1] == listing_id:
                del self._order[index]
            bisect.insort(self._order, (start, listing_id))
        self.records[listing_id] = dataclasses.replace(
            record, bandwidth_kbps=bandwidth_kbps, start=start, expiry=expiry
        )
        self._dirty = True

    # -- compiled arrays ----------------------------------------------------------

    def _compile(self, records: list[IndexedListing]) -> None:
        self._ids = [record.listing_id for record in records]
        self._starts = np.array([r.start for r in records], dtype=np.int64)
        self._expiries = np.array([r.expiry for r in records], dtype=np.int64)
        self._bandwidths = np.array([r.bandwidth_kbps for r in records], dtype=np.int64)
        self._min_bws = np.array([r.min_bandwidth_kbps for r in records], dtype=np.int64)
        self._granularities = np.array([r.granularity for r in records], dtype=np.int64)
        self._unit_prices = np.array(
            [r.price_micromist_per_unit for r in records], dtype=np.int64
        )

    def _compiled(self) -> None:
        if self._dirty:
            self._compile([self.records[listing_id] for _, listing_id in self._order])
            self._dirty = False

    # -- queries ------------------------------------------------------------------

    def _evaluate(self, start: int, expiry: int, bandwidth_kbps: int, exact_window: bool):
        """Vectorized cover test: (valid indices, aligned windows, prices)."""
        if not self.records or expiry <= start:
            return None
        self._compiled()
        # Only listings whose asset starts at or before the query can cover
        # it: O(log n) prefix selection, then one vectorized pricing pass.
        prefix = int(np.searchsorted(self._starts, start, side="right"))
        if prefix == 0:
            return None
        anchors = self._starts[:prefix]
        granules = self._granularities[:prefix]
        aligned_start = anchors + (start - anchors) // granules * granules
        over = (expiry - anchors) % granules
        aligned_expiry = np.where(over == 0, expiry, expiry + granules - over)
        remainder = self._bandwidths[:prefix] - bandwidth_kbps
        ok = (
            (aligned_expiry <= self._expiries[:prefix])
            & (remainder >= 0)
            & (bandwidth_kbps >= self._min_bws[:prefix])
            & ((remainder == 0) | (remainder >= self._min_bws[:prefix]))
        )
        if exact_window:
            ok &= (aligned_start == start) & (aligned_expiry == expiry)
        if not ok.any():
            return None
        units = bandwidth_kbps * (aligned_expiry - aligned_start)
        prices = -(-units * self._unit_prices[:prefix] // MICROMIST)
        return np.flatnonzero(ok), aligned_start, aligned_expiry, prices

    def _candidate(self, position: int, aligned_start, aligned_expiry, prices) -> Candidate:
        return Candidate(
            listing=self.records[self._ids[position]],
            price_mist=int(prices[position]),
            start=int(aligned_start[position]),
            expiry=int(aligned_expiry[position]),
        )

    def best(
        self, start: int, expiry: int, bandwidth_kbps: int, exact_window: bool = False
    ) -> Candidate | None:
        """Cheapest listing covering the rectangle; deterministic tie-break."""
        evaluated = self._evaluate(start, expiry, bandwidth_kbps, exact_window)
        if evaluated is None:
            return None
        valid, aligned_start, aligned_expiry, prices = evaluated
        best_price = prices[valid].min()
        tie = valid[prices[valid] == best_price]
        earliest = aligned_start[tie].min()
        tie = tie[aligned_start[tie] == earliest]
        position = min((int(i) for i in tie), key=lambda i: self._ids[i])
        return self._candidate(position, aligned_start, aligned_expiry, prices)

    def candidates(
        self, start: int, expiry: int, bandwidth_kbps: int, limit: int
    ) -> list[Candidate]:
        """Up to ``limit`` cheapest covers, same ordering as :meth:`best`."""
        evaluated = self._evaluate(start, expiry, bandwidth_kbps, False)
        if evaluated is None:
            return []
        valid, aligned_start, aligned_expiry, prices = evaluated
        order = sorted(
            (int(i) for i in valid),
            key=lambda i: (int(prices[i]), int(aligned_start[i]), self._ids[i]),
        )[:limit]
        return [
            self._candidate(position, aligned_start, aligned_expiry, prices)
            for position in order
        ]

    def granularities(self) -> set[int]:
        return {record.granularity for record in self.records.values()}


class MarketIndexer:
    """Incremental off-chain index of one marketplace's live listings.

    ``sync()`` applies every not-yet-seen ledger event (the event list is
    append-only, so the cursor is a plain position); queries answer from
    the in-memory structures without touching the object store.

    >>> from repro.ledger.chain import Ledger
    >>> from repro.ledger.transactions import Event
    >>> from repro.marketdata.query import ListingQuery
    >>> from repro.scion.addresses import IsdAs
    >>> ledger = Ledger()
    >>> ledger.events.append(Event("Listed", {
    ...     "marketplace": "m", "listing": "L1", "asset": "A1",
    ...     "seller": "as-7", "price_micromist_per_unit": 50,
    ...     "isd": 1, "asn": 7, "interface": 1, "is_ingress": True,
    ...     "bandwidth_kbps": 10_000, "start": 0, "expiry": 3600,
    ...     "granularity": 60, "min_bandwidth_kbps": 100}, "tx", 1))
    >>> indexer = MarketIndexer(ledger, "m")
    >>> found = indexer.best(ListingQuery(IsdAs(1, 7), 1, True, 60, 120, 2_000))
    >>> (found.listing.listing_id, found.price_mist)
    ('L1', 6)
    >>> indexer.best(ListingQuery(IsdAs(1, 7), 1, True, 60, 120, 20_000)) is None
    True
    """

    def __init__(self, ledger, marketplace: str) -> None:
        self.ledger = ledger
        self.marketplace = marketplace
        self._position = 0
        self._keys: dict[tuple[int, int, int, bool], _KeyIndex] = {}
        self._by_listing: dict[str, IndexedListing] = {}
        # Reclamation provenance per live listing: the ``Reclaimed`` event
        # precedes its listing's ``Listed``/``Relisted`` in the same
        # transaction, so the annotation is stashed by listing id and
        # pruned when the listing leaves the index.
        self._provenance: dict[str, dict] = {}
        self.reclaimed_seen = 0
        self.events_applied = 0
        registry = get_registry()
        self._telemetry = registry.enabled
        self._m_events = registry.counter(
            "indexer_events_total",
            "Ledger events scanned by sync(), split by whether they mutated "
            "the index.",
            ("result",),
        )
        self._m_query_seconds = registry.histogram(
            "indexer_query_seconds",
            "Latency of one index query (ledger sync excluded).",
            ("op",),
        )
        self._g_live = registry.gauge(
            "indexer_live_listings", "Live listings across all keys."
        ).labels()
        self._g_bucket = registry.gauge(
            "indexer_bucket_listings",
            "Live listings per (isd, asn, interface, direction) bucket.",
            ("isd", "asn", "interface", "direction"),
        )
        self._m_reclaimed = registry.counter(
            "indexer_reclaimed_listings_total",
            "Reclaimed provenance events applied (listings whose supply "
            "came back from a no-show reservation).",
        ).labels()

    # -- event consumption -------------------------------------------------------

    @property
    def position(self) -> int:
        """Cursor into the ledger's append-only event list.

        Every event before this position has been applied (or skipped as
        irrelevant); :meth:`sync` and :meth:`deliver` both advance it, so
        pull- and push-fed consumption compose without double-applying.
        """
        return self._position

    def deliver(self, event) -> bool:
        """Apply one event pushed by an :class:`~repro.marketdata.bus.EventBus`.

        The push-path twin of :meth:`sync`: the caller promises ``event``
        is the ledger event at this indexer's :attr:`position` (the bus
        guarantees in-order, gap-free delivery from each subscriber's own
        cursor), so the cursor advances exactly as a pull sync would.

        Returns:
            True iff the event mutated the index.
        """
        self._position += 1
        applied = self._apply(event)
        if applied:
            self.events_applied += 1
        if self._telemetry:
            self._record_events(1 if applied else 0, 1)
        return applied

    def sync(self) -> int:
        """Apply all new ledger events.

        Idempotent and incremental: the cursor is a position into the
        append-only event list, so calling it after every transaction or
        once per epoch gives the same index.

        Returns:
            How many events actually mutated the index (events of other
            marketplaces, non-market events, and unknown listings do not
            count).
        """
        events = self.ledger.events
        applied = 0
        scanned = 0
        while self._position < len(events):
            event = events[self._position]
            self._position += 1
            scanned += 1
            if self._apply(event):
                applied += 1
        self.events_applied += applied
        if self._telemetry and scanned:
            self._record_events(applied, scanned)
        return applied

    def _record_events(self, applied: int, scanned: int) -> None:
        self._m_events.labels("applied").inc(applied)
        self._m_events.labels("skipped").inc(scanned - applied)
        if applied:
            self._g_live.set(len(self._by_listing))
            for (isd, asn, interface, is_ingress), bucket in self._keys.items():
                self._g_bucket.labels(
                    isd, asn, interface, "ingress" if is_ingress else "egress"
                ).set(len(bucket.records))

    def _apply(self, event) -> bool:
        if event.event_type == "Reclaimed":
            payload = event.payload
            if payload.get("marketplace") != self.marketplace:
                return False
            self._provenance[payload["listing"]] = dict(
                payload.get("provenance") or {}
            )
            self.reclaimed_seen += 1
            if self._telemetry:
                self._m_reclaimed.inc()
            return True
        if event.event_type in _ADD_EVENTS:
            payload = event.payload
            if payload.get("marketplace") != self.marketplace:
                return False
            record = IndexedListing.from_event(payload)
            self._by_listing[record.listing_id] = record
            self._key_index(record.key).add(record)
            return True
        if event.event_type == "Delisted":
            payload = event.payload
            if payload.get("marketplace") != self.marketplace:
                return False
            # Sold/Delisted of a listing we never tracked (e.g. an indexer
            # attached mid-stream) mutates nothing and must not count as
            # applied, or events_applied stops being a progress signal.
            return self._drop(payload["listing"])
        if event.event_type == "Sold":
            payload = event.payload
            if payload.get("marketplace") != self.marketplace:
                return False
            listing_id = payload["listing"]
            if payload.get("listing_closed", True):
                return self._drop(listing_id)
            remaining = payload["remaining"]
            record = self._by_listing.get(listing_id)
            if record is None:
                return False
            self._key_index(record.key).update_rectangle(
                listing_id,
                remaining["bandwidth_kbps"],
                remaining["start"],
                remaining["expiry"],
            )
            self._by_listing[listing_id] = self._key_index(record.key).records[
                listing_id
            ]
            return True
        return False

    def _drop(self, listing_id: str) -> bool:
        record = self._by_listing.pop(listing_id, None)
        if record is None:
            return False
        self._provenance.pop(listing_id, None)
        self._key_index(record.key).remove(listing_id)
        return True

    def _key_index(self, key: tuple[int, int, int, bool]) -> _KeyIndex:
        found = self._keys.get(key)
        if found is None:
            found = _KeyIndex()
            self._keys[key] = found
        return found

    # -- checkpoints --------------------------------------------------------------

    def snapshot(self) -> dict:
        """Checkpoint the index: event cursor plus every live listing.

        The snapshot is canonical (listings sorted by id) and built from
        plain dicts, so two indexers that applied the same event prefix
        produce equal snapshots — the round-trip invariant the property
        suite asserts.  It does **not** sync first; call :meth:`sync` (or
        pump the bus) if the checkpoint should include the latest events.
        """
        return {
            "marketplace": self.marketplace,
            "position": self._position,
            "events_applied": self.events_applied,
            "reclaimed_seen": self.reclaimed_seen,
            "listings": [
                dataclasses.asdict(self._by_listing[listing_id])
                for listing_id in sorted(self._by_listing)
            ],
            "provenance": {
                listing_id: self._provenance[listing_id]
                for listing_id in sorted(self._provenance)
            },
        }

    def restore(self, snapshot: dict) -> None:
        """Replace all index state with a checkpoint's.

        After a restore the indexer behaves exactly as if it had replayed
        the ledger's first ``snapshot["position"]`` events from genesis:
        a following :meth:`sync` applies only the tail.

        Raises:
            ValueError: the snapshot belongs to a different marketplace.
        """
        if snapshot["marketplace"] != self.marketplace:
            raise ValueError(
                f"snapshot is for marketplace {snapshot['marketplace']!r}, "
                f"not {self.marketplace!r}"
            )
        self._position = int(snapshot["position"])
        self.events_applied = int(snapshot["events_applied"])
        self.reclaimed_seen = int(snapshot.get("reclaimed_seen", 0))
        self._keys = {}
        self._by_listing = {}
        self._provenance = {
            listing_id: dict(fields)
            for listing_id, fields in snapshot.get("provenance", {}).items()
        }
        for fields in snapshot["listings"]:
            record = IndexedListing(**fields)
            self._by_listing[record.listing_id] = record
            self._key_index(record.key).add(record)

    @classmethod
    def from_snapshot(cls, ledger, snapshot: dict) -> "MarketIndexer":
        """A new indexer bootstrapped from a checkpoint (no genesis replay)."""
        indexer = cls(ledger, snapshot["marketplace"])
        indexer.restore(snapshot)
        return indexer

    # -- queries ------------------------------------------------------------------

    @property
    def count(self) -> int:
        """Number of live listings across all keys."""
        return len(self._by_listing)

    def listing(self, listing_id: str) -> IndexedListing | None:
        """One live listing by id (``None`` once sold out or delisted)."""
        return self._by_listing.get(listing_id)

    def provenance(self, listing_id: str) -> dict | None:
        """Reclamation provenance of one live listing (``None`` = minted
        fresh, not reclaimed from a no-show reservation)."""
        found = self._provenance.get(listing_id)
        return dict(found) if found is not None else None

    def listings(self) -> list[IndexedListing]:
        """Every live listing across all keys (unspecified order)."""
        return list(self._by_listing.values())

    def best(self, query: ListingQuery, sync: bool = True) -> Candidate | None:
        """Cheapest cover for a zero-flex query (None when uncovered).

        This is the point-query primitive: ``flex_start`` and
        ``budget_mist`` are planner concerns, so queries carrying them are
        rejected rather than silently answered without slack or cap.

        Args:
            query: the rectangle wanted on one interface direction.
            sync: pull new ledger events first (pass ``False`` inside a
                batch that already synced).

        Returns:
            The cheapest :class:`~repro.marketdata.query.Candidate` (ties
            broken by aligned start, then listing id), or ``None``.

        Raises:
            ValueError: the query carries ``flex_start``/``budget_mist``.
        """
        if query.flex_start or query.budget_mist is not None:
            raise ValueError(
                "MarketIndexer.best answers zero-flex point queries; use "
                "PurchasePlanner for flex_start/budget_mist handling"
            )
        if sync:
            self.sync()
        if not self._telemetry:
            bucket = self._keys.get(query.key)
            if bucket is None:
                return None
            return bucket.best(
                query.start, query.expiry, query.bandwidth_kbps, query.exact_window
            )
        began = time.perf_counter()
        bucket = self._keys.get(query.key)
        found = (
            None
            if bucket is None
            else bucket.best(
                query.start, query.expiry, query.bandwidth_kbps, query.exact_window
            )
        )
        self._m_query_seconds.labels("best").observe(time.perf_counter() - began)
        return found

    def candidates(
        self, query: ListingQuery, limit: int, sync: bool = True
    ) -> list[Candidate]:
        """Up to ``limit`` cheapest covers for a zero-flex query.

        Same contract and ordering as :meth:`best`; an uncoverable query
        returns an empty list.

        Raises:
            ValueError: the query carries ``flex_start``/``budget_mist``.
        """
        if query.flex_start or query.budget_mist is not None:
            raise ValueError(
                "MarketIndexer.candidates answers zero-flex point queries; "
                "use PurchasePlanner for flex_start/budget_mist handling"
            )
        if sync:
            self.sync()
        if not self._telemetry:
            bucket = self._keys.get(query.key)
            if bucket is None:
                return []
            return bucket.candidates(
                query.start, query.expiry, query.bandwidth_kbps, limit
            )
        began = time.perf_counter()
        bucket = self._keys.get(query.key)
        found = (
            []
            if bucket is None
            else bucket.candidates(
                query.start, query.expiry, query.bandwidth_kbps, limit
            )
        )
        self._m_query_seconds.labels("candidates").observe(
            time.perf_counter() - began
        )
        return found

    def granularities(self, isd_as, interface: int, is_ingress: bool) -> set[int]:
        """Distinct time granularities live on one interface direction."""
        bucket = self._keys.get((isd_as.isd, isd_as.asn, interface, is_ingress))
        return bucket.granularities() if bucket is not None else set()

    def price_curve(
        self,
        isd_as,
        interface: int,
        is_ingress: bool,
        bandwidth_kbps: int,
        duration: int,
        times,
        sync: bool = True,
    ) -> np.ndarray:
        """Cheapest total MIST price of ``[t, t+duration)`` per start time.

        Uncoverable windows price at ``inf`` — plotting the curve shows the
        valleys a flexible buyer can slide into.
        """
        if sync:
            self.sync()
        bucket = self._keys.get((isd_as.isd, isd_as.asn, interface, is_ingress))
        prices = np.full(len(times), np.inf)
        if bucket is None:
            return prices
        for position, time in enumerate(times):
            found = bucket.best(int(time), int(time) + duration, bandwidth_kbps)
            if found is not None:
                prices[position] = found.price_mist
        return prices
