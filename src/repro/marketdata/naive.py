"""Reference discovery by full-ledger scan (the pre-indexer behaviour).

``naive_best_listing`` walks EVERY object in the ledger, loads each
listing's asset, and prices the covers — O(all ledger objects) per query.
It exists for two reasons:

* the **differential oracle**: property tests assert the incremental
  :class:`~repro.marketdata.indexer.MarketIndexer` answers exactly what a
  full rescan would, after any interleaving of list/buy/cancel/relist;
* the **benchmark baseline**: ``benchmarks/bench_indexer.py`` measures the
  indexer's speedup against this scan.

Tie-breaking matches the indexer bit for bit: minimum (price, aligned
start, listing id).
"""

from __future__ import annotations

from repro.contracts.market import LISTING_TYPE
from repro.marketdata.query import Candidate, IndexedListing, ListingQuery


def iter_listings(ledger, marketplace: str):
    """Yield an :class:`IndexedListing` for every live listing object."""
    for obj in ledger.objects.values():
        if obj.type_tag != LISTING_TYPE:
            continue
        if obj.payload["marketplace"] != marketplace:
            continue
        asset = ledger.objects.get(obj.payload["asset"])
        if asset is None:
            continue
        yield IndexedListing.from_ledger(obj.object_id, obj.payload, asset.payload)


def naive_best_listing(ledger, marketplace: str, query: ListingQuery) -> Candidate | None:
    """Cheapest cover for ``query`` by scanning the whole object store."""
    best: Candidate | None = None
    for record in iter_listings(ledger, marketplace):
        if record.key != query.key:
            continue
        aligned = record.align(query.start, query.expiry)
        if aligned is None:
            continue
        buy_start, buy_expiry = aligned
        if query.exact_window and (buy_start, buy_expiry) != (query.start, query.expiry):
            continue
        if not record.sellable(query.bandwidth_kbps):
            continue
        price = record.price_for(query.bandwidth_kbps, buy_start, buy_expiry)
        candidate = Candidate(
            listing=record, price_mist=price, start=buy_start, expiry=buy_expiry
        )
        if best is None or (
            (candidate.price_mist, candidate.start, candidate.listing.listing_id)
            < (best.price_mist, best.start, best.listing.listing_id)
        ):
            best = candidate
    return best
