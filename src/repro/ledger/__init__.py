"""Ledger substrate: a Sui-like object-centric blockchain simulation.

Owned/shared objects with versions, atomic programmable transactions with
rollback, gas accounting (computation buckets + storage bytes + 99 %
rebates), a validator-committee latency model distinguishing the fast path
from consensus, accounts, and coins.
"""

from repro.ledger.accounts import (
    COIN_TYPE,
    MIST_PER_SUI,
    Account,
    address_of,
    mist_to_sui,
    sui_to_mist,
)
from repro.ledger.chain import Ledger
from repro.ledger.committee import Committee
from repro.ledger.executor import LedgerExecutor, SubmittedTransaction
from repro.ledger.gas import (
    COMPUTATION_PRICE_SUI,
    STORAGE_PRICE_SUI,
    SUI_PRICE_USD,
    GasMeter,
    GasSummary,
    computation_bucket,
)
from repro.ledger.objects import LedgerObject, Ownership, canonical_size
from repro.ledger.transactions import (
    Command,
    Event,
    Result,
    Transaction,
    TransactionEffects,
)

__all__ = [
    "COIN_TYPE",
    "MIST_PER_SUI",
    "Account",
    "address_of",
    "mist_to_sui",
    "sui_to_mist",
    "Ledger",
    "Committee",
    "LedgerExecutor",
    "SubmittedTransaction",
    "COMPUTATION_PRICE_SUI",
    "STORAGE_PRICE_SUI",
    "SUI_PRICE_USD",
    "GasMeter",
    "GasSummary",
    "computation_bucket",
    "LedgerObject",
    "Ownership",
    "canonical_size",
    "Command",
    "Event",
    "Result",
    "Transaction",
    "TransactionEffects",
]
