"""Gas accounting: computation buckets, storage bytes, storage rebates.

Transaction cost has three components (§6.2):

* **computation cost** — raw computation units are rounded *up* into
  bucket sizes (1000 · 2^k units) and charged at the reference gas price
  of 7.5e-7 SUI per unit.  The paper's Table 1 shows exactly this
  bucketing: 1-4 hops land in the 1000-unit bucket (0.00075 SUI), 8 hops
  in 2000 (0.0015), 16 hops in 4000 (0.0030);
* **storage cost** — every created object *and every new version of a
  mutated object* is charged 7.6e-6 SUI per serialized byte;
* **storage rebate** — deleting (or superseding) an object refunds 99 % of
  the storage originally paid for it; the 1 % non-refundable part stays
  with the network.

Totals can be negative: a transaction that mostly deletes state earns more
rebate than it spends (Table 2: ``fuse_time`` nets -0.0013 SUI).
"""

from __future__ import annotations

from dataclasses import dataclass

COMPUTATION_PRICE_SUI = 7.5e-7  # SUI per computation unit (reference gas price)
STORAGE_PRICE_SUI = 7.6e-6  # SUI per byte
REBATE_RATE = 0.99
SUI_PRICE_USD = 1.221  # as of 2024-04-18 14:09 UTC (Table 1 footnote)

MIN_BUCKET = 1_000
MAX_BUCKET = 5_000_000


def computation_bucket(raw_units: int) -> int:
    """Round raw computation units up to the next 1000·2^k bucket."""
    if raw_units < 0:
        raise ValueError("computation units cannot be negative")
    bucket = MIN_BUCKET
    while bucket < raw_units:
        bucket *= 2
        if bucket >= MAX_BUCKET:
            return MAX_BUCKET
    return bucket


@dataclass(frozen=True)
class GasSummary:
    """The three cost components of one transaction, in SUI."""

    computation_units: int  # bucketed
    storage_bytes: int  # bytes charged (created + new versions)
    rebate_bytes: int  # bytes refunded (deleted + superseded versions)

    @property
    def computation_cost(self) -> float:
        return self.computation_units * COMPUTATION_PRICE_SUI

    @property
    def storage_cost(self) -> float:
        return self.storage_bytes * STORAGE_PRICE_SUI

    @property
    def storage_rebate(self) -> float:
        return self.rebate_bytes * STORAGE_PRICE_SUI * REBATE_RATE

    @property
    def total_sui(self) -> float:
        """computation + storage - rebate (may be negative)."""
        return self.computation_cost + self.storage_cost - self.storage_rebate

    @property
    def total_usd(self) -> float:
        return self.total_sui * SUI_PRICE_USD

    def combined(self, other: "GasSummary") -> "GasSummary":
        """Aggregate two summaries (for multi-transaction workflows)."""
        return GasSummary(
            computation_units=self.computation_units + other.computation_units,
            storage_bytes=self.storage_bytes + other.storage_bytes,
            rebate_bytes=self.rebate_bytes + other.rebate_bytes,
        )


class GasMeter:
    """Accumulates raw computation units and storage deltas during execution.

    Contracts charge through the :class:`CallContext`; the meter converts
    the raw tally into a :class:`GasSummary` when the transaction commits.
    """

    # Raw unit charges per executor action; calibrated so that individual
    # contract calls land in the minimum bucket while multi-hop atomic
    # buy-and-redeems climb through the buckets like the paper's Table 1:
    # <=4 hops in the 1000 bucket, 8 hops in 2000, 16 hops in 4000.
    CALL_UNITS = 12
    CREATE_UNITS = 8
    MUTATE_UNITS = 5
    DELETE_UNITS = 5
    TRANSFER_UNITS = 3
    PER_KILOBYTE_UNITS = 1

    def __init__(self) -> None:
        self.raw_units = 0
        self.storage_bytes = 0
        self.rebate_bytes = 0

    def charge_call(self) -> None:
        self.raw_units += self.CALL_UNITS

    def charge_create(self, size: int) -> None:
        self.raw_units += self.CREATE_UNITS + self.PER_KILOBYTE_UNITS * (size // 1024)
        self.storage_bytes += size

    def charge_mutate(self, old_size: int, new_size: int) -> None:
        """A mutation supersedes the old version: charge new, rebate old."""
        self.raw_units += self.MUTATE_UNITS
        self.storage_bytes += new_size
        self.rebate_bytes += old_size

    def charge_delete(self, size: int) -> None:
        self.raw_units += self.DELETE_UNITS
        self.rebate_bytes += size

    def charge_transfer(self) -> None:
        self.raw_units += self.TRANSFER_UNITS

    def summary(self) -> GasSummary:
        return GasSummary(
            computation_units=computation_bucket(self.raw_units),
            storage_bytes=self.storage_bytes,
            rebate_bytes=self.rebate_bytes,
        )
