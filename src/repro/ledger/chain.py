"""The ledger: authoritative object store, transaction execution, events.

Executes :class:`Transaction` batches atomically against the object store
through the contract runtime, accounts gas, appends events to the public
stream, and advances the checkpoint counter.  Latency is *not* modelled
here — :mod:`repro.ledger.executor` wraps the ledger with the validator-
committee timing model.
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass, field

from repro.ledger.runtime import CallContext, Contract, ContractAbort, ExecutionView
from repro.ledger.gas import GasMeter, GasSummary, computation_bucket
from repro.ledger.objects import LedgerObject, Ownership
from repro.ledger.transactions import (
    Event,
    Transaction,
    TransactionEffects,
    resolve_args,
)


@dataclass
class Ledger:
    """In-memory ledger state with registered contracts."""

    objects: dict[str, LedgerObject] = field(default_factory=dict)
    contracts: dict[str, Contract] = field(default_factory=dict)
    events: list[Event] = field(default_factory=list)
    checkpoint: int = 0
    now: float = 0.0
    _tx_counter: itertools.count = field(default_factory=itertools.count)

    def register_contract(self, contract: Contract) -> None:
        if contract.name in self.contracts:
            raise ValueError(f"contract {contract.name!r} already registered")
        self.contracts[contract.name] = contract

    # -- queries ---------------------------------------------------------------

    def get_object(self, object_id: str) -> LedgerObject:
        try:
            return self.objects[object_id]
        except KeyError:
            raise KeyError(f"unknown object {object_id[:8]}...") from None

    def objects_owned_by(self, owner: str, type_tag: str | None = None) -> list[LedgerObject]:
        return [
            obj
            for obj in self.objects.values()
            if obj.ownership is Ownership.OWNED
            and obj.owner == owner
            and (type_tag is None or obj.type_tag == type_tag)
        ]

    def events_since(self, checkpoint: int, event_type: str | None = None) -> list[Event]:
        return [
            event
            for event in self.events
            if event.checkpoint > checkpoint
            and (event_type is None or event.event_type == event_type)
        ]

    # -- execution ---------------------------------------------------------------

    def execute(self, transaction: Transaction) -> TransactionEffects:
        """Run all commands atomically; commit on success, discard on abort."""
        tx_digest = self._digest(transaction)
        view = ExecutionView(base=self.objects)
        gas = GasMeter()
        ctx = CallContext(view, transaction.sender, gas, tx_digest, self.now)
        returns: list[dict] = []
        touches_shared = False
        try:
            for command in transaction.commands:
                contract = self.contracts.get(command.contract)
                if contract is None:
                    raise ContractAbort(f"unknown contract {command.contract!r}")
                args = resolve_args(command.args, returns)
                shared_before = self._counts_shared(view, args)
                returns.append(contract.dispatch(command.function, ctx, args))
                touches_shared = touches_shared or shared_before
        except (ContractAbort, ValueError) as abort:
            # Aborted transactions still pay computation (but no storage
            # changes happen, so there is nothing to charge or rebate).
            summary = GasSummary(
                computation_units=computation_bucket(gas.raw_units),
                storage_bytes=0,
                rebate_bytes=0,
            )
            self.checkpoint += 1
            return TransactionEffects(
                tx_digest=tx_digest,
                status="abort",
                error=str(abort),
                gas=summary,
                created=[],
                mutated=[],
                deleted=[],
                events=[],
                returns=returns,
                touches_shared=touches_shared,
            )

        # Commit.
        self.checkpoint += 1
        mutated = [
            object_id
            for object_id, staged in view.staged.items()
            if object_id not in view.created_ids
            and object_id in self.objects
            and staged.version > self.objects[object_id].version
        ]
        for object_id, staged in view.staged.items():
            self.objects[object_id] = staged
        for object_id in view.deleted_ids:
            self.objects.pop(object_id, None)
        events = [
            Event(event_type, payload, tx_digest, self.checkpoint)
            for event_type, payload in ctx.events
        ]
        self.events.extend(events)
        return TransactionEffects(
            tx_digest=tx_digest,
            status="success",
            error=None,
            gas=gas.summary(),
            created=list(view.created_ids),
            mutated=mutated,
            deleted=list(view.deleted_ids),
            events=events,
            returns=returns,
            touches_shared=touches_shared,
        )

    # -- helpers ---------------------------------------------------------------

    def _digest(self, transaction: Transaction) -> str:
        index = next(self._tx_counter)
        material = f"{index}:{transaction.sender}:{len(transaction.commands)}"
        return hashlib.blake2s(material.encode(), digest_size=32).hexdigest()

    def _counts_shared(self, view: ExecutionView, args: dict) -> bool:
        """Shared-object detection: any argument naming a shared object.

        Reads the store without materializing anything into the view so a
        mere inspection does not count as an object touch.
        """
        for value in args.values():
            if not isinstance(value, str):
                continue
            staged = view.staged.get(value) or view.base.get(value)
            if staged is not None and staged.ownership is Ownership.SHARED:
                return True
        return False
