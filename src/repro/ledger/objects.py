"""Object model of the ledger: versioned, owned or shared objects.

The control plane runs on an object-centric blockchain in the style of Sui:
every piece of state is an *object* with a globally unique ID, a version
(bumped on every mutation), and an owner.  Ownership determines both access
control (only the owner can use an owned object in a transaction) and the
execution path (transactions touching only owned objects take the low-
latency fast path; shared objects require consensus ordering — §6.1).

Storage gas is charged per byte of the serialized object, so the module
also defines the canonical serialization-size model used by
:mod:`repro.ledger.gas`.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any

OBJECT_ID_BYTES = 32
# Fixed per-object envelope: ID (32) + version (8) + owner (32) + type tag
# digest (32) + status byte.  Mirrors Sui's object metadata overhead.
OBJECT_OVERHEAD_BYTES = 105


class Ownership(enum.Enum):
    OWNED = "owned"  # owned by an address; usable only by that address
    SHARED = "shared"  # ordered through consensus; usable by anyone
    IMMUTABLE = "immutable"  # frozen; read-only for everyone


def fresh_object_id(entropy: bytes) -> str:
    """Derive a 32-byte object ID (hex) from transaction-scoped entropy."""
    return hashlib.blake2s(entropy, digest_size=OBJECT_ID_BYTES).hexdigest()


def canonical_size(value: Any) -> int:
    """Byte size of a value under the canonical (BCS-like) serialization.

    Integers are u64 (8 bytes), booleans 1, floats 8, strings and bytes are
    length-prefixed (ULEB128 approximated as 1 byte for the sizes seen
    here), sequences and maps are length-prefixed concatenations.  ``None``
    is an empty option (1 byte).
    """
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return 1 + len(value.encode())
    if isinstance(value, (bytes, bytearray)):
        return 1 + len(value)
    if isinstance(value, (list, tuple)):
        return 1 + sum(canonical_size(item) for item in value)
    if isinstance(value, dict):
        return 1 + sum(
            canonical_size(key) + canonical_size(val) for key, val in value.items()
        )
    raise TypeError(f"cannot serialize {type(value).__name__} on the ledger")


@dataclass
class LedgerObject:
    """One unit of on-chain state."""

    object_id: str
    type_tag: str  # e.g. "asset::BandwidthAsset"
    ownership: Ownership
    owner: str | None  # address when OWNED, None otherwise
    payload: dict = field(default_factory=dict)
    version: int = 1

    def serialized_size(self) -> int:
        """Bytes this object occupies on chain (drives storage gas)."""
        return OBJECT_OVERHEAD_BYTES + canonical_size(self.payload)

    def copy(self) -> "LedgerObject":
        return LedgerObject(
            object_id=self.object_id,
            type_tag=self.type_tag,
            ownership=self.ownership,
            owner=self.owner,
            payload=_deep_copy(self.payload),
            version=self.version,
        )

    def __repr__(self) -> str:
        return (
            f"LedgerObject({self.type_tag}, id={self.object_id[:8]}..., "
            f"v{self.version}, {self.ownership.value}"
            + (f" by {self.owner[:8]}..." if self.owner else "")
            + ")"
        )


def _deep_copy(value: Any) -> Any:
    if isinstance(value, dict):
        return {key: _deep_copy(val) for key, val in value.items()}
    if isinstance(value, list):
        return [_deep_copy(item) for item in value]
    return value
