"""Executor: ledger execution combined with the committee latency model.

Wraps a :class:`Ledger` and a :class:`Committee` and stamps every executed
transaction with a latency drawn from the appropriate path:

* transactions that only touch owned objects -> **fast path** (Byzantine
  consistent broadcast, §3.3/§6.1);
* transactions touching any shared object (the marketplace) -> **consensus**.

The executor also advances a simulation clock so reservation start times
and ledger timestamps stay consistent across a scenario.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clock import Clock, SimClock
from repro.ledger.chain import Ledger
from repro.ledger.committee import Committee
from repro.ledger.transactions import Transaction, TransactionEffects
from repro.telemetry import get_registry
from repro.telemetry.tracing import current_trace


@dataclass
class SubmittedTransaction:
    """Effects plus the latency the submitter observed."""

    effects: TransactionEffects
    latency: float
    used_fast_path: bool


class LedgerExecutor:
    """Submission endpoint for clients (hosts and AS services)."""

    def __init__(
        self,
        ledger: Ledger,
        committee: Committee | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.ledger = ledger
        self.committee = committee if committee is not None else Committee()
        self.clock = clock if clock is not None else SimClock()
        registry = get_registry()
        self._telemetry = registry.enabled
        self._m_tx_latency = registry.histogram(
            "ledger_tx_latency_seconds",
            "Modeled submit latency by path and execution status.",
            ("path", "status"),
        )
        self._m_calls = registry.counter(
            "ledger_contract_calls_total",
            "Commands executed, by contract entry point and status.",
            ("contract", "function", "status"),
        )
        self._m_gas_computation = registry.counter(
            "ledger_gas_computation_units_total",
            "Gas computation units charged across all transactions.",
        ).labels()
        self._m_gas_storage = registry.counter(
            "ledger_gas_storage_bytes_total",
            "Gas storage bytes charged across all transactions.",
        ).labels()

    def submit(self, transaction: Transaction) -> SubmittedTransaction:
        """Execute a transaction and report its observed latency.

        The latency model is applied regardless of success — an aborted
        transaction still travelled to the committee.
        """
        self.ledger.now = self.clock.now()
        effects = self.ledger.execute(transaction)
        if effects.touches_shared:
            latency = self.committee.consensus_latency()
            fast = False
        else:
            latency = self.committee.fast_path_latency()
            fast = True
        if isinstance(self.clock, SimClock):
            self.clock.advance(latency)
        if self._telemetry:
            path = "fast" if fast else "consensus"
            self._m_tx_latency.labels(path, effects.status).observe(latency)
            for command in transaction.commands:
                self._m_calls.labels(
                    command.contract, command.function, effects.status
                ).inc()
            gas = effects.gas
            if gas is not None:
                self._m_gas_computation.inc(gas.computation_units)
                self._m_gas_storage.inc(gas.storage_bytes)
        trace = current_trace()
        if trace is not None:
            trace.event(
                "ledger.submit",
                tx_digest=effects.tx_digest,
                status=effects.status,
                path="fast" if fast else "consensus",
                latency=latency,
                commands=[
                    f"{command.contract}.{command.function}"
                    for command in transaction.commands
                ],
            )
        return SubmittedTransaction(effects=effects, latency=latency, used_fast_path=fast)
