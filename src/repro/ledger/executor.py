"""Executor: ledger execution combined with the committee latency model.

Wraps a :class:`Ledger` and a :class:`Committee` and stamps every executed
transaction with a latency drawn from the appropriate path:

* transactions that only touch owned objects -> **fast path** (Byzantine
  consistent broadcast, §3.3/§6.1);
* transactions touching any shared object (the marketplace) -> **consensus**.

The executor also advances a simulation clock so reservation start times
and ledger timestamps stay consistent across a scenario.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clock import Clock, SimClock
from repro.ledger.chain import Ledger
from repro.ledger.committee import Committee
from repro.ledger.transactions import Transaction, TransactionEffects


@dataclass
class SubmittedTransaction:
    """Effects plus the latency the submitter observed."""

    effects: TransactionEffects
    latency: float
    used_fast_path: bool


class LedgerExecutor:
    """Submission endpoint for clients (hosts and AS services)."""

    def __init__(
        self,
        ledger: Ledger,
        committee: Committee | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.ledger = ledger
        self.committee = committee if committee is not None else Committee()
        self.clock = clock if clock is not None else SimClock()

    def submit(self, transaction: Transaction) -> SubmittedTransaction:
        """Execute a transaction and report its observed latency.

        The latency model is applied regardless of success — an aborted
        transaction still travelled to the committee.
        """
        self.ledger.now = self.clock.now()
        effects = self.ledger.execute(transaction)
        if effects.touches_shared:
            latency = self.committee.consensus_latency()
            fast = False
        else:
            latency = self.committee.fast_path_latency()
            fast = True
        if isinstance(self.clock, SimClock):
            self.clock.advance(latency)
        return SubmittedTransaction(effects=effects, latency=latency, used_fast_path=fast)
