"""Validator-committee latency model (substitutes the Sui testnet of §6.1).

The paper measures end-to-end control-plane latency against the globally
replicated Sui testnet.  Offline, we generate latencies mechanistically
from a simulated committee of validators spread over geographic regions:

* **fast path** (owned-object transactions, Byzantine consistent
  broadcast): the client sends the transaction to all validators and waits
  for signatures from a 2f+1 stake quorum — one round trip to the
  quorum-th fastest validator — then broadcasts the resulting certificate
  and waits for 2f+1 execution acknowledgements: a second quorum round
  trip.
* **consensus path** (transactions touching shared objects, e.g. the
  marketplace): the certificate must additionally be sequenced: it waits
  for inclusion in a leader proposal (uniform wait up to the commit
  interval) plus a fixed number of DAG commit rounds, each a quorum round
  trip among validators, plus checkpoint execution.

Round-trip times are sampled per validator from region-dependent lognormal
distributions, so quorum latencies emerge from order statistics rather than
from a hand-drawn curve.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

# (region, one-way ms mean) — client assumed in Europe, like the testbed.
_REGIONS = [
    ("eu-west", 15.0),
    ("eu-central", 25.0),
    ("us-east", 55.0),
    ("us-west", 85.0),
    ("asia-east", 120.0),
    ("asia-south", 140.0),
]


@dataclass(frozen=True)
class Validator:
    name: str
    region: str
    one_way_ms: float  # mean client -> validator one-way delay


class Committee:
    """A stake-equal validator committee with a quorum latency model."""

    def __init__(
        self,
        num_validators: int = 100,
        seed: int = 42,
        commit_interval: float = 0.9,
        commit_rounds: int = 3,
        execution_overhead: float = 0.35,
    ) -> None:
        if num_validators < 4:
            raise ValueError("BFT needs at least 4 validators")
        self.rng = random.Random(seed)
        self.commit_interval = commit_interval
        self.commit_rounds = commit_rounds
        self.execution_overhead = execution_overhead
        self.validators = [
            Validator(
                name=f"v{i}",
                region=_REGIONS[i % len(_REGIONS)][0],
                one_way_ms=_REGIONS[i % len(_REGIONS)][1],
            )
            for i in range(num_validators)
        ]
        self.quorum = 2 * (num_validators - 1) // 3 + 1  # 2f+1

    # -- latency sampling -------------------------------------------------------

    def _sample_rtts(self) -> list[float]:
        """Client->validator round-trip seconds, one sample per validator."""
        rtts = []
        for validator in self.validators:
            mean_rtt = 2 * validator.one_way_ms / 1000.0
            jitter = self.rng.lognormvariate(0.0, 0.25)
            rtts.append(mean_rtt * jitter + 0.002)
        return rtts

    def _quorum_rtt(self) -> float:
        """Round-trip time to the 2f+1-th fastest validator."""
        rtts = sorted(self._sample_rtts())
        return rtts[self.quorum - 1]

    def fast_path_latency(self) -> float:
        """Owned-object certificate: sign quorum + execute quorum."""
        sign = self._quorum_rtt()
        execute = self._quorum_rtt()
        processing = self.rng.uniform(0.01, 0.05)
        return sign + execute + processing

    def consensus_latency(self) -> float:
        """Shared-object transaction: fast-path cert + sequencing + commit."""
        certify = self._quorum_rtt()
        inclusion_wait = self.rng.uniform(0.0, self.commit_interval)
        rounds = sum(
            self._validator_round() for _ in range(self.commit_rounds)
        )
        execution = self.rng.uniform(0.5, 1.0) * self.execution_overhead
        return certify + inclusion_wait + rounds + execution

    def _validator_round(self) -> float:
        """One DAG round: quorum round trip among the validators themselves."""
        # Inter-validator RTTs resemble client RTTs (global spread).
        rtts = sorted(self._sample_rtts())
        return rtts[self.quorum - 1]
