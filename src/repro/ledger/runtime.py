"""Contract runtime: execution views, call contexts, aborts.

(Ledger-side module; :mod:`repro.contracts.framework` re-exports it.)

Contracts execute against a *copy-on-write view* of the ledger: objects are
copied into the view on first touch, creations and deletions are staged, and
nothing reaches the authoritative store unless every command of the
transaction succeeds.  A :class:`ContractAbort` raised anywhere rolls the
whole transaction back — the mechanism behind atomic path purchases.

Access control mirrors the object model: an OWNED object can only be taken
by its owner (the transaction sender), or by contract code operating on a
container object that owns it (e.g. listed assets owned by the marketplace).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.ledger.gas import GasMeter
from repro.ledger.objects import LedgerObject, Ownership, fresh_object_id


class ContractAbort(Exception):
    """Raised by contract code: aborts and rolls back the transaction."""


@dataclass
class ExecutionView:
    """Copy-on-write overlay over the authoritative object store."""

    base: dict[str, LedgerObject]
    staged: dict[str, LedgerObject] = field(default_factory=dict)
    created_ids: list[str] = field(default_factory=list)
    deleted_ids: list[str] = field(default_factory=list)
    original_sizes: dict[str, int] = field(default_factory=dict)

    def get(self, object_id: str) -> LedgerObject:
        if object_id in self.deleted_ids:
            raise ContractAbort(f"object {object_id[:8]}... was deleted")
        if object_id not in self.staged:
            base_object = self.base.get(object_id)
            if base_object is None:
                raise ContractAbort(f"object {object_id[:8]}... does not exist")
            self.staged[object_id] = base_object.copy()
            self.original_sizes[object_id] = base_object.serialized_size()
        return self.staged[object_id]

    def exists(self, object_id: str) -> bool:
        if object_id in self.deleted_ids:
            return False
        return object_id in self.staged or object_id in self.base

    def create(self, ledger_object: LedgerObject) -> None:
        self.staged[ledger_object.object_id] = ledger_object
        self.created_ids.append(ledger_object.object_id)

    def delete(self, object_id: str) -> None:
        self.get(object_id)  # materialize + existence check
        if object_id in self.created_ids:
            # Created and deleted within the same transaction: no trace.
            self.created_ids.remove(object_id)
            del self.staged[object_id]
            return
        self.deleted_ids.append(object_id)
        self.staged.pop(object_id, None)


class CallContext:
    """What contract code sees: object ops, gas charging, events, identity."""

    def __init__(
        self,
        view: ExecutionView,
        sender: str,
        gas: GasMeter,
        tx_digest: str,
        now: float,
    ) -> None:
        self.view = view
        self.sender = sender
        self.gas = gas
        self.tx_digest = tx_digest
        self.now = now
        self.events: list[tuple[str, dict]] = []
        self._fresh_counter = 0
        self._mutated: set[str] = set()

    # -- object operations ---------------------------------------------------

    def create_object(
        self,
        type_tag: str,
        payload: dict,
        ownership: Ownership = Ownership.OWNED,
        owner: str | None = None,
    ) -> LedgerObject:
        if ownership is Ownership.OWNED and owner is None:
            owner = self.sender
        self._fresh_counter += 1
        object_id = fresh_object_id(
            f"{self.tx_digest}:{self._fresh_counter}".encode()
        )
        ledger_object = LedgerObject(
            object_id=object_id,
            type_tag=type_tag,
            ownership=ownership,
            owner=owner if ownership is Ownership.OWNED else None,
        )
        ledger_object.payload = payload
        self.view.create(ledger_object)
        self.gas.charge_create(ledger_object.serialized_size())
        return ledger_object

    def take_owned(
        self, object_id: str, type_tag: str | None = None, owner: str | None = None
    ) -> LedgerObject:
        """Fetch an OWNED object, enforcing ownership (sender by default)."""
        ledger_object = self.view.get(object_id)
        if ledger_object.ownership is not Ownership.OWNED:
            raise ContractAbort(f"object {object_id[:8]}... is not owned")
        expected_owner = self.sender if owner is None else owner
        if ledger_object.owner != expected_owner:
            raise ContractAbort(
                f"object {object_id[:8]}... is not owned by {expected_owner[:8]}..."
            )
        if type_tag is not None and ledger_object.type_tag != type_tag:
            raise ContractAbort(
                f"expected {type_tag}, found {ledger_object.type_tag}"
            )
        return ledger_object

    def take_shared(self, object_id: str, type_tag: str | None = None) -> LedgerObject:
        ledger_object = self.view.get(object_id)
        if ledger_object.ownership is not Ownership.SHARED:
            raise ContractAbort(f"object {object_id[:8]}... is not shared")
        if type_tag is not None and ledger_object.type_tag != type_tag:
            raise ContractAbort(
                f"expected {type_tag}, found {ledger_object.type_tag}"
            )
        return ledger_object

    def mutate(self, ledger_object: LedgerObject) -> None:
        """Record a new version of an object (storage: charge new, rebate old)."""
        if ledger_object.object_id in self.view.created_ids:
            return  # created in this transaction; storage charged at commit size
        if ledger_object.object_id in self._mutated:
            return  # one version bump per transaction
        self._mutated.add(ledger_object.object_id)
        old_size = self.view.original_sizes.get(
            ledger_object.object_id, ledger_object.serialized_size()
        )
        ledger_object.version += 1
        self.gas.charge_mutate(old_size, ledger_object.serialized_size())

    def transfer(self, ledger_object: LedgerObject, new_owner: str) -> None:
        if ledger_object.ownership is not Ownership.OWNED:
            raise ContractAbort("only owned objects can be transferred")
        ledger_object.owner = new_owner
        self.gas.charge_transfer()
        self.mutate(ledger_object)

    def delete_object(self, ledger_object: LedgerObject) -> None:
        size = self.view.original_sizes.get(
            ledger_object.object_id, ledger_object.serialized_size()
        )
        self.view.delete(ledger_object.object_id)
        self.gas.charge_delete(size)

    # -- events ---------------------------------------------------------------

    def emit(self, event_type: str, payload: dict) -> None:
        self.events.append((event_type, payload))

    # -- assertions -------------------------------------------------------------

    def require(self, condition: bool, message: str) -> None:
        if not condition:
            raise ContractAbort(message)


class Contract:
    """Base class for on-chain contracts.

    Public methods taking ``(ctx, **kwargs)`` are callable from
    transactions; they must return a dict of named results (possibly empty)
    that later commands can reference.
    """

    name: str = "contract"

    def dispatch(self, function: str, ctx: CallContext, args: dict[str, Any]) -> dict:
        if function.startswith("_"):
            raise ContractAbort(f"function {function!r} is private")
        handler = getattr(self, function, None)
        if handler is None or not callable(handler):
            raise ContractAbort(f"{self.name} has no function {function!r}")
        ctx.gas.charge_call()
        result = handler(ctx, **args)
        return result if result is not None else {}
