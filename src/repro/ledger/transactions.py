"""Transactions: atomic, programmable sequences of contract calls.

A transaction bundles one or more *commands* (contract calls) that execute
atomically: state changes apply only if every command succeeds (§3.3,
"Atomic End-to-End Guarantees").  Later commands can reference values
returned by earlier ones through :class:`Result` placeholders — this is how
a single transaction buys the ingress asset, buys the egress asset, and
redeems the pair for every hop of a path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.ledger.gas import GasSummary


@dataclass(frozen=True)
class Result:
    """Placeholder for a value returned by an earlier command.

    ``Result(2, "asset")`` resolves to ``returns[2]["asset"]`` at execution
    time.
    """

    command_index: int
    key: str


@dataclass
class Command:
    """One contract call: ``contract.function(**args)``."""

    contract: str
    function: str
    args: dict[str, Any] = field(default_factory=dict)


@dataclass
class Transaction:
    """An atomic batch of commands signed by ``sender``."""

    sender: str
    commands: list[Command]

    def __post_init__(self) -> None:
        if not self.commands:
            raise ValueError("a transaction needs at least one command")


@dataclass(frozen=True)
class Event:
    """A contract-emitted event, observable by off-chain clients."""

    event_type: str
    payload: dict
    tx_digest: str
    checkpoint: int


@dataclass
class TransactionEffects:
    """The outcome of executing one transaction."""

    tx_digest: str
    status: str  # "success" | "abort"
    error: str | None
    gas: GasSummary
    created: list[str]
    mutated: list[str]
    deleted: list[str]
    events: list[Event]
    returns: list[dict]
    touches_shared: bool

    @property
    def ok(self) -> bool:
        return self.status == "success"


def resolve_args(args: dict[str, Any], returns: list[dict]) -> dict[str, Any]:
    """Replace :class:`Result` placeholders with concrete earlier returns."""

    def resolve(value: Any) -> Any:
        if isinstance(value, Result):
            if value.command_index >= len(returns):
                raise ValueError(
                    f"Result references command {value.command_index}, "
                    f"but only {len(returns)} executed"
                )
            try:
                return returns[value.command_index][value.key]
            except KeyError:
                raise ValueError(
                    f"command {value.command_index} returned no {value.key!r}"
                ) from None
        if isinstance(value, list):
            return [resolve(item) for item in value]
        if isinstance(value, dict):
            return {key: resolve(val) for key, val in value.items()}
        return value

    return {key: resolve(value) for key, value in args.items()}
