"""Accounts and coins: addresses, keypairs, SUI-denominated payments.

Addresses are hashes of Schnorr public keys.  Payments on the marketplace
flow through ``Coin`` objects (owned objects with an integer MIST balance,
1 SUI = 1e9 MIST), so buying an asset has the same object-churn profile as
on the real chain.  Gas, by contrast, is accounted out-of-band by the gas
meter (modelling the gas coin would only add a constant mutation per
transaction; documented simplification).
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass

from repro.crypto.sealing import KeyPair
from repro.crypto.signatures import SigningKey

MIST_PER_SUI = 1_000_000_000
COIN_TYPE = "coin::Coin"


def address_of(public_key: int) -> str:
    """Derive a 32-byte address (hex) from a Schnorr public key."""
    return hashlib.blake2s(public_key.to_bytes(256, "big"), digest_size=32).hexdigest()


@dataclass
class Account:
    """A ledger participant: signing key, encryption keypair, address."""

    signing_key: SigningKey
    encryption_key: KeyPair
    name: str = ""

    @staticmethod
    def generate(rng: random.Random, name: str = "") -> "Account":
        return Account(
            signing_key=SigningKey.generate(rng),
            encryption_key=KeyPair.generate(rng),
            name=name,
        )

    @property
    def address(self) -> str:
        return address_of(self.signing_key.public)


def sui_to_mist(sui: float) -> int:
    return int(round(sui * MIST_PER_SUI))


def mist_to_sui(mist: int) -> float:
    return mist / MIST_PER_SUI
