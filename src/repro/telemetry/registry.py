"""Process-wide metrics registry: counters, gauges, fixed-bucket histograms.

Design goals (ISSUE 6 tentpole):

* **lock-cheap** — instruments are plain-attribute updates; the registry is
  only locked when a *new* family or label-child is created, never on the
  hot observation path.
* **numpy-backed histograms** — a fixed bucket-edge vector shared per
  family; ``observe`` is one bisect plus three scalar adds, and quantile
  estimation vectorizes over the counts with numpy.
* **labeled** — families fan out into children via ``.labels(...)``
  (AS / interface / direction / whatever the caller declares), with a
  cardinality guard so an unbounded label set (e.g. a per-packet id) fails
  fast instead of silently eating memory.
* **null-recorder fast path** — :data:`NULL_REGISTRY` hands out no-op
  singletons, so instrumented code pays one attribute lookup + an empty
  method call when telemetry is disabled (the default).

The *active* registry is process-wide: :func:`get_registry` returns the
null registry unless ``REPRO_TELEMETRY=1`` is set in the environment or an
experiment installed a live one via :func:`set_registry` /
:class:`repro.telemetry.experiment.ExperimentTelemetry`.
"""

from __future__ import annotations

import bisect
import os
import threading
from typing import Iterator, Sequence

import numpy as np

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LabelCardinalityError",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "DEFAULT_MAX_LABEL_SETS",
    "get_registry",
    "set_registry",
]


class LabelCardinalityError(RuntimeError):
    """A metric family exceeded its label-set budget.

    Raised instead of allocating: unbounded label values (packet ids,
    timestamps, ...) are a bug in the instrumentation, not load.
    """


#: Latency-flavoured default buckets, in seconds (1 us .. 10 s).
DEFAULT_BUCKETS: tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Per-family budget of distinct label combinations.
DEFAULT_MAX_LABEL_SETS = 1024


class Counter:
    """Monotonically increasing count (one labeled child of a family)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Gauge:
    """Point-in-time value that can go up and down."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram child: bucket counts + sum + count.

    ``bounds`` are the *upper* bucket edges; an observation lands in the
    first bucket whose bound is >= the value, with one overflow bucket past
    the last bound (so ``counts`` has ``len(bounds) + 1`` slots).  The hot
    path bisects a plain-float edge list — an order of magnitude cheaper
    than a scalar numpy ``searchsorted`` — while :meth:`quantile` vectorizes
    over the counts with numpy.
    """

    __slots__ = ("bounds", "_edges", "counts", "sum", "count")

    def __init__(self, bounds: np.ndarray) -> None:
        self.bounds = bounds
        self._edges = [float(b) for b in bounds]
        self.counts = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self._edges, value)] += 1
        self.sum += value
        self.count += 1

    def quantile(self, q: float) -> float:
        """Estimate the q-quantile (q in [0, 1]) from the bucket counts.

        Linear interpolation inside the selected bucket; the overflow
        bucket reports its lower bound (the last finite edge).  Returns
        ``nan`` when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return float("nan")
        rank = q * self.count
        cumulative = np.cumsum(self.counts)
        index = int(np.searchsorted(cumulative, rank, side="left"))
        if index >= len(self.bounds):  # overflow bucket
            return float(self.bounds[-1])
        lower = float(self.bounds[index - 1]) if index > 0 else 0.0
        upper = float(self.bounds[index])
        in_bucket = int(self.counts[index])
        if in_bucket == 0:
            return upper
        below = int(cumulative[index - 1]) if index > 0 else 0
        fraction = (rank - below) / in_bucket
        return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else float("nan")


class _Family:
    """Shared plumbing for a named, labeled metric family."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        max_label_sets: int,
    ) -> None:
        self.name = name
        self.help = help
        self.labelnames = labelnames
        self.max_label_sets = max_label_sets
        self._children: dict[tuple, object] = {}
        self._lock = threading.Lock()

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def labels(self, *values) -> object:
        """Return the child for this label combination, creating it once."""
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name}: expected labels {self.labelnames}, got {values!r}"
            )
        key = tuple(str(v) for v in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    if len(self._children) >= self.max_label_sets:
                        raise LabelCardinalityError(
                            f"metric {self.name!r} exceeded "
                            f"{self.max_label_sets} label sets; labels "
                            f"{self.labelnames} look unbounded"
                        )
                    child = self._make_child()
                    self._children[key] = child
        return child

    def items(self) -> Iterator[tuple[tuple, object]]:
        yield from sorted(self._children.items())


class CounterFamily(_Family):
    kind = "counter"

    def _make_child(self) -> Counter:
        return Counter()

    def labels(self, *values) -> Counter:  # narrowed return type
        return super().labels(*values)  # type: ignore[return-value]


class GaugeFamily(_Family):
    kind = "gauge"

    def _make_child(self) -> Gauge:
        return Gauge()

    def labels(self, *values) -> Gauge:
        return super().labels(*values)  # type: ignore[return-value]


class HistogramFamily(_Family):
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str,
        labelnames: tuple[str, ...],
        max_label_sets: int,
        buckets: Sequence[float],
    ) -> None:
        super().__init__(name, help, labelnames, max_label_sets)
        bounds = np.asarray(sorted(float(b) for b in buckets), dtype=np.float64)
        if len(bounds) == 0:
            raise ValueError(f"{name}: histogram needs at least one bucket bound")
        self.bounds = bounds

    def _make_child(self) -> Histogram:
        return Histogram(self.bounds)

    def labels(self, *values) -> Histogram:
        return super().labels(*values)  # type: ignore[return-value]


class MetricsRegistry:
    """Container of metric families, keyed by name.

    Re-declaring a family with the same name and matching schema returns
    the existing one (so modules can declare instruments independently);
    a schema mismatch raises.
    """

    enabled = True

    def __init__(self, max_label_sets: int = DEFAULT_MAX_LABEL_SETS) -> None:
        self.max_label_sets = max_label_sets
        self._families: dict[str, _Family] = {}
        self._lock = threading.Lock()

    def _declare(self, cls, name: str, help: str, labelnames, **kwargs) -> _Family:
        labelnames = tuple(labelnames)
        with self._lock:
            existing = self._families.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != labelnames:
                    raise ValueError(
                        f"metric {name!r} re-declared with a different schema"
                    )
                return existing
            family = cls(name, help, labelnames, self.max_label_sets, **kwargs)
            self._families[name] = family
            return family

    def counter(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> CounterFamily:
        return self._declare(CounterFamily, name, help, labelnames)  # type: ignore[return-value]

    def gauge(
        self, name: str, help: str = "", labelnames: Sequence[str] = ()
    ) -> GaugeFamily:
        return self._declare(GaugeFamily, name, help, labelnames)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] = DEFAULT_BUCKETS,
    ) -> HistogramFamily:
        return self._declare(
            HistogramFamily, name, help, labelnames, buckets=buckets
        )  # type: ignore[return-value]

    def families(self) -> Iterator[_Family]:
        yield from (self._families[name] for name in sorted(self._families))

    def merge(self, rows) -> int:
        """Fold a snapshot of another registry into this one.

        ``rows`` is the JSON-safe family list
        :func:`repro.telemetry.export.snapshot` produces — the form
        shard-engine workers ship their per-process registries in, so the
        parent's dashboards see one coherent registry under the
        multiprocess backend.  Counters and histogram counts/sums *add*;
        gauges take the incoming value (last writer wins — worker gauges
        are point-in-time readings, and summing them would double-count
        re-merges).  Families are declared on demand; an existing family
        with a mismatched schema raises :class:`ValueError`.

        Returns the number of label children merged.
        """
        merged = 0
        for row in rows:
            kind = row["kind"]
            labelnames = tuple(row["labelnames"])
            help_text = row.get("help", "")
            if kind == "counter":
                family = self.counter(row["name"], help_text, labelnames)
                for child_row in row["children"]:
                    family.labels(*child_row["labels"]).value += child_row["value"]
                    merged += 1
            elif kind == "gauge":
                family = self.gauge(row["name"], help_text, labelnames)
                for child_row in row["children"]:
                    family.labels(*child_row["labels"]).value = child_row["value"]
                    merged += 1
            elif kind == "histogram":
                family = self.histogram(
                    row["name"], help_text, labelnames, buckets=row["buckets"]
                )
                if [float(b) for b in family.bounds] != [
                    float(b) for b in row["buckets"]
                ]:
                    raise ValueError(
                        f"metric {row['name']!r} merged with different buckets"
                    )
                for child_row in row["children"]:
                    child = family.labels(*child_row["labels"])
                    for index, count in enumerate(child_row["counts"]):
                        child.counts[index] += count
                    child.sum += child_row["sum"]
                    child.count += child_row["count"]
                    merged += 1
            else:
                raise ValueError(f"unknown metric kind {kind!r}")
        return merged


class _NullInstrument:
    """No-op counter/gauge/histogram: every method is an empty call."""

    __slots__ = ()
    value = 0.0
    sum = 0.0
    count = 0

    def labels(self, *values) -> "_NullInstrument":
        return self

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def quantile(self, q: float) -> float:
        return float("nan")

    def items(self):
        return iter(())


_NULL_INSTRUMENT = _NullInstrument()


class NullRegistry:
    """Disabled-telemetry registry: hands out the shared no-op instrument."""

    enabled = False
    max_label_sets = DEFAULT_MAX_LABEL_SETS

    def counter(self, name: str, help: str = "", labelnames=()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def gauge(self, name: str, help: str = "", labelnames=()) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def histogram(
        self, name: str, help: str = "", labelnames=(), buckets=DEFAULT_BUCKETS
    ) -> _NullInstrument:
        return _NULL_INSTRUMENT

    def families(self):
        return iter(())


NULL_REGISTRY = NullRegistry()

_active: MetricsRegistry | NullRegistry = (
    MetricsRegistry() if os.environ.get("REPRO_TELEMETRY") == "1" else NULL_REGISTRY
)


def get_registry() -> MetricsRegistry | NullRegistry:
    """The process-wide active registry (null unless enabled)."""
    return _active


def set_registry(registry: MetricsRegistry | NullRegistry) -> MetricsRegistry | NullRegistry:
    """Install ``registry`` as the active one; returns the previous."""
    global _active
    previous = _active
    _active = registry
    return previous
