"""Telemetry: metrics registry, lifecycle tracing, exporters.

See ``docs/observability.md`` for the metric catalog and span naming
conventions.  The whole subsystem is disabled by default: the active
registry is the null recorder unless ``REPRO_TELEMETRY=1`` is set or an
:class:`ExperimentTelemetry` harness is activated.
"""

from repro.telemetry.export import load_jsonl, snapshot, to_jsonl, to_prometheus
from repro.telemetry.experiment import ExperimentTelemetry
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    NULL_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    LabelCardinalityError,
    MetricsRegistry,
    get_registry,
    set_registry,
)
from repro.telemetry.tracing import (
    TraceContext,
    current_trace,
    event,
    span,
    use_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LabelCardinalityError",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "DEFAULT_BUCKETS",
    "ExperimentTelemetry",
    "TraceContext",
    "current_trace",
    "event",
    "get_registry",
    "load_jsonl",
    "set_registry",
    "snapshot",
    "span",
    "to_jsonl",
    "to_prometheus",
    "use_trace",
]
