"""Correlation-ID tracing for a reservation's lifecycle.

A :class:`TraceContext` carries one correlation id and accumulates
:class:`Span` records (timed sections) and zero-duration events as the
reservation moves through the system::

    tx submit -> contract event -> admission decision -> auction clearing
              -> redeem -> policer verdict

Instrumented modules never take a trace argument — they call the
module-level :func:`span` / :func:`event` helpers, which look up the
trace installed in the current :mod:`contextvars` context.  When no trace
is installed (the overwhelmingly common case) both helpers return shared
no-op singletons, so the hot path pays a contextvar read and nothing else.
"""

from __future__ import annotations

import contextvars
import itertools
import time
from dataclasses import dataclass, field
from typing import Any, Iterator

__all__ = [
    "Span",
    "TraceContext",
    "current_trace",
    "event",
    "span",
    "use_trace",
]

_trace_ids = itertools.count(1)


@dataclass
class Span:
    """One timed (or instantaneous) step of a trace."""

    trace_id: str
    name: str
    start: float
    end: float | None = None
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float | None:
        return None if self.end is None else self.end - self.start

    def set(self, **attrs: Any) -> None:
        """Attach attributes to an open span (e.g. the decision outcome)."""
        self.attrs.update(attrs)

    def to_dict(self) -> dict[str, Any]:
        return {
            "trace_id": self.trace_id,
            "name": self.name,
            "start": self.start,
            "duration": self.duration,
            "attrs": dict(self.attrs),
        }


class _OpenSpan:
    """Context manager closing one span; also usable as a plain handle."""

    __slots__ = ("_span",)

    def __init__(self, span_: Span) -> None:
        self._span = span_

    def set(self, **attrs: Any) -> None:
        self._span.set(**attrs)

    def __enter__(self) -> "_OpenSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._span.end = time.perf_counter()
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)


class _NoopSpan:
    """Shared do-nothing span handle for the trace-disabled fast path."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


NOOP_SPAN = _NoopSpan()


class TraceContext:
    """A correlation id plus the ordered spans recorded under it."""

    def __init__(self, name: str, trace_id: str | None = None) -> None:
        self.name = name
        self.trace_id = trace_id or f"trace-{next(_trace_ids):06d}"
        self.spans: list[Span] = []

    def span(self, name: str, **attrs: Any) -> _OpenSpan:
        record = Span(
            trace_id=self.trace_id,
            name=name,
            start=time.perf_counter(),
            attrs=dict(attrs),
        )
        self.spans.append(record)
        return _OpenSpan(record)

    def event(self, name: str, **attrs: Any) -> Span:
        """A zero-duration span (a point-in-time lifecycle marker)."""
        now = time.perf_counter()
        record = Span(
            trace_id=self.trace_id, name=name, start=now, end=now, attrs=dict(attrs)
        )
        self.spans.append(record)
        return record

    def span_names(self) -> list[str]:
        return [s.name for s in self.spans]

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "spans": [s.to_dict() for s in self.spans],
        }


_current: contextvars.ContextVar[TraceContext | None] = contextvars.ContextVar(
    "repro_trace", default=None
)


def current_trace() -> TraceContext | None:
    return _current.get()


class use_trace:
    """Install ``trace`` as the ambient trace for a ``with`` block."""

    __slots__ = ("_trace", "_token")

    def __init__(self, trace: TraceContext | None) -> None:
        self._trace = trace

    def __enter__(self) -> TraceContext | None:
        self._token = _current.set(self._trace)
        return self._trace

    def __exit__(self, exc_type, exc, tb) -> None:
        _current.reset(self._token)


def span(name: str, **attrs: Any) -> _OpenSpan | _NoopSpan:
    """Open a span on the ambient trace, or a shared no-op when absent."""
    trace = _current.get()
    if trace is None:
        return NOOP_SPAN
    return trace.span(name, **attrs)


def event(name: str, **attrs: Any) -> Span | None:
    """Record an instantaneous event on the ambient trace, if any."""
    trace = _current.get()
    if trace is None:
        return None
    return trace.event(name, **attrs)
