"""Exporters: Prometheus text format and JSON-lines snapshots.

``to_jsonl`` / ``load_jsonl`` round-trip exactly: every family row carries
enough schema (kind, label names, bucket bounds) to rebuild an equivalent
registry, which the telemetry test suite checks property-style.
"""

from __future__ import annotations

import json
from typing import Any

from repro.telemetry.registry import (
    CounterFamily,
    GaugeFamily,
    HistogramFamily,
    MetricsRegistry,
    NullRegistry,
)

__all__ = ["snapshot", "to_jsonl", "load_jsonl", "to_prometheus"]


def snapshot(registry: MetricsRegistry | NullRegistry) -> list[dict[str, Any]]:
    """One JSON-safe dict per metric family, children inlined."""
    rows: list[dict[str, Any]] = []
    for family in registry.families():
        row: dict[str, Any] = {
            "name": family.name,
            "kind": family.kind,
            "help": family.help,
            "labelnames": list(family.labelnames),
        }
        if isinstance(family, HistogramFamily):
            row["buckets"] = [float(b) for b in family.bounds]
            row["children"] = [
                {
                    "labels": list(labels),
                    "counts": [int(c) for c in child.counts],
                    "sum": child.sum,
                    "count": child.count,
                }
                for labels, child in family.items()
            ]
        else:
            row["children"] = [
                {"labels": list(labels), "value": child.value}
                for labels, child in family.items()
            ]
        rows.append(row)
    return rows


def to_jsonl(registry: MetricsRegistry | NullRegistry) -> str:
    """Serialize the registry as one JSON object per line."""
    return "\n".join(json.dumps(row, sort_keys=True) for row in snapshot(registry))


def load_jsonl(text: str) -> MetricsRegistry:
    """Rebuild a registry from :func:`to_jsonl` output (exact round-trip)."""
    registry = MetricsRegistry()
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        row = json.loads(line)
        kind = row["kind"]
        labelnames = tuple(row["labelnames"])
        if kind == "counter":
            family = registry.counter(row["name"], row.get("help", ""), labelnames)
            for child_row in row["children"]:
                family.labels(*child_row["labels"]).value = child_row["value"]
        elif kind == "gauge":
            family = registry.gauge(row["name"], row.get("help", ""), labelnames)
            for child_row in row["children"]:
                family.labels(*child_row["labels"]).value = child_row["value"]
        elif kind == "histogram":
            family = registry.histogram(
                row["name"], row.get("help", ""), labelnames, buckets=row["buckets"]
            )
            for child_row in row["children"]:
                child = family.labels(*child_row["labels"])
                for index, count in enumerate(child_row["counts"]):
                    child.counts[index] = count
                child.sum = child_row["sum"]
                child.count = child_row["count"]
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown metric kind {kind!r}")
    return registry


def _label_str(labelnames, labels) -> str:
    if not labelnames:
        return ""
    pairs = ",".join(
        f'{name}="{value}"' for name, value in zip(labelnames, labels)
    )
    return "{" + pairs + "}"


def _merge_label_str(labelnames, labels, extra_name: str, extra_value: str) -> str:
    pairs = [f'{name}="{value}"' for name, value in zip(labelnames, labels)]
    pairs.append(f'{extra_name}="{extra_value}"')
    return "{" + ",".join(pairs) + "}"


def to_prometheus(registry: MetricsRegistry | NullRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        if isinstance(family, (CounterFamily, GaugeFamily)):
            for labels, child in family.items():
                label_str = _label_str(family.labelnames, labels)
                lines.append(f"{family.name}{label_str} {child.value}")
        elif isinstance(family, HistogramFamily):
            for labels, child in family.items():
                cumulative = 0
                for bound, count in zip(family.bounds, child.counts):
                    cumulative += int(count)
                    label_str = _merge_label_str(
                        family.labelnames, labels, "le", repr(float(bound))
                    )
                    lines.append(f"{family.name}_bucket{label_str} {cumulative}")
                label_str = _merge_label_str(family.labelnames, labels, "le", "+Inf")
                lines.append(f"{family.name}_bucket{label_str} {child.count}")
                base = _label_str(family.labelnames, labels)
                lines.append(f"{family.name}_sum{base} {child.sum}")
                lines.append(f"{family.name}_count{base} {child.count}")
    return "\n".join(lines) + ("\n" if lines else "")
