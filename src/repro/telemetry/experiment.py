"""Experiment-scoped telemetry harness.

:class:`ExperimentTelemetry` bundles a live :class:`MetricsRegistry` plus
any number of reservation traces, installs itself as the process-wide
registry for the duration of a scenario, and serializes everything to a
single JSON dump that ``tools/report_experiment.py`` turns into a
``results/`` dashboard.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any

from repro.telemetry.export import snapshot
from repro.telemetry.registry import MetricsRegistry, set_registry
from repro.telemetry.tracing import TraceContext

__all__ = ["ExperimentTelemetry"]


class ExperimentTelemetry:
    """Collects metrics + traces for one scenario run.

    Usage::

        telemetry = ExperimentTelemetry("auction_experiment")
        with telemetry.activate():
            ...  # build controllers/ledgers inside: they bind instruments
        telemetry.write("results/auction_telemetry.json")
    """

    def __init__(self, scenario: str, registry: MetricsRegistry | None = None) -> None:
        self.scenario = scenario
        self.registry = registry if registry is not None else MetricsRegistry()
        self.traces: list[TraceContext] = []
        self.extra: dict[str, Any] = {}

    def activate(self) -> "_ActiveTelemetry":
        return _ActiveTelemetry(self.registry)

    def trace(self, name: str) -> TraceContext:
        """Create (and retain) a correlation-ID trace for one reservation."""
        trace = TraceContext(name)
        self.traces.append(trace)
        return trace

    def annotate(self, **fields: Any) -> None:
        """Attach scenario-level result fields to the dump."""
        self.extra.update(fields)

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "metrics": snapshot(self.registry),
            "traces": [trace.to_dict() for trace in self.traces],
            "extra": dict(self.extra),
        }

    def write(self, path: str | pathlib.Path) -> pathlib.Path:
        """Dump the full telemetry state as JSON; returns the path."""
        target = pathlib.Path(path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(json.dumps(self.to_dict(), indent=2, sort_keys=True))
        return target


class _ActiveTelemetry:
    """Context manager installing/restoring the process-wide registry."""

    __slots__ = ("_registry", "_previous")

    def __init__(self, registry: MetricsRegistry) -> None:
        self._registry = registry

    def __enter__(self) -> MetricsRegistry:
        self._previous = set_registry(self._registry)
        return self._registry

    def __exit__(self, exc_type, exc, tb) -> None:
        set_registry(self._previous)
