"""Published per-operation timings (Tables 3 and 4 of the paper).

These are the DPDK prototype's numbers on an Intel Xeon 2.1 GHz with
AES-NI.  The throughput model feeds them through the same pipeline
structure our Python implementation executes, regenerating the paper's
curves; our own measured timings are reported side by side (the Python/DPDK
ratio is the calibration factor documented in EXPERIMENTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass

# ---------------------------------------------------------------------------
# Table 3: border-router packet validation and forwarding (ns per packet).
# ---------------------------------------------------------------------------

ROUTER_STEPS_SCION = [
    ("Check packet size", 14),
    ("Parse packet headers", 30),
    ("Check whether hop field is expired", 8),
    ("Recompute SCION hop field MAC", 46),
    ("Update segment identifier (SegID)", 4),
    ("Update current hop field pointer", 13),
    ("Check if hop field is of type SCION or Flyover", 8),
]

ROUTER_STEPS_HUMMINGBIRD_EXTRA = [
    ("Compute absolute start of reservation (ResStart)", 8),
    ("Compute authentication key (A_i)", 43),
    ("AES-extend authentication key (A_i)", 24),
    ("Validate high-precision time stamp", 6),
    ("Recompute flyover MAC", 44),
    ("Compute aggregate MAC", 4),
    ("Verify xor-ed MAC same as in header", 9),
    ("Check whether the reservation is still active", 8),
    ("Check for overuse", 39),
]

SCION_FORWARD_NS = sum(ns for _, ns in ROUTER_STEPS_SCION)  # 123
HUMMINGBIRD_EXTRA_NS = sum(ns for _, ns in ROUTER_STEPS_HUMMINGBIRD_EXTRA)  # 185
HUMMINGBIRD_FORWARD_NS = SCION_FORWARD_NS + HUMMINGBIRD_EXTRA_NS  # 308

# ---------------------------------------------------------------------------
# Table 4: source packet generation for a 4-hop path (ns per packet).
# ---------------------------------------------------------------------------

SOURCE_HEADERS_NS = 107  # "Add Ethernet, IP, Scion header fields"
SOURCE_FLYOVER_MACS_4HOPS_NS = 201  # "Compute flyover MACs (4 on-path ASes)"
SOURCE_HOPFIELDS_4HOPS_NS = 171  # "Add hop fields for all on-path ASes"
SOURCE_PAYLOAD_500_NS = 15
SOURCE_PAYLOAD_1500_NS = 40

SOURCE_FLYOVER_MAC_PER_HOP_NS = SOURCE_FLYOVER_MACS_4HOPS_NS / 4  # 50.25
SOURCE_HOPFIELD_PER_HOP_NS = SOURCE_HOPFIELDS_4HOPS_NS / 4  # 42.75

# Linear payload-copy model through the two published points.
_PAYLOAD_SLOPE = (SOURCE_PAYLOAD_1500_NS - SOURCE_PAYLOAD_500_NS) / 1000  # 0.025
_PAYLOAD_INTERCEPT = SOURCE_PAYLOAD_500_NS - _PAYLOAD_SLOPE * 500  # 2.5


def source_payload_ns(payload_bytes: int) -> float:
    """Payload-copy cost, interpolated from the 500 B / 1500 B data points."""
    return _PAYLOAD_INTERCEPT + _PAYLOAD_SLOPE * payload_bytes


def scion_generation_ns(hops: int, payload_bytes: int) -> float:
    """Per-packet source cost for best-effort SCION (Table 4 without MACs).

    107 + 171 + 15 = 293 ns for (h=4, 500 B) — exactly the paper's SCION
    total.
    """
    return (
        SOURCE_HEADERS_NS
        + SOURCE_HOPFIELD_PER_HOP_NS * hops
        + source_payload_ns(payload_bytes)
    )


def hummingbird_generation_ns(hops: int, payload_bytes: int) -> float:
    """Per-packet source cost with a flyover on every hop (Table 4 total)."""
    return scion_generation_ns(hops, payload_bytes) + SOURCE_FLYOVER_MAC_PER_HOP_NS * hops


@dataclass(frozen=True)
class PaperEnvironment:
    """Testbed constants of §7.1."""

    line_rate_gbps: float = 160.0  # 4 x 40 Gbps bidirectional links
    cpu_ghz: float = 2.1
    policing_array_entries: int = 100_000  # 800 kB of 8 B buckets


PAPER_ENV = PaperEnvironment()
