"""Microbenchmarks of our Python data-plane implementation.

Measures the per-packet cost of the same pipeline stages the paper times in
Tables 3 and 4 — on our pure-Python implementation.  The absolute numbers
are of course far from DPDK+AES-NI; what matters is (a) the *structure*
(which stages exist, what scales per hop / per byte) matches, and (b) the
measured Python numbers can be fed into the same
:class:`~repro.perfmodel.scaling.ThroughputModel` to produce
"measured-substrate" versions of Figures 5/14/15 next to the
paper-calibrated ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.clock import SimClock
from repro.crypto.aes import AES128
from repro.crypto.keys import derive_auth_key
from repro.crypto.prf import PrfFactory
from repro.hummingbird.mac import aggregate_mac, compute_flyover_mac
from repro.hummingbird.policing import TokenBucketArray
from repro.hummingbird.reservation import ResInfo, grant_reservation
from repro.hummingbird.router import HummingbirdRouter
from repro.hummingbird.source import HummingbirdSource, ScionBestEffortSource
from repro.scion.addresses import HostAddr, IsdAs, ScionAddr
from repro.scion.beaconing import run_beaconing
from repro.scion.hopfields import chain_segid, compute_hopfield_mac
from repro.scion.paths import PathLookup, as_crossings
from repro.scion.router import ScionRouter
from repro.scion.topology import linear_topology
from repro.wire import bwcls


def time_op(fn, iterations: int = 2000, warmup: int = 100) -> float:
    """Average nanoseconds per call of ``fn``."""
    for _ in range(warmup):
        fn()
    start = time.perf_counter_ns()
    for _ in range(iterations):
        fn()
    return (time.perf_counter_ns() - start) / iterations


def time_op_over(fn, items: list, warmup: int = 20) -> float:
    """Average nanoseconds per call of ``fn(item)`` over distinct items."""
    for item in items[:warmup]:
        fn(item)
    rest = items[warmup:]
    if not rest:
        raise ValueError("not enough items after warmup")
    start = time.perf_counter_ns()
    for item in rest:
        fn(item)
    return (time.perf_counter_ns() - start) / len(rest)


@dataclass
class DataPlaneFixture:
    """A 4-hop path with full flyover coverage, ready to measure."""

    clock: SimClock
    topology: object
    path: object
    reservations: list
    hb_source: HummingbirdSource
    scion_source: ScionBestEffortSource
    hb_router: HummingbirdRouter
    scion_router: ScionRouter
    first_as: IsdAs


def build_fixture(
    hops: int = 4, payload: int = 500, prf_backend: str = "aes"
) -> DataPlaneFixture:
    prf_factory = PrfFactory(prf_backend)
    clock = SimClock(1_700_000_000.0)
    topology = linear_topology(hops)
    store = run_beaconing(topology, timestamp=int(clock.now()), prf_factory=prf_factory)
    src_as = topology.ases[-1].isd_as
    dst_as = topology.ases[0].isd_as
    path = PathLookup(store).find_paths(src_as, dst_as)[0]
    reservations = []
    start = int(clock.now()) - 10
    for index, crossing in enumerate(as_crossings(path)):
        autonomous_system = topology.as_of(crossing.isd_as)
        resinfo = ResInfo(
            ingress=crossing.ingress,
            egress=crossing.egress,
            res_id=index,
            bw_cls=bwcls.MAX_CLASS,  # effectively unlimited: no overuse demotions
            start=start,
            duration=36_000,
        )
        reservations.append(
            grant_reservation(
                crossing.isd_as, autonomous_system.secret_value, resinfo, prf_factory
            )
        )
    src = ScionAddr(src_as, HostAddr.from_string("10.0.0.1"))
    dst = ScionAddr(dst_as, HostAddr.from_string("10.0.0.2"))
    hb_source = HummingbirdSource(src, dst, path, reservations, clock, prf_factory)
    scion_source = ScionBestEffortSource(src, dst, path)
    first = topology.as_of(src_as)
    return DataPlaneFixture(
        clock=clock,
        topology=topology,
        path=path,
        reservations=reservations,
        hb_source=hb_source,
        scion_source=scion_source,
        hb_router=HummingbirdRouter(first, clock, prf_factory),
        scion_router=ScionRouter(first, clock, prf_factory),
        first_as=src_as,
    )


@dataclass
class RouterMeasurement:
    """Our per-packet router costs plus fine-grained operation costs (ns)."""

    scion_process_ns: float
    hummingbird_process_ns: float
    steps: dict = field(default_factory=dict)

    @property
    def hummingbird_overhead_ns(self) -> float:
        return self.hummingbird_process_ns - self.scion_process_ns


def measure_router(
    payload: int = 500, packets: int = 1500, prf_backend: str = "aes"
) -> RouterMeasurement:
    """Time full router processing and the individual pipeline operations."""
    fixture = build_fixture(payload=payload, prf_backend=prf_backend)
    body = bytes(payload)
    hb_packets = [fixture.hb_source.build_packet(body) for _ in range(packets)]
    scion_packets = [fixture.scion_source.build_packet(body) for _ in range(packets)]

    hb_ns = time_op_over(lambda p: fixture.hb_router.process(p, 0), hb_packets)
    scion_ns = time_op_over(lambda p: fixture.scion_router.process(p, 0), scion_packets)

    prf_factory = PrfFactory(prf_backend)
    reservation = fixture.reservations[0]
    resinfo = reservation.resinfo
    secret_value = fixture.topology.as_of(reservation.isd_as).secret_value
    key_bytes = reservation.auth_key
    dst = fixture.hb_source.dst.isd_as
    mac_a = compute_flyover_mac(key_bytes, dst, 600, 10, 1, 2, prf_factory)
    mac_b = compute_hopfield_mac(key_bytes, 1, 1_700_000_000, 63, 1, 2, prf_factory)
    bucket = TokenBucketArray(capacity=1024)

    steps = {
        "Recompute SCION hop field MAC": time_op(
            lambda: compute_hopfield_mac(key_bytes, 7, 1_700_000_000, 63, 1, 2, prf_factory)
        ),
        "Update segment identifier (SegID)": time_op(lambda: chain_segid(7, mac_b)),
        "Compute authentication key (A_i)": time_op(
            lambda: derive_auth_key(
                secret_value,
                resinfo.ingress,
                resinfo.egress,
                resinfo.res_id,
                resinfo.bw_cls,
                resinfo.start,
                resinfo.duration,
                prf_factory,
            )
        ),
        "AES-extend authentication key (A_i)": time_op(lambda: AES128(key_bytes)),
        "Recompute flyover MAC": time_op(
            lambda: compute_flyover_mac(key_bytes, dst, 600, 10, 1, 2, prf_factory)
        ),
        "Compute aggregate MAC": time_op(lambda: aggregate_mac(mac_a, mac_b)),
        "Check for overuse": time_op(
            lambda: bucket.monitor(3, 1_000_000, 600, 1_700_000_000.0)
        ),
    }
    return RouterMeasurement(
        scion_process_ns=scion_ns, hummingbird_process_ns=hb_ns, steps=steps
    )


@dataclass
class SourceMeasurement:
    """Our per-packet generation costs (ns) for one (hops, payload) point."""

    hops: int
    payload: int
    scion_generation_ns: float
    hummingbird_generation_ns: float
    stages: dict = field(default_factory=dict)


def measure_source(
    hops: int = 4, payload: int = 500, iterations: int = 800, prf_backend: str = "aes"
) -> SourceMeasurement:
    """Time packet generation, full and per stage (the Table 4 pipeline)."""
    fixture = build_fixture(hops=hops, payload=payload, prf_backend=prf_backend)
    body = bytes(payload)
    hb_ns = time_op(lambda: fixture.hb_source.build_packet(body), iterations)
    scion_ns = time_op(lambda: fixture.scion_source.build_packet(body), iterations)

    source = fixture.hb_source
    timestamp = source._allocator.allocate(fixture.clock.now())
    pkt_len = source._begin_headers(body)
    macs = source._compute_flyover_macs(pkt_len, timestamp)
    stages = {
        "Add header fields": time_op(lambda: source._begin_headers(body), iterations),
        "Compute flyover MACs": time_op(
            lambda: source._compute_flyover_macs(pkt_len, timestamp), iterations
        ),
        "Add hop fields": time_op(
            lambda: source._assemble_hopfields(timestamp, macs), iterations
        ),
        "Add payload": time_op(
            lambda: source._attach_payload(
                source._assemble_hopfields(timestamp, macs), body, 1
            ),
            max(iterations // 4, 50),
        ),
    }
    return SourceMeasurement(
        hops=hops,
        payload=payload,
        scion_generation_ns=scion_ns,
        hummingbird_generation_ns=hb_ns,
        stages=stages,
    )
