"""Multicore throughput model: per-packet cost -> Gbps curves.

The model behind Figures 5, 14 and 15: a router (or source gateway) core
processes one packet every ``per_packet_ns``; cores scale linearly (DPDK
run-to-completion, no shared state besides the policing array); the wire
throughput saturates at the line rate::

    throughput(cores) = min(line_rate, cores * 1e9/ns * wire_bits)

Wire sizes follow the byte-exact header layouts, so the curves depend on
payload, hop count and path type exactly as in the paper: bigger payloads
amortize the per-packet cost and reach line rate with fewer cores; SCION
(123 ns) needs fewer cores than Hummingbird (308 ns) until both saturate.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.perfmodel import papertimings as paper

ETHERNET_IPV4_UDP_OVERHEAD = 0  # SCION runs natively on the testbed links
COMMON_AND_ADDR = 36  # common header (12) + address header (24)


def wire_bytes(
    hops: int, payload_bytes: int, hummingbird: bool, flyover_hops: int | None = None
) -> int:
    """Total packet bytes on the wire for an ``hops``-AS single-segment path.

    Hummingbird adds 8 bytes per reserved hop over standard SCION (§4:
    flyover hop fields are 20 B vs 12 B) plus the 8-byte meta-header
    extension (12 B meta vs 4 B).
    """
    if hops < 1:
        raise ValueError("a path needs at least one hop")
    if hummingbird:
        reserved = hops if flyover_hops is None else flyover_hops
        path = 12 + 8 + 20 * reserved + 12 * (hops - reserved)
    else:
        path = 4 + 8 + 12 * hops
    return COMMON_AND_ADDR + path + payload_bytes


@dataclass(frozen=True)
class ThroughputModel:
    """Cores x per-packet-cost -> throughput with a line-rate cap."""

    per_packet_ns: float
    line_rate_gbps: float = paper.PAPER_ENV.line_rate_gbps

    def packets_per_second(self, cores: int) -> float:
        if cores < 1:
            raise ValueError("need at least one core")
        return cores * 1e9 / self.per_packet_ns

    def throughput_gbps(self, cores: int, packet_bytes: int) -> float:
        raw = self.packets_per_second(cores) * packet_bytes * 8 / 1e9
        return min(self.line_rate_gbps, raw)

    def cores_for_line_rate(self, packet_bytes: int) -> int:
        """Smallest core count that saturates the line (Fig. 5 crossover)."""
        cores = 1
        while self.throughput_gbps(cores, packet_bytes) < self.line_rate_gbps:
            cores *= 2
            if cores > 4096:
                raise RuntimeError("line rate unreachable")
        # binary refine
        low, high = cores // 2, cores
        while low + 1 < high:
            mid = (low + high) // 2
            if self.throughput_gbps(mid, packet_bytes) < self.line_rate_gbps:
                low = mid
            else:
                high = mid
        return high


# ---------------------------------------------------------------------------
# Figure series generators.  Each returns
#   {(series key): [(x, gbps), ...]}
# with the paper's parameter grids as defaults.
# ---------------------------------------------------------------------------

FIG5_PAYLOADS = (100, 500, 1000, 1500)
FIG5_CORES = (1, 2, 4, 8, 16, 32)
FIG5_HOPS = 4  # forwarding cost is hop-independent; headers assume 4 ASes

FIG14_HOPS = (1, 2, 4, 8, 16)
FIG14_PAYLOAD = 500

FIG15_PAYLOADS = (100, 500, 1000, 1500)


def fig5_forwarding_series(
    scion_ns: float = paper.SCION_FORWARD_NS,
    hummingbird_ns: float = paper.HUMMINGBIRD_FORWARD_NS,
    payloads=FIG5_PAYLOADS,
    cores=FIG5_CORES,
) -> dict:
    """Border-router throughput curves (Fig. 5)."""
    series = {}
    for payload in payloads:
        hb_model = ThroughputModel(hummingbird_ns)
        scion_model = ThroughputModel(scion_ns)
        series[("hummingbird", payload)] = [
            (c, hb_model.throughput_gbps(c, wire_bytes(FIG5_HOPS, payload, True)))
            for c in cores
        ]
        series[("scion", payload)] = [
            (c, scion_model.throughput_gbps(c, wire_bytes(FIG5_HOPS, payload, False)))
            for c in cores
        ]
    return series


def fig14_generation_series(
    generation_ns=None,
    payload: int = FIG14_PAYLOAD,
    hops=FIG14_HOPS,
    cores=FIG5_CORES,
) -> dict:
    """Source traffic-generation curves vs cores, 500 B payload (Fig. 14).

    ``generation_ns(hops, payload, hummingbird) -> ns`` defaults to the
    paper-calibrated Table 4 model.
    """
    if generation_ns is None:
        generation_ns = _paper_generation_ns
    series = {}
    for h in hops:
        for hummingbird in (True, False):
            model = ThroughputModel(generation_ns(h, payload, hummingbird))
            key = ("hummingbird" if hummingbird else "scion", h)
            series[key] = [
                (c, model.throughput_gbps(c, wire_bytes(h, payload, hummingbird)))
                for c in cores
            ]
    return series


def fig15_singlecore_series(
    generation_ns=None,
    payloads=FIG15_PAYLOADS,
    hops=FIG14_HOPS,
) -> dict:
    """Single-core source throughput vs payload size (Fig. 15)."""
    if generation_ns is None:
        generation_ns = _paper_generation_ns
    series = {}
    for h in hops:
        for hummingbird in (True, False):
            key = ("hummingbird" if hummingbird else "scion", h)
            series[key] = []
            for payload in payloads:
                model = ThroughputModel(generation_ns(h, payload, hummingbird))
                series[key].append(
                    (payload, model.throughput_gbps(1, wire_bytes(h, payload, hummingbird)))
                )
    return series


def _paper_generation_ns(hops: int, payload: int, hummingbird: bool) -> float:
    if hummingbird:
        return paper.hummingbird_generation_ns(hops, payload)
    return paper.scion_generation_ns(hops, payload)
