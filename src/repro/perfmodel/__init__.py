"""Performance model: published timings, our measurements, throughput curves."""

from repro.perfmodel.measure import (
    RouterMeasurement,
    SourceMeasurement,
    build_fixture,
    measure_router,
    measure_source,
    time_op,
)
from repro.perfmodel.papertimings import (
    HUMMINGBIRD_EXTRA_NS,
    HUMMINGBIRD_FORWARD_NS,
    PAPER_ENV,
    ROUTER_STEPS_HUMMINGBIRD_EXTRA,
    ROUTER_STEPS_SCION,
    SCION_FORWARD_NS,
    hummingbird_generation_ns,
    scion_generation_ns,
)
from repro.perfmodel.scaling import (
    ThroughputModel,
    fig14_generation_series,
    fig15_singlecore_series,
    fig5_forwarding_series,
    wire_bytes,
)

__all__ = [
    "RouterMeasurement",
    "SourceMeasurement",
    "build_fixture",
    "measure_router",
    "measure_source",
    "time_op",
    "HUMMINGBIRD_EXTRA_NS",
    "HUMMINGBIRD_FORWARD_NS",
    "PAPER_ENV",
    "ROUTER_STEPS_HUMMINGBIRD_EXTRA",
    "ROUTER_STEPS_SCION",
    "SCION_FORWARD_NS",
    "hummingbird_generation_ns",
    "scion_generation_ns",
    "ThroughputModel",
    "fig14_generation_series",
    "fig15_singlecore_series",
    "fig5_forwarding_series",
    "wire_bytes",
]
