"""The in-process shard-engine backend: the calendars the repo always had.

This backend exists so the engine boundary costs *nothing* when no
process parallelism was asked for: ``calendar()`` hands out the very
same :class:`~repro.admission.calendar.CapacityCalendar` or
:class:`~repro.admission.sharded.ShardedCalendar` objects that
:class:`~repro.admission.controller.AdmissionController` used to build
inline, and every method call stays a plain method call.
"""

from __future__ import annotations

from repro.admission.calendar import CapacityCalendar
from repro.admission.sharded import ShardedCalendar
from repro.shardengine.api import MONOLITHIC, CalendarKey, EngineSpec


class InProcessEngine:
    """Monolithic or in-process-sharded calendars behind the engine surface."""

    def __init__(self, spec: EngineSpec) -> None:
        self.spec = spec
        self._calendars: dict[CalendarKey, CapacityCalendar | ShardedCalendar] = {}

    def calendar(self, key: CalendarKey, capacity_kbps: int):
        """The (lazily created) calendar for one key."""
        found = self._calendars.get(key)
        if found is None:
            if self.spec.kind == MONOLITHIC:
                found = CapacityCalendar(capacity_kbps)
            else:
                found = ShardedCalendar(
                    capacity_kbps, shard_seconds=self.spec.shard_seconds
                )
            self._calendars[key] = found
        return found

    def collect_metrics(self) -> None:
        """Nothing to fold in: all metrics already live in this process."""

    def close(self) -> None:
        """Nothing to shut down."""
