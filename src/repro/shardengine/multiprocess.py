"""Process-parallel shard engine: calendars striped across worker processes.

One :class:`MultiprocessShardEngine` serves every calendar of one
controller.  Shards are striped across ``num_workers`` worker processes
by ``shard_key % num_workers``; the parent keeps the *top-level* record
of every commitment (ids, windows, tags, projections) while the workers
hold the per-shard step functions.  :class:`EngineCalendar` — the object
the controller and policies actually touch — subclasses
:class:`~repro.admission.sharded.ShardedCalendar` and overrides the hot
paths with **batched scatter/gather messages** (one message per worker
per operation, the pipe-deadlock discipline), leaving the intricate
commitment-surgery paths (split/fuse/transfer) to the inherited code
running against per-shard RPC proxies.

Reliability model (the part the fault suite exercises):

* every state-changing message is **journaled** in the parent after it
  succeeds on the worker;
* workers snapshot their shard state when the journal grows past the
  spec's checkpoint thresholds (or on :meth:`MultiprocessShardEngine.checkpoint`),
  which trims the journal;
* when any worker dies mid-operation, the supervisor restarts **all**
  workers from snapshot + journal — the in-flight operation was not yet
  journaled, so recovery rolls the whole engine back to the state before
  it — and raises :class:`~repro.shardengine.api.WorkerCrashed`, a clean
  retryable failure.  Parent-side bookkeeping is only ever updated after
  a successful gather, so parent and workers stay in lockstep.

Multi-message operations (the inherited split/fuse/transfer surgery) are
*not* crash-atomic: each piece call journals individually, so a crash in
the middle leaves the completed piece calls applied.  ``commit``,
``commit_batch``, ``release``, and ``expire`` are single-round scatters
and roll back atomically.
"""

from __future__ import annotations

import dataclasses
import itertools
import multiprocessing
import os

import numpy as np

from repro.admission.calendar import AdmissionRejected, CapacityCalendar, Commitment
from repro.admission.calendar import _commitment_rows
from repro.admission.sharded import ShardedCalendar
from repro.shardengine.api import (
    CalendarKey,
    EngineError,
    EngineRetryable,
    EngineSpec,
    WorkerCrashed,
)
from repro.shardengine.worker import worker_main
from repro.telemetry import get_registry

_ERROR_TYPES = {
    "ValueError": ValueError,
    "TypeError": TypeError,
    "KeyError": KeyError,
    "RuntimeError": RuntimeError,
    "AdmissionRejected": AdmissionRejected,
}


class _CrashDetected(Exception):
    """Internal: a worker pipe broke (the process died)."""


class _WorkerError(Exception):
    """Internal: a worker reported an application error ``(type_name, text)``."""


def _map_error(payload) -> Exception:
    type_name, text = payload
    return _ERROR_TYPES.get(type_name, EngineError)(text)


class _Worker:
    """Parent-side handle of one worker process."""

    __slots__ = ("index", "process", "conn", "seq", "journal", "journal_rows", "snapshot")

    def __init__(self, index: int) -> None:
        self.index = index
        self.process = None
        self.conn = None
        self.seq = itertools.count()
        self.journal: list[tuple] = []  # successful mutating (op, payload)
        self.journal_rows = 0
        self.snapshot = None  # last checkpointed worker state


class MultiprocessShardEngine:
    """Worker-pool backend of the shard-engine boundary."""

    def __init__(self, spec: EngineSpec) -> None:
        self.spec = spec
        # Fork keeps worker start ~instant and inherits the parent's
        # modules; fall back to the platform default elsewhere.
        methods = multiprocessing.get_all_start_methods()
        self._ctx = multiprocessing.get_context(
            "fork" if "fork" in methods else None
        )
        self._workers: list[_Worker] = []
        self._calendars: dict[CalendarKey, EngineCalendar] = {}
        self._recovering = False
        self._closed = False
        self.restarts = 0  # lifetime worker-pool recoveries
        self._shm_in = None
        self._shm_out = None
        self._shm_capacity = 0
        registry = get_registry()
        self._telemetry = registry.enabled
        self._m_messages = registry.counter(
            "shardengine_messages_total",
            "Messages sent to shard-engine workers, by op.",
            ("op",),
        )
        self._m_restarts = registry.counter(
            "shardengine_worker_restarts_total",
            "Worker-pool recoveries (snapshot restore + journal replay).",
        ).labels()
        self._m_checkpoints = registry.counter(
            "shardengine_checkpoints_total",
            "Worker snapshots taken to trim the replay journal.",
        ).labels()

    # -- engine surface -----------------------------------------------------------

    def calendar(self, key: CalendarKey, capacity_kbps: int) -> "EngineCalendar":
        """The (lazily created) process-backed calendar for one key."""
        found = self._calendars.get(key)
        if found is None:
            self._ensure_workers()
            payload = {"key": key, "capacity_kbps": int(capacity_kbps)}
            self.scatter(
                [(index, "register", payload) for index in range(len(self._workers))],
                mutating=True,
            )
            found = EngineCalendar(self, key, capacity_kbps)
            self._calendars[key] = found
        return found

    def collect_metrics(self) -> int:
        """Fold every worker's metric registry into the parent's.

        Returns the number of workers that reported metrics.  A no-op
        (returning 0) when telemetry is off or no worker was spawned.
        """
        registry = get_registry()
        if not registry.enabled or not self._workers:
            return 0
        calls = [(index, "metrics", {}) for index in range(len(self._workers))]
        merged = 0
        for rows in self.scatter(calls):
            if rows:
                registry.merge(rows)
                merged += 1
        return merged

    def checkpoint(self) -> None:
        """Snapshot every worker now and trim the replay journals."""
        for worker in self._workers:
            self._checkpoint_worker(worker)

    def close(self) -> None:
        """Collect metrics, stop the workers, release shared memory."""
        if self._closed:
            return
        self._closed = True
        try:
            self.collect_metrics()
        except Exception:
            pass
        for worker in self._workers:
            try:
                worker.conn.send((next(worker.seq), "shutdown", None))
            except Exception:
                pass
        for worker in self._workers:
            if worker.process is not None:
                worker.process.join(timeout=2)
                if worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=2)
            try:
                worker.conn.close()
            except Exception:
                pass
        self._workers = []
        for shm in (self._shm_in, self._shm_out):
            if shm is not None:
                try:
                    shm.close()
                    shm.unlink()
                except Exception:
                    pass
        self._shm_in = self._shm_out = None

    # -- worker lifecycle ---------------------------------------------------------

    def _ensure_workers(self) -> None:
        if self._closed:
            raise EngineError("engine is closed")
        if self._workers:
            return
        self._workers = [self._spawn(index) for index in range(self.spec.num_workers)]

    def _spawn(self, index: int) -> _Worker:
        worker = _Worker(index)
        parent_conn, child_conn = self._ctx.Pipe()
        worker.conn = parent_conn
        worker.process = self._ctx.Process(
            target=worker_main,
            args=(child_conn, index, self.spec.shard_seconds, get_registry().enabled),
            daemon=True,
            name=f"shardengine-worker-{index}",
        )
        worker.process.start()
        child_conn.close()
        return worker

    def _recover(self) -> None:
        """Restart every worker from snapshot + journal (pre-op state).

        The in-flight operation is never journaled, so replay reproduces
        exactly the state before it — including per-shard commitment ids,
        because :meth:`CapacityCalendar.from_state` resumes id allocation
        and message replay is deterministic.
        """
        if self._recovering:
            raise EngineError("worker crashed during recovery; state is lost")
        self._recovering = True
        try:
            old = self._workers
            for worker in old:
                if worker.process is not None and worker.process.is_alive():
                    worker.process.terminate()
                    worker.process.join(timeout=5)
                try:
                    worker.conn.close()
                except Exception:
                    pass
            self._workers = []
            replacements = []
            for stale in old:
                worker = self._spawn(stale.index)
                worker.journal = stale.journal
                worker.journal_rows = stale.journal_rows
                worker.snapshot = stale.snapshot
                replacements.append(worker)
            self._workers = replacements
            for worker in self._workers:
                if worker.snapshot is not None:
                    self._call(worker, "restore", {"snapshot": worker.snapshot})
                for op, payload in worker.journal:
                    self._call(worker, op, payload)
            self._reconcile()
            self.restarts += 1
            if self._telemetry:
                self._m_restarts.inc()
        finally:
            self._recovering = False

    def _reconcile(self) -> None:
        """Prune facade shard proxies whose worker shard no longer exists.

        A failed operation may have created proxies for shards its
        scatter never (or no longer) materialized; parent registries are
        untouched (they update only after success), so only the proxy map
        needs syncing back to the workers' truth.
        """
        live: set[tuple] = set()
        for listed in self.scatter(
            [(index, "list_shards", {}) for index in range(len(self._workers))]
        ):
            live.update((tuple(key), shard_key) for key, shard_key in listed)
        for cal_key, facade in self._calendars.items():
            for shard_key in [
                k for k in facade._shards if (tuple(cal_key), k) not in live
            ]:
                del facade._shards[shard_key]

    # -- messaging ----------------------------------------------------------------

    def worker_index(self, shard_key: int) -> int:
        return shard_key % self.spec.num_workers

    def scatter_begin(self, calls: list[tuple]) -> list[tuple]:
        """Send one message per worker; returns tokens for :meth:`scatter_end`.

        ``calls`` is ``[(worker_index, op, payload), ...]`` with at most
        one entry per worker — the discipline that keeps at most one
        in-flight message per pipe and rules out send/reply deadlocks.
        """
        tokens = []
        for index, op, payload in calls:
            worker = self._workers[index]
            seq = next(worker.seq)
            if self._telemetry:
                self._m_messages.labels(op).inc()
            try:
                worker.conn.send((seq, op, payload))
            except (BrokenPipeError, ConnectionResetError, OSError):
                self._recover()
                raise WorkerCrashed(
                    "a shard worker died before the operation reached it; "
                    "state rolled back, retry is safe"
                )
            tokens.append((worker, seq, op, payload))
        return tokens

    def scatter_end(self, tokens: list[tuple], mutating: bool = False, rows: int = 0):
        """Gather replies; journal on success, recover-and-raise on failure."""
        results = []
        failure: tuple | None = None
        for worker, seq, op, payload in tokens:
            try:
                results.append(self._recv_reply(worker, seq))
            except _CrashDetected:
                failure = ("crash", None)
                break
            except _WorkerError as exc:
                failure = ("error", exc.args[0])
                break
        if failure is None:
            if mutating:
                per_worker_rows = max(1, rows // max(1, len(tokens)))
                for worker, _, op, payload in tokens:
                    worker.journal.append((op, payload))
                    worker.journal_rows += per_worker_rows
                for worker in {id(t[0]): t[0] for t in tokens}.values():
                    self._maybe_checkpoint(worker)
            return results
        kind, detail = failure
        if kind == "crash" or mutating:
            # Either a worker died, or a mutating scatter half-applied
            # (some workers succeeded before one errored): both roll the
            # whole pool back to the journaled pre-operation state.
            self._recover()
        if kind == "crash":
            raise WorkerCrashed(
                "a shard worker died mid-operation; state rolled back, retry is safe"
            )
        raise _map_error(detail)

    def scatter(self, calls: list[tuple], mutating: bool = False, rows: int = 0):
        return self.scatter_end(self.scatter_begin(calls), mutating=mutating, rows=rows)

    def piece_call(self, shard_key: int, payload: dict, mutating: bool):
        """One commitment-surgery RPC against the shard's worker."""
        calls = [(self.worker_index(shard_key), "piece_op", payload)]
        return self.scatter(calls, mutating=mutating, rows=1)[0]

    def _recv_reply(self, worker: _Worker, wanted: int):
        while True:
            try:
                seq, ok, result = worker.conn.recv()
            except (EOFError, ConnectionResetError, OSError):
                raise _CrashDetected() from None
            if seq == wanted:
                if ok:
                    return result
                raise _WorkerError(result)
            if seq > wanted:
                raise EngineError(f"out-of-order reply {seq} (wanted {wanted})")
            # seq < wanted: the ack of a fire-and-forget message; drop it.

    def _call(self, worker: _Worker, op: str, payload):
        """Plain call outside the scatter/journal machinery (recovery path)."""
        seq = next(worker.seq)
        try:
            worker.conn.send((seq, op, payload))
            return self._recv_reply(worker, seq)
        except (_CrashDetected, BrokenPipeError, ConnectionResetError, OSError):
            raise EngineError("worker died during recovery; state is lost") from None
        except _WorkerError as exc:
            raise _map_error(exc.args[0]) from None

    # -- checkpoints --------------------------------------------------------------

    def _maybe_checkpoint(self, worker: _Worker) -> None:
        if (
            len(worker.journal) >= self.spec.checkpoint_ops
            or worker.journal_rows >= self.spec.checkpoint_rows
        ):
            self._checkpoint_worker(worker)

    def _checkpoint_worker(self, worker: _Worker) -> None:
        worker.snapshot = self._call(worker, "snapshot", {})
        worker.journal = []
        worker.journal_rows = 0
        if self._telemetry:
            self._m_checkpoints.inc()

    # -- shared-memory bulk_peak --------------------------------------------------

    def bulk_peak_query(
        self, cal_key: CalendarKey, starts: np.ndarray, ends: np.ndarray, shard_keys
    ) -> np.ndarray:
        """Scatter a vectorized peak query through shared-memory arrays."""
        count = starts.size
        self._ensure_shm(count)
        windows = np.ndarray((2, count), dtype=np.float64, buffer=self._shm_in.buf)
        windows[0] = starts
        windows[1] = ends
        by_worker: dict[int, list[int]] = {}
        for shard_key in shard_keys:
            by_worker.setdefault(self.worker_index(shard_key), []).append(shard_key)
        calls = [
            (
                index,
                "bulk_peak",
                {
                    "key": cal_key,
                    "count": count,
                    "shard_keys": keys,
                    "in_name": self._shm_in.name,
                    "out_name": self._shm_out.name,
                    "slot": index,
                },
            )
            for index, keys in by_worker.items()
        ]
        self.scatter(calls)
        slabs = np.ndarray(
            (self.spec.num_workers, count), dtype=np.int64, buffer=self._shm_out.buf
        )
        slots = sorted(by_worker)
        return slabs[slots].max(axis=0)

    def _ensure_shm(self, count: int) -> None:
        if count <= self._shm_capacity:
            return
        from multiprocessing import shared_memory

        capacity = max(count, 2 * self._shm_capacity, 4096)
        for shm in (self._shm_in, self._shm_out):
            if shm is not None:
                shm.close()
                shm.unlink()
        self._shm_in = shared_memory.SharedMemory(create=True, size=16 * capacity)
        self._shm_out = shared_memory.SharedMemory(
            create=True, size=8 * capacity * self.spec.num_workers
        )
        self._shm_capacity = capacity

    # -- test hooks ---------------------------------------------------------------

    def worker_pid(self, index: int) -> int:
        return self._workers[index].process.pid

    def inject_delay(self, index: int, seconds: float) -> None:
        """Fire-and-forget sleep on one worker (fault-injection tests).

        Not journaled; the skipped ack is drained by seq matching.
        """
        worker = self._workers[index]
        worker.conn.send((next(worker.seq), "debug_sleep", {"seconds": seconds}))


class _ShardProxy:
    """Stable stand-in for one worker-held shard.

    Kept in the facade's ``_shards`` map and inside projection pieces, so
    the inherited :class:`ShardedCalendar` identity checks (stale-piece
    detection after expire) work unchanged; method calls forward to the
    owning worker as single-shard RPCs.
    """

    __slots__ = ("_engine", "_cal_key", "_shard_key")

    def __init__(self, engine: MultiprocessShardEngine, cal_key, shard_key: int):
        self._engine = engine
        self._cal_key = cal_key
        self._shard_key = shard_key

    def _op(self, method: str, args: tuple, mutating: bool):
        return self._engine.piece_call(
            self._shard_key,
            {
                "key": self._cal_key,
                "shard_key": self._shard_key,
                "method": method,
                "args": args,
            },
            mutating,
        )

    def get(self, piece_id: int) -> Commitment:
        return self._op("get", (piece_id,), mutating=False)

    def peak_commitment(self, start: float, end: float) -> int:
        return self._op("peak_commitment", (start, end), mutating=False)

    def tag_peak(self, tag: str, start: float, end: float) -> int:
        return self._op("tag_peak", (tag, start, end), mutating=False)

    def mean_commitment(self, start: float, end: float) -> float:
        return self._op("mean_commitment", (start, end), mutating=False)

    def commit(self, bandwidth_kbps: int, start: float, end: float, tag: str = ""):
        return self._op("commit", (bandwidth_kbps, start, end, tag), mutating=True)

    def release(self, piece_id: int):
        return self._op("release", (piece_id,), mutating=True)

    def split_time(self, piece_id: int, at: float):
        return self._op("split_time", (piece_id, at), mutating=True)

    def split_bandwidth(self, piece_id: int, bandwidth_kbps: int):
        return self._op("split_bandwidth", (piece_id, bandwidth_kbps), mutating=True)

    def fuse(self, first_id: int, second_id: int):
        return self._op("fuse", (first_id, second_id), mutating=True)

    def transfer(self, piece_id: int, tag: str):
        return self._op("transfer", (piece_id, tag), mutating=True)


class EngineCalendar(ShardedCalendar):
    """A :class:`ShardedCalendar` whose shards live in worker processes.

    The parent keeps the top-level commitment records and projections
    (against :class:`_ShardProxy` placeholders); every hot-path method is
    overridden with a batched one-message-per-worker scatter, and the
    parent registries mutate strictly *after* a successful gather so a
    crashed operation leaves no parent-side trace.
    """

    def __init__(
        self, engine: MultiprocessShardEngine, key: CalendarKey, capacity_kbps: int
    ) -> None:
        super().__init__(capacity_kbps, shard_seconds=engine.spec.shard_seconds)
        self._engine = engine
        self._key = key

    # -- shard plumbing -----------------------------------------------------------

    def _shard(self, key: int) -> _ShardProxy:
        found = self._shards.get(key)
        if found is None:
            found = _ShardProxy(self._engine, self._key, key)
            self._shards[key] = found
        return found

    def _group_items(self, entries) -> dict[int, list]:
        """Partition per-shard payload items by owning worker."""
        by_worker: dict[int, list] = {}
        for shard_key, item in entries:
            by_worker.setdefault(self._engine.worker_index(shard_key), []).append(item)
        return by_worker

    def _scatter_items(self, op: str, by_worker: dict[int, list], **kwargs):
        calls = [(index, op, {"items": items}) for index, items in by_worker.items()]
        return self._engine.scatter(calls, **kwargs)

    def _prune_dropped(self, results) -> None:
        for result in results:
            for _cal_key, shard_key in result["dropped"]:
                self._shards.pop(shard_key, None)

    # -- queries ------------------------------------------------------------------

    def peak_commitment(self, start: float, end: float) -> int:
        CapacityCalendar._check_window(start, end)
        entries = []
        for key, _ in self._overlapping(start, end):
            clip_start, clip_end = self._clip(key, start, end)
            entries.append((key, (self._key, key, clip_start, clip_end)))
        if not entries:
            return 0
        results = self._scatter_items("peak_pieces", self._group_items(entries))
        return max(peak for peaks in results for peak in peaks)

    def tag_peak(self, tag: str, start: float, end: float) -> int:
        CapacityCalendar._check_window(start, end)
        entries = []
        for key, _ in self._overlapping(start, end):
            clip_start, clip_end = self._clip(key, start, end)
            entries.append((key, (self._key, key, tag, clip_start, clip_end)))
        if not entries:
            return 0
        results = self._scatter_items("tag_peak_pieces", self._group_items(entries))
        return max(peak for peaks in results for peak in peaks)

    def mean_commitment(self, start: float, end: float) -> float:
        CapacityCalendar._check_window(start, end)
        entries = []
        spans = []
        for key, _ in self._overlapping(start, end):
            clip_start, clip_end = self._clip(key, start, end)
            entries.append((key, (self._key, key, clip_start, clip_end)))
            spans.append(clip_end - clip_start)
        if not entries:
            return 0.0
        by_worker = self._group_items(entries)
        # Reassemble in the same order the spans were collected: worker
        # grouping preserves per-worker order, so pair via the same walk.
        span_by_item = {id(item): span for (_, item), span in zip(entries, spans)}
        results = self._scatter_items("mean_pieces", by_worker)
        total = 0.0
        for index, means in zip(by_worker, results):
            for item, mean in zip(by_worker[index], means):
                total += mean * span_by_item[id(item)]
        return total / (end - start)

    def bulk_peak(self, starts, ends) -> np.ndarray:
        starts = np.asarray(starts, dtype=np.float64)
        ends = np.asarray(ends, dtype=np.float64)
        if starts.shape != ends.shape:
            raise ValueError("starts and ends must have the same shape")
        if starts.size == 0:
            return np.zeros(0, dtype=np.int64)
        if not np.all(ends > starts):
            raise ValueError("every window must satisfy end > start")
        shard_keys = [
            key
            for key, _ in self._overlapping(float(starts.min()), float(ends.max()))
        ]
        if not shard_keys:
            return np.zeros(starts.shape, dtype=np.int64)
        flat = self._engine.bulk_peak_query(
            self._key, starts.ravel(), ends.ravel(), shard_keys
        )
        return flat.reshape(starts.shape).copy()

    @property
    def boundary_count(self) -> int:
        entries = [(key, (self._key, key)) for key in self._shards]
        if not entries:
            return 0
        results = self._scatter_items("stats_pieces", self._group_items(entries))
        return sum(boundaries for stats in results for _, boundaries in stats)

    # -- mutations ----------------------------------------------------------------

    def try_commit(
        self, bandwidth_kbps: int, start: float, end: float, tag: str = ""
    ) -> Commitment | None:
        bandwidth_kbps = int(bandwidth_kbps)
        self._check_commitment(bandwidth_kbps, start, end)
        self._check_span(start, end)
        if self.peak_commitment(start, end) > self.capacity_kbps - bandwidth_kbps:
            return None
        return self._commit_checked(bandwidth_kbps, start, end, tag)

    def _commit_checked(
        self, bandwidth_kbps: int, start: float, end: float, tag: str
    ) -> Commitment:
        keys = list(range(self._first_key(start), self._last_key(end) + 1))
        by_worker: dict[int, list] = {}
        for key in keys:
            clip_start, clip_end = self._clip(key, start, end)
            by_worker.setdefault(self._engine.worker_index(key), []).append(
                (self._key, key, bandwidth_kbps, clip_start, clip_end, tag)
            )
        results = self._scatter_items(
            "commit_pieces", by_worker, mutating=True, rows=len(keys)
        )
        piece_ids: dict[int, int] = {}
        for index, ids in zip(by_worker, results):
            for item, piece_id in zip(by_worker[index], ids):
                piece_ids[item[1]] = piece_id
        commitment = Commitment(
            next(self._ids), bandwidth_kbps, float(start), float(end), tag
        )
        pieces = [(self._shard(key), key, piece_ids[key]) for key in keys]
        self._register(commitment, pieces)
        return commitment

    def commit_batch(self, bandwidths, starts, ends, tag: str = "", track: bool = True):
        """Bulk load, one ordered chunk-list message per worker.

        The parent runs the exact carry-loop partitioning of
        :meth:`ShardedCalendar.commit_batch` to produce per-shard chunks
        in the same order — so workers allocate identical per-shard piece
        ids — then overlaps the top-level record construction with the
        workers' step-function rebuilds (send first, build, then gather).
        """
        bandwidths = np.asarray(bandwidths, dtype=np.int64)
        starts = np.asarray(starts, dtype=np.float64)
        ends = np.asarray(ends, dtype=np.float64)
        if not (bandwidths.shape == starts.shape == ends.shape):
            raise ValueError("bandwidths, starts and ends must be parallel arrays")
        if bandwidths.size == 0:
            return [] if track else None
        if not np.all(ends > starts) or not np.all(bandwidths > 0):
            raise ValueError("every commitment needs end > start and bandwidth > 0")
        if not (np.all(np.isfinite(starts)) and np.all(np.isfinite(ends))):
            raise ValueError("commitment window must be finite")
        widest = int(np.argmax(ends - starts))
        self._check_span(float(starts[widest]), float(ends[widest]))
        width = self.shard_seconds
        chunks_by_worker: dict[int, list] = {}
        chunk_refs: list[tuple] = []  # (worker, chunk position, key, row positions)
        total_pieces = 0
        row_ids = np.arange(starts.size)
        cursor_starts, cursor_ends, cursor_bws = starts, ends, bandwidths
        while cursor_starts.size:
            keys = np.floor_divide(cursor_starts, width).astype(np.int64)
            piece_ends = np.minimum(cursor_ends, (keys + 1) * width)
            order = np.argsort(keys, kind="stable")
            breaks = np.flatnonzero(np.diff(keys[order])) + 1
            for group in np.split(order, breaks):
                key = int(keys[group[0]])
                index = self._engine.worker_index(key)
                chunks = chunks_by_worker.setdefault(index, [])
                chunks.append(
                    (self._key, key, cursor_bws[group], cursor_starts[group],
                     piece_ends[group])
                )
                total_pieces += group.size
                if track:
                    chunk_refs.append((index, len(chunks) - 1, key, row_ids[group]))
            carry = piece_ends < cursor_ends
            cursor_starts = piece_ends[carry]
            cursor_ends = cursor_ends[carry]
            cursor_bws = cursor_bws[carry]
            row_ids = row_ids[carry]
        calls = [
            (index, "commit_chunks", {"chunks": chunks, "tag": tag, "track": track})
            for index, chunks in chunks_by_worker.items()
        ]
        tokens = self._engine.scatter_begin(calls)
        # Workers are rebuilding their shards now; build the top-level
        # records in parallel with them.  Ids are rolled back on failure
        # so a crashed batch burns none (replays stay deterministic).
        next_id = self._ids.__reduce__()[1][0]
        commitments = (
            [
                Commitment(next(self._ids), int(bw), float(s), float(e), tag)
                for bw, s, e in zip(bandwidths, starts, ends)
            ]
            if track
            else None
        )
        try:
            results = self._engine.scatter_end(tokens, mutating=True, rows=total_pieces)
        except EngineRetryable:
            self._ids = itertools.count(next_id)
            raise
        # Register a proxy for every shard the batch touched — untracked
        # batches create boundary state on the workers too, and queries
        # (peak, bulk_peak, fingerprint) only consult shards the facade
        # knows about.
        for chunks in chunks_by_worker.values():
            for chunk in chunks:
                self._shard(chunk[1])
        if not track:
            return None
        by_index = dict(zip(chunks_by_worker, results))
        pieces_by_row: list[list] = [[] for _ in range(starts.size)]
        for index, chunk_position, key, rows in chunk_refs:
            ids = by_index[index][chunk_position]
            proxy = self._shard(key)
            for position, piece_id in zip(rows, ids):
                pieces_by_row[position].append((proxy, key, int(piece_id)))
        for commitment, pieces in zip(commitments, pieces_by_row):
            self._register(commitment, pieces)
        return commitments

    def release(self, commitment_id: int) -> Commitment:
        if commitment_id not in self._commitments:
            raise KeyError(f"unknown commitment {commitment_id}")
        # Scatter first, unregister after: a crash mid-release must leave
        # the parent record in place (nothing was released anywhere).
        self._release_pieces(self._projections[commitment_id])
        commitment, _ = self._unregister(commitment_id)
        return commitment

    def _release_pieces(self, pieces) -> None:
        entries = []
        for calendar, key, piece_id in pieces:
            if self._shards.get(key) is not calendar:
                continue  # shard already dropped by expire
            entries.append((key, (self._key, key, piece_id)))
        if not entries:
            return
        by_worker = self._group_items(entries)
        results = self._scatter_items(
            "release_pieces", by_worker, mutating=True, rows=len(entries)
        )
        self._prune_dropped(results)

    def reclaim(self, commitment_id: int, new_bandwidth_kbps: int) -> Commitment:
        """Shrink a live commitment: one ``reclaim_pieces`` round per worker.

        A single-round mutating scatter, so it inherits the engine's
        crash-atomicity: a worker dying (or erroring) mid-batch rolls the
        whole pool back to the journaled pre-reclaim state and raises
        :class:`~repro.shardengine.api.WorkerCrashed`; the parent record
        mutates only after a successful gather.
        """
        new_bandwidth_kbps = int(new_bandwidth_kbps)
        commitment = self._commitments.get(commitment_id)
        if commitment is None:
            raise KeyError(f"unknown commitment {commitment_id}")
        if not 0 < new_bandwidth_kbps < commitment.bandwidth_kbps:
            raise ValueError(
                f"reclaim target {new_bandwidth_kbps} kbps outside "
                f"(0, {commitment.bandwidth_kbps})"
            )
        entries = []
        for calendar, key, piece_id in self._projections[commitment_id]:
            if self._shards.get(key) is not calendar:
                continue  # shard already dropped by expire
            entries.append((key, (self._key, key, piece_id, new_bandwidth_kbps)))
        if entries:
            self._scatter_items(
                "reclaim_pieces",
                self._group_items(entries),
                mutating=True,
                rows=len(entries),
            )
        shrunk = dataclasses.replace(commitment, bandwidth_kbps=new_bandwidth_kbps)
        self._commitments[commitment_id] = shrunk
        return shrunk

    def expire(self, now: float) -> int:
        now = float(now)
        width = self.shard_seconds
        dead_keys = [k for k in self._shards if (k + 1) * width <= now]
        dead_set = set(dead_keys)
        behind_ids = [
            commitment_id
            for key in self._by_end_shard
            if (key + 1) * width <= now
            for commitment_id in self._by_end_shard[key]
        ]
        boundary_ids = [
            commitment_id
            for key in self._by_end_shard
            if key * width < now < (key + 1) * width
            for commitment_id in list(self._by_end_shard[key])
            if self._commitments[commitment_id].end <= now
        ]
        drops: dict[int, list] = {}
        for key in dead_keys:
            drops.setdefault(self._engine.worker_index(key), []).append(
                (self._key, key)
            )
        releases: dict[int, list] = {}
        for commitment_id in boundary_ids:
            for calendar, key, piece_id in self._projections[commitment_id]:
                if key in dead_set or self._shards.get(key) is not calendar:
                    continue  # the piece's history is being dropped wholesale
                releases.setdefault(self._engine.worker_index(key), []).append(
                    (self._key, key, piece_id)
                )
        touched = sorted(set(drops) | set(releases))
        if touched:
            calls = [
                (
                    index,
                    "expire_ops",
                    {"drop": drops.get(index, []), "release": releases.get(index, [])},
                )
                for index in touched
            ]
            results = self._engine.scatter(
                calls,
                mutating=True,
                rows=len(dead_keys) + sum(len(v) for v in releases.values()),
            )
        else:
            results = []
        for key in dead_keys:
            del self._shards[key]
            self.shards_dropped += 1
        for commitment_id in behind_ids + boundary_ids:
            self._unregister(commitment_id)
        self._prune_dropped(results)
        return len(behind_ids) + len(boundary_ids)

    # -- fingerprint --------------------------------------------------------------

    def fingerprint(self) -> tuple:
        """The exact :meth:`ShardedCalendar.fingerprint` tuple, with shard
        state gathered from the worker processes."""
        shard_rows: list[tuple] = []
        if self._shards:
            results = self._engine.scatter(
                [
                    (index, "fingerprint_shards", {"key": self._key})
                    for index in range(len(self._engine._workers))
                ]
            )
            for listed in results:
                shard_rows.extend(listed)
        return (
            "sharded",
            self.capacity_kbps,
            self.shard_seconds,
            self.shards_dropped,
            tuple(sorted(shard_rows)),
            _commitment_rows(self._commitments),
            tuple(
                sorted(
                    (key, tuple(sorted(ids)))
                    for key, ids in self._by_end_shard.items()
                )
            ),
            tuple(
                sorted(
                    (cid, tuple((key, piece_id) for _, key, piece_id in pieces))
                    for cid, pieces in self._projections.items()
                )
            ),
        )
