"""Shard engines: the process boundary behind every admission calendar.

See :mod:`repro.shardengine.api` for the boundary contract,
:mod:`repro.shardengine.inprocess` for the zero-overhead default, and
:mod:`repro.shardengine.multiprocess` for the worker-pool backend.
"""

from repro.shardengine.api import (
    MONOLITHIC,
    MULTIPROCESS,
    SHARDED,
    EngineError,
    EngineRetryable,
    EngineSpec,
    WorkerCrashed,
    build_engine,
)

__all__ = [
    "MONOLITHIC",
    "MULTIPROCESS",
    "SHARDED",
    "EngineError",
    "EngineRetryable",
    "EngineSpec",
    "WorkerCrashed",
    "build_engine",
]
