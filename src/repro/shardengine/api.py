"""The shard-engine boundary: calendars as a message surface, not method calls.

Every admission calendar an :class:`~repro.admission.controller.AdmissionController`
materializes now comes from a **shard engine** — an object that owns the
calendar state for one controller and answers the calendar surface
(admit/commit/commit_batch/release/expire/peak/bulk_peak/fingerprint)
behind an explicit boundary.  Two backends implement the boundary:

* the **in-process** engine (:mod:`repro.shardengine.inprocess`) hands
  out the plain :class:`~repro.admission.calendar.CapacityCalendar` /
  :class:`~repro.admission.sharded.ShardedCalendar` objects the codebase
  always used — zero behavior change, zero overhead;
* the **multiprocess** engine (:mod:`repro.shardengine.multiprocess`)
  stripes shards across worker processes and turns every calendar call
  into batched messages over pipes, with shared-memory numpy arrays for
  ``bulk_peak``, snapshot+journal crash recovery, and per-worker
  telemetry folded back into the parent registry.

The boundary is deliberately *calendar-shaped*: policies, the path
admission protocol, auctions, and the netsim experiments keep calling
the same methods they always did, and :func:`build_engine` decides which
process answers them.

>>> spec = EngineSpec.resolve(None, shard_seconds=3600.0)
>>> spec.kind
'sharded'
>>> EngineSpec.resolve("monolithic").kind
'monolithic'
"""

from __future__ import annotations

from dataclasses import dataclass, replace

MONOLITHIC = "monolithic"
SHARDED = "sharded"
MULTIPROCESS = "multiprocess"

_KINDS = (MONOLITHIC, SHARDED, MULTIPROCESS)

#: Calendars are keyed by ``(layer, interface, is_ingress)`` — the same
#: key the controller's lazy calendar dict uses.
CalendarKey = tuple


class EngineError(RuntimeError):
    """A shard engine could not complete an operation."""


class EngineRetryable(EngineError):
    """The operation failed *cleanly*: no partial state was left behind.

    The engine rolled every worker back to the state before the failed
    operation (snapshot + journal replay), so retrying the same call is
    safe and leaves no double-applied commitments.
    """


class WorkerCrashed(EngineRetryable):
    """A worker process died mid-operation; it was restarted from its
    last snapshot and the in-flight operation was rolled back everywhere."""


@dataclass(frozen=True)
class EngineSpec:
    """Which backend answers the calendar surface, and how it is shaped.

    Args:
        kind: ``"monolithic"`` (one :class:`CapacityCalendar` per key),
            ``"sharded"`` (in-process :class:`ShardedCalendar`), or
            ``"multiprocess"`` (shards striped across worker processes).
        shard_seconds: shard width for the sharded kinds; must be ``None``
            for ``"monolithic"``.
        num_workers: worker process count (multiprocess only).
        checkpoint_ops: journal length that triggers an automatic worker
            snapshot (multiprocess only).
        checkpoint_rows: journaled commitment-row count that triggers an
            automatic worker snapshot (multiprocess only).
    """

    kind: str = MONOLITHIC
    shard_seconds: float | None = None
    num_workers: int = 2
    checkpoint_ops: int = 512
    checkpoint_rows: int = 1_000_000

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown engine kind {self.kind!r}; expected one of {_KINDS}")
        if self.kind == MONOLITHIC:
            if self.shard_seconds is not None:
                raise ValueError("monolithic engines take no shard width")
        else:
            if self.shard_seconds is None or not self.shard_seconds > 0:
                raise ValueError(f"{self.kind} engines need a positive shard_seconds")
        if self.num_workers < 1:
            raise ValueError("num_workers must be at least 1")
        if self.checkpoint_ops < 1 or self.checkpoint_rows < 1:
            raise ValueError("checkpoint thresholds must be positive")

    @classmethod
    def resolve(
        cls,
        engine: "EngineSpec | str | None",
        shard_seconds: float | None = None,
    ) -> "EngineSpec":
        """Normalize the ``engine=`` argument controllers accept.

        ``None`` keeps the historical behavior: monolithic calendars
        unless ``shard_seconds`` selects in-process sharding.  A string
        names a kind (sharded kinds default to day-wide shards when no
        width is given); an :class:`EngineSpec` passes through, inheriting
        ``shard_seconds`` when it left the width unset.
        """
        if isinstance(engine, EngineSpec):
            if engine.kind != MONOLITHIC and engine.shard_seconds is None:
                width = float(shard_seconds) if shard_seconds else 86_400.0
                return replace(engine, shard_seconds=width)
            return engine
        if engine is None:
            if shard_seconds is None:
                return cls(kind=MONOLITHIC)
            return cls(kind=SHARDED, shard_seconds=float(shard_seconds))
        if isinstance(engine, str):
            if engine == MONOLITHIC:
                return cls(kind=MONOLITHIC)
            width = float(shard_seconds) if shard_seconds else 86_400.0
            return cls(kind=engine, shard_seconds=width)
        raise TypeError(f"engine must be an EngineSpec, a kind string, or None; got {engine!r}")


def build_engine(spec: EngineSpec):
    """Construct the backend a spec names.

    Returns an object with the engine surface: ``spec``,
    ``calendar(key, capacity_kbps)``, ``collect_metrics()``, ``close()``.
    """
    if spec.kind == MULTIPROCESS:
        from repro.shardengine.multiprocess import MultiprocessShardEngine

        return MultiprocessShardEngine(spec)
    from repro.shardengine.inprocess import InProcessEngine

    return InProcessEngine(spec)
