"""Shard-engine worker: one process owning a stripe of calendar shards.

The parent engine stripes shard keys across workers
(``shard_key % num_workers``) and sends each worker **one message per
operation** — every message carries the full batch of pieces that land
on this worker, so an operation never has two messages in flight to the
same worker (the pipe-deadlock discipline).  The worker applies the
batch against its local :class:`~repro.admission.calendar.CapacityCalendar`
shards and replies ``(seq, ok, result)``.

Determinism is the load-bearing property: a worker that replays the same
message sequence from the same snapshot allocates the same per-shard
commitment ids — which is what lets the supervisor restart a crashed
worker from its last snapshot + journal and end up byte-identical (see
``docs/scaling.md`` and the fault suite in ``tests/shardengine/``).
"""

from __future__ import annotations

import time

import numpy as np

from repro.admission.calendar import CapacityCalendar


def _attach_shm(cache: dict, name: str):
    """Attach a shared-memory block by name, caching the mapping."""
    found = cache.get(name)
    if found is None:
        from multiprocessing import resource_tracker, shared_memory

        found = shared_memory.SharedMemory(name=name)
        try:
            # Attaching registers the segment with this process's resource
            # tracker, which would unlink it when the worker exits even
            # though the parent still owns it; undo the registration.
            resource_tracker.unregister(found._name, "shared_memory")  # type: ignore[attr-defined]
        except Exception:
            pass
        cache[name] = found
    return found


class _WorkerState:
    """All shard state one worker holds, plus the message handlers."""

    def __init__(self, worker_index: int, shard_seconds: float) -> None:
        self.worker_index = worker_index
        self.shard_seconds = float(shard_seconds)
        self.configs: dict[tuple, int] = {}  # cal key -> capacity_kbps
        self.shards: dict[tuple, dict[int, CapacityCalendar]] = {}
        self.shm: dict = {}

    def _shard(self, key: tuple, shard_key: int) -> CapacityCalendar:
        by_key = self.shards.setdefault(key, {})
        found = by_key.get(shard_key)
        if found is None:
            found = CapacityCalendar(self.configs[key])
            by_key[shard_key] = found
        return found

    def _existing(self, key: tuple, shard_key: int) -> CapacityCalendar | None:
        by_key = self.shards.get(key)
        return None if by_key is None else by_key.get(shard_key)

    def _drop_if_empty(self, key: tuple, shard_key: int, dropped: list) -> None:
        calendar = self._existing(key, shard_key)
        if (
            calendar is not None
            and calendar.commitment_count == 0
            and calendar.boundary_count == 0
        ):
            del self.shards[key][shard_key]
            dropped.append((key, shard_key))

    # -- handlers (one per message op) --------------------------------------------

    def register(self, payload):
        self.configs[payload["key"]] = int(payload["capacity_kbps"])
        return None

    def commit_pieces(self, payload):
        """Commit one piece per overlapped shard; atomic within this worker."""
        applied: list[tuple] = []
        ids: list[int] = []
        try:
            for key, shard_key, bw, start, end, tag in payload["items"]:
                piece = self._shard(key, shard_key).commit(bw, start, end, tag)
                applied.append((key, shard_key, piece.commitment_id))
                ids.append(piece.commitment_id)
        except Exception:
            dropped: list = []
            for key, shard_key, piece_id in reversed(applied):
                self.shards[key][shard_key].release(piece_id)
                self._drop_if_empty(key, shard_key, dropped)
            raise
        return ids

    def commit_chunks(self, payload):
        """Apply ordered per-shard ``commit_batch`` chunks; returns ids per chunk."""
        tag = payload["tag"]
        track = payload["track"]
        out = []
        for key, shard_key, bws, starts, ends in payload["chunks"]:
            committed = self._shard(key, shard_key).commit_batch(
                bws, starts, ends, tag=tag, track=track
            )
            if track:
                out.append(np.fromiter(
                    (piece.commitment_id for piece in committed),
                    dtype=np.int64,
                    count=len(committed),
                ))
            else:
                out.append(None)
        return out

    def reclaim_pieces(self, payload):
        """Shrink one piece per shard in place; atomic within this worker.

        A failure mid-batch restores the already-shrunk pieces to their
        old bandwidths in reverse order (piece ids never change), so a
        worker either applies its whole stripe of a reclaim or none of it.
        """
        applied: list[tuple] = []
        reclaimed = 0
        try:
            for key, shard_key, piece_id, new_bw in payload["items"]:
                calendar = self._existing(key, shard_key)
                if calendar is None:
                    continue  # shard already dropped (stale piece)
                old_bw = calendar.get(piece_id).bandwidth_kbps
                calendar.reclaim(piece_id, new_bw)
                applied.append((calendar, piece_id, old_bw))
                reclaimed += 1
        except Exception:
            for calendar, piece_id, old_bw in reversed(applied):
                calendar._resize(calendar.get(piece_id), old_bw)
            raise
        return {"reclaimed": reclaimed}

    def release_pieces(self, payload):
        released = 0
        dropped: list = []
        for key, shard_key, piece_id in payload["items"]:
            calendar = self._existing(key, shard_key)
            if calendar is None:
                continue  # shard already dropped (stale piece)
            calendar.release(piece_id)
            released += 1
            self._drop_if_empty(key, shard_key, dropped)
        return {"released": released, "dropped": dropped}

    def expire_ops(self, payload):
        """Whole-shard drops plus boundary-shard piecewise releases, one message."""
        for key, shard_key in payload["drop"]:
            by_key = self.shards.get(key)
            if by_key is not None:
                by_key.pop(shard_key, None)
        return self.release_pieces({"items": payload["release"]})

    def peak_pieces(self, payload):
        out = []
        for key, shard_key, start, end in payload["items"]:
            calendar = self._existing(key, shard_key)
            out.append(0 if calendar is None else calendar.peak_commitment(start, end))
        return out

    def tag_peak_pieces(self, payload):
        out = []
        for key, shard_key, tag, start, end in payload["items"]:
            calendar = self._existing(key, shard_key)
            out.append(0 if calendar is None else calendar.tag_peak(tag, start, end))
        return out

    def mean_pieces(self, payload):
        out = []
        for key, shard_key, start, end in payload["items"]:
            calendar = self._existing(key, shard_key)
            out.append(0.0 if calendar is None else calendar.mean_commitment(start, end))
        return out

    def stats_pieces(self, payload):
        out = []
        for key, shard_key in payload["items"]:
            calendar = self._existing(key, shard_key)
            if calendar is None:
                out.append((0, 0))
            else:
                out.append((calendar.commitment_count, calendar.boundary_count))
        return out

    def piece_op(self, payload):
        """One commitment-surgery call on one shard (split/fuse/transfer/get)."""
        calendar = self.shards[payload["key"]][payload["shard_key"]]
        return getattr(calendar, payload["method"])(*payload["args"])

    def bulk_peak(self, payload):
        """Answer this worker's stripe of a vectorized peak query in place.

        The parent wrote ``starts``/``ends`` into a shared input block and
        reads the per-worker maxima back from this worker's slab of the
        shared output block — the arrays never cross the pipe.
        """
        count = payload["count"]
        live = (payload["in_name"], payload["out_name"])
        for name in [n for n in self.shm if n not in live]:
            self.shm.pop(name).close()  # parent grew the blocks; drop the old ones
        shm_in = _attach_shm(self.shm, payload["in_name"])
        shm_out = _attach_shm(self.shm, payload["out_name"])
        windows = np.ndarray((2, count), dtype=np.float64, buffer=shm_in.buf)
        starts, ends = windows[0], windows[1]
        out = np.ndarray(
            (count,),
            dtype=np.int64,
            buffer=shm_out.buf,
            offset=payload["slot"] * count * 8,
        )
        out[:] = 0
        key = payload["key"]
        width = self.shard_seconds
        for shard_key in payload["shard_keys"]:
            calendar = self._existing(key, shard_key)
            if calendar is None:
                continue
            shard_start, shard_end = shard_key * width, (shard_key + 1) * width
            mask = (starts < shard_end) & (ends > shard_start)
            if not mask.any():
                continue
            clipped_starts = np.maximum(starts[mask], shard_start)
            clipped_ends = np.minimum(ends[mask], shard_end)
            out[mask] = np.maximum(
                out[mask], calendar.bulk_peak(clipped_starts, clipped_ends)
            )
        return None

    def fingerprint_shards(self, payload):
        key = payload["key"]
        return [
            (shard_key, calendar.fingerprint())
            for shard_key, calendar in self.shards.get(key, {}).items()
        ]

    def list_shards(self, payload):
        return [
            (key, shard_key)
            for key, by_key in self.shards.items()
            for shard_key in by_key
        ]

    def snapshot(self, payload):
        return {
            "configs": dict(self.configs),
            "shards": [
                (key, shard_key, calendar.state())
                for key, by_key in self.shards.items()
                for shard_key, calendar in by_key.items()
            ],
        }

    def restore(self, payload):
        snapshot = payload["snapshot"]
        self.configs = dict(snapshot["configs"])
        self.shards = {}
        for key, shard_key, state in snapshot["shards"]:
            self.shards.setdefault(key, {})[shard_key] = CapacityCalendar.from_state(
                state
            )
        return None

    def metrics(self, payload):
        from repro.telemetry import get_registry
        from repro.telemetry.export import snapshot as metrics_snapshot

        registry = get_registry()
        return metrics_snapshot(registry) if registry.enabled else []

    def debug_sleep(self, payload):
        time.sleep(payload["seconds"])
        return None


def worker_main(
    conn, worker_index: int, shard_seconds: float, telemetry_enabled: bool
) -> None:
    """Message loop of one shard worker (the ``Process`` target)."""
    if telemetry_enabled:
        from repro.telemetry import set_registry
        from repro.telemetry.registry import MetricsRegistry

        registry = MetricsRegistry()
        set_registry(registry)
        ops_total = registry.counter(
            "shardengine_worker_ops_total",
            "Messages processed by shard-engine workers, by op.",
            ("worker", "op"),
        )
        shards_gauge = registry.gauge(
            "shardengine_worker_shards",
            "Calendar shards currently held by each shard-engine worker.",
            ("worker",),
        )
    else:
        ops_total = shards_gauge = None
    state = _WorkerState(worker_index, shard_seconds)
    label = str(worker_index)
    while True:
        try:
            seq, op, payload = conn.recv()
        except (EOFError, OSError):
            break
        if op == "shutdown":
            try:
                conn.send((seq, True, None))
            except (BrokenPipeError, OSError):
                pass
            break
        try:
            result = getattr(state, op)(payload)
        except Exception as exc:  # noqa: BLE001 - forwarded to the parent
            reply = (seq, False, (type(exc).__name__, str(exc)))
        else:
            reply = (seq, True, result)
        if ops_total is not None:
            ops_total.labels(label, op).inc()
            shards_gauge.labels(label).set(
                sum(len(by_key) for by_key in state.shards.values())
            )
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    for shm in state.shm.values():
        try:
            shm.close()
        except Exception:
            pass
