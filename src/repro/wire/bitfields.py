"""Bit-level packing helpers for the byte-exact header formats of Appendix A.

Header fields in SCION and Hummingbird do not align to byte boundaries
(22-bit ResIDs, 7-bit segment lengths, 2-bit indices...), so encoding and
decoding go through a small big-endian bit accumulator.
"""

from __future__ import annotations


class BitPacker:
    """Accumulates values MSB-first and renders them as bytes.

    >>> p = BitPacker()
    >>> p.put(0b10, 2).put(0b000011, 6)
    BitPacker(8 bits)
    >>> p.to_bytes().hex()
    '83'
    """

    __slots__ = ("_value", "_bits")

    def __init__(self) -> None:
        self._value = 0
        self._bits = 0

    def put(self, value: int, width: int) -> "BitPacker":
        """Append ``value`` using exactly ``width`` bits."""
        if width <= 0:
            raise ValueError("bit width must be positive")
        if not 0 <= value < (1 << width):
            raise ValueError(f"value {value} does not fit in {width} bits")
        self._value = (self._value << width) | value
        self._bits += width
        return self

    @property
    def bit_length(self) -> int:
        return self._bits

    def to_bytes(self) -> bytes:
        """Render the accumulated bits; total width must be a whole byte count."""
        if self._bits % 8 != 0:
            raise ValueError(f"accumulated {self._bits} bits, not a multiple of 8")
        return self._value.to_bytes(self._bits // 8, "big")

    def __repr__(self) -> str:
        return f"BitPacker({self._bits} bits)"


class BitUnpacker:
    """Reads values MSB-first from a byte string.

    >>> u = BitUnpacker(bytes([0x83]))
    >>> u.take(2), u.take(6)
    (2, 3)
    """

    __slots__ = ("_value", "_remaining")

    def __init__(self, data: bytes) -> None:
        self._value = int.from_bytes(data, "big")
        self._remaining = len(data) * 8

    def take(self, width: int) -> int:
        """Consume and return the next ``width`` bits."""
        if width <= 0:
            raise ValueError("bit width must be positive")
        if width > self._remaining:
            raise ValueError(f"requested {width} bits but only {self._remaining} remain")
        self._remaining -= width
        result = (self._value >> self._remaining) & ((1 << width) - 1)
        return result

    @property
    def remaining_bits(self) -> int:
        return self._remaining
