"""Packet timestamp tuple (BaseTimestamp, MillisTimestamp, Counter).

The Hummingbird PathMetaHdr (Fig. 7) carries a 32-bit Unix ``BaseTimestamp``
(seconds), a 16-bit ``MillisTimestamp`` offset from the base, and a 16-bit
per-packet ``Counter``.  Together the triple must be unique per packet; the
counter exists so hosts sending more than one packet per millisecond still
produce unique tuples (and it feeds the optional duplicate suppression).

The flyover MAC (Eq. 7b) consumes ``TS = ResStartOffset || MillisTimestamp
|| Counter``; the freshness check (Algorithm 3) compares ``BaseTimestamp ||
MillisTimestamp`` to the router clock.
"""

from __future__ import annotations

from dataclasses import dataclass

MILLIS_RANGE = 1 << 16
COUNTER_RANGE = 1 << 16


@dataclass(frozen=True)
class PacketTimestamp:
    """The unique per-packet (base, millis, counter) triple."""

    base: int  # 32-bit Unix seconds
    millis: int  # 16-bit millisecond offset from base
    counter: int  # 16-bit uniqueness counter

    def __post_init__(self) -> None:
        if not 0 <= self.base < 1 << 32:
            raise ValueError(f"BaseTimestamp {self.base} out of 32-bit range")
        if not 0 <= self.millis < MILLIS_RANGE:
            raise ValueError(f"MillisTimestamp {self.millis} out of 16-bit range")
        if not 0 <= self.counter < COUNTER_RANGE:
            raise ValueError(f"Counter {self.counter} out of 16-bit range")

    def absolute_seconds(self) -> float:
        """Absolute send time in seconds (``absTS`` of Algorithm 3, line 12)."""
        return self.base + self.millis / 1000.0


class TimestampAllocator:
    """Allocates unique packet timestamps for a source.

    A fresh counter value is handed out per (base, millis) pair; when the
    16-bit counter would overflow within one millisecond the allocator
    raises, because the uniqueness guarantee of the header tuple would be
    violated (a real sender would simply be rate-limited).
    """

    __slots__ = ("_base", "_last_millis", "_counter")

    def __init__(self, base: int) -> None:
        if not 0 <= base < 1 << 32:
            raise ValueError("base timestamp out of 32-bit range")
        self._base = base
        self._last_millis = -1
        self._counter = 0

    @property
    def base(self) -> int:
        return self._base

    def allocate(self, now_seconds: float) -> PacketTimestamp:
        """Return a unique timestamp for a packet sent at ``now_seconds``."""
        millis_total = int(round((now_seconds - self._base) * 1000))
        if millis_total < 0:
            raise ValueError("cannot allocate a timestamp before the base timestamp")
        if millis_total >= MILLIS_RANGE:
            raise ValueError(
                "millisecond offset overflow: source must refresh its BaseTimestamp"
            )
        if millis_total != self._last_millis:
            self._last_millis = millis_total
            self._counter = 0
        if self._counter >= COUNTER_RANGE:
            raise ValueError("per-millisecond counter exhausted (2^16 packets/ms)")
        timestamp = PacketTimestamp(self._base, millis_total, self._counter)
        self._counter += 1
        return timestamp
