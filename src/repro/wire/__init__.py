"""Wire-format substrate: bit packing, bandwidth classes, packet timestamps."""

from repro.wire.bitfields import BitPacker, BitUnpacker
from repro.wire.bwcls import decode as decode_bw_cls
from repro.wire.bwcls import encode_ceil as encode_bw_ceil
from repro.wire.bwcls import encode_floor as encode_bw_floor
from repro.wire.timestamps import PacketTimestamp, TimestampAllocator

__all__ = [
    "BitPacker",
    "BitUnpacker",
    "decode_bw_cls",
    "encode_bw_ceil",
    "encode_bw_floor",
    "PacketTimestamp",
    "TimestampAllocator",
]
