"""10-bit bandwidth-class encoding (Appendix A.4, "BW" field).

The FlyoverHopField carries the reserved bandwidth in a 10-bit field encoded
like a tiny unsigned float: 5 bits of exponent ``e`` and 5 bits of
significand ``s``, decoding to::

    value = s                       if e == 0
    value = (32 + s) << (e - 1)     otherwise

This spans 0 .. (63 << 30) ≈ 2^36 with even spacing inside each octave —
"values from 0 to almost 2^36" per the paper.  Bandwidth values are in
kilobits per second throughout this repository, giving a ceiling of about
67 Tbps, comfortably above any single reservation.
"""

from __future__ import annotations

EXPONENT_BITS = 5
SIGNIFICAND_BITS = 5
FIELD_BITS = EXPONENT_BITS + SIGNIFICAND_BITS
MAX_CLASS = (1 << FIELD_BITS) - 1
MAX_VALUE = (32 + 31) << 30


def decode(bw_cls: int) -> int:
    """Decode a 10-bit bandwidth class to its integer value (kbps)."""
    if not 0 <= bw_cls <= MAX_CLASS:
        raise ValueError(f"bandwidth class {bw_cls} out of 10-bit range")
    exponent = bw_cls >> SIGNIFICAND_BITS
    significand = bw_cls & ((1 << SIGNIFICAND_BITS) - 1)
    if exponent == 0:
        return significand
    return (32 + significand) << (exponent - 1)


def encode_floor(value: int) -> int:
    """Largest bandwidth class whose decoded value is <= ``value``.

    ASes grant at most what was purchased, so data-plane headers round the
    reservation bandwidth *down* to an encodable class.
    """
    if value < 0:
        raise ValueError("bandwidth cannot be negative")
    if value >= MAX_VALUE:
        return MAX_CLASS
    if value < 32:
        return value
    exponent = value.bit_length() - 5  # so that 32 <= value >> (exponent-1) < 64
    significand = (value >> (exponent - 1)) - 32
    return (exponent << SIGNIFICAND_BITS) | significand


def encode_ceil(value: int) -> int:
    """Smallest bandwidth class whose decoded value is >= ``value``.

    Used when *requesting* bandwidth: the buyer rounds up so the granted
    class covers the application's needs.
    """
    floor_cls = encode_floor(value)
    if decode(floor_cls) >= value:
        return floor_cls
    if floor_cls >= MAX_CLASS:
        raise ValueError(f"bandwidth {value} exceeds the maximum encodable class")
    return floor_cls + 1


def all_classes() -> list[int]:
    """All 1024 decoded class values, ascending (classes are monotone)."""
    return [decode(c) for c in range(MAX_CLASS + 1)]
