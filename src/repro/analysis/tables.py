"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations


def render_table(headers: list[str], rows: list[list], title: str | None = None) -> str:
    """Render an aligned monospace table.

    >>> print(render_table(['a', 'b'], [['1', '22']]))
    a | b
    --+---
    1 | 22
    """
    cells = [[str(value) for value in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in cells:
        for index, value in enumerate(row):
            widths[index] = max(widths[index], len(value))
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells:
        lines.append(" | ".join(v.ljust(w) for v, w in zip(row, widths)))
    return "\n".join(lines)


def render_comparison(
    headers: list[str],
    rows: list[list],
    title: str | None = None,
    note: str | None = None,
) -> str:
    """Table plus an optional trailing note (for paper-vs-measured reports)."""
    text = render_table(headers, rows, title)
    if note:
        text += f"\n{note}"
    return text
