"""Terminal line plots for the figure benchmarks (no matplotlib offline)."""

from __future__ import annotations

_SPARK_LEVELS = "▁▂▃▄▅▆▇█"


def sparkline(values: list[float], width: int | None = None) -> str:
    """Render a sequence as a one-line block-character sparkline.

    >>> sparkline([0, 1, 2, 3])
    '▁▃▅█'
    """
    if not values:
        return ""
    if width is not None and width > 0 and len(values) > width:
        # Downsample by bucket-max so spikes survive compression.
        step = len(values) / width
        values = [
            max(values[int(i * step) : max(int((i + 1) * step), int(i * step) + 1)])
            for i in range(width)
        ]
    low, high = min(values), max(values)
    if high == low:
        return _SPARK_LEVELS[0] * len(values)
    scale = (len(_SPARK_LEVELS) - 1) / (high - low)
    return "".join(_SPARK_LEVELS[int((v - low) * scale)] for v in values)


def line_plot(
    series: dict[str, list[tuple[float, float]]],
    width: int = 64,
    height: int = 18,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render multiple (x, y) series on one character grid.

    Each series gets a marker letter; the legend maps letters to series
    names.  Log-ish axes are the caller's business (pass transformed xs).
    """
    points = [(x, y) for values in series.values() for x, y in values]
    if not points:
        return "(empty plot)"
    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    if x_max == x_min:
        x_max += 1
    if y_max == y_min:
        y_max += 1

    grid = [[" "] * width for _ in range(height)]
    markers = "abcdefghijklmnopqrstuvwxyz"
    legend = []
    for index, (name, values) in enumerate(series.items()):
        marker = markers[index % len(markers)]
        legend.append(f"  {marker} = {name}")
        for x, y in values:
            col = int((x - x_min) / (x_max - x_min) * (width - 1))
            row = height - 1 - int((y - y_min) / (y_max - y_min) * (height - 1))
            current = grid[row][col]
            grid[row][col] = "*" if current not in (" ", marker) else marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_label} (max {y_max:.1f})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f" {x_label}: {x_min:g} .. {x_max:g}   ('*' = overlap)")
    lines.extend(legend)
    return "\n".join(lines)
