"""Analysis helpers: statistics, tables, terminal plots."""

from repro.analysis.ascii_plot import line_plot, sparkline
from repro.analysis.stats import BoxStats, fraction_below, percentile
from repro.analysis.tables import render_comparison, render_table

__all__ = [
    "line_plot",
    "sparkline",
    "BoxStats",
    "fraction_below",
    "percentile",
    "render_comparison",
    "render_table",
]
