"""Statistics helpers: percentiles and boxplot summaries (Fig. 4 style)."""

from __future__ import annotations

from dataclasses import dataclass


def percentile(values: list[float], q: float) -> float:
    """Linear-interpolated percentile, ``q`` in [0, 100]."""
    if not values:
        raise ValueError("no values")
    if not 0 <= q <= 100:
        raise ValueError("percentile must be within [0, 100]")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = q / 100 * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


@dataclass(frozen=True)
class BoxStats:
    """Five-number summary with 5th/95th whiskers, as Fig. 4 plots."""

    p5: float
    q1: float
    median: float
    q3: float
    p95: float
    mean: float
    count: int

    @staticmethod
    def of(values: list[float]) -> "BoxStats":
        if not values:
            raise ValueError("no values")
        return BoxStats(
            p5=percentile(values, 5),
            q1=percentile(values, 25),
            median=percentile(values, 50),
            q3=percentile(values, 75),
            p95=percentile(values, 95),
            mean=sum(values) / len(values),
            count=len(values),
        )

    def row(self, label: str) -> list:
        return [
            label,
            f"{self.p5:.2f}",
            f"{self.q1:.2f}",
            f"{self.median:.2f}",
            f"{self.q3:.2f}",
            f"{self.p95:.2f}",
            f"{self.mean:.2f}",
        ]


def fraction_below(values: list[float], threshold: float) -> float:
    """Share of values strictly below ``threshold`` (the paper's "83 % < 3 s")."""
    if not values:
        raise ValueError("no values")
    return sum(1 for value in values if value < threshold) / len(values)
