"""AES-CMAC message authentication code (RFC 4493 / NIST SP 800-38B).

SCION computes hop-field MACs with AES-CMAC; Hummingbird reuses the same
primitive for inputs longer than a single AES block.  Validated against the
four RFC 4493 test vectors in ``tests/crypto/test_cmac.py``.
"""

from __future__ import annotations

from repro.crypto.aes import AES128, BLOCK_SIZE, xor_bytes

_MSB_MASK = 0x80
_REDUCTION = 0x87  # x^128 + x^7 + x^2 + x + 1


def _left_shift_one(block: bytes) -> bytes:
    """Shift a 16-byte string left by one bit."""
    as_int = int.from_bytes(block, "big")
    shifted = (as_int << 1) & ((1 << 128) - 1)
    return shifted.to_bytes(BLOCK_SIZE, "big")


def derive_subkeys(cipher: AES128) -> tuple[bytes, bytes]:
    """Derive the CMAC subkeys K1 (full final block) and K2 (padded final block)."""
    zero_ciphertext = cipher.encrypt_block(bytes(BLOCK_SIZE))
    k1 = _left_shift_one(zero_ciphertext)
    if zero_ciphertext[0] & _MSB_MASK:
        k1 = k1[:-1] + bytes([k1[-1] ^ _REDUCTION])
    k2 = _left_shift_one(k1)
    if k1[0] & _MSB_MASK:
        k2 = k2[:-1] + bytes([k2[-1] ^ _REDUCTION])
    return k1, k2


class Cmac:
    """AES-CMAC with a cached key schedule and subkeys.

    >>> mac = Cmac(bytes.fromhex('2b7e151628aed2a6abf7158809cf4f3c'))
    >>> mac.compute(b'').hex()
    'bb1d6929e95937287fa37d129b756746'
    """

    __slots__ = ("_cipher", "_k1", "_k2")

    def __init__(self, key: bytes) -> None:
        self._cipher = AES128(key)
        self._k1, self._k2 = derive_subkeys(self._cipher)

    def compute(self, message: bytes) -> bytes:
        """Return the 16-byte CMAC of ``message``."""
        num_blocks = (len(message) + BLOCK_SIZE - 1) // BLOCK_SIZE
        if num_blocks == 0:
            last_block = xor_bytes(_pad(b""), self._k2)
            num_blocks = 1
        else:
            final = message[(num_blocks - 1) * BLOCK_SIZE :]
            if len(final) == BLOCK_SIZE:
                last_block = xor_bytes(final, self._k1)
            else:
                last_block = xor_bytes(_pad(final), self._k2)

        state = bytes(BLOCK_SIZE)
        for i in range(num_blocks - 1):
            block = message[i * BLOCK_SIZE : (i + 1) * BLOCK_SIZE]
            state = self._cipher.encrypt_block(xor_bytes(state, block))
        return self._cipher.encrypt_block(xor_bytes(state, last_block))

    def verify(self, message: bytes, tag: bytes) -> bool:
        """Check ``tag`` (possibly truncated) against the CMAC of ``message``."""
        if not 1 <= len(tag) <= BLOCK_SIZE:
            return False
        return _constant_time_equal(self.compute(message)[: len(tag)], tag)


def _pad(partial_block: bytes) -> bytes:
    """10* padding to a full AES block."""
    return partial_block + b"\x80" + bytes(BLOCK_SIZE - len(partial_block) - 1)


def _constant_time_equal(a: bytes, b: bytes) -> bool:
    if len(a) != len(b):
        return False
    acc = 0
    for x, y in zip(a, b):
        acc |= x ^ y
    return acc == 0


def aes_cmac(key: bytes, message: bytes) -> bytes:
    """One-shot convenience wrapper around :class:`Cmac`."""
    return Cmac(key).compute(message)
