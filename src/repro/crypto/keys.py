"""Reservation key derivation (Eq. 2, Fig. 12) and AS secret values.

Each AS :math:`K` holds a secret value :math:`SV_K` shared among its border
routers.  The authentication key for a reservation is

.. math:: A_K = PRF_{SV_K}(ResInfo_K)

where the PRF input is the 16-byte layout of Fig. 12::

    ConsIngress (16) | ConsEgress (16)
    ResID       (22) | BW         (10)
    ResStart    (32)
    ResDuration (16) | zero padding (16)

The input being exactly one AES block means routers can re-derive keys with
a single block encryption — the statelessness property of §3.1.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.prf import DEFAULT_PRF_FACTORY, PrfFactory

RESINFO_INPUT_SIZE = 16


def pack_resinfo_input(
    ingress: int,
    egress: int,
    res_id: int,
    bw_cls: int,
    res_start: int,
    res_duration: int,
) -> bytes:
    """Serialize reservation parameters into the Fig. 12 key-derivation block."""
    if not 0 <= ingress < 1 << 16:
        raise ValueError(f"ingress interface {ingress} out of 16-bit range")
    if not 0 <= egress < 1 << 16:
        raise ValueError(f"egress interface {egress} out of 16-bit range")
    if not 0 <= res_id < 1 << 22:
        raise ValueError(f"ResID {res_id} out of 22-bit range")
    if not 0 <= bw_cls < 1 << 10:
        raise ValueError(f"bandwidth class {bw_cls} out of 10-bit range")
    if not 0 <= res_start < 1 << 32:
        raise ValueError(f"ResStart {res_start} out of 32-bit range")
    if not 0 <= res_duration < 1 << 16:
        raise ValueError(f"ResDuration {res_duration} out of 16-bit range")
    return (
        ingress.to_bytes(2, "big")
        + egress.to_bytes(2, "big")
        + ((res_id << 10) | bw_cls).to_bytes(4, "big")
        + res_start.to_bytes(4, "big")
        + res_duration.to_bytes(2, "big")
        + b"\x00\x00"
    )


@dataclass(frozen=True)
class SecretValue:
    """An AS-local secret value :math:`SV_K`, shared among border routers."""

    key: bytes

    @staticmethod
    def from_seed(seed: str) -> "SecretValue":
        """Deterministically derive a secret value for simulations/tests."""
        return SecretValue(hashlib.blake2s(seed.encode(), digest_size=16).digest())


def derive_auth_key(
    secret_value: SecretValue,
    ingress: int,
    egress: int,
    res_id: int,
    bw_cls: int,
    res_start: int,
    res_duration: int,
    prf_factory: PrfFactory = DEFAULT_PRF_FACTORY,
) -> bytes:
    """Compute the reservation authentication key :math:`A_K` (Eq. 2)."""
    block = pack_resinfo_input(ingress, egress, res_id, bw_cls, res_start, res_duration)
    return prf_factory(secret_value.key).compute(block)
