"""Pseudo-random function abstraction used throughout Hummingbird.

The paper (§4.1) only requires "a secure pseudo-random function with an
output length sufficient to yield secure symmetric cryptographic keys".
Two interchangeable backends are provided:

``AesPrf``
    AES-128 based, matching the DPDK prototype (§7.1): one-block inputs are a
    single ECB block encryption; longer inputs fall back to AES-CMAC.  This
    is the default everywhere correctness matters.

``Blake2Prf``
    Keyed BLAKE2s from the standard library.  Roughly an order of magnitude
    faster under CPython, useful for large-scale network simulations where
    millions of tags are computed.  Selected via ``PrfFactory('blake2')``.

Both produce 16-byte outputs, so derived values can be used directly as
AES-128 keys.
"""

from __future__ import annotations

import hashlib
from typing import Callable, Protocol

from repro.crypto.aes import AES128, BLOCK_SIZE
from repro.crypto.cmac import Cmac

PRF_OUTPUT_SIZE = 16


class Prf(Protocol):
    """A keyed pseudo-random function with 16-byte output."""

    def compute(self, message: bytes) -> bytes:
        """Return the 16-byte PRF output for ``message``."""
        ...


class AesPrf:
    """AES-128 PRF: ECB for exactly one block, CMAC otherwise.

    Single-block inputs (the reservation-key derivation of Fig. 12 and the
    flyover-MAC input of Fig. 11 are both exactly 16 bytes) map to one AES
    block encryption — the same operation the paper benchmarks at ~43 ns with
    AES-NI in Table 3.
    """

    __slots__ = ("_cipher", "_cmac")

    def __init__(self, key: bytes) -> None:
        self._cipher = AES128(key)
        self._cmac = Cmac(key)

    def compute(self, message: bytes) -> bytes:
        if len(message) == BLOCK_SIZE:
            return self._cipher.encrypt_block(message)
        return self._cmac.compute(message)


class Blake2Prf:
    """Keyed BLAKE2s PRF with 16-byte digests (fast simulation backend)."""

    __slots__ = ("_key",)

    def __init__(self, key: bytes) -> None:
        if len(key) != PRF_OUTPUT_SIZE:
            raise ValueError(f"PRF keys must be 16 bytes, got {len(key)}")
        self._key = key

    def compute(self, message: bytes) -> bytes:
        return hashlib.blake2s(message, key=self._key, digest_size=PRF_OUTPUT_SIZE).digest()


_BACKENDS: dict[str, Callable[[bytes], Prf]] = {
    "aes": AesPrf,
    "blake2": Blake2Prf,
}


class PrfFactory:
    """Create PRF instances for a configured backend.

    The factory is passed down from topology/AS configuration so an entire
    simulation consistently uses one backend.

    >>> factory = PrfFactory('aes')
    >>> prf = factory(bytes(16))
    >>> len(prf.compute(bytes(16)))
    16
    """

    __slots__ = ("backend_name", "_constructor")

    def __init__(self, backend: str = "aes") -> None:
        if backend not in _BACKENDS:
            raise ValueError(f"unknown PRF backend {backend!r}; options: {sorted(_BACKENDS)}")
        self.backend_name = backend
        self._constructor = _BACKENDS[backend]

    def __call__(self, key: bytes) -> Prf:
        return self._constructor(key)

    def __repr__(self) -> str:
        return f"PrfFactory({self.backend_name!r})"


DEFAULT_PRF_FACTORY = PrfFactory("aes")
