"""Public-key envelope used for reservation delivery (§4.2, steps 5-8).

When a host redeems a pair of bandwidth assets, it attaches an *ephemeral
public key*; the issuing AS encrypts ``(ResInfo, A_K)`` under that key and
posts the ciphertext back through the asset contract.  Only the holder of
the ephemeral secret key can recover the reservation authentication key.

The paper does not prescribe a specific scheme.  We implement a compact
ECIES-style KEM/DEM over the multiplicative group of a 2048-bit safe prime
(classic integrated encryption, textbook-honest but implemented from
scratch to keep the repository dependency-free):

* KEM: static-ephemeral Diffie-Hellman in :math:`\\mathbb{Z}_p^*`.
* KDF: BLAKE2s over the shared secret.
* DEM: AES-128 in counter mode with an appended CMAC tag
  (encrypt-then-MAC).

The group operations use Python big integers; a 2048-bit modexp is ~1 ms,
which is irrelevant on the control-plane path (reservation purchase takes
seconds end to end, Fig. 4).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.aes import AES128, BLOCK_SIZE, xor_bytes
from repro.crypto.cmac import Cmac

# RFC 3526 group 14: 2048-bit MODP group (safe prime, generator 2).
MODP_P = int(
    "FFFFFFFFFFFFFFFFC90FDAA22168C234C4C6628B80DC1CD129024E08"
    "8A67CC74020BBEA63B139B22514A08798E3404DDEF9519B3CD3A431B"
    "302B0A6DF25F14374FE1356D6D51C245E485B576625E7EC6F44C42E9"
    "A637ED6B0BFF5CB6F406B7EDEE386BFB5A899FA5AE9F24117C4B1FE6"
    "49286651ECE45B3DC2007CB8A163BF0598DA48361C55D39A69163FA8"
    "FD24CF5F83655D23DCA3AD961C62F356208552BB9ED529077096966D"
    "670C354E4ABC9804F1746C08CA18217C32905E462E36CE3BE39E772C"
    "180E86039B2783A2EC07A28FB5C55DF06F4C52C9DE2BCBF695581718"
    "3995497CEA956AE515D2261898FA051015728E5A8AACAA68FFFFFFFF"
    "FFFFFFFF",
    16,
)
MODP_G = 2
_GROUP_BYTES = 256


@dataclass(frozen=True)
class KeyPair:
    """A Diffie-Hellman keypair; the public part travels inside redeem requests."""

    secret: int
    public: int

    @staticmethod
    def generate(rng) -> "KeyPair":
        """Generate a keypair from a ``random.Random``-like source."""
        secret = rng.randrange(2, MODP_P - 2)
        return KeyPair(secret=secret, public=pow(MODP_G, secret, MODP_P))


@dataclass(frozen=True)
class SealedBox:
    """Ciphertext envelope: ephemeral share, CTR ciphertext, CMAC tag."""

    kem_share: int
    ciphertext: bytes
    tag: bytes

    def serialized_size(self) -> int:
        """Byte size when stored on chain (for gas accounting)."""
        return _GROUP_BYTES + len(self.ciphertext) + len(self.tag)


def _kdf(shared_secret: int, context: bytes) -> tuple[bytes, bytes]:
    """Derive independent encryption and MAC keys from the DH shared secret."""
    material = hashlib.blake2s(
        shared_secret.to_bytes(_GROUP_BYTES, "big") + context, digest_size=32
    ).digest()
    return material[:16], material[16:]


def _ctr_keystream(cipher: AES128, length: int) -> bytes:
    stream = bytearray()
    counter = 0
    while len(stream) < length:
        stream += cipher.encrypt_block(counter.to_bytes(BLOCK_SIZE, "big"))
        counter += 1
    return bytes(stream[:length])


def seal(recipient_public: int, plaintext: bytes, rng, context: bytes = b"hummingbird-resv") -> SealedBox:
    """Encrypt ``plaintext`` so only the holder of the matching secret can read it."""
    ephemeral = KeyPair.generate(rng)
    shared = pow(recipient_public, ephemeral.secret, MODP_P)
    enc_key, mac_key = _kdf(shared, context)
    keystream = _ctr_keystream(AES128(enc_key), len(plaintext))
    ciphertext = xor_bytes(plaintext, keystream)
    tag = Cmac(mac_key).compute(ciphertext)
    return SealedBox(kem_share=ephemeral.public, ciphertext=ciphertext, tag=tag)


def unseal(recipient: KeyPair, box: SealedBox, context: bytes = b"hummingbird-resv") -> bytes:
    """Decrypt a :class:`SealedBox`; raises ``ValueError`` on tag mismatch."""
    shared = pow(box.kem_share, recipient.secret, MODP_P)
    enc_key, mac_key = _kdf(shared, context)
    if Cmac(mac_key).compute(box.ciphertext) != box.tag:
        raise ValueError("sealed box authentication failed")
    keystream = _ctr_keystream(AES128(enc_key), len(box.ciphertext))
    return xor_bytes(box.ciphertext, keystream)
