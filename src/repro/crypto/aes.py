"""Pure-Python AES-128 block cipher (FIPS-197).

Hummingbird derives reservation keys and per-packet authentication tags with
AES-based PRFs (the paper's DPDK prototype uses AES-NI).  This module
implements the cipher from scratch so the repository has no dependency on
OpenSSL-backed packages; it is validated against the FIPS-197 and SP 800-38A
test vectors in ``tests/crypto/test_aes.py``.

Only encryption is needed (CMAC and the one-block PRFs never decrypt), but
the inverse cipher is provided for completeness and for the sealed-delivery
envelope in :mod:`repro.crypto.sealing`.

The implementation favours clarity over raw speed: the S-box and the four
T-tables are precomputed once at import time, and the per-block work is a
straightforward table-lookup round loop.  For throughput-oriented
simulations, :mod:`repro.crypto.prf` offers a keyed-BLAKE2 backend.
"""

from __future__ import annotations

BLOCK_SIZE = 16
KEY_SIZE = 16
NUM_ROUNDS = 10

# ---------------------------------------------------------------------------
# S-box generation (multiplicative inverse in GF(2^8) + affine transform).
# ---------------------------------------------------------------------------


def _gf_mul(a: int, b: int) -> int:
    """Multiply two elements of GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        high = a & 0x80
        a = (a << 1) & 0xFF
        if high:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> tuple[bytes, bytes]:
    """Compute the AES S-box and its inverse from first principles."""
    # Multiplicative inverses via exponentiation by generator 3.
    pow3 = [0] * 256
    log3 = [0] * 256
    value = 1
    for exponent in range(255):
        pow3[exponent] = value
        log3[value] = exponent
        value = _gf_mul(value, 3)
    pow3[255] = pow3[0]

    sbox = bytearray(256)
    inv_sbox = bytearray(256)
    for x in range(256):
        inv = 0 if x == 0 else pow3[255 - log3[x]]
        # Affine transform: b ^ rot(b,1) ^ rot(b,2) ^ rot(b,3) ^ rot(b,4) ^ 0x63
        b = inv
        transformed = 0x63
        for shift in range(5):
            transformed ^= ((b << shift) | (b >> (8 - shift))) & 0xFF
        sbox[x] = transformed
    for x in range(256):
        inv_sbox[sbox[x]] = x
    return bytes(sbox), bytes(inv_sbox)


SBOX, INV_SBOX = _build_sbox()

# Round constants for the key schedule (powers of 2 in GF(2^8)).
_RCON = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36]


def _build_tables() -> tuple[list[int], list[int], list[int], list[int]]:
    """Precompute the four encryption T-tables (SubBytes+ShiftRows+MixColumns)."""
    t0, t1, t2, t3 = [], [], [], []
    for x in range(256):
        s = SBOX[x]
        s2 = _gf_mul(s, 2)
        s3 = _gf_mul(s, 3)
        word = (s2 << 24) | (s << 16) | (s << 8) | s3
        t0.append(word)
        t1.append(((word >> 8) | (word << 24)) & 0xFFFFFFFF)
        t2.append(((word >> 16) | (word << 16)) & 0xFFFFFFFF)
        t3.append(((word >> 24) | (word << 8)) & 0xFFFFFFFF)
    return t0, t1, t2, t3


_T0, _T1, _T2, _T3 = _build_tables()


def expand_key(key: bytes) -> list[int]:
    """Expand a 16-byte key into 44 round-key words (FIPS-197 key schedule).

    This corresponds to the "AES-extend authentication key" step measured in
    Table 3 of the paper: deriving a reservation key :math:`A_K` yields raw
    key bytes, which must be expanded before the flyover MAC can be computed.
    """
    if len(key) != KEY_SIZE:
        raise ValueError(f"AES-128 requires a 16-byte key, got {len(key)} bytes")
    words = [int.from_bytes(key[i : i + 4], "big") for i in range(0, 16, 4)]
    for i in range(4, 4 * (NUM_ROUNDS + 1)):
        temp = words[i - 1]
        if i % 4 == 0:
            temp = ((temp << 8) | (temp >> 24)) & 0xFFFFFFFF  # RotWord
            temp = (
                (SBOX[(temp >> 24) & 0xFF] << 24)
                | (SBOX[(temp >> 16) & 0xFF] << 16)
                | (SBOX[(temp >> 8) & 0xFF] << 8)
                | SBOX[temp & 0xFF]
            )  # SubWord
            temp ^= _RCON[i // 4 - 1] << 24
        words.append(words[i - 4] ^ temp)
    return words


class AES128:
    """AES-128 block cipher with a precomputed key schedule.

    >>> cipher = AES128(bytes(16))
    >>> cipher.encrypt_block(bytes(16)).hex()
    '66e94bd4ef8a2c3b884cfa59ca342b2e'
    """

    __slots__ = ("_round_keys",)

    def __init__(self, key: bytes) -> None:
        self._round_keys = expand_key(key)

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt exactly one 16-byte block."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"AES block must be 16 bytes, got {len(block)}")
        rk = self._round_keys
        s0 = int.from_bytes(block[0:4], "big") ^ rk[0]
        s1 = int.from_bytes(block[4:8], "big") ^ rk[1]
        s2 = int.from_bytes(block[8:12], "big") ^ rk[2]
        s3 = int.from_bytes(block[12:16], "big") ^ rk[3]

        for round_index in range(1, NUM_ROUNDS):
            base = 4 * round_index
            t0 = (
                _T0[(s0 >> 24) & 0xFF]
                ^ _T1[(s1 >> 16) & 0xFF]
                ^ _T2[(s2 >> 8) & 0xFF]
                ^ _T3[s3 & 0xFF]
                ^ rk[base]
            )
            t1 = (
                _T0[(s1 >> 24) & 0xFF]
                ^ _T1[(s2 >> 16) & 0xFF]
                ^ _T2[(s3 >> 8) & 0xFF]
                ^ _T3[s0 & 0xFF]
                ^ rk[base + 1]
            )
            t2 = (
                _T0[(s2 >> 24) & 0xFF]
                ^ _T1[(s3 >> 16) & 0xFF]
                ^ _T2[(s0 >> 8) & 0xFF]
                ^ _T3[s1 & 0xFF]
                ^ rk[base + 2]
            )
            t3 = (
                _T0[(s3 >> 24) & 0xFF]
                ^ _T1[(s0 >> 16) & 0xFF]
                ^ _T2[(s1 >> 8) & 0xFF]
                ^ _T3[s2 & 0xFF]
                ^ rk[base + 3]
            )
            s0, s1, s2, s3 = t0, t1, t2, t3

        # Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
        base = 4 * NUM_ROUNDS
        out = bytearray(16)
        state = (s0, s1, s2, s3)
        for col in range(4):
            word = (
                (SBOX[(state[col] >> 24) & 0xFF] << 24)
                | (SBOX[(state[(col + 1) % 4] >> 16) & 0xFF] << 16)
                | (SBOX[(state[(col + 2) % 4] >> 8) & 0xFF] << 8)
                | SBOX[state[(col + 3) % 4] & 0xFF]
            ) ^ rk[base + col]
            out[4 * col : 4 * col + 4] = word.to_bytes(4, "big")
        return bytes(out)

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt exactly one 16-byte block (straightforward inverse cipher)."""
        if len(block) != BLOCK_SIZE:
            raise ValueError(f"AES block must be 16 bytes, got {len(block)}")
        rk = self._round_keys
        state = bytearray(block)

        def add_round_key(round_index: int) -> None:
            for col in range(4):
                word = rk[4 * round_index + col]
                for row in range(4):
                    state[4 * col + row] ^= (word >> (24 - 8 * row)) & 0xFF

        def inv_shift_rows() -> None:
            for row in range(1, 4):
                column_values = [state[4 * col + row] for col in range(4)]
                for col in range(4):
                    state[4 * col + row] = column_values[(col - row) % 4]

        def inv_sub_bytes() -> None:
            for i in range(16):
                state[i] = INV_SBOX[state[i]]

        def inv_mix_columns() -> None:
            for col in range(4):
                a = state[4 * col : 4 * col + 4]
                state[4 * col + 0] = (
                    _gf_mul(a[0], 14) ^ _gf_mul(a[1], 11) ^ _gf_mul(a[2], 13) ^ _gf_mul(a[3], 9)
                )
                state[4 * col + 1] = (
                    _gf_mul(a[0], 9) ^ _gf_mul(a[1], 14) ^ _gf_mul(a[2], 11) ^ _gf_mul(a[3], 13)
                )
                state[4 * col + 2] = (
                    _gf_mul(a[0], 13) ^ _gf_mul(a[1], 9) ^ _gf_mul(a[2], 14) ^ _gf_mul(a[3], 11)
                )
                state[4 * col + 3] = (
                    _gf_mul(a[0], 11) ^ _gf_mul(a[1], 13) ^ _gf_mul(a[2], 9) ^ _gf_mul(a[3], 14)
                )

        add_round_key(NUM_ROUNDS)
        for round_index in range(NUM_ROUNDS - 1, 0, -1):
            inv_shift_rows()
            inv_sub_bytes()
            add_round_key(round_index)
            inv_mix_columns()
        inv_shift_rows()
        inv_sub_bytes()
        add_round_key(0)
        return bytes(state)


def xor_bytes(a: bytes, b: bytes) -> bytes:
    """XOR two equal-length byte strings."""
    if len(a) != len(b):
        raise ValueError(f"cannot XOR byte strings of lengths {len(a)} and {len(b)}")
    return bytes(x ^ y for x, y in zip(a, b))
