"""Cryptographic substrate: AES-128, AES-CMAC, PRF backends, key derivation.

Everything is implemented from scratch (no OpenSSL dependency) and validated
against FIPS-197 / RFC 4493 test vectors.
"""

from repro.crypto.aes import AES128, BLOCK_SIZE, expand_key, xor_bytes
from repro.crypto.cmac import Cmac, aes_cmac
from repro.crypto.keys import SecretValue, derive_auth_key, pack_resinfo_input
from repro.crypto.prf import (
    DEFAULT_PRF_FACTORY,
    AesPrf,
    Blake2Prf,
    Prf,
    PrfFactory,
)
from repro.crypto.sealing import KeyPair, SealedBox, seal, unseal

__all__ = [
    "AES128",
    "BLOCK_SIZE",
    "expand_key",
    "xor_bytes",
    "Cmac",
    "aes_cmac",
    "SecretValue",
    "derive_auth_key",
    "pack_resinfo_input",
    "DEFAULT_PRF_FACTORY",
    "AesPrf",
    "Blake2Prf",
    "Prf",
    "PrfFactory",
    "KeyPair",
    "SealedBox",
    "seal",
    "unseal",
]
