"""Schnorr signatures over the quadratic-residue subgroup of a safe prime.

Used for AS registration on the control plane (§4.2): an AS proves
possession of the private key matching its CP-PKI certificate before the
asset contract issues it an authorization token, and signs its certificate
bundle.  Implemented from scratch like the rest of the crypto substrate.

The group is QR(p) for the RFC 3526 2048-bit safe prime ``p = 2q + 1``;
``g = 4`` generates the order-``q`` subgroup.  Standard Schnorr:
``r = g^k``, ``e = H(r || m)``, ``s = k + e·x mod q``; verification checks
``g^s == r · y^e``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from repro.crypto.sealing import MODP_P

GROUP_ORDER = (MODP_P - 1) // 2  # prime q
GENERATOR = 4  # 2^2 is a quadratic residue, generates the order-q subgroup


@dataclass(frozen=True)
class SigningKey:
    """A Schnorr private key (exponent in [1, q))."""

    secret: int

    @staticmethod
    def generate(rng) -> "SigningKey":
        return SigningKey(rng.randrange(1, GROUP_ORDER))

    @property
    def public(self) -> int:
        return pow(GENERATOR, self.secret, MODP_P)

    def sign(self, message: bytes, rng) -> "Signature":
        nonce = rng.randrange(1, GROUP_ORDER)
        commitment = pow(GENERATOR, nonce, MODP_P)
        challenge = _challenge(commitment, message)
        response = (nonce + challenge * self.secret) % GROUP_ORDER
        return Signature(commitment=commitment, response=response)


@dataclass(frozen=True)
class Signature:
    commitment: int
    response: int


def verify(public_key: int, message: bytes, signature: Signature) -> bool:
    """Check ``g^s == r * y^e (mod p)``."""
    if not 1 < public_key < MODP_P:
        return False
    challenge = _challenge(signature.commitment, message)
    left = pow(GENERATOR, signature.response, MODP_P)
    right = (signature.commitment * pow(public_key, challenge, MODP_P)) % MODP_P
    return left == right


def _challenge(commitment: int, message: bytes) -> int:
    digest = hashlib.blake2s(
        commitment.to_bytes(256, "big") + message, digest_size=32
    ).digest()
    return int.from_bytes(digest, "big") % GROUP_ORDER
