"""Hummingbird: fast, flexible, and fair inter-domain bandwidth reservations.

A from-scratch Python reproduction of the SIGCOMM 2025 paper, comprising:

* :mod:`repro.hummingbird` — the flyover-reservation data plane (the
  paper's primary contribution);
* :mod:`repro.scion` — the SCION substrate (addressing, beaconing, path
  construction, baseline border router);
* :mod:`repro.ledger` / :mod:`repro.contracts` /
  :mod:`repro.controlplane` — the asset-based smart-contract control plane
  on a Sui-like object ledger;
* :mod:`repro.crypto` / :mod:`repro.wire` — cryptographic and wire-format
  substrates, all implemented from scratch;
* :mod:`repro.netsim` — a discrete-event network simulator for the QoS
  experiments;
* :mod:`repro.perfmodel` / :mod:`repro.analysis` — throughput models and
  report rendering that regenerate every table and figure of the paper's
  evaluation.

Quickstart: see ``examples/quickstart.py`` for the complete walkthrough
from market deployment to priority forwarding.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
