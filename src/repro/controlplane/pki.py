"""Control-plane PKI for ASes (§3.2: RPKI / SCION CP-PKI stand-in).

A single trust anchor signs AS certificates binding (ISD, AS number) to a
Schnorr public key.  The asset contract holds a reference to the anchor's
public key and verifies certificates during AS registration; possession of
the certified key is proven with a signature over the registering address.

Certificates are plain dicts (ledger-serializable): all group elements are
fixed-width byte strings so storage gas sees realistic sizes.
"""

from __future__ import annotations

import random

from repro.crypto.signatures import Signature, SigningKey, verify
from repro.scion.addresses import IsdAs

_KEY_BYTES = 256


def _cert_message(isd: int, asn: int, public_key: bytes) -> bytes:
    return b"as-cert:" + isd.to_bytes(2, "big") + asn.to_bytes(6, "big") + public_key


class CpPki:
    """The control-plane trust anchor."""

    def __init__(self, seed: int = 2024) -> None:
        self._rng = random.Random(seed)
        self._root = SigningKey.generate(self._rng)

    @property
    def root_public_key(self) -> int:
        return self._root.public

    def issue_certificate(self, isd_as: IsdAs, subject_public_key: int) -> dict:
        """Sign a certificate for an AS's Schnorr public key."""
        public_bytes = subject_public_key.to_bytes(_KEY_BYTES, "big")
        signature = self._root.sign(
            _cert_message(isd_as.isd, isd_as.asn, public_bytes), self._rng
        )
        return {
            "isd": isd_as.isd,
            "asn": isd_as.asn,
            "public_key": public_bytes,
            "sig_commitment": signature.commitment.to_bytes(_KEY_BYTES, "big"),
            "sig_response": signature.response.to_bytes(_KEY_BYTES, "big"),
        }

    def verify_certificate(self, certificate: dict) -> bool:
        """Check the anchor signature over (ISD, ASN, public key)."""
        try:
            message = _cert_message(
                certificate["isd"], certificate["asn"], certificate["public_key"]
            )
            signature = Signature(
                commitment=int.from_bytes(certificate["sig_commitment"], "big"),
                response=int.from_bytes(certificate["sig_response"], "big"),
            )
        except (KeyError, TypeError):
            return False
        return verify(self._root.public, message, signature)


def subject_public_key(certificate: dict) -> int:
    """Extract the certified Schnorr public key as an integer."""
    return int.from_bytes(certificate["public_key"], "big")
