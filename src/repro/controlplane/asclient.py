"""AS-side control-plane service ("Hummingbird Service", §3.2 AS stack).

Responsibilities:

* register the AS with the asset contract (CP-PKI certificate + proof of
  possession);
* issue bandwidth assets for the AS's interfaces and list them on a
  marketplace;
* watch the event stream for redeem requests addressed to this AS;
* for each request: assign a ResID (online First-Fit interval colouring
  per ingress interface), derive the reservation key :math:`A_K` from the
  AS-local secret value, seal ``(ResInfo, A_K)`` under the redeemer's
  ephemeral public key, and deliver it through the asset contract (a
  fast-path transaction — only owned objects are touched).
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass

from repro.contracts.asset import DELIVERY_TYPE, REQUEST_TYPE
from repro.crypto.prf import DEFAULT_PRF_FACTORY, PrfFactory
from repro.crypto.sealing import seal
from repro.hummingbird.reservation import ResInfo, grant_reservation
from repro.hummingbird.resid import CapacityExhausted, ResIdAllocator
from repro.ledger.accounts import Account
from repro.ledger.executor import LedgerExecutor, SubmittedTransaction
from repro.ledger.transactions import Command, Result, Transaction
from repro.scion.topology import AutonomousSystem
from repro.wire import bwcls

DEFAULT_GRANULARITY = 60  # seconds: minimum reservation duration an AS supports
DEFAULT_MIN_BANDWIDTH = 100  # kbps: VoIP-sized minimum reservation (§4.4)
DEFAULT_RESID_CAPACITY = 100_000


@dataclass
class DeliveryRecord:
    """Bookkeeping for one handled redeem request."""

    request_id: str
    delivery_id: str
    res_id: int
    submitted: SubmittedTransaction


class AsService:
    """The per-AS control-plane daemon."""

    def __init__(
        self,
        autonomous_system: AutonomousSystem,
        account: Account,
        executor: LedgerExecutor,
        pki,
        rng: random.Random | None = None,
        prf_factory: PrfFactory = DEFAULT_PRF_FACTORY,
        resid_capacity: int = DEFAULT_RESID_CAPACITY,
    ) -> None:
        self.autonomous_system = autonomous_system
        self.account = account
        self.executor = executor
        self.pki = pki
        self.rng = rng if rng is not None else random.Random(autonomous_system.isd_as.asn)
        self.prf_factory = prf_factory
        self.token_id: str | None = None
        self.seller_cap: str | None = None
        self._allocators: dict[int, ResIdAllocator] = {}
        self._resid_capacity = resid_capacity
        self._last_checkpoint = 0

    @property
    def isd_as(self):
        return self.autonomous_system.isd_as

    # -- registration -----------------------------------------------------------

    def register(self) -> SubmittedTransaction:
        """Obtain the authorization token (Fig. 2 prerequisite)."""
        certificate = self.pki.issue_certificate(self.isd_as, self.account.signing_key.public)
        proof = self.account.signing_key.sign(self.account.address.encode(), self.rng)
        submitted = self.executor.submit(
            Transaction(
                sender=self.account.address,
                commands=[
                    Command(
                        "asset",
                        "register_as",
                        {
                            "certificate": certificate,
                            "commitment": proof.commitment,
                            "response": proof.response,
                        },
                    )
                ],
            )
        )
        if submitted.effects.ok:
            self.token_id = submitted.effects.returns[0]["token"]
        return submitted

    def register_as_seller(self, marketplace: str) -> SubmittedTransaction:
        submitted = self.executor.submit(
            Transaction(
                sender=self.account.address,
                commands=[
                    Command("market", "register_seller", {"marketplace": marketplace})
                ],
            )
        )
        if submitted.effects.ok:
            self.seller_cap = submitted.effects.returns[0]["cap"]
        return submitted

    # -- issuance ---------------------------------------------------------------

    def issue_and_list(
        self,
        marketplace: str,
        interface: int,
        is_ingress: bool,
        bandwidth_kbps: int,
        start: int,
        expiry: int,
        price_micromist_per_unit: int,
        granularity: int = DEFAULT_GRANULARITY,
        min_bandwidth_kbps: int = DEFAULT_MIN_BANDWIDTH,
    ) -> SubmittedTransaction:
        """Issue one large asset and put it on the market (Fig. 2, steps 2-3)."""
        if self.token_id is None:
            raise RuntimeError("AS must register before issuing assets")
        return self.executor.submit(
            Transaction(
                sender=self.account.address,
                commands=[
                    Command(
                        "asset",
                        "issue",
                        {
                            "token": self.token_id,
                            "bandwidth_kbps": bandwidth_kbps,
                            "start": start,
                            "expiry": expiry,
                            "interface": interface,
                            "is_ingress": is_ingress,
                            "granularity": granularity,
                            "min_bandwidth_kbps": min_bandwidth_kbps,
                        },
                    ),
                    Command(
                        "market",
                        "create_listing",
                        {
                            "marketplace": marketplace,
                            "asset": Result(0, "asset"),
                            "price_micromist_per_unit": price_micromist_per_unit,
                        },
                    ),
                ],
            )
        )

    # -- redemption handling -------------------------------------------------------

    def poll_and_deliver(self) -> list[DeliveryRecord]:
        """Handle all pending redeem requests addressed to this AS (steps 6-8)."""
        ledger = self.executor.ledger
        events = ledger.events_since(self._last_checkpoint, "RedeemRequested")
        self._last_checkpoint = ledger.checkpoint
        records: list[DeliveryRecord] = []
        for event in events:
            if (event.payload["isd"], event.payload["asn"]) != (
                self.isd_as.isd,
                self.isd_as.asn,
            ):
                continue
            request_id = event.payload["request"]
            if request_id not in ledger.objects:
                continue  # already delivered
            records.append(self._deliver(ledger.get_object(request_id)))
        return records

    def _deliver(self, request) -> DeliveryRecord:
        payload = request.payload
        ingress_if = payload["ingress"]["interface"]
        egress_if = payload["egress"]["interface"]
        start = payload["ingress"]["start"]
        expiry = payload["ingress"]["expiry"]
        bw_cls = bwcls.encode_floor(payload["ingress"]["bandwidth_kbps"])
        res_id = self._allocator(ingress_if).allocate(start, expiry)
        resinfo = ResInfo(
            ingress=ingress_if,
            egress=egress_if,
            res_id=res_id,
            bw_cls=bw_cls,
            start=start,
            duration=expiry - start,
        )
        reservation = grant_reservation(
            self.isd_as,
            self.autonomous_system.secret_value,
            resinfo,
            self.prf_factory,
        )
        plaintext = json.dumps(
            {
                "isd": self.isd_as.isd,
                "asn": self.isd_as.asn,
                "ingress": resinfo.ingress,
                "egress": resinfo.egress,
                "res_id": resinfo.res_id,
                "bw_cls": resinfo.bw_cls,
                "start": resinfo.start,
                "duration": resinfo.duration,
                "auth_key": reservation.auth_key.hex(),
            }
        ).encode()
        recipient_public = int.from_bytes(payload["public_key"], "big")
        box = seal(recipient_public, plaintext, self.rng)
        submitted = self.executor.submit(
            Transaction(
                sender=self.account.address,
                commands=[
                    Command(
                        "asset",
                        "deliver_reservation",
                        {
                            "request": request.object_id,
                            "kem_share": box.kem_share.to_bytes(256, "big"),
                            "ciphertext": box.ciphertext,
                            "tag": box.tag,
                        },
                    )
                ],
            )
        )
        if not submitted.effects.ok:
            raise RuntimeError(f"delivery failed: {submitted.effects.error}")
        return DeliveryRecord(
            request_id=request.object_id,
            delivery_id=submitted.effects.returns[0]["delivery"],
            res_id=res_id,
            submitted=submitted,
        )

    def _allocator(self, ingress_if: int) -> ResIdAllocator:
        allocator = self._allocators.get(ingress_if)
        if allocator is None:
            allocator = ResIdAllocator(self._resid_capacity)
            self._allocators[ingress_if] = allocator
        return allocator

    def pending_requests(self) -> list:
        """Redeem requests currently owned by this AS (test helper)."""
        return self.executor.ledger.objects_owned_by(self.account.address, REQUEST_TYPE)
