"""AS-side control-plane service ("Hummingbird Service", §3.2 AS stack).

Responsibilities:

* register the AS with the asset contract (CP-PKI certificate + proof of
  possession);
* issue bandwidth assets for the AS's interfaces and list them on a
  marketplace;
* watch the event stream for redeem requests addressed to this AS;
* for each request: assign a ResID (online First-Fit interval colouring
  per ingress interface), derive the reservation key :math:`A_K` from the
  AS-local secret value, seal ``(ResInfo, A_K)`` under the redeemer's
  ephemeral public key, and deliver it through the asset contract (a
  fast-path transaction — only owned objects are touched).

Every issuance and every delivery first passes the AS's
:class:`~repro.admission.AdmissionController`: the *issued* capacity
calendar stops the AS from overselling an interface across overlapping
asset windows, the *active* calendar accounts delivered reservations, and
the controller's pricer turns utilization into the scarcity-adjusted
listing price.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass

from repro.admission import ACTIVE, AUCTION, AdmissionController, AdmissionRejected
from repro.admission.auction import Bid, ClearingOutcome, WindowAuction
from repro.contracts.asset import REQUEST_TYPE
from repro.crypto.prf import DEFAULT_PRF_FACTORY, PrfFactory
from repro.crypto.sealing import seal
from repro.hummingbird.reservation import ResInfo, grant_reservation
from repro.hummingbird.resid import CapacityExhausted, ResIdAllocator
from repro.ledger.accounts import Account
from repro.ledger.executor import LedgerExecutor, SubmittedTransaction
from repro.ledger.transactions import Command, Result, Transaction
from repro.scion.topology import AutonomousSystem
from repro.telemetry import get_registry
from repro.telemetry.tracing import current_trace
from repro.wire import bwcls

DEFAULT_GRANULARITY = 60  # seconds: minimum reservation duration an AS supports
DEFAULT_MIN_BANDWIDTH = 100  # kbps: VoIP-sized minimum reservation (§4.4)
DEFAULT_RESID_CAPACITY = 100_000
DEFAULT_INTERFACE_CAPACITY_KBPS = 10_000_000  # 10 Gbps per interface direction


@dataclass
class DeliveryRecord:
    """Bookkeeping for one handled redeem request."""

    request_id: str
    delivery_id: str
    res_id: int
    submitted: SubmittedTransaction


@dataclass
class OpenAuctionRecord:
    """One on-chain auction this AS opened and has not yet settled."""

    auction_id: str
    marketplace: str
    interface: int
    is_ingress: bool
    bandwidth_kbps: int
    start: int
    expiry: int
    reserve_micromist_per_unit: int
    commitment: object  # the issued-calendar claim backing the asset


@dataclass
class SettlementRecord:
    """One settled auction: the on-chain result plus the transaction."""

    auction_id: str
    clearing_price_micromist: int
    awarded_kbps: int
    proceeds_mist: int
    supply_kbps: int
    listing: str | None
    winners: list[dict]
    submitted: SubmittedTransaction


@dataclass
class PathLegRecord:
    """One leg this AS contributed to a combinatorial path auction."""

    path_auction: str
    marketplace: str
    leg_index: int
    interface: int
    is_ingress: bool
    bandwidth_kbps: int
    start: int
    expiry: int
    reserve_micromist_per_unit: int
    commitment: object  # the issued-calendar claim backing the leg asset


@dataclass
class PathSettlementRecord:
    """One settled path auction: the on-chain result plus the transaction."""

    path_auction: str
    clearing_prices_micromist: list[int]
    proceeds_mist: int
    supplies_kbps: list[int]
    winners: list[dict]
    legs: list[dict]
    submitted: SubmittedTransaction


class AsService:
    """The per-AS control-plane daemon."""

    def __init__(
        self,
        autonomous_system: AutonomousSystem,
        account: Account,
        executor: LedgerExecutor,
        pki,
        rng: random.Random | None = None,
        prf_factory: PrfFactory = DEFAULT_PRF_FACTORY,
        resid_capacity: int = DEFAULT_RESID_CAPACITY,
        admission: AdmissionController | None = None,
        interface_capacity_kbps: int = DEFAULT_INTERFACE_CAPACITY_KBPS,
        shard_seconds: float | None = None,
        engine=None,
    ) -> None:
        self.autonomous_system = autonomous_system
        self.account = account
        self.executor = executor
        self.pki = pki
        self.rng = rng if rng is not None else random.Random(autonomous_system.isd_as.asn)
        self.prf_factory = prf_factory
        self.token_id: str | None = None
        self.seller_cap: str | None = None
        self._allocators: dict[int, ResIdAllocator] = {}
        self._resid_capacity = resid_capacity
        self._last_checkpoint = 0
        self.admission = (
            admission
            if admission is not None
            else AdmissionController(
                interface_capacity_kbps, shard_seconds=shard_seconds, engine=engine
            )
        )
        # (request_id, reason) pairs this AS declined to serve.
        self.undeliverable: list[tuple[str, str]] = []
        # Sealed-bid auctions: open books, settled results, bid-event cursor.
        self.open_auctions: dict[str, OpenAuctionRecord] = {}
        self.settlements: list[SettlementRecord] = []
        self._bid_checkpoint = 0
        # Combinatorial path auctions: legs this AS contributed, by
        # (path auction id, leg index), plus settled results.
        self.path_legs: dict[tuple[str, int], PathLegRecord] = {}
        self.path_settlements: list[PathSettlementRecord] = []
        # No-show reclamation (armed by enable_reclamation).
        self.reclamation = None
        self._relist_marketplace: str | None = None
        self._relist_base_micromist: int | None = None
        self._relist_granularity = DEFAULT_GRANULARITY
        self._relist_min_bandwidth = DEFAULT_MIN_BANDWIDTH
        # (event, listing id or None, reason) per reclaimed reservation.
        self.relisted: list[tuple[object, str | None, str]] = []
        registry = get_registry()
        self._telemetry = registry.enabled
        self._m_deliveries = registry.counter(
            "as_deliveries_total",
            "Redeem requests handled, by outcome.",
            ("isd_as", "outcome"),
        )
        self._m_settlements = registry.counter(
            "as_auction_settlements_total",
            "Auction settlements, by whether any bandwidth was awarded.",
            ("isd_as", "outcome"),
        )
        self._m_proceeds = registry.counter(
            "as_auction_proceeds_mist_total",
            "MIST proceeds across settled auctions.",
            ("isd_as",),
        )
        self._m_awarded = registry.counter(
            "as_auction_awarded_kbps_total",
            "Bandwidth awarded to auction winners, in kbps.",
            ("isd_as",),
        )
        self._m_path_legs = registry.counter(
            "as_path_legs_total",
            "Legs this AS contributed to combinatorial path auctions.",
            ("isd_as",),
        )
        self._m_path_settlements = registry.counter(
            "as_path_settlements_total",
            "Path auction settlements, by whether any path bid won.",
            ("isd_as", "outcome"),
        )

    @property
    def isd_as(self):
        return self.autonomous_system.isd_as

    def close(self) -> None:
        """Release the admission controller's shard-engine resources."""
        self.admission.close()

    # -- registration -----------------------------------------------------------

    def register(self) -> SubmittedTransaction:
        """Obtain the authorization token (Fig. 2 prerequisite)."""
        certificate = self.pki.issue_certificate(self.isd_as, self.account.signing_key.public)
        proof = self.account.signing_key.sign(self.account.address.encode(), self.rng)
        submitted = self.executor.submit(
            Transaction(
                sender=self.account.address,
                commands=[
                    Command(
                        "asset",
                        "register_as",
                        {
                            "certificate": certificate,
                            "commitment": proof.commitment,
                            "response": proof.response,
                        },
                    )
                ],
            )
        )
        if submitted.effects.ok:
            self.token_id = submitted.effects.returns[0]["token"]
        return submitted

    def register_as_seller(self, marketplace: str) -> SubmittedTransaction:
        submitted = self.executor.submit(
            Transaction(
                sender=self.account.address,
                commands=[
                    Command("market", "register_seller", {"marketplace": marketplace})
                ],
            )
        )
        if submitted.effects.ok:
            self.seller_cap = submitted.effects.returns[0]["cap"]
        return submitted

    # -- issuance ---------------------------------------------------------------

    def issue_and_list(
        self,
        marketplace: str,
        interface: int,
        is_ingress: bool,
        bandwidth_kbps: int,
        start: int,
        expiry: int,
        price_micromist_per_unit: int,
        granularity: int = DEFAULT_GRANULARITY,
        min_bandwidth_kbps: int = DEFAULT_MIN_BANDWIDTH,
    ) -> SubmittedTransaction:
        """Issue one large asset and put it on the market (Fig. 2, steps 2-3).

        The asset must first clear the *issued* capacity calendar for its
        interface direction (no overselling across overlapping windows);
        the listing price is the caller's base price scaled by the
        interface's scarcity multiplier at issuance time.
        """
        if self.token_id is None:
            raise RuntimeError("AS must register before issuing assets")
        quoted_price = self.admission.quote(
            price_micromist_per_unit, interface, is_ingress, start, expiry
        )
        decision = self.admission.admit_issue(
            interface,
            is_ingress,
            bandwidth_kbps,
            start,
            expiry,
            tag=f"issue:{self.isd_as}",
        )
        if not decision.admitted:
            raise AdmissionRejected(
                f"{self.isd_as} interface {interface} "
                f"({'ingress' if is_ingress else 'egress'}): {decision.reason}"
            )
        submitted = self.executor.submit(
            Transaction(
                sender=self.account.address,
                commands=[
                    Command(
                        "asset",
                        "issue",
                        {
                            "token": self.token_id,
                            "bandwidth_kbps": bandwidth_kbps,
                            "start": start,
                            "expiry": expiry,
                            "interface": interface,
                            "is_ingress": is_ingress,
                            "granularity": granularity,
                            "min_bandwidth_kbps": min_bandwidth_kbps,
                        },
                    ),
                    Command(
                        "market",
                        "create_listing",
                        {
                            "marketplace": marketplace,
                            "asset": Result(0, "asset"),
                            "price_micromist_per_unit": quoted_price,
                        },
                    ),
                ],
            )
        )
        if not submitted.effects.ok:
            # The ledger refused the asset: hand its capacity back.
            self.admission.release(interface, is_ingress, decision.commitment)
        return submitted

    def cancel_listing(self, marketplace: str, listing: str) -> SubmittedTransaction:
        """Take one of this AS's unsold listings off the market.

        The asset returns to the AS's account; the contract emits
        ``Delisted`` so off-chain indexes drop the listing incrementally.
        Issued-calendar capacity stays committed — the asset still exists
        and can be relisted.
        """
        return self.executor.submit(
            Transaction(
                sender=self.account.address,
                commands=[
                    Command(
                        "market",
                        "cancel_listing",
                        {"marketplace": marketplace, "listing": listing},
                    )
                ],
            )
        )

    # -- auctions -----------------------------------------------------------------

    def offer_capacity(
        self,
        marketplace: str,
        interface: int,
        is_ingress: bool,
        bandwidth_kbps: int,
        start: int,
        expiry: int,
        base_price_micromist: int,
        granularity: int = DEFAULT_GRANULARITY,
        min_bandwidth_kbps: int = DEFAULT_MIN_BANDWIDTH,
    ) -> SubmittedTransaction:
        """Put capacity on the market the way this interface is configured.

        Dispatches on the admission controller's per-interface allocation
        mode: auction-mode interfaces open a sealed-bid auction for the
        window (:meth:`open_auction`), posted-mode interfaces list at the
        scarcity-adjusted quote (:meth:`issue_and_list`).  Either way the
        issued capacity calendar is claimed first, so the two modes share
        one oversell guarantee.
        """
        if self.admission.allocation_mode(interface, is_ingress) == AUCTION:
            return self.open_auction(
                marketplace,
                interface,
                is_ingress,
                bandwidth_kbps,
                start,
                expiry,
                base_price_micromist,
                granularity,
                min_bandwidth_kbps,
            )
        return self.issue_and_list(
            marketplace,
            interface,
            is_ingress,
            bandwidth_kbps,
            start,
            expiry,
            base_price_micromist,
            granularity,
            min_bandwidth_kbps,
        )

    def open_auction(
        self,
        marketplace: str,
        interface: int,
        is_ingress: bool,
        bandwidth_kbps: int,
        start: int,
        expiry: int,
        reserve_base_micromist: int,
        granularity: int = DEFAULT_GRANULARITY,
        min_bandwidth_kbps: int = DEFAULT_MIN_BANDWIDTH,
    ) -> SubmittedTransaction:
        """Issue an asset and open a sealed-bid auction for its window.

        Like :meth:`issue_and_list`, the asset must first clear the
        *issued* capacity calendar.  The auction's reserve price is the
        scarcity-adjusted quote over ``reserve_base_micromist`` (computed
        *before* the asset claims the calendar, like a listing's price),
        and the per-bidder share cap comes from the controller's
        proportional-share policy when one is installed.

        Raises:
            RuntimeError: the AS has not registered.
            ValueError: the interface direction is not in auction mode.
            AdmissionRejected: the window would oversell the interface.
        """
        if self.token_id is None:
            raise RuntimeError("AS must register before issuing assets")
        # Registers the book (and quotes the reserve) before the issued
        # calendar is touched, so the reserve reflects pre-auction scarcity.
        book = self.admission.open_auction(
            interface,
            is_ingress,
            bandwidth_kbps,
            start,
            expiry,
            reserve_base_micromist,
            min_fragment_kbps=min_bandwidth_kbps,
        )
        decision = self.admission.admit_issue(
            interface,
            is_ingress,
            bandwidth_kbps,
            start,
            expiry,
            tag=f"auction:{self.isd_as}",
        )
        if not decision.admitted:
            self.admission.close_auction(interface, is_ingress, start, expiry)
            raise AdmissionRejected(
                f"{self.isd_as} interface {interface} "
                f"({'ingress' if is_ingress else 'egress'}): {decision.reason}"
            )
        submitted = self.executor.submit(
            Transaction(
                sender=self.account.address,
                commands=[
                    Command(
                        "asset",
                        "issue",
                        {
                            "token": self.token_id,
                            "bandwidth_kbps": bandwidth_kbps,
                            "start": start,
                            "expiry": expiry,
                            "interface": interface,
                            "is_ingress": is_ingress,
                            "granularity": granularity,
                            "min_bandwidth_kbps": min_bandwidth_kbps,
                        },
                    ),
                    Command(
                        "market",
                        "create_auction",
                        {
                            "marketplace": marketplace,
                            "asset": Result(0, "asset"),
                            "reserve_micromist_per_unit": book.reserve_micromist,
                            "share_cap_kbps": book.share_cap_kbps,
                        },
                    ),
                ],
            )
        )
        if not submitted.effects.ok:
            # The ledger refused: hand back the capacity and drop the book.
            self.admission.release(interface, is_ingress, decision.commitment)
            self.admission.close_auction(interface, is_ingress, start, expiry)
            return submitted
        auction_id = submitted.effects.returns[1]["auction"]
        self.open_auctions[auction_id] = OpenAuctionRecord(
            auction_id=auction_id,
            marketplace=marketplace,
            interface=interface,
            is_ingress=is_ingress,
            bandwidth_kbps=bandwidth_kbps,
            start=start,
            expiry=expiry,
            reserve_micromist_per_unit=book.reserve_micromist,
            commitment=decision.commitment,
        )
        return submitted

    def poll_bids(self) -> int:
        """Mirror new on-chain ``BidPlaced`` events into the local books.

        The ledger's escrowed bid objects are authoritative; the admission
        layer keeps an identical :class:`WindowAuction` book per open
        auction so supply checks and settlement previews never touch the
        object store.  Returns how many bids were mirrored.
        """
        ledger = self.executor.ledger
        events = ledger.events_since(self._bid_checkpoint, "BidPlaced")
        self._bid_checkpoint = ledger.checkpoint
        mirrored = 0
        for event in events:
            record = self.open_auctions.get(event.payload["auction"])
            if record is None:
                continue
            book = self.admission.auction_for(
                record.interface, record.is_ingress, record.start, record.expiry
            )
            if book is None:
                continue
            book.bids.append(
                Bid(
                    bidder=event.payload["bidder"],
                    bandwidth_kbps=event.payload["bandwidth_kbps"],
                    price_micromist_per_unit=event.payload[
                        "price_micromist_per_unit"
                    ],
                    seq=event.payload["seq"],
                )
            )
            mirrored += 1
        return mirrored

    def preview_settlement(self, auction_id: str) -> ClearingOutcome:
        """What settling this auction *right now* would decide.

        Runs the exact clearing function the contract will run, against
        the mirrored book and the current supply (offered bandwidth
        clamped by live active-calendar headroom).  Because clearing is
        deterministic, the preview equals the on-chain outcome unless new
        bids land in between.

        Raises:
            KeyError: unknown or already-settled auction.
        """
        record = self.open_auctions[auction_id]
        self.poll_bids()
        book = self.admission.auction_for(
            record.interface, record.is_ingress, record.start, record.expiry
        )
        supply = self.admission.settle_supply(
            record.interface,
            record.is_ingress,
            record.start,
            record.expiry,
            record.bandwidth_kbps,
        )
        return book.clear(supply)

    def settle_due_auctions(self, now: float | None = None) -> list[SettlementRecord]:
        """Settle every open auction whose window has started.

        The periodic housekeeping entry point: call it at (or after) each
        window boundary.  For each due auction the supply is clamped by
        :meth:`~repro.admission.AdmissionController.settle_supply` — a
        window that lost active-calendar headroom since the auction opened
        sells less than was offered — and the settle transaction clears,
        pays, and refunds atomically on-chain.

        Returns:
            A :class:`SettlementRecord` per settled auction.

        Raises:
            RuntimeError: the ledger refused a settle transaction.
        """
        when = now if now is not None else self.executor.clock.now()
        self.poll_bids()
        settled: list[SettlementRecord] = []
        for auction_id, record in list(self.open_auctions.items()):
            if record.start > when:
                continue
            supply = self.admission.settle_supply(
                record.interface,
                record.is_ingress,
                record.start,
                record.expiry,
                record.bandwidth_kbps,
            )
            submitted = self.executor.submit(
                Transaction(
                    sender=self.account.address,
                    commands=[
                        Command(
                            "market",
                            "settle_auction",
                            {
                                "marketplace": record.marketplace,
                                "auction": auction_id,
                                "supply_kbps": supply,
                            },
                        )
                    ],
                )
            )
            if not submitted.effects.ok:
                raise RuntimeError(
                    f"settle of auction {auction_id[:8]}... failed: "
                    f"{submitted.effects.error}"
                )
            result = submitted.effects.returns[0]
            self.admission.close_auction(
                record.interface, record.is_ingress, record.start, record.expiry
            )
            del self.open_auctions[auction_id]
            outcome = SettlementRecord(
                auction_id=auction_id,
                clearing_price_micromist=result["clearing_price_micromist"],
                awarded_kbps=result["awarded_kbps"],
                proceeds_mist=result["proceeds_mist"],
                supply_kbps=supply,
                listing=result["listing"],
                winners=result["winners"],
                submitted=submitted,
            )
            self.settlements.append(outcome)
            settled.append(outcome)
            if self._telemetry:
                key = str(self.isd_as)
                self._m_settlements.labels(
                    key, "cleared" if outcome.awarded_kbps > 0 else "unsold"
                ).inc()
                self._m_proceeds.labels(key).inc(outcome.proceeds_mist)
                self._m_awarded.labels(key).inc(outcome.awarded_kbps)
            trace = current_trace()
            if trace is not None:
                trace.event(
                    "auction.settle",
                    auction=auction_id,
                    clearing_price_micromist=outcome.clearing_price_micromist,
                    awarded_kbps=outcome.awarded_kbps,
                    supply_kbps=supply,
                    winners=len(outcome.winners),
                )
        return settled

    # -- combinatorial path auctions ------------------------------------------------

    def open_path_auction(self, marketplace: str, num_legs: int) -> SubmittedTransaction:
        """Open the shell of a combinatorial path auction (creator role).

        The creator only declares the leg count; each on-path AS then
        contributes its own legs via :meth:`contribute_path_leg` — a path
        over N AS crossings has ``2 * N`` legs (ingress and egress per
        crossing).  Bidding opens once the last leg lands.
        """
        return self.executor.submit(
            Transaction(
                sender=self.account.address,
                commands=[
                    Command(
                        "market",
                        "create_path_auction",
                        {"marketplace": marketplace, "num_legs": num_legs},
                    )
                ],
            )
        )

    def contribute_path_leg(
        self,
        marketplace: str,
        path_auction: str,
        leg_index: int,
        interface: int,
        is_ingress: bool,
        bandwidth_kbps: int,
        start: int,
        expiry: int,
        base_price_micromist: int,
        granularity: int = DEFAULT_GRANULARITY,
        min_bandwidth_kbps: int = DEFAULT_MIN_BANDWIDTH,
    ) -> SubmittedTransaction:
        """Issue this AS's leg asset and place it in the path auction.

        Like every issuance, the leg must first clear the *issued*
        capacity calendar; the leg's reserve price is the
        scarcity-adjusted quote over ``base_price_micromist`` and the
        per-bidder share cap comes from the controller's
        proportional-share policy when one is installed.  A ledger
        refusal hands the calendar claim straight back.

        Raises:
            RuntimeError: the AS has not registered.
            AdmissionRejected: the window would oversell the interface.
        """
        if self.token_id is None:
            raise RuntimeError("AS must register before issuing assets")
        reserve = self.admission.quote(
            base_price_micromist, interface, is_ingress, start, expiry
        )
        decision = self.admission.admit_issue(
            interface,
            is_ingress,
            bandwidth_kbps,
            start,
            expiry,
            tag=f"pathleg:{self.isd_as}",
        )
        if not decision.admitted:
            raise AdmissionRejected(
                f"{self.isd_as} interface {interface} "
                f"({'ingress' if is_ingress else 'egress'}): {decision.reason}"
            )
        submitted = self.executor.submit(
            Transaction(
                sender=self.account.address,
                commands=[
                    Command(
                        "asset",
                        "issue",
                        {
                            "token": self.token_id,
                            "bandwidth_kbps": bandwidth_kbps,
                            "start": start,
                            "expiry": expiry,
                            "interface": interface,
                            "is_ingress": is_ingress,
                            "granularity": granularity,
                            "min_bandwidth_kbps": min_bandwidth_kbps,
                        },
                    ),
                    Command(
                        "market",
                        "contribute_path_leg",
                        {
                            "marketplace": marketplace,
                            "path_auction": path_auction,
                            "leg_index": leg_index,
                            "asset": Result(0, "asset"),
                            "reserve_micromist_per_unit": reserve,
                            "share_cap_kbps": self.admission.share_cap_kbps(
                                interface, is_ingress
                            ),
                        },
                    ),
                ],
            )
        )
        if not submitted.effects.ok:
            # The ledger refused the leg: hand its capacity back.
            self.admission.release(interface, is_ingress, decision.commitment)
            return submitted
        self.path_legs[(path_auction, leg_index)] = PathLegRecord(
            path_auction=path_auction,
            marketplace=marketplace,
            leg_index=leg_index,
            interface=interface,
            is_ingress=is_ingress,
            bandwidth_kbps=bandwidth_kbps,
            start=start,
            expiry=expiry,
            reserve_micromist_per_unit=reserve,
            commitment=decision.commitment,
        )
        if self._telemetry:
            self._m_path_legs.labels(str(self.isd_as)).inc()
        return submitted

    def path_leg_supply(self, path_auction: str, leg_index: int) -> int:
        """This AS's live sellable bandwidth on one contributed leg.

        The offered leg bandwidth clamped by the interface direction's
        current active-calendar headroom — the same
        :meth:`~repro.admission.AdmissionController.settle_supply` rule
        single-window auctions settle under.

        Raises:
            KeyError: this AS never contributed that leg.
        """
        record = self.path_legs[(path_auction, leg_index)]
        return self.admission.settle_supply(
            record.interface,
            record.is_ingress,
            record.start,
            record.expiry,
            record.bandwidth_kbps,
        )

    def settle_path_auction(
        self,
        marketplace: str,
        path_auction: str,
        supplies_kbps: list[int] | None = None,
    ) -> PathSettlementRecord:
        """Submit the all-or-nothing settle transaction for a path auction.

        ``supplies_kbps`` carries every leg's live supply (collected from
        each on-path AS via :meth:`path_leg_supply`); ``None`` settles at
        the full contributed bandwidths.  Clears, awards, refunds, pays
        every leg seller, and relists remainders atomically on-chain.

        Raises:
            RuntimeError: the ledger refused the settle transaction.
        """
        submitted = self.executor.submit(
            Transaction(
                sender=self.account.address,
                commands=[
                    Command(
                        "market",
                        "settle_path_auction",
                        {
                            "marketplace": marketplace,
                            "path_auction": path_auction,
                            "supplies_kbps": supplies_kbps,
                        },
                    )
                ],
            )
        )
        if not submitted.effects.ok:
            raise RuntimeError(
                f"settle of path auction {path_auction[:8]}... failed: "
                f"{submitted.effects.error}"
            )
        result = submitted.effects.returns[0]
        record = PathSettlementRecord(
            path_auction=path_auction,
            clearing_prices_micromist=result["clearing_prices_micromist"],
            proceeds_mist=result["proceeds_mist"],
            supplies_kbps=result["supplies_kbps"],
            winners=result["winners"],
            legs=result["legs"],
            submitted=submitted,
        )
        self.path_settlements.append(record)
        self.path_legs = {
            key: leg
            for key, leg in self.path_legs.items()
            if key[0] != path_auction
        }
        if self._telemetry:
            self._m_path_settlements.labels(
                str(self.isd_as), "cleared" if result["winners"] else "unsold"
            ).inc()
        trace = current_trace()
        if trace is not None:
            trace.event(
                "path_auction.settle",
                path_auction=path_auction,
                num_legs=len(result["legs"]),
                winners=len(result["winners"]),
                proceeds_mist=result["proceeds_mist"],
                clearing_prices_micromist=result["clearing_prices_micromist"],
            )
        return record

    # -- redemption handling -------------------------------------------------------

    def poll_and_deliver(self) -> list[DeliveryRecord]:
        """Handle all pending redeem requests addressed to this AS (steps 6-8).

        Requests the AS *cannot* serve — admission rejected, ResID space
        exhausted, or the delivery transaction refused by the ledger — are
        skipped (recorded in :attr:`undeliverable`) rather than aborting the
        poll: the event checkpoint has already advanced, so raising here
        would silently orphan every later request in the same batch.
        """
        ledger = self.executor.ledger
        events = ledger.events_since(self._last_checkpoint, "RedeemRequested")
        self._last_checkpoint = ledger.checkpoint
        records: list[DeliveryRecord] = []
        for event in events:
            if (event.payload["isd"], event.payload["asn"]) != (
                self.isd_as.isd,
                self.isd_as.asn,
            ):
                continue
            request_id = event.payload["request"]
            if request_id not in ledger.objects:
                continue  # already delivered
            try:
                records.append(self._deliver(ledger.get_object(request_id)))
            except RuntimeError as reason:
                # AdmissionRejected and CapacityExhausted are RuntimeErrors
                # too; _deliver rolled its claims back before raising.
                self.undeliverable.append((request_id, str(reason)))
                if self._telemetry:
                    self._m_deliveries.labels(
                        str(self.isd_as), "undeliverable"
                    ).inc()
        return records

    def _deliver(self, request) -> DeliveryRecord:
        payload = request.payload
        ingress_if = payload["ingress"]["interface"]
        egress_if = payload["egress"]["interface"]
        start = payload["ingress"]["start"]
        expiry = payload["ingress"]["expiry"]
        bandwidth_kbps = payload["ingress"]["bandwidth_kbps"]
        bw_cls = bwcls.encode_floor(bandwidth_kbps)
        redeemer = payload.get("redeemer", "")
        # Delivered reservations claim live capacity on both crossed
        # interfaces (the active calendar is the physical backstop — the
        # redeemed assets already cleared the issued one).
        admissions = []
        for interface, is_ingress in ((ingress_if, True), (egress_if, False)):
            decision = self.admission.admit_reservation(
                interface, is_ingress, bandwidth_kbps, start, expiry, tag=redeemer
            )
            if not decision.admitted:
                self._rollback_admissions(admissions)
                raise AdmissionRejected(
                    f"{self.isd_as} interface {interface} "
                    f"({'ingress' if is_ingress else 'egress'}): {decision.reason}"
                )
            admissions.append((interface, is_ingress, decision))
        try:
            res_id = self._allocator(ingress_if).allocate(start, expiry)
        except CapacityExhausted:
            self._rollback_admissions(admissions)
            raise
        resinfo = ResInfo(
            ingress=ingress_if,
            egress=egress_if,
            res_id=res_id,
            bw_cls=bw_cls,
            start=start,
            duration=expiry - start,
        )
        reservation = grant_reservation(
            self.isd_as,
            self.autonomous_system.secret_value,
            resinfo,
            self.prf_factory,
        )
        plaintext = json.dumps(
            {
                "isd": self.isd_as.isd,
                "asn": self.isd_as.asn,
                "ingress": resinfo.ingress,
                "egress": resinfo.egress,
                "res_id": resinfo.res_id,
                "bw_cls": resinfo.bw_cls,
                "start": resinfo.start,
                "duration": resinfo.duration,
                "auth_key": reservation.auth_key.hex(),
            }
        ).encode()
        recipient_public = int.from_bytes(payload["public_key"], "big")
        box = seal(recipient_public, plaintext, self.rng)
        submitted = self.executor.submit(
            Transaction(
                sender=self.account.address,
                commands=[
                    Command(
                        "asset",
                        "deliver_reservation",
                        {
                            "request": request.object_id,
                            "kem_share": box.kem_share.to_bytes(256, "big"),
                            "ciphertext": box.ciphertext,
                            "tag": box.tag,
                        },
                    )
                ],
            )
        )
        if not submitted.effects.ok:
            # Nothing was delivered: hand back the live capacity and ResID.
            self._rollback_admissions(admissions)
            self._allocator(ingress_if).release(res_id, start, expiry)
            raise RuntimeError(f"delivery failed: {submitted.effects.error}")
        if self.reclamation is not None:
            self.reclamation.track(
                res_id,
                ingress_if,
                bandwidth_kbps,
                start,
                expiry,
                [
                    (interface, is_ingress, decision.commitment.commitment_id)
                    for interface, is_ingress, decision in admissions
                ],
                tag=redeemer,
            )
        if self._telemetry:
            self._m_deliveries.labels(str(self.isd_as), "delivered").inc()
        trace = current_trace()
        if trace is not None:
            trace.event(
                "reservation.delivered",
                isd_as=str(self.isd_as),
                request=request.object_id,
                res_id=res_id,
                ingress=ingress_if,
                egress=egress_if,
                bandwidth_kbps=bandwidth_kbps,
            )
        return DeliveryRecord(
            request_id=request.object_id,
            delivery_id=submitted.effects.returns[0]["delivery"],
            res_id=res_id,
            submitted=submitted,
        )

    def _rollback_admissions(self, admissions) -> None:
        """Release active-calendar claims from an aborted delivery."""
        for interface, is_ingress, decision in admissions:
            self.admission.release(
                interface, is_ingress, decision.commitment, layer=ACTIVE
            )

    def expire_commitments(self, now: float | None = None) -> int:
        """Release calendar commitments whose windows have fully ended.

        The step function already ignores past windows when judging future
        admissions; this garbage-collects their bookkeeping.  Returns the
        number of commitments released.
        """
        when = now if now is not None else self.executor.clock.now()
        return self.admission.expire(when)

    # -- no-show reclamation ---------------------------------------------------------

    def enable_reclamation(
        self,
        usage_source,
        interval: float = 0.25,
        grace_seconds: float = 0.5,
        no_show_threshold: float = 0.5,
        retain_headroom: float = 1.5,
        min_retained_kbps: int = 1,
        demote=None,
        marketplace: str | None = None,
        relist_base_micromist: int | None = None,
        relist_granularity: int = DEFAULT_GRANULARITY,
        relist_min_bandwidth: int = DEFAULT_MIN_BANDWIDTH,
    ):
        """Arm the usage-feedback loop for this AS.

        ``usage_source`` is the cumulative policer snapshot callable
        (``router.policer.usage_snapshot``); ``demote`` the data-plane
        rate-cap hook (``router.policer.set_limit``).  Once armed, every
        delivery is tracked and :meth:`reclaim_no_shows` runs the loop.
        With ``marketplace`` set, reclaimed bandwidth is relisted there
        with ``Reclaimed`` provenance at the scarcity-adjusted quote over
        ``relist_base_micromist``.

        Returns the :class:`~repro.reclaim.ReclamationEngine`.
        """
        from repro.reclaim import ReclamationEngine, UsageReporter

        self.reclamation = ReclamationEngine(
            self.admission,
            UsageReporter(usage_source, interval),
            grace_seconds=grace_seconds,
            no_show_threshold=no_show_threshold,
            retain_headroom=retain_headroom,
            min_retained_kbps=min_retained_kbps,
            demote=demote,
        )
        self._relist_marketplace = marketplace
        self._relist_base_micromist = relist_base_micromist
        self._relist_granularity = relist_granularity
        self._relist_min_bandwidth = relist_min_bandwidth
        return self.reclamation

    def reclaim_no_shows(self, now: float | None = None) -> list:
        """One reclamation pass: scan tracked reservations, relist the spoils.

        Runs :meth:`~repro.reclaim.ReclamationEngine.scan` (no-op without
        :meth:`enable_reclamation`), then relists each completed
        reclamation's freed bandwidth on the configured marketplace.  The
        relist is an ordinary issue+list — it must clear the *issued*
        calendar like any minting, which is exactly what an overbooking
        admission policy permits; under a strict policy the relist is
        refused and recorded, never force-listed.

        Returns the completed :class:`~repro.reclaim.ReclamationEvent`\\ s.
        """
        if self.reclamation is None:
            return []
        when = now if now is not None else self.executor.clock.now()
        events = self.reclamation.scan(when)
        if self._relist_marketplace is not None:
            for event in events:
                self._relist_reclaimed(event)
        return events

    def _relist_reclaimed(self, event) -> None:
        """Put one reclamation's freed rectangle back on the market."""
        start = math.ceil(event.at)
        granule = self._relist_granularity
        # The asset contract requires the duration to be a whole number of
        # granules: shrink the tail, never stretch past the reservation.
        expiry = start + (int(event.end) - start) // granule * granule
        freed = event.freed_kbps
        if expiry <= start or freed < 1:
            self.relisted.append((event, None, "window or bandwidth too small"))
            return
        base = (
            self._relist_base_micromist
            if self._relist_base_micromist is not None
            else 1
        )
        quoted = self.admission.quote(
            base, event.ingress_ifid, True, start, expiry
        )
        decision = self.admission.admit_issue(
            event.ingress_ifid,
            True,
            freed,
            start,
            expiry,
            tag=f"reclaim:{self.isd_as}",
        )
        if not decision.admitted:
            self.relisted.append((event, None, decision.reason))
            return
        submitted = self.executor.submit(
            Transaction(
                sender=self.account.address,
                commands=[
                    Command(
                        "asset",
                        "issue",
                        {
                            "token": self.token_id,
                            "bandwidth_kbps": freed,
                            "start": start,
                            "expiry": expiry,
                            "interface": event.ingress_ifid,
                            "is_ingress": True,
                            "granularity": self._relist_granularity,
                            "min_bandwidth_kbps": min(
                                self._relist_min_bandwidth, freed
                            ),
                        },
                    ),
                    Command(
                        "market",
                        "create_listing",
                        {
                            "marketplace": self._relist_marketplace,
                            "asset": Result(0, "asset"),
                            "price_micromist_per_unit": quoted,
                            "provenance": {
                                "res_id": event.res_id,
                                "original_holder": event.tag,
                                "reclaimed_kbps": freed,
                                "observed_kbps": event.observed_kbps,
                            },
                        },
                    ),
                ],
            )
        )
        if not submitted.effects.ok:
            self.admission.release(event.ingress_ifid, True, decision.commitment)
            self.relisted.append((event, None, str(submitted.effects.error)))
            return
        self.relisted.append(
            (event, submitted.effects.returns[1]["listing"], "relisted")
        )

    def _allocator(self, ingress_if: int) -> ResIdAllocator:
        allocator = self._allocators.get(ingress_if)
        if allocator is None:
            allocator = ResIdAllocator(self._resid_capacity)
            self._allocators[ingress_if] = allocator
        return allocator

    def pending_requests(self) -> list:
        """Redeem requests currently owned by this AS (test helper)."""
        return self.executor.ledger.objects_owned_by(self.account.address, REQUEST_TYPE)
