"""Control plane: CP-PKI, AS services, host clients, end-to-end workflows."""

from repro.controlplane.asclient import (
    AsService,
    DeliveryRecord,
    OpenAuctionRecord,
    SettlementRecord,
)
from repro.controlplane.hostclient import (
    AcquireOutcome,
    BidSettlement,
    BudgetExceeded,
    HopRequirement,
    HostClient,
    IncompatibleGranularity,
    ListingNotFound,
    PurchasePlan,
    ResolvedHop,
    plan_from_quote,
)
from repro.controlplane.manager import ReservationLease, ReservationManager
from repro.controlplane.pki import CpPki
from repro.controlplane.workflow import (
    LatencyBreakdown,
    MarketDeployment,
    PurchaseOutcome,
    deploy_market,
    purchase_path,
)

__all__ = [
    "AcquireOutcome",
    "AsService",
    "BidSettlement",
    "BudgetExceeded",
    "DeliveryRecord",
    "OpenAuctionRecord",
    "SettlementRecord",
    "HopRequirement",
    "HostClient",
    "IncompatibleGranularity",
    "ListingNotFound",
    "PurchasePlan",
    "ResolvedHop",
    "ReservationLease",
    "ReservationManager",
    "CpPki",
    "LatencyBreakdown",
    "MarketDeployment",
    "PurchaseOutcome",
    "deploy_market",
    "plan_from_quote",
    "purchase_path",
]
