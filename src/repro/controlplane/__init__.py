"""Control plane: CP-PKI, AS services, host clients, end-to-end workflows."""

from repro.controlplane.asclient import (
    AsService,
    DeliveryRecord,
    OpenAuctionRecord,
    PathLegRecord,
    PathSettlementRecord,
    SettlementRecord,
)
from repro.controlplane.hostclient import (
    AcquireOutcome,
    BidSettlement,
    BudgetExceeded,
    HopRequirement,
    HostClient,
    IncompatibleGranularity,
    ListingNotFound,
    PathBidSettlement,
    PurchasePlan,
    ResolvedHop,
    plan_from_quote,
)
from repro.controlplane.manager import ReservationLease, ReservationManager
from repro.controlplane.pki import CpPki
from repro.controlplane.workflow import (
    LatencyBreakdown,
    MarketDeployment,
    PathAuctionHandle,
    PurchaseOutcome,
    deploy_market,
    execute_transfer,
    open_path_auction,
    purchase_path,
    settle_path_auction,
)

__all__ = [
    "AcquireOutcome",
    "AsService",
    "BidSettlement",
    "BudgetExceeded",
    "DeliveryRecord",
    "OpenAuctionRecord",
    "SettlementRecord",
    "HopRequirement",
    "HostClient",
    "IncompatibleGranularity",
    "ListingNotFound",
    "PathAuctionHandle",
    "PathBidSettlement",
    "PathLegRecord",
    "PathSettlementRecord",
    "PurchasePlan",
    "ResolvedHop",
    "ReservationLease",
    "ReservationManager",
    "CpPki",
    "LatencyBreakdown",
    "MarketDeployment",
    "PurchaseOutcome",
    "deploy_market",
    "execute_transfer",
    "open_path_auction",
    "plan_from_quote",
    "purchase_path",
    "settle_path_auction",
]
