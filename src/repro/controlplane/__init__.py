"""Control plane: CP-PKI, AS services, host clients, end-to-end workflows."""

from repro.controlplane.asclient import AsService, DeliveryRecord
from repro.controlplane.hostclient import (
    HopRequirement,
    HostClient,
    ListingNotFound,
    PurchasePlan,
)
from repro.controlplane.manager import ReservationLease, ReservationManager
from repro.controlplane.pki import CpPki
from repro.controlplane.workflow import (
    LatencyBreakdown,
    MarketDeployment,
    PurchaseOutcome,
    deploy_market,
    purchase_path,
)

__all__ = [
    "AsService",
    "DeliveryRecord",
    "HopRequirement",
    "HostClient",
    "ListingNotFound",
    "PurchasePlan",
    "ReservationLease",
    "ReservationManager",
    "CpPki",
    "LatencyBreakdown",
    "MarketDeployment",
    "PurchaseOutcome",
    "deploy_market",
    "purchase_path",
]
