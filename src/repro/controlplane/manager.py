"""Reservation manager: keeping a path continuously covered.

Hummingbird reservations have hard start/expiry times and the paper expects
the common usage to be "established ahead of time" (§6.2).  The manager
automates that for a long-lived connection: it buys consecutive reservation
windows ahead of expiry, so an application always holds a currently active
reservation set plus the next one.

This is deliberately simple policy code on top of the public control-plane
API — the kind of component a downstream user would otherwise write first.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.controlplane.hostclient import HostClient
from repro.controlplane.workflow import MarketDeployment, PurchaseOutcome, purchase_path
from repro.hummingbird.reservation import FlyoverReservation
from repro.scion.paths import AsCrossing


@dataclass
class ReservationLease:
    """One purchased window for the whole path."""

    start: int
    expiry: int
    reservations: list[FlyoverReservation]
    outcome: PurchaseOutcome

    def active_at(self, now: float) -> bool:
        return self.start <= now < self.expiry


class ReservationManager:
    """Rolling-window reservation maintenance for one path.

    ``renew_margin`` controls how long before expiry the next window is
    purchased; Fig. 4 shows purchases complete in seconds, so a margin of
    tens of seconds is already generous.
    """

    def __init__(
        self,
        deployment: MarketDeployment,
        host: HostClient,
        crossings: list[AsCrossing],
        bandwidth_kbps: int,
        window_seconds: int = 600,
        renew_margin: float = 60.0,
        flex_start: int = 0,
        budget_mist_per_window: int | None = None,
    ) -> None:
        """``flex_start`` lets the FIRST window slide up to that many
        seconds later chasing cheaper granules; renewals never use it —
        they must start exactly at the previous expiry or coverage would
        gap.  ``budget_mist_per_window`` caps what any single window may
        cost — a scarcity-price spike then raises
        :class:`~repro.marketdata.BudgetExceeded` instead of overspending.
        """
        if window_seconds <= 0:
            raise ValueError("window must be positive")
        if renew_margin >= window_seconds:
            raise ValueError("renewal margin must be shorter than the window")
        if flex_start < 0:
            raise ValueError("flex must be non-negative")
        self.deployment = deployment
        self.host = host
        self.crossings = crossings
        self.bandwidth_kbps = bandwidth_kbps
        self.window_seconds = window_seconds
        self.renew_margin = renew_margin
        self.flex_start = flex_start
        self.budget_mist_per_window = budget_mist_per_window
        self.leases: list[ReservationLease] = []
        self.total_price_mist = 0
        self.total_estimated_mist = 0

    # -- public API -----------------------------------------------------------

    def start(self, first_start: int) -> ReservationLease:
        """Buy the first window, starting at ``first_start``.

        Only the first window uses ``flex_start`` (a cheaper later start
        just delays when coverage begins); renewals must begin exactly at
        the previous expiry or coverage would gap.
        """
        if self.leases:
            raise RuntimeError("manager already started")
        return self._buy_window(first_start, flex_start=self.flex_start)

    def tick(self, now: float) -> ReservationLease | None:
        """Renew if the active lease is within the renewal margin.

        Returns the newly purchased lease, or None when no action was
        needed.  Call this from the application's housekeeping loop.
        """
        if not self.leases:
            raise RuntimeError("manager not started")
        horizon = self.leases[-1].expiry
        if now >= horizon:
            raise RuntimeError(
                "coverage lapsed: tick() was not called within the margin"
            )
        if horizon - now > self.renew_margin:
            return None
        return self._buy_window(horizon)

    def active_reservations(self, now: float) -> list[FlyoverReservation]:
        """The reservation set valid right now (for the packet source)."""
        for lease in reversed(self.leases):
            if lease.active_at(now):
                return lease.reservations
        raise LookupError("no active lease; did coverage lapse?")

    def coverage_until(self) -> int:
        return self.leases[-1].expiry if self.leases else 0

    # -- internals ----------------------------------------------------------------

    def _buy_window(self, start: int, flex_start: int = 0) -> ReservationLease:
        outcome = purchase_path(
            self.deployment,
            self.host,
            self.crossings,
            start=start,
            expiry=start + self.window_seconds,
            bandwidth_kbps=self.bandwidth_kbps,
            flex_start=flex_start,
            max_price_mist=self.budget_mist_per_window,
        )
        lease = ReservationLease(
            start=min(r.resinfo.start for r in outcome.reservations),
            expiry=min(r.resinfo.expiry for r in outcome.reservations),
            reservations=outcome.reservations,
            outcome=outcome,
        )
        self.leases.append(lease)
        self.total_price_mist += outcome.price_mist
        self.total_estimated_mist += outcome.estimated_price_mist
        return lease
