"""Host-side control-plane client (§3.2 client stack).

The host discovers listings through an off-chain :class:`MarketIndexer`
(incremental, event-driven — never a ledger rescan), plans purchases
declaratively (:class:`ListingQuery`/:class:`PathSpec` in, ranked
:class:`PathQuote`\\ s out), assembles an **atomic buy-and-redeem**
transaction covering every hop it wants to reserve — buy ingress asset,
buy egress asset, redeem the pair, for each AS crossing — and later
decrypts the sealed reservations the ASes deliver.

Atomicity is the ledger's: if any hop cannot be bought (sold out, price
moved, insufficient funds), the whole transaction aborts and no money moves
(§4.2 "Atomic End-to-End Guarantees").  On top of that, a client-side
``max_price_mist`` guard repriced against the live index refuses to submit
at all when a scarcity-price move since planning would bust the budget.

The tuple-returning ``find_listing`` and per-hop ``plan_purchase`` calls
remain as thin deprecation shims over the v2 planner.
"""

from __future__ import annotations

import json
import random
import warnings
from dataclasses import dataclass

from repro.contracts.asset import DELIVERY_TYPE, ASSET_TYPE
from repro.ledger.accounts import COIN_TYPE
from repro.crypto.sealing import KeyPair, SealedBox, unseal
from repro.hummingbird.reservation import FlyoverReservation, ResInfo
from repro.ledger.accounts import Account
from repro.ledger.executor import LedgerExecutor, SubmittedTransaction
from repro.ledger.transactions import Command, Result, Transaction
from repro.marketdata import (
    BudgetExceeded,
    IncompatibleGranularity,
    ListingNotFound,
    ListingQuery,
    MarketIndexer,
    PathQuote,
    PathSpec,
    PurchasePlanner,
)
from repro.pathadm import path_escrow_mist
from repro.scion.addresses import IsdAs
from repro.scion.paths import AsCrossing
from repro.telemetry import get_registry
from repro.telemetry.tracing import current_trace

__all__ = [
    "AcquireOutcome",
    "BidSettlement",
    "BudgetExceeded",
    "HopRequirement",
    "HostClient",
    "IncompatibleGranularity",
    "ListingNotFound",
    "PathBidSettlement",
    "PurchasePlan",
    "ResolvedHop",
    "plan_from_quote",
]


@dataclass(frozen=True)
class HopRequirement:
    """What the host wants to reserve at one AS crossing."""

    isd_as: IsdAs
    ingress: int
    egress: int
    start: int
    expiry: int
    bandwidth_kbps: int

    @staticmethod
    def from_crossing(
        crossing: AsCrossing, start: int, expiry: int, bandwidth_kbps: int
    ) -> "HopRequirement":
        return HopRequirement(
            isd_as=crossing.isd_as,
            ingress=crossing.ingress,
            egress=crossing.egress,
            start=start,
            expiry=expiry,
            bandwidth_kbps=bandwidth_kbps,
        )


@dataclass(frozen=True)
class ResolvedHop:
    """Listings and the granularity-aligned window actually bought for a hop.

    The bought window is the smallest granule-aligned rectangle covering the
    requested one, so it may start earlier / end later than requested.  The
    ingress and egress windows must be identical or the redeem would abort.
    """

    ingress_listing: str
    egress_listing: str
    buy_start: int
    buy_expiry: int
    price_mist: int
    ingress_price_mist: int = 0
    egress_price_mist: int = 0


@dataclass
class PurchasePlan:
    """Resolved listings + price estimate for a set of hop requirements."""

    requirements: list[HopRequirement]
    hops: list[ResolvedHop]
    quote: PathQuote | None = None

    @property
    def estimated_price_mist(self) -> int:
        return sum(hop.price_mist for hop in self.hops)


def plan_from_quote(quote: PathQuote) -> PurchasePlan:
    """Materialize a planner quote into an executable purchase plan."""
    requirements = [
        HopRequirement(
            isd_as=hop.isd_as,
            ingress=hop.ingress,
            egress=hop.egress,
            start=quote.start,
            expiry=quote.expiry,
            bandwidth_kbps=quote.bandwidth_kbps,
        )
        for hop in quote.hops
    ]
    hops = [
        ResolvedHop(
            ingress_listing=hop.ingress_candidate.listing.listing_id,
            egress_listing=hop.egress_candidate.listing.listing_id,
            buy_start=hop.start,
            buy_expiry=hop.expiry,
            price_mist=hop.price_mist,
            ingress_price_mist=hop.ingress_candidate.price_mist,
            egress_price_mist=hop.egress_candidate.price_mist,
        )
        for hop in quote.hops
    ]
    return PurchasePlan(requirements=requirements, hops=hops, quote=quote)


@dataclass(frozen=True)
class BidSettlement:
    """This host's aggregate outcome in one settled auction.

    ``won`` is true when at least one of the host's bids was awarded;
    ``assets`` are the bandwidth-split pieces it now owns (redeemable like
    any purchased asset), ``paid_mist`` the total charged at the clearing
    price and ``refund_mist`` everything the settlement returned (losing
    escrows plus winners' escrow surplus).
    """

    auction: str
    won: bool
    bandwidth_kbps: int
    paid_mist: int
    refund_mist: int
    clearing_price_micromist: int
    assets: tuple[str, ...] = ()
    reasons: tuple[str, ...] = ()


@dataclass(frozen=True)
class PathBidSettlement:
    """This host's aggregate outcome in one settled **path** auction.

    ``assets`` lists the bandwidth-split pieces in leg (path) order — one
    per leg when the bid won, pairable for :meth:`HostClient.redeem_path`
    — and ``paid_mist`` sums the per-leg clearing-price charges.  Losers
    see their whole escrow back in ``refund_mist``.
    """

    path_auction: str
    won: bool
    bandwidth_kbps: int
    paid_mist: int
    refund_mist: int
    clearing_prices_micromist: tuple[int, ...]
    assets: tuple[str, ...] = ()
    reasons: tuple[str, ...] = ()


@dataclass(frozen=True)
class AcquireOutcome:
    """What :meth:`HostClient.acquire` did: bid into an auction or buy posted.

    ``mode`` is ``"bid"`` (an open auction covered the window — await its
    settlement) or ``"bought"`` (posted-price fallback — the asset is owned
    immediately).  ``reference`` is the auction id or the listing id.
    """

    mode: str
    submitted: SubmittedTransaction
    reference: str
    price_mist: int = 0


class HostClient:
    """A Hummingbird end host's control-plane agent."""

    def __init__(
        self,
        account: Account,
        executor: LedgerExecutor,
        rng: random.Random | None = None,
    ) -> None:
        self.account = account
        self.executor = executor
        self.rng = rng if rng is not None else random.Random(0xC0FFEE)
        self.payment_coin: str | None = None
        self._ephemeral_keys: list[KeyPair] = []
        self._delivery_checkpoint = 0
        self._indexers: dict[str, MarketIndexer] = {}
        self._planners: dict[str, PurchasePlanner] = {}
        self._shared_indexes: dict[str, object] = {}  # marketplace -> SharedMarketIndex
        # Sealed-bid auction tracking, per marketplace: open books seen via
        # AuctionOpened, settlement payloads seen via AuctionSettled.
        self._auction_cursor: dict[str, int] = {}
        self._open_auctions: dict[str, dict[str, dict]] = {}
        self._auction_results: dict[str, dict[str, dict]] = {}
        # Combinatorial path auctions, same event-driven shape: open shells
        # grow legs as PathLegContributed events arrive.
        self._path_cursor: dict[str, int] = {}
        self._open_path_auctions: dict[str, dict[str, dict]] = {}
        self._path_results: dict[str, dict[str, dict]] = {}
        registry = get_registry()
        self._telemetry = registry.enabled
        self._m_acquire = registry.counter(
            "host_acquire_total",
            "acquire() outcomes: sealed bid placed vs posted fallback buy.",
            ("mode",),
        )
        self._m_settle_results = registry.counter(
            "host_bid_settlements_total",
            "Settled auctions this host had bids in, by outcome.",
            ("outcome",),
        )
        self._m_refunds = registry.counter(
            "host_escrow_refunds_mist_total",
            "Escrow MIST refunded to this host at settle time.",
        ).labels()
        # await_settle() is an idempotent read; refunds/outcomes are
        # counted once per auction.
        self._counted_settles: set[str] = set()

    # -- funding ---------------------------------------------------------------

    def fund(self, amount_mist: int) -> str:
        """Mint a payment coin (stands in for acquiring SUI out of band).

        Returns:
            The coin object id, also remembered as :attr:`payment_coin`
            (the coin every purchase and bid draws from).

        Raises:
            RuntimeError: the mint transaction was refused.
        """
        submitted = self.executor.submit(
            Transaction(
                sender=self.account.address,
                commands=[Command("coin", "mint", {"amount": amount_mist})],
            )
        )
        if not submitted.effects.ok:
            raise RuntimeError(f"funding failed: {submitted.effects.error}")
        self.payment_coin = submitted.effects.returns[0]["coin"]
        return self.payment_coin

    def _coin_balance(self, coin_id: str) -> int:
        coin = self.executor.ledger.objects.get(coin_id)
        return coin.payload["balance"] if coin is not None else 0

    def consolidate_coins(self) -> int:
        """Merge every coin this host owns back into :attr:`payment_coin`.

        Auction settlements pay refunds (losing escrows, winners' escrow
        surplus) and sale proceeds as *fresh* coin objects; without a
        merge the payment coin drains even while the host stays solvent.
        Called automatically by :meth:`place_bid` when the payment coin
        alone cannot cover an escrow; safe to call any time after
        :meth:`fund`.

        Returns:
            The payment coin's balance after merging.

        Raises:
            RuntimeError: the client was never funded, or a merge
                transaction was refused.
        """
        if self.payment_coin is None:
            raise RuntimeError("fund() the client before consolidating")
        others = [
            coin.object_id
            for coin in self.executor.ledger.objects_owned_by(
                self.account.address, COIN_TYPE
            )
            if coin.object_id != self.payment_coin
        ]
        if others:
            submitted = self.executor.submit(
                Transaction(
                    sender=self.account.address,
                    commands=[
                        Command(
                            "coin",
                            "merge",
                            {"coin": self.payment_coin, "other": other},
                        )
                        for other in others
                    ],
                )
            )
            if not submitted.effects.ok:
                raise RuntimeError(
                    f"coin consolidation failed: {submitted.effects.error}"
                )
        return self._coin_balance(self.payment_coin)

    # -- discovery ---------------------------------------------------------------

    def attach_indexer(self, marketplace: str, indexer: MarketIndexer) -> None:
        """Share an existing index (e.g. the deployment-wide one).

        Indexing is off-chain infrastructure; hosts of one deployment
        normally consult one shared index instead of each replaying the
        event stream.
        """
        self._indexers[marketplace] = indexer
        self._planners.pop(marketplace, None)

    def attach_shared_index(self, marketplace: str, shared) -> None:
        """Bootstrap this host's future index from a shared checkpoint.

        Unlike :meth:`attach_indexer` (which hands every host the *same*
        index object), this gives the host a **private**
        :class:`MarketIndexer` cloned from the
        :class:`~repro.marketdata.bus.SharedMarketIndex`'s latest
        checkpoint and fed by its event bus — the host never replays the
        ledger from genesis, but owns its view.
        """
        self._shared_indexes[marketplace] = shared
        self._indexers.pop(marketplace, None)
        self._planners.pop(marketplace, None)

    def indexer(self, marketplace: str) -> MarketIndexer:
        """This host's index of the marketplace (created on first use)."""
        found = self._indexers.get(marketplace)
        if found is None:
            shared = self._shared_indexes.get(marketplace)
            if shared is not None:
                found = shared.attach()
            else:
                found = MarketIndexer(self.executor.ledger, marketplace)
            self._indexers[marketplace] = found
        return found

    def planner(self, marketplace: str) -> PurchasePlanner:
        """This host's planner over :meth:`indexer` (created on first use)."""
        found = self._planners.get(marketplace)
        if found is None:
            found = PurchasePlanner(self.indexer(marketplace))
            self._planners[marketplace] = found
        return found

    def quote_path(self, marketplace: str, spec: PathSpec) -> list[PathQuote]:
        """Every distinct priced way to reserve the path, cheapest first.

        Args:
            marketplace: the marketplace object id.
            spec: the path requirement (window, bandwidth, optional
                ``flex_start`` slack and ``budget_mist`` cap).

        Returns:
            Ranked :class:`~repro.marketdata.PathQuote` list (see
            :meth:`PurchasePlanner.quote` for ordering and the budget
            caveat).

        Raises:
            ListingNotFound: nothing covers the spec at any flex offset.
        """
        return self.planner(marketplace).quote(spec)

    def plan_path(self, marketplace: str, spec: PathSpec) -> PurchasePlan:
        """The cheapest in-budget quote, materialized into a purchase plan.

        Returns:
            A :class:`PurchasePlan` ready for :meth:`atomic_buy_and_redeem`.

        Raises:
            BudgetExceeded: the cheapest quote exceeds ``spec.budget_mist``.
            ListingNotFound: nothing covers the spec.
        """
        return plan_from_quote(self.planner(marketplace).best(spec))

    # -- legacy v1 surface (deprecation shims) -------------------------------------

    def find_listing(
        self,
        marketplace: str,
        isd_as: IsdAs,
        interface: int,
        is_ingress: bool,
        start: int,
        expiry: int,
        bandwidth_kbps: int,
        exact_window: bool = False,
    ) -> tuple[str, int, int, int]:
        """Deprecated: build a :class:`ListingQuery` and use the indexer.

        Returns (listing id, price in MIST, aligned start, aligned expiry)
        like v1 did; the answer now comes from the incremental index
        instead of a full ledger scan.
        """
        warnings.warn(
            "find_listing is deprecated; use ListingQuery + MarketIndexer.best",
            DeprecationWarning,
            stacklevel=2,
        )
        try:
            query = ListingQuery(
                isd_as=isd_as,
                interface=interface,
                is_ingress=is_ingress,
                start=start,
                expiry=expiry,
                bandwidth_kbps=bandwidth_kbps,
                exact_window=exact_window,
            )
        except ValueError:
            # v1 answered degenerate requests (empty window, bandwidth 0)
            # with ListingNotFound, not ValueError; keep that contract.
            query = None
        found = self.indexer(marketplace).best(query) if query is not None else None
        if found is None:
            raise ListingNotFound(
                f"no listing at {isd_as} if={interface} "
                f"{'ingress' if is_ingress else 'egress'} covers "
                f"[{start},{expiry})x{bandwidth_kbps}kbps"
                + (" (exact window)" if exact_window else "")
            )
        return found.as_tuple()

    def plan_purchase(
        self, marketplace: str, requirements: list[HopRequirement]
    ) -> PurchasePlan:
        """Deprecated: use :meth:`plan_path` with a :class:`PathSpec`."""
        warnings.warn(
            "plan_purchase is deprecated; use plan_path with a PathSpec",
            DeprecationWarning,
            stacklevel=2,
        )
        planner = self.planner(marketplace)
        hops: list[ResolvedHop] = []
        for requirement in requirements:
            resolved = planner.resolve_hop(
                requirement.isd_as,
                requirement.ingress,
                requirement.egress,
                requirement.start,
                requirement.expiry,
                requirement.bandwidth_kbps,
            )
            hops.append(
                ResolvedHop(
                    ingress_listing=resolved.ingress_candidate.listing.listing_id,
                    egress_listing=resolved.egress_candidate.listing.listing_id,
                    buy_start=resolved.start,
                    buy_expiry=resolved.expiry,
                    price_mist=resolved.price_mist,
                    ingress_price_mist=resolved.ingress_candidate.price_mist,
                    egress_price_mist=resolved.egress_candidate.price_mist,
                )
            )
        return PurchasePlan(requirements=requirements, hops=hops)

    # -- sealed-bid auctions --------------------------------------------------------

    def _scan_auctions(self, marketplace: str) -> None:
        """Fold new AuctionOpened/AuctionSettled events into the local view."""
        ledger = self.executor.ledger
        cursor = self._auction_cursor.get(marketplace, 0)
        open_books = self._open_auctions.setdefault(marketplace, {})
        results = self._auction_results.setdefault(marketplace, {})
        for event in ledger.events_since(cursor):
            payload = event.payload
            if payload.get("marketplace") != marketplace:
                continue
            if event.event_type == "AuctionOpened":
                open_books[payload["auction"]] = payload
            elif event.event_type == "AuctionSettled":
                open_books.pop(payload["auction"], None)
                results[payload["auction"]] = payload
        self._auction_cursor[marketplace] = ledger.checkpoint

    def open_auctions(self, marketplace: str) -> list[dict]:
        """Every auction currently open on the marketplace (event-driven).

        Returns:
            The ``AuctionOpened`` snapshots (asset rectangle, reserve
            price, share cap) of auctions no ``AuctionSettled`` has closed
            yet, in arrival order.
        """
        self._scan_auctions(marketplace)
        return list(self._open_auctions[marketplace].values())

    def find_auction(
        self,
        marketplace: str,
        isd_as: IsdAs,
        interface: int,
        is_ingress: bool,
        start: int,
        expiry: int,
        bandwidth_kbps: int,
    ) -> dict | None:
        """The open auction covering this rectangle, or ``None``.

        An auction covers a request when it sells the right interface
        direction, its window contains ``[start, expiry)``, and the wanted
        bandwidth fits between the asset's minimum and its total.  Earliest
        open auction wins when several cover (deterministic).
        """
        for snapshot in self.open_auctions(marketplace):
            if (
                (snapshot["isd"], snapshot["asn"]) == (isd_as.isd, isd_as.asn)
                and snapshot["interface"] == interface
                and snapshot["is_ingress"] == is_ingress
                and snapshot["start"] <= start
                and expiry <= snapshot["expiry"]
                and snapshot["min_bandwidth_kbps"]
                <= bandwidth_kbps
                <= snapshot["bandwidth_kbps"]
            ):
                return snapshot
        return None

    def place_bid(
        self,
        marketplace: str,
        auction: str,
        bandwidth_kbps: int,
        max_price_mist: int,
    ) -> SubmittedTransaction:
        """Place one sealed bid, escrowing up to ``max_price_mist``.

        ``max_price_mist`` is the bidder's total willingness to pay for
        ``bandwidth_kbps`` over the auction's whole window; it converts to
        the contract's unit price by flooring, so the escrow can never
        exceed the stated maximum.  The escrow is locked until the seller
        settles — :meth:`await_settle` reports the outcome and the refund.

        Raises:
            RuntimeError: the client was never funded.
            ValueError: unknown auction, or a budget whose floored unit
                price falls below the auction's reserve (the bid could
                only lock its escrow and lose).
        """
        if self.payment_coin is None:
            raise RuntimeError("fund() the client before bidding")
        self._scan_auctions(marketplace)
        snapshot = self._open_auctions.get(marketplace, {}).get(auction)
        if snapshot is None:
            raise ValueError(f"auction {auction[:8]}... is not open")
        units = bandwidth_kbps * (snapshot["expiry"] - snapshot["start"])
        unit_price = max_price_mist * 1_000_000 // units
        if unit_price < snapshot["reserve_micromist_per_unit"]:
            # Knowable client-side: such a bid would lock its escrow until
            # settle only to be rejected as "below reserve".
            raise ValueError(
                f"budget {max_price_mist} MIST prices {unit_price} "
                f"micromist/unit, below the auction's reserve of "
                f"{snapshot['reserve_micromist_per_unit']}"
            )
        escrow_mist = -(-units * unit_price // 1_000_000)
        if self._coin_balance(self.payment_coin) < escrow_mist:
            # Earlier refunds arrive as fresh coins; fold them back in
            # before giving up on the escrow.
            self.consolidate_coins()
        return self.executor.submit(
            Transaction(
                sender=self.account.address,
                commands=[
                    Command(
                        "market",
                        "place_bid",
                        {
                            "marketplace": marketplace,
                            "auction": auction,
                            "bandwidth_kbps": bandwidth_kbps,
                            "price_micromist_per_unit": int(unit_price),
                            "payment": self.payment_coin,
                        },
                    )
                ],
            )
        )

    def await_settle(self, marketplace: str, auction: str) -> BidSettlement | None:
        """This host's outcome in an auction, once it settles.

        Returns:
            ``None`` while the auction is still open (poll again after the
            AS's next settle pass), else a :class:`BidSettlement`
            aggregating every bid this host placed — winners' assets and
            clearing-price charges, losers' full refunds.
        """
        self._scan_auctions(marketplace)
        payload = self._auction_results.get(marketplace, {}).get(auction)
        if payload is None:
            return None
        mine = self.account.address
        won_bw = paid = refund = 0
        assets: list[str] = []
        reasons: list[str] = []
        for winner in payload["winners"]:
            if winner["bidder"] != mine:
                continue
            won_bw += winner["bandwidth_kbps"]
            paid += winner["paid_mist"]
            refund += winner["refund_mist"]
            assets.append(winner["asset"])
        for loser in payload["losers"]:
            if loser["bidder"] != mine:
                continue
            refund += loser["refund_mist"]
            reasons.append(loser["reason"])
        settlement = BidSettlement(
            auction=auction,
            won=bool(assets),
            bandwidth_kbps=won_bw,
            paid_mist=paid,
            refund_mist=refund,
            clearing_price_micromist=payload["clearing_price_micromist"],
            assets=tuple(assets),
            reasons=tuple(reasons),
        )
        if self._telemetry and auction not in self._counted_settles:
            self._counted_settles.add(auction)
            self._m_settle_results.labels("won" if settlement.won else "lost").inc()
            if refund:
                self._m_refunds.inc(refund)
        trace = current_trace()
        if trace is not None:
            trace.event(
                "bid.settled",
                auction=auction,
                won=settlement.won,
                bandwidth_kbps=won_bw,
                paid_mist=paid,
                refund_mist=refund,
            )
        return settlement

    def acquire(
        self,
        marketplace: str,
        isd_as: IsdAs,
        interface: int,
        is_ingress: bool,
        start: int,
        expiry: int,
        bandwidth_kbps: int,
        max_price_mist: int,
    ) -> AcquireOutcome:
        """Bid into the window's auction, or buy posted when none is open.

        The auction-aware acquisition front door: when an open auction
        covers the rectangle, a sealed bid worth up to ``max_price_mist``
        goes in (ownership is decided at settle time); otherwise the
        planner's posted-price machinery takes over — cheapest covering
        listing, bought immediately, still subject to the budget.

        Returns:
            An :class:`AcquireOutcome` (``mode`` ``"bid"`` or ``"bought"``).

        Raises:
            ListingNotFound: no auction *and* no posted listing covers.
            BudgetExceeded: the posted cover costs more than the budget.
        """
        if self.payment_coin is None:
            raise RuntimeError("fund() the client before acquiring")
        auction = self.find_auction(
            marketplace, isd_as, interface, is_ingress, start, expiry, bandwidth_kbps
        )
        if auction is not None:
            submitted = self.place_bid(
                marketplace, auction["auction"], bandwidth_kbps, max_price_mist
            )
            if self._telemetry:
                self._m_acquire.labels("bid").inc()
            trace = current_trace()
            if trace is not None:
                trace.event(
                    "bid.placed",
                    auction=auction["auction"],
                    bandwidth_kbps=bandwidth_kbps,
                    max_price_mist=max_price_mist,
                )
            return AcquireOutcome(
                mode="bid", submitted=submitted, reference=auction["auction"]
            )
        found = self.indexer(marketplace).best(
            ListingQuery(
                isd_as=isd_as,
                interface=interface,
                is_ingress=is_ingress,
                start=start,
                expiry=expiry,
                bandwidth_kbps=bandwidth_kbps,
            )
        )
        if found is None:
            raise ListingNotFound(
                f"no auction or listing at {isd_as} if={interface} "
                f"{'ingress' if is_ingress else 'egress'} covers "
                f"[{start},{expiry})x{bandwidth_kbps}kbps"
            )
        if found.price_mist > max_price_mist:
            raise BudgetExceeded(
                f"posted cover costs {found.price_mist} MIST, over the "
                f"{max_price_mist} MIST budget"
            )
        submitted = self.executor.submit(
            Transaction(
                sender=self.account.address,
                commands=[
                    Command(
                        "market",
                        "buy",
                        {
                            "marketplace": marketplace,
                            "listing": found.listing.listing_id,
                            "start": found.start,
                            "expiry": found.expiry,
                            "bandwidth_kbps": bandwidth_kbps,
                            "payment": self.payment_coin,
                        },
                    )
                ],
            )
        )
        price = 0
        if submitted.effects.ok:
            price = submitted.effects.returns[0]["price_mist"]
        if self._telemetry:
            self._m_acquire.labels("bought").inc()
        trace = current_trace()
        if trace is not None:
            trace.event(
                "listing.bought",
                listing=found.listing.listing_id,
                price_mist=price,
                bandwidth_kbps=bandwidth_kbps,
            )
        return AcquireOutcome(
            mode="bought",
            submitted=submitted,
            reference=found.listing.listing_id,
            price_mist=price,
        )

    # -- combinatorial path auctions ------------------------------------------------

    def _scan_path_auctions(self, marketplace: str) -> None:
        """Fold new path-auction events into the local view."""
        ledger = self.executor.ledger
        cursor = self._path_cursor.get(marketplace, 0)
        open_books = self._open_path_auctions.setdefault(marketplace, {})
        results = self._path_results.setdefault(marketplace, {})
        for event in ledger.events_since(cursor):
            payload = event.payload
            if payload.get("marketplace") != marketplace:
                continue
            if event.event_type == "PathAuctionOpened":
                open_books[payload["path_auction"]] = {
                    "path_auction": payload["path_auction"],
                    "num_legs": payload["num_legs"],
                    "legs": {},
                }
            elif event.event_type == "PathLegContributed":
                book = open_books.get(payload["path_auction"])
                if book is not None:
                    book["legs"][payload["leg_index"]] = payload
            elif event.event_type == "PathAuctionSettled":
                open_books.pop(payload["path_auction"], None)
                results[payload["path_auction"]] = payload
        self._path_cursor[marketplace] = ledger.checkpoint

    def open_path_auctions(self, marketplace: str) -> list[dict]:
        """Every path auction currently open on the marketplace.

        Returns:
            One dict per open shell (arrival order) with ``num_legs`` and
            the ``legs`` contributed so far (``PathLegContributed``
            snapshots keyed by leg index).  Bidding is possible once
            ``len(legs) == num_legs``.
        """
        self._scan_path_auctions(marketplace)
        return list(self._open_path_auctions[marketplace].values())

    def find_path_auction(
        self,
        marketplace: str,
        crossings: list[AsCrossing],
        start: int,
        expiry: int,
        bandwidth_kbps: int,
    ) -> dict | None:
        """The fully contributed path auction covering these crossings.

        A path auction covers a request when its legs, in path order, are
        exactly the crossings' interface directions — ``(ingress, True)``
        then ``(egress, False)`` per crossing — every leg's window
        contains ``[start, expiry)``, and the wanted bandwidth fits every
        leg's ``[minimum, total]`` range.  Earliest open auction wins when
        several cover (deterministic).
        """
        wanted = [
            (crossing.isd_as, interface, is_ingress)
            for crossing in crossings
            for interface, is_ingress in (
                (crossing.ingress, True),
                (crossing.egress, False),
            )
        ]
        for book in self.open_path_auctions(marketplace):
            if book["num_legs"] != len(wanted):
                continue
            legs = [book["legs"].get(index) for index in range(book["num_legs"])]
            if any(leg is None for leg in legs):
                continue
            if all(
                (leg["isd"], leg["asn"]) == (isd_as.isd, isd_as.asn)
                and leg["interface"] == interface
                and leg["is_ingress"] == is_ingress
                and leg["start"] <= start
                and expiry <= leg["expiry"]
                and leg["min_bandwidth_kbps"]
                <= bandwidth_kbps
                <= leg["bandwidth_kbps"]
                for leg, (isd_as, interface, is_ingress) in zip(legs, wanted)
            ):
                return book
        return None

    def place_path_bid(
        self,
        marketplace: str,
        path_auction: str,
        bandwidth_kbps: int,
        max_price_mist: int,
    ) -> SubmittedTransaction:
        """One combinatorial bid: ``bandwidth_kbps`` on every leg, all-or-nothing.

        ``max_price_mist`` is the bidder's total willingness to pay for
        the whole path over the full auction window; it converts to the
        contract's per-leg unit price by flooring against ``bandwidth *
        duration * num_legs`` units, so the escrow
        (:func:`repro.pathadm.path_escrow_mist`) can never exceed the
        stated maximum.  One escrow covers every leg; settlement awards
        pieces of all legs or refunds everything.

        Raises:
            RuntimeError: the client was never funded.
            ValueError: unknown/unready path auction, or a budget whose
                floored unit price falls below some leg's reserve (the bid
                could only lock its escrow and lose path-wide).
        """
        if self.payment_coin is None:
            raise RuntimeError("fund() the client before bidding")
        self._scan_path_auctions(marketplace)
        book = self._open_path_auctions.get(marketplace, {}).get(path_auction)
        if book is None:
            raise ValueError(f"path auction {path_auction[:8]}... is not open")
        legs = [book["legs"].get(index) for index in range(book["num_legs"])]
        if any(leg is None for leg in legs):
            raise ValueError(
                f"path auction {path_auction[:8]}... is not fully contributed"
            )
        duration = legs[0]["expiry"] - legs[0]["start"]
        units = bandwidth_kbps * duration * len(legs)
        unit_price = max_price_mist * 1_000_000 // units
        highest_reserve = max(leg["reserve_micromist_per_unit"] for leg in legs)
        if unit_price < highest_reserve:
            # Knowable client-side: below any leg's reserve the bid loses
            # path-wide, locking its escrow until settle for nothing.
            raise ValueError(
                f"budget {max_price_mist} MIST prices {unit_price} "
                f"micromist/unit per leg, below the dearest leg reserve of "
                f"{highest_reserve}"
            )
        escrow_mist = path_escrow_mist(
            bandwidth_kbps, duration, int(unit_price), len(legs)
        )
        if self._coin_balance(self.payment_coin) < escrow_mist:
            self.consolidate_coins()
        return self.executor.submit(
            Transaction(
                sender=self.account.address,
                commands=[
                    Command(
                        "market",
                        "place_path_bid",
                        {
                            "marketplace": marketplace,
                            "path_auction": path_auction,
                            "bandwidth_kbps": bandwidth_kbps,
                            "price_micromist_per_unit": int(unit_price),
                            "payment": self.payment_coin,
                        },
                    )
                ],
            )
        )

    def await_path_settle(
        self, marketplace: str, path_auction: str
    ) -> PathBidSettlement | None:
        """This host's outcome in a path auction, once it settles.

        Returns:
            ``None`` while the auction is still open, else a
            :class:`PathBidSettlement` — a winner's ``assets`` hold one
            piece per leg in path order, ready for :meth:`redeem_path`.
        """
        self._scan_path_auctions(marketplace)
        payload = self._path_results.get(marketplace, {}).get(path_auction)
        if payload is None:
            return None
        mine = self.account.address
        won_bw = paid = refund = 0
        assets: list[str] = []
        reasons: list[str] = []
        for winner in payload["winners"]:
            if winner["bidder"] != mine:
                continue
            won_bw += winner["bandwidth_kbps"]
            paid += winner["paid_mist"]
            refund += winner["refund_mist"]
            assets.extend(winner["assets"])
        for loser in payload["losers"]:
            if loser["bidder"] != mine:
                continue
            refund += loser["refund_mist"]
            reasons.append(loser["reason"])
        settlement = PathBidSettlement(
            path_auction=path_auction,
            won=bool(assets),
            bandwidth_kbps=won_bw,
            paid_mist=paid,
            refund_mist=refund,
            clearing_prices_micromist=tuple(payload["clearing_prices_micromist"]),
            assets=tuple(assets),
            reasons=tuple(reasons),
        )
        if self._telemetry and path_auction not in self._counted_settles:
            self._counted_settles.add(path_auction)
            self._m_settle_results.labels(
                "won" if settlement.won else "lost"
            ).inc()
            if refund:
                self._m_refunds.inc(refund)
        trace = current_trace()
        if trace is not None:
            trace.event(
                "path_bid.settled",
                path_auction=path_auction,
                won=settlement.won,
                bandwidth_kbps=won_bw,
                paid_mist=paid,
                refund_mist=refund,
            )
        return settlement

    def redeem_path(
        self, asset_pairs: list[tuple[str, str]]
    ) -> SubmittedTransaction:
        """Redeem a whole path's (ingress, egress) asset pairs atomically.

        One transaction holding a redeem per AS crossing — the redemption
        path for path-auction winnings (a winner's
        :attr:`PathBidSettlement.assets` in leg order pair up as
        ``(assets[0], assets[1]), (assets[2], assets[3]), ...``).  If any
        pair is incompatible the whole transaction aborts and no redeem
        request reaches any AS.

        Returns:
            The submitted transaction; ``returns[i]["request"]`` names the
            i-th crossing's redeem request.
        """
        ephemeral = KeyPair.generate(self.rng)
        self._ephemeral_keys.append(ephemeral)
        submitted = self.executor.submit(
            Transaction(
                sender=self.account.address,
                commands=[
                    Command(
                        "asset",
                        "redeem",
                        {
                            "ingress": ingress_asset,
                            "egress": egress_asset,
                            "public_key": ephemeral.public.to_bytes(256, "big"),
                        },
                    )
                    for ingress_asset, egress_asset in asset_pairs
                ],
            )
        )
        trace = current_trace()
        if trace is not None:
            trace.event(
                "path.redeem",
                pairs=len(asset_pairs),
                status=submitted.effects.status,
            )
        return submitted

    def acquire_path(
        self,
        marketplace: str,
        crossings: list[AsCrossing],
        start: int,
        expiry: int,
        bandwidth_kbps: int,
        max_price_mist: int,
        flex_start: int = 0,
    ) -> AcquireOutcome:
        """Bid into a covering path auction, or buy posted hop listings.

        The path-level acquisition front door: when a fully contributed
        path auction covers every crossing, one combinatorial bid worth up
        to ``max_price_mist`` goes in (``mode="path_bid"`` — await its
        settlement, then :meth:`redeem_path`).  Otherwise the planner's
        posted-price machinery takes over: the cheapest covering quote is
        bought and redeemed atomically, guarded by the same
        ``max_price_mist`` repricing rule as
        :meth:`atomic_buy_and_redeem` (``mode="bought"``).

        Raises:
            RuntimeError: the client was never funded.
            ListingNotFound: no path auction *and* no posted quote covers.
            BudgetExceeded: the posted cover reprices over the budget.
        """
        if self.payment_coin is None:
            raise RuntimeError("fund() the client before acquiring")
        book = self.find_path_auction(
            marketplace, crossings, start, expiry, bandwidth_kbps
        )
        trace = current_trace()
        if book is not None:
            submitted = self.place_path_bid(
                marketplace, book["path_auction"], bandwidth_kbps, max_price_mist
            )
            if self._telemetry:
                self._m_acquire.labels("path_bid").inc()
            if trace is not None:
                trace.event(
                    "path_bid.placed",
                    path_auction=book["path_auction"],
                    bandwidth_kbps=bandwidth_kbps,
                    max_price_mist=max_price_mist,
                )
            return AcquireOutcome(
                mode="path_bid", submitted=submitted, reference=book["path_auction"]
            )
        spec = PathSpec.from_crossings(
            crossings,
            start,
            expiry,
            bandwidth_kbps,
            flex_start=flex_start,
            budget_mist=max_price_mist,
        )
        plan = self.plan_path(marketplace, spec)
        submitted = self.atomic_buy_and_redeem(
            marketplace, plan, max_price_mist=max_price_mist
        )
        price = 0
        if submitted.effects.ok:
            price = sum(
                ret.get("price_mist", 0) for ret in submitted.effects.returns
            )
        if self._telemetry:
            self._m_acquire.labels("path_bought").inc()
        if trace is not None:
            trace.event(
                "path.bought",
                hops=len(plan.hops),
                price_mist=price,
                bandwidth_kbps=bandwidth_kbps,
            )
        return AcquireOutcome(
            mode="bought",
            submitted=submitted,
            reference=plan.hops[0].ingress_listing if plan.hops else "",
            price_mist=price,
        )

    def redeem_pair(
        self, ingress_asset: str, egress_asset: str
    ) -> SubmittedTransaction:
        """Redeem a compatible ingress/egress asset pair this host owns.

        The redemption path for assets acquired *outside* an atomic
        buy-and-redeem — auction winnings, transfers, fused remainders.
        Both assets must agree on AS, issuer, bandwidth and window (the
        asset contract enforces it); the issuing AS answers the emitted
        redeem request with a sealed reservation that
        :meth:`collect_reservations` decrypts.

        Returns:
            The submitted transaction (``returns[0]["request"]`` names the
            redeem request routed to the AS).
        """
        ephemeral = KeyPair.generate(self.rng)
        self._ephemeral_keys.append(ephemeral)
        submitted = self.executor.submit(
            Transaction(
                sender=self.account.address,
                commands=[
                    Command(
                        "asset",
                        "redeem",
                        {
                            "ingress": ingress_asset,
                            "egress": egress_asset,
                            "public_key": ephemeral.public.to_bytes(256, "big"),
                        },
                    )
                ],
            )
        )
        trace = current_trace()
        if trace is not None:
            trace.event(
                "redeem.requested",
                ingress_asset=ingress_asset,
                egress_asset=egress_asset,
                request=(
                    submitted.effects.returns[0]["request"]
                    if submitted.effects.ok
                    else None
                ),
                status=submitted.effects.status,
            )
        return submitted

    # -- atomic purchase ------------------------------------------------------------

    def atomic_buy_and_redeem(
        self,
        marketplace: str,
        plan: PurchasePlan,
        max_price_mist: int | None = None,
    ) -> SubmittedTransaction:
        """One transaction: buy ingress+egress and redeem, for every hop.

        With ``max_price_mist`` the plan is repriced against the live index
        first (vanished listings substituted with their exact-window
        replacements) and the purchase aborts client-side (no transaction,
        no gas) when the fresh estimate exceeds the budget — a
        scarcity-price move between planning and buying cannot silently
        overspend.  The authoritative paid price is whatever ``Sold``
        reports on-chain.
        """
        if self.payment_coin is None:
            raise RuntimeError("fund() the client before buying")
        if max_price_mist is not None:
            estimate, repriced = self.reprice(marketplace, plan)
            if estimate > max_price_mist:
                raise BudgetExceeded(
                    f"plan repriced at {estimate} MIST (planned "
                    f"{plan.estimated_price_mist}), over the "
                    f"{max_price_mist} MIST budget; not submitting"
                )
            plan = repriced
        ephemeral = KeyPair.generate(self.rng)
        self._ephemeral_keys.append(ephemeral)
        commands: list[Command] = []
        for requirement, hop in zip(plan.requirements, plan.hops):
            base = len(commands)
            commands.append(
                Command(
                    "market",
                    "buy",
                    {
                        "marketplace": marketplace,
                        "listing": hop.ingress_listing,
                        "start": hop.buy_start,
                        "expiry": hop.buy_expiry,
                        "bandwidth_kbps": requirement.bandwidth_kbps,
                        "payment": self.payment_coin,
                    },
                )
            )
            commands.append(
                Command(
                    "market",
                    "buy",
                    {
                        "marketplace": marketplace,
                        "listing": hop.egress_listing,
                        "start": hop.buy_start,
                        "expiry": hop.buy_expiry,
                        "bandwidth_kbps": requirement.bandwidth_kbps,
                        "payment": self.payment_coin,
                    },
                )
            )
            commands.append(
                Command(
                    "asset",
                    "redeem",
                    {
                        "ingress": Result(base, "asset"),
                        "egress": Result(base + 1, "asset"),
                        "public_key": ephemeral.public.to_bytes(256, "big"),
                    },
                )
            )
        return self.executor.submit(
            Transaction(sender=self.account.address, commands=commands)
        )

    def reprice(self, marketplace: str, plan: PurchasePlan) -> tuple[int, PurchasePlan]:
        """Re-estimate a plan against the live index; returns
        ``(fresh estimate, effective plan)``.

        Listed unit prices are immutable on-chain, so a planned listing
        that still covers its leg reprices to the planned amount; a
        scarcity-price move materializes as the planned listing
        *disappearing* (sold out, cancelled) and pricier replacements
        taking its place.  Such legs are **substituted** with the live
        cheapest exact-window replacement in the returned plan, so a
        submission that passes the budget guard buys viable listings at
        exactly the repriced amounts.  A leg nothing covers anymore keeps
        its planned listing and share: the atomic transaction will abort
        without charging a thing for it anyway.
        """
        indexer = self.indexer(marketplace)
        indexer.sync()
        hops: list[ResolvedHop] = []
        for requirement, hop in zip(plan.requirements, plan.hops):
            ids: dict[bool, str] = {}
            prices: dict[bool, int] = {}
            for listing_id, planned, interface, is_ingress in (
                (hop.ingress_listing, hop.ingress_price_mist, requirement.ingress, True),
                (hop.egress_listing, hop.egress_price_mist, requirement.egress, False),
            ):
                record = indexer.listing(listing_id)
                covers = (
                    record is not None
                    and record.align(hop.buy_start, hop.buy_expiry)
                    == (hop.buy_start, hop.buy_expiry)
                    and record.sellable(requirement.bandwidth_kbps)
                )
                if covers:
                    ids[is_ingress] = listing_id
                    prices[is_ingress] = record.price_for(
                        requirement.bandwidth_kbps, hop.buy_start, hop.buy_expiry
                    )
                    continue
                replacement = indexer.best(
                    ListingQuery(
                        isd_as=requirement.isd_as,
                        interface=interface,
                        is_ingress=is_ingress,
                        start=hop.buy_start,
                        expiry=hop.buy_expiry,
                        bandwidth_kbps=requirement.bandwidth_kbps,
                        exact_window=True,
                    ),
                    sync=False,
                )
                if replacement is not None:
                    ids[is_ingress] = replacement.listing.listing_id
                    prices[is_ingress] = replacement.price_mist
                else:
                    ids[is_ingress] = listing_id
                    prices[is_ingress] = planned
            hops.append(
                ResolvedHop(
                    ingress_listing=ids[True],
                    egress_listing=ids[False],
                    buy_start=hop.buy_start,
                    buy_expiry=hop.buy_expiry,
                    price_mist=prices[True] + prices[False],
                    ingress_price_mist=prices[True],
                    egress_price_mist=prices[False],
                )
            )
        fresh = PurchasePlan(requirements=plan.requirements, hops=hops, quote=plan.quote)
        return fresh.estimated_price_mist, fresh

    # -- deadline transfers ---------------------------------------------------------

    def transfer(
        self,
        marketplace: str,
        crossings,
        bytes_total: int,
        deadline: int,
        *,
        release: int | None = None,
        budget_mist: int | None = None,
        max_rate_kbps: int | None = None,
        best_effort: bool = False,
        preflight: bool = True,
    ):
        """Move ``bytes_total`` across ``crossings`` before ``deadline``.

        The deadline-transfer entry point: plans a malleable schedule
        (variable rate over time, stitched across listings — see
        :mod:`repro.transfers`) against this host's market index and
        executes it as **one atomic transaction**: every piece bought,
        adjacent pieces fused per direction, one redeem per hop per leg.

        Failure matrix:

        * Planning finds no schedule meeting bytes/deadline/budget →
          :class:`~repro.transfers.InfeasibleTransfer` (carries the
          achievable bytes/spend); nothing is submitted.  With
          ``best_effort=True`` the max-achievable plan executes instead.
        * A planned listing vanished or shrank before submission →
          :class:`~repro.transfers.TransferAborted` with
          ``submitted is None`` (client-side preflight; no transaction,
          no gas).  ``preflight=False`` skips the check and lets the
          ledger arbitrate.
        * The transaction itself aborts (sold out mid-race, insufficient
          funds) → :class:`~repro.transfers.TransferAborted` carrying the
          failed transaction; ledger atomicity already rolled back every
          buy, fuse, and redeem — no money moved, no assets changed
          hands.

        Args:
            release: earliest instant data can flow (defaults to the
                executor clock's now).
        """
        from repro.transfers import DeadlineTransfer, TransferPlanner

        if release is None:
            release = int(self.executor.clock.now())
        request = DeadlineTransfer(
            crossings=tuple(crossings),
            bytes_total=bytes_total,
            release=release,
            deadline=deadline,
            budget_mist=budget_mist,
            max_rate_kbps=max_rate_kbps,
        )
        plan = TransferPlanner(self.indexer(marketplace)).plan(
            request, best_effort=best_effort
        )
        return self.execute_transfer_plan(marketplace, plan, preflight=preflight)

    def execute_transfer_plan(self, marketplace: str, plan, *, preflight: bool = True):
        """Execute a planned transfer atomically; returns a
        :class:`~repro.transfers.TransferOutcome`.

        Command ordering is load-bearing: legs are submitted in
        **descending start order** and each leg's pieces likewise,
        because the market contract keeps the *head* time remainder of a
        carve bound to the original listing id — so every earlier-window
        purchase from the same listing stays valid later in the same
        transaction.  Within a leg the per-direction pieces are then
        fused earliest-first (``fuse_time`` keeps the first operand's
        asset id) into one asset per direction, and each hop redeems
        exactly once per leg.
        """
        from repro.transfers import TransferAborted, TransferOutcome

        if self.payment_coin is None:
            raise RuntimeError("fund() the client before buying")
        if not plan.legs:
            # A best-effort plan over an empty or exhausted book: nothing
            # to buy, nothing to submit.
            return TransferOutcome(plan=plan, submitted=None, price_mist=0)
        if preflight:
            self._preflight_transfer(marketplace, plan)
        ephemeral = KeyPair.generate(self.rng)
        self._ephemeral_keys.append(ephemeral)
        public_key = ephemeral.public.to_bytes(256, "big")
        commands: list[Command] = []
        for leg in sorted(plan.legs, key=lambda leg: leg.start, reverse=True):
            for hop in leg.hops:
                fused: dict[bool, Result] = {}
                for is_ingress, pieces in (
                    (True, hop.ingress_pieces),
                    (False, hop.egress_pieces),
                ):
                    base = len(commands)
                    for piece in reversed(pieces):  # descending start
                        commands.append(
                            Command(
                                "market",
                                "buy",
                                {
                                    "marketplace": marketplace,
                                    "listing": piece.listing_id,
                                    "start": piece.start,
                                    "expiry": piece.expiry,
                                    "bandwidth_kbps": leg.rate_kbps,
                                    "payment": self.payment_coin,
                                },
                            )
                        )
                    # Buy results, re-ordered earliest piece first.
                    assets = [
                        Result(base + i, "asset")
                        for i in reversed(range(len(pieces)))
                    ]
                    while len(assets) > 1:
                        first, second = assets[0], assets[1]
                        commands.append(
                            Command(
                                "asset",
                                "fuse_time",
                                {"first": first, "second": second},
                            )
                        )
                        assets[:2] = [Result(len(commands) - 1, "asset")]
                    fused[is_ingress] = assets[0]
                commands.append(
                    Command(
                        "asset",
                        "redeem",
                        {
                            "ingress": fused[True],
                            "egress": fused[False],
                            "public_key": public_key,
                        },
                    )
                )
        submitted = self.executor.submit(
            Transaction(sender=self.account.address, commands=commands)
        )
        trace = current_trace()
        if trace is not None:
            trace.event(
                "transfer.submitted",
                legs=len(plan.legs),
                buys=plan.buy_count,
                redeems=plan.redeem_count,
                bytes=plan.bytes_scheduled,
                price_mist=plan.spend_mist,
                status=submitted.effects.status,
            )
        if not submitted.effects.ok:
            raise TransferAborted(
                f"transfer transaction aborted ({submitted.effects.status}); "
                "the ledger rolled back every buy, fuse, and redeem",
                submitted=submitted,
            )
        return TransferOutcome(
            plan=plan, submitted=submitted, price_mist=plan.spend_mist
        )

    def _preflight_transfer(self, marketplace: str, plan) -> None:
        """Client-side liveness check: every planned piece must still be
        coverable at its exact window and rate, or we abort without
        submitting (no transaction, no gas)."""
        from repro.transfers import TransferAborted

        indexer = self.indexer(marketplace)
        indexer.sync()
        for leg in plan.legs:
            for hop in leg.hops:
                for piece in hop.ingress_pieces + hop.egress_pieces:
                    record = indexer.listing(piece.listing_id)
                    if (
                        record is None
                        or record.align(piece.start, piece.expiry)
                        != (piece.start, piece.expiry)
                        or not record.sellable(leg.rate_kbps)
                    ):
                        raise TransferAborted(
                            f"listing {piece.listing_id} no longer covers "
                            f"[{piece.start},{piece.expiry}) at "
                            f"{leg.rate_kbps}kbps; transfer not submitted",
                            submitted=None,
                        )

    # -- delivery ------------------------------------------------------------------

    def collect_reservations(self) -> list[FlyoverReservation]:
        """Decrypt all sealed reservations delivered since the last call.

        Returns:
            One :class:`~repro.hummingbird.reservation.FlyoverReservation`
            per new delivery addressed to this host, in delivery order.

        Raises:
            ValueError: a delivery could not be decrypted with any of this
                client's ephemeral keys (wrong recipient or corrupt box).
        """
        ledger = self.executor.ledger
        events = ledger.events_since(self._delivery_checkpoint, "ReservationDelivered")
        self._delivery_checkpoint = ledger.checkpoint
        reservations: list[FlyoverReservation] = []
        for event in events:
            if event.payload["redeemer"] != self.account.address:
                continue
            delivery = ledger.objects.get(event.payload["delivery"])
            if delivery is None or delivery.type_tag != DELIVERY_TYPE:
                continue
            reservations.append(self._decrypt(delivery))
        return reservations

    def _decrypt(self, delivery) -> FlyoverReservation:
        box = SealedBox(
            kem_share=int.from_bytes(delivery.payload["kem_share"], "big"),
            ciphertext=delivery.payload["ciphertext"],
            tag=delivery.payload["tag"],
        )
        last_error: Exception | None = None
        for keypair in reversed(self._ephemeral_keys):
            try:
                plaintext = unseal(keypair, box)
                break
            except ValueError as error:
                last_error = error
        else:
            raise ValueError(f"no ephemeral key decrypts the delivery: {last_error}")
        record = json.loads(plaintext.decode())
        return FlyoverReservation(
            isd_as=IsdAs(record["isd"], record["asn"]),
            resinfo=ResInfo(
                ingress=record["ingress"],
                egress=record["egress"],
                res_id=record["res_id"],
                bw_cls=record["bw_cls"],
                start=record["start"],
                duration=record["duration"],
            ),
            auth_key=bytes.fromhex(record["auth_key"]),
        )

    def owned_assets(self) -> list:
        """Bandwidth assets currently owned by this host (test helper)."""
        return self.executor.ledger.objects_owned_by(self.account.address, ASSET_TYPE)
