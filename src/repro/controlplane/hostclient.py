"""Host-side control-plane client (§3.2 client stack).

The host discovers listings (an off-chain indexer scan over the object
store), assembles an **atomic buy-and-redeem** transaction covering every
hop it wants to reserve — buy ingress asset, buy egress asset, redeem the
pair, for each AS crossing — and later decrypts the sealed reservations the
ASes deliver.

Atomicity is the ledger's: if any hop cannot be bought (sold out, price
moved, insufficient funds), the whole transaction aborts and no money moves
(§4.2 "Atomic End-to-End Guarantees").
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass

from repro.contracts.asset import DELIVERY_TYPE, ASSET_TYPE
from repro.contracts.market import LISTING_TYPE, MICROMIST
from repro.crypto.sealing import KeyPair, SealedBox, unseal
from repro.hummingbird.reservation import FlyoverReservation, ResInfo
from repro.ledger.accounts import Account
from repro.ledger.executor import LedgerExecutor, SubmittedTransaction
from repro.ledger.transactions import Command, Result, Transaction
from repro.scion.addresses import IsdAs
from repro.scion.paths import AsCrossing


@dataclass(frozen=True)
class HopRequirement:
    """What the host wants to reserve at one AS crossing."""

    isd_as: IsdAs
    ingress: int
    egress: int
    start: int
    expiry: int
    bandwidth_kbps: int

    @staticmethod
    def from_crossing(
        crossing: AsCrossing, start: int, expiry: int, bandwidth_kbps: int
    ) -> "HopRequirement":
        return HopRequirement(
            isd_as=crossing.isd_as,
            ingress=crossing.ingress,
            egress=crossing.egress,
            start=start,
            expiry=expiry,
            bandwidth_kbps=bandwidth_kbps,
        )


@dataclass(frozen=True)
class ResolvedHop:
    """Listings and the granularity-aligned window actually bought for a hop.

    The bought window is the smallest granule-aligned rectangle covering the
    requested one, so it may start earlier / end later than requested.  The
    ingress and egress windows must be identical or the redeem would abort.
    """

    ingress_listing: str
    egress_listing: str
    buy_start: int
    buy_expiry: int
    price_mist: int


@dataclass
class PurchasePlan:
    """Resolved listings + price estimate for a set of hop requirements."""

    requirements: list[HopRequirement]
    hops: list[ResolvedHop]

    @property
    def estimated_price_mist(self) -> int:
        return sum(hop.price_mist for hop in self.hops)


class ListingNotFound(LookupError):
    """No listing covers the requested interface/time/bandwidth rectangle."""


class HostClient:
    """A Hummingbird end host's control-plane agent."""

    def __init__(
        self,
        account: Account,
        executor: LedgerExecutor,
        rng: random.Random | None = None,
    ) -> None:
        self.account = account
        self.executor = executor
        self.rng = rng if rng is not None else random.Random(0xC0FFEE)
        self.payment_coin: str | None = None
        self._ephemeral_keys: list[KeyPair] = []
        self._delivery_checkpoint = 0

    # -- funding ---------------------------------------------------------------

    def fund(self, amount_mist: int) -> str:
        """Mint a payment coin (stands in for acquiring SUI out of band)."""
        submitted = self.executor.submit(
            Transaction(
                sender=self.account.address,
                commands=[Command("coin", "mint", {"amount": amount_mist})],
            )
        )
        if not submitted.effects.ok:
            raise RuntimeError(f"funding failed: {submitted.effects.error}")
        self.payment_coin = submitted.effects.returns[0]["coin"]
        return self.payment_coin

    # -- discovery ---------------------------------------------------------------

    def find_listing(
        self,
        marketplace: str,
        isd_as: IsdAs,
        interface: int,
        is_ingress: bool,
        start: int,
        expiry: int,
        bandwidth_kbps: int,
        exact_window: bool = False,
    ) -> tuple[str, int, int, int]:
        """Locate the cheapest listing covering the requested rectangle.

        The purchase window is aligned *outward* to the asset's time
        granularity (you buy whole granules); with ``exact_window`` the
        aligned window must equal the requested one (used to match the
        egress asset to the already-resolved ingress window).

        Returns (listing id, price in MIST, aligned start, aligned expiry).
        This is an off-chain indexer query; the authoritative checks happen
        inside ``buy``.
        """
        ledger = self.executor.ledger
        best: tuple[str, int, int, int] | None = None
        for obj in ledger.objects.values():
            if obj.type_tag != LISTING_TYPE:
                continue
            if obj.payload["marketplace"] != marketplace:
                continue
            asset = ledger.objects.get(obj.payload["asset"])
            if asset is None:
                continue
            payload = asset.payload
            if (payload["isd"], payload["asn"]) != (isd_as.isd, isd_as.asn):
                continue
            if payload["interface"] != interface or payload["is_ingress"] != is_ingress:
                continue
            aligned = _align_window(payload, start, expiry)
            if aligned is None:
                continue
            buy_start, buy_expiry = aligned
            if exact_window and (buy_start, buy_expiry) != (start, expiry):
                continue
            if payload["bandwidth_kbps"] < bandwidth_kbps:
                continue
            remainder = payload["bandwidth_kbps"] - bandwidth_kbps
            if bandwidth_kbps < payload["min_bandwidth_kbps"]:
                continue
            if 0 < remainder < payload["min_bandwidth_kbps"]:
                continue
            unit_price = obj.payload["price_micromist_per_unit"]
            price = -(
                -bandwidth_kbps * (buy_expiry - buy_start) * unit_price // MICROMIST
            )
            if best is None or price < best[1]:
                best = (obj.object_id, price, buy_start, buy_expiry)
        if best is None:
            raise ListingNotFound(
                f"no listing at {isd_as} if={interface} "
                f"{'ingress' if is_ingress else 'egress'} covers "
                f"[{start},{expiry})x{bandwidth_kbps}kbps"
                + (" (exact window)" if exact_window else "")
            )
        return best

    def plan_purchase(
        self, marketplace: str, requirements: list[HopRequirement]
    ) -> PurchasePlan:
        """Resolve listings for every hop and estimate the total price."""
        hops: list[ResolvedHop] = []
        for requirement in requirements:
            ingress_listing, price_in, buy_start, buy_expiry = self.find_listing(
                marketplace,
                requirement.isd_as,
                requirement.ingress,
                True,
                requirement.start,
                requirement.expiry,
                requirement.bandwidth_kbps,
            )
            # The egress asset must match the ingress window exactly or the
            # redeem would abort on incompatible assets.
            egress_listing, price_eg, _, _ = self.find_listing(
                marketplace,
                requirement.isd_as,
                requirement.egress,
                False,
                buy_start,
                buy_expiry,
                requirement.bandwidth_kbps,
                exact_window=True,
            )
            hops.append(
                ResolvedHop(
                    ingress_listing=ingress_listing,
                    egress_listing=egress_listing,
                    buy_start=buy_start,
                    buy_expiry=buy_expiry,
                    price_mist=price_in + price_eg,
                )
            )
        return PurchasePlan(requirements=requirements, hops=hops)

    # -- atomic purchase ------------------------------------------------------------

    def atomic_buy_and_redeem(
        self, marketplace: str, plan: PurchasePlan
    ) -> SubmittedTransaction:
        """One transaction: buy ingress+egress and redeem, for every hop."""
        if self.payment_coin is None:
            raise RuntimeError("fund() the client before buying")
        ephemeral = KeyPair.generate(self.rng)
        self._ephemeral_keys.append(ephemeral)
        commands: list[Command] = []
        for requirement, hop in zip(plan.requirements, plan.hops):
            base = len(commands)
            commands.append(
                Command(
                    "market",
                    "buy",
                    {
                        "marketplace": marketplace,
                        "listing": hop.ingress_listing,
                        "start": hop.buy_start,
                        "expiry": hop.buy_expiry,
                        "bandwidth_kbps": requirement.bandwidth_kbps,
                        "payment": self.payment_coin,
                    },
                )
            )
            commands.append(
                Command(
                    "market",
                    "buy",
                    {
                        "marketplace": marketplace,
                        "listing": hop.egress_listing,
                        "start": hop.buy_start,
                        "expiry": hop.buy_expiry,
                        "bandwidth_kbps": requirement.bandwidth_kbps,
                        "payment": self.payment_coin,
                    },
                )
            )
            commands.append(
                Command(
                    "asset",
                    "redeem",
                    {
                        "ingress": Result(base, "asset"),
                        "egress": Result(base + 1, "asset"),
                        "public_key": ephemeral.public.to_bytes(256, "big"),
                    },
                )
            )
        return self.executor.submit(
            Transaction(sender=self.account.address, commands=commands)
        )

    # -- delivery ------------------------------------------------------------------

    def collect_reservations(self) -> list[FlyoverReservation]:
        """Decrypt all sealed reservations delivered since the last call."""
        ledger = self.executor.ledger
        events = ledger.events_since(self._delivery_checkpoint, "ReservationDelivered")
        self._delivery_checkpoint = ledger.checkpoint
        reservations: list[FlyoverReservation] = []
        for event in events:
            if event.payload["redeemer"] != self.account.address:
                continue
            delivery = ledger.objects.get(event.payload["delivery"])
            if delivery is None or delivery.type_tag != DELIVERY_TYPE:
                continue
            reservations.append(self._decrypt(delivery))
        return reservations

    def _decrypt(self, delivery) -> FlyoverReservation:
        box = SealedBox(
            kem_share=int.from_bytes(delivery.payload["kem_share"], "big"),
            ciphertext=delivery.payload["ciphertext"],
            tag=delivery.payload["tag"],
        )
        last_error: Exception | None = None
        for keypair in reversed(self._ephemeral_keys):
            try:
                plaintext = unseal(keypair, box)
                break
            except ValueError as error:
                last_error = error
        else:
            raise ValueError(f"no ephemeral key decrypts the delivery: {last_error}")
        record = json.loads(plaintext.decode())
        return FlyoverReservation(
            isd_as=IsdAs(record["isd"], record["asn"]),
            resinfo=ResInfo(
                ingress=record["ingress"],
                egress=record["egress"],
                res_id=record["res_id"],
                bw_cls=record["bw_cls"],
                start=record["start"],
                duration=record["duration"],
            ),
            auth_key=bytes.fromhex(record["auth_key"]),
        )

    def owned_assets(self) -> list:
        """Bandwidth assets currently owned by this host (test helper)."""
        return self.executor.ledger.objects_owned_by(self.account.address, ASSET_TYPE)


def _align_window(payload: dict, start: int, expiry: int) -> tuple[int, int] | None:
    """Smallest granule-aligned window of ``payload`` covering [start, expiry).

    Returns None when the requested window is empty or falls outside the
    asset's validity interval.
    """
    if expiry <= start:
        return None
    granularity = payload["granularity"]
    anchor = payload["start"]
    buy_start = anchor + (start - anchor) // granularity * granularity
    over = (expiry - anchor) % granularity
    buy_expiry = expiry if over == 0 else expiry + granularity - over
    if buy_start < payload["start"] or buy_expiry > payload["expiry"]:
        return None
    return buy_start, buy_expiry
