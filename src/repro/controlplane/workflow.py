"""End-to-end control-plane orchestration and the Fig. 4 latency experiment.

``MarketDeployment`` wires everything together: ledger + contracts,
registered AS services with listed assets for every interface, and funded
host clients.  ``purchase_path`` runs the full reservation workflow of
Fig. 2 for a list of AS crossings and reports the latency breakdown the
paper plots in Fig. 4:

* **request** — the atomic buy-and-redeem transaction: it touches the
  shared marketplace, so it takes the consensus path;
* **response** — until all per-AS deliveries arrive: each AS observes the
  redeem event (checkpoint-polling delay), computes the reservation, and
  delivers it via an owned-object fast-path transaction; the phase ends
  when the *slowest* AS's delivery reaches the buyer;
* **total** = request + response.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.admission import ACTIVE
from repro.clock import Clock, SimClock
from repro.contracts.asset import AssetContract
from repro.contracts.coin import CoinContract
from repro.contracts.market import MarketContract
from repro.controlplane.asclient import AsService, PathSettlementRecord
from repro.controlplane.hostclient import HostClient, plan_from_quote
from repro.controlplane.pki import CpPki
from repro.pathadm import PathAdmission, PathHop
from repro.marketdata import (
    MarketIndexer,
    PathSpec,
    PurchasePlanner,
    SharedMarketIndex,
)
from repro.crypto.prf import DEFAULT_PRF_FACTORY, PrfFactory
from repro.hummingbird.reservation import FlyoverReservation
from repro.ledger.accounts import Account, sui_to_mist
from repro.ledger.chain import Ledger
from repro.ledger.committee import Committee
from repro.ledger.executor import LedgerExecutor
from repro.ledger.transactions import Command, Transaction
from repro.scion.paths import AsCrossing
from repro.scion.topology import Topology

DEFAULT_PRICE_MICROMIST = 50  # posted price per kbps-second
DEFAULT_ASSET_BANDWIDTH_KBPS = 10_000_000  # 10 Gbps per interface direction


@dataclass
class LatencyBreakdown:
    """Fig. 4 measurement: request / response / total, in seconds."""

    request: float
    response: float

    @property
    def total(self) -> float:
        return self.request + self.response


@dataclass
class PurchaseOutcome:
    """Everything the host got out of one atomic path purchase.

    ``price_mist`` is the authoritative total the ``Sold`` events report
    on-chain; ``estimated_price_mist`` is what the plan quoted before
    submission — equal in a calm market, and the ``max_price_mist`` guard
    keeps any divergence inside the caller's budget.
    """

    reservations: list[FlyoverReservation]
    latency: LatencyBreakdown
    price_mist: int
    gas: object  # GasSummary of the buy-and-redeem transaction
    estimated_price_mist: int = 0
    quote: object = None  # the PathQuote the purchase executed


@dataclass
class MarketDeployment:
    """A fully wired control plane over a topology."""

    topology: Topology
    ledger: Ledger
    executor: LedgerExecutor
    marketplace: str
    services: dict = field(default_factory=dict)  # IsdAs -> AsService
    clock: Clock | None = None
    rng: random.Random | None = None
    indexer: MarketIndexer | None = None

    def __post_init__(self) -> None:
        if self.indexer is None:
            self.indexer = MarketIndexer(self.ledger, self.marketplace)
        self._planner = PurchasePlanner(self.indexer)
        self._shared_index: SharedMarketIndex | None = None

    @property
    def planner(self) -> PurchasePlanner:
        """The deployment-wide planner over the shared off-chain index."""
        return self._planner

    @property
    def shared_index(self) -> SharedMarketIndex:
        """Checkpointed fan-out of the deployment index (created lazily).

        Hosts created with ``new_host(private_index=True)`` attach here:
        each gets its own :class:`~repro.marketdata.MarketIndexer` cloned
        from the latest checkpoint instead of replaying the ledger from
        genesis, and one :meth:`~repro.marketdata.SharedMarketIndex.pump`
        keeps every attached view current.
        """
        if self._shared_index is None:
            self._shared_index = SharedMarketIndex(self.indexer)
        return self._shared_index

    def service(self, isd_as) -> AsService:
        return self.services[isd_as]

    def close(self) -> None:
        """Shut down every AS service's shard-engine backend.

        A no-op for in-process engines; required to reap worker processes
        when services run on the multiprocess backend.
        """
        for service in self.services.values():
            service.close()

    def new_host(
        self,
        funding_sui: float = 100.0,
        name: str = "host",
        private_index: bool = False,
    ) -> HostClient:
        account = Account.generate(self.rng, name)
        host = HostClient(account, self.executor, self.rng)
        host.fund(sui_to_mist(funding_sui))
        if private_index:
            host.attach_shared_index(self.marketplace, self.shared_index)
        else:
            host.attach_indexer(self.marketplace, self.indexer)
        return host

    def path_admission(self, crossings: list[AsCrossing]) -> PathAdmission:
        """Atomic path-wide admission over the on-path ASes' controllers.

        Each hop wraps one AS's live
        :class:`~repro.admission.AdmissionController` (whatever policy,
        pricer, calendar sharding, and allocation mode that AS runs), so a
        :meth:`~repro.pathadm.PathAdmission.screen` here checks and
        provisionally holds the real per-AS calendars and a rollback
        restores them byte-identically.
        """
        return PathAdmission(
            [
                PathHop(
                    name=str(crossing.isd_as),
                    controller=self.service(crossing.isd_as).admission,
                    ingress_interface=crossing.ingress,
                    egress_interface=crossing.egress,
                )
                for crossing in crossings
            ]
        )


def deploy_market(
    topology: Topology,
    clock: Clock | None = None,
    seed: int = 7,
    committee: Committee | None = None,
    asset_start: int | None = None,
    asset_duration: int = 3600,
    asset_bandwidth_kbps: int = DEFAULT_ASSET_BANDWIDTH_KBPS,
    price_micromist_per_unit: int = DEFAULT_PRICE_MICROMIST,
    granularity: int = 60,
    min_bandwidth_kbps: int = 100,
    prf_factory: PrfFactory = DEFAULT_PRF_FACTORY,
    interface_capacity_kbps: int | None = None,
    admission_policy=None,
    pricer=None,
    shard_seconds: float | None = None,
    engine=None,
    auction_interfaces=None,
    reclamation: dict | None = None,
) -> MarketDeployment:
    """Stand up ledger, contracts, marketplace, and one service per AS.

    Every AS registers, then issues and lists one large ingress asset and
    one large egress asset per interface (plus the AS-internal interface 0,
    so first/last-hop reservations work).

    ``interface_capacity_kbps`` sets each AS's physical per-interface
    capacity (default: exactly the issued asset bandwidth, so the seed
    deployment fills every admission calendar without headroom);
    ``admission_policy`` and ``pricer`` configure each AS's
    :class:`~repro.admission.AdmissionController`; ``shard_seconds``
    switches its calendars to time-sharded ones (None = monolithic);
    ``engine`` picks the shard-engine backend behind those calendars (an
    :class:`~repro.shardengine.EngineSpec`, a kind string such as
    ``"multiprocess"``, or None to derive it from ``shard_seconds``);
    ``auction_interfaces`` (``True`` or a set of ``(interface,
    is_ingress)`` pairs) puts those interface directions into sealed-bid
    auction mode — the seed listings are still posted, but
    :meth:`~repro.controlplane.asclient.AsService.offer_capacity` on such
    an interface opens an auction instead of a listing.

    ``reclamation`` arms every AS's no-show reclamation loop
    (:meth:`~repro.controlplane.asclient.AsService.enable_reclamation`):
    the dict's ``usage_source_factory`` key (``isd_as -> snapshot
    callable``) binds each service to its data-plane policer — absent, the
    loop runs on an empty usage feed — and the remaining keys pass through
    (``grace_seconds``, ``no_show_threshold``, ...).  Relisting defaults
    to this deployment's marketplace at the seed base price.
    """
    from repro.admission import AdmissionController
    rng = random.Random(seed)
    clock = clock if clock is not None else SimClock()
    pki = CpPki(seed=seed)
    ledger = Ledger()
    ledger.register_contract(CoinContract())
    ledger.register_contract(AssetContract(pki))
    ledger.register_contract(MarketContract())
    executor = LedgerExecutor(
        ledger,
        committee if committee is not None else Committee(seed=seed),
        clock,
    )

    operator = Account.generate(rng, "market-operator")
    created = executor.submit(
        Transaction(
            sender=operator.address,
            commands=[Command("market", "create_marketplace", {})],
        )
    )
    if not created.effects.ok:
        raise RuntimeError(f"marketplace creation failed: {created.effects.error}")
    marketplace = created.effects.returns[0]["marketplace"]

    start = int(clock.now()) if asset_start is None else asset_start
    services: dict = {}
    for autonomous_system in topology.ases:
        account = Account.generate(rng, f"as-{autonomous_system.isd_as}")
        capacity = (
            interface_capacity_kbps
            if interface_capacity_kbps is not None
            else asset_bandwidth_kbps
        )
        service = AsService(
            autonomous_system,
            account,
            executor,
            pki,
            rng=random.Random(seed ^ autonomous_system.isd_as.asn),
            prf_factory=prf_factory,
            admission=AdmissionController(
                capacity,
                policy=admission_policy,
                pricer=pricer,
                shard_seconds=shard_seconds,
                engine=engine,
                auction_interfaces=auction_interfaces,
            ),
        )
        registered = service.register()
        if not registered.effects.ok:
            raise RuntimeError(f"AS registration failed: {registered.effects.error}")
        service.register_as_seller(marketplace)
        interfaces = [0] + sorted(autonomous_system.interfaces)
        for interface in interfaces:
            for is_ingress in (True, False):
                listed = service.issue_and_list(
                    marketplace,
                    interface,
                    is_ingress,
                    asset_bandwidth_kbps,
                    start,
                    start + asset_duration,
                    price_micromist_per_unit,
                    granularity,
                    min_bandwidth_kbps,
                )
                if not listed.effects.ok:
                    raise RuntimeError(f"issue/list failed: {listed.effects.error}")
        if reclamation is not None:
            options = dict(reclamation)
            factory = options.pop("usage_source_factory", None)
            source = (
                factory(autonomous_system.isd_as)
                if factory is not None
                else (lambda: {})
            )
            options.setdefault("marketplace", marketplace)
            options.setdefault("relist_base_micromist", price_micromist_per_unit)
            options.setdefault("relist_granularity", granularity)
            options.setdefault("relist_min_bandwidth", min_bandwidth_kbps)
            service.enable_reclamation(source, **options)
        services[autonomous_system.isd_as] = service

    return MarketDeployment(
        topology=topology,
        ledger=ledger,
        executor=executor,
        marketplace=marketplace,
        services=services,
        clock=clock,
        rng=rng,
    )


def purchase_path(
    deployment: MarketDeployment,
    host: HostClient,
    crossings: list[AsCrossing],
    start: int,
    expiry: int,
    bandwidth_kbps: int,
    observation_delay: tuple[float, float] = (0.05, 0.30),
    flex_start: int = 0,
    max_price_mist: int | None = None,
) -> PurchaseOutcome:
    """Run the Fig. 2 workflow for a path and measure Fig. 4 latencies.

    ``flex_start`` lets the planner slide the whole window up to that many
    seconds later when a cheaper granule exists (buy the valley, not the
    peak); ``max_price_mist`` caps the price both at quote time and again
    at submission (repriced against the live index).
    """
    spec = PathSpec.from_crossings(
        crossings,
        start,
        expiry,
        bandwidth_kbps,
        flex_start=flex_start,
        budget_mist=max_price_mist,
    )
    quote = deployment.planner.best(spec)
    # Pre-flight the quoted window through atomic path-wide admission:
    # every hop's live active calendar is checked and provisionally held,
    # then released again — a mid-path infeasibility (an AS's delivered
    # load already saturates an interface) aborts here, before any money
    # moves, instead of surfacing as a failed delivery after purchase.
    admission = deployment.path_admission(crossings)
    preflight = admission.screen(
        bandwidth_kbps,
        quote.start,
        quote.expiry,
        tag=host.account.address,
        layer=ACTIVE,
    )
    if not preflight.admitted:
        raise RuntimeError(
            f"path admission pre-flight rejected: {preflight.reason}"
        )
    admission.rollback(preflight)
    plan = plan_from_quote(quote)
    submitted = host.atomic_buy_and_redeem(
        deployment.marketplace, plan, max_price_mist=max_price_mist
    )
    if not submitted.effects.ok:
        raise RuntimeError(f"atomic buy-and-redeem aborted: {submitted.effects.error}")
    request_latency = submitted.latency
    price = sum(ret.get("price_mist", 0) for ret in submitted.effects.returns)

    # Response phase: every on-path AS observes the redeem event after a
    # polling delay and answers with a fast-path delivery; the phase ends
    # when the slowest delivery lands.
    rng = deployment.rng if deployment.rng is not None else random.Random(1)
    response_latency = 0.0
    for crossing in crossings:
        service = deployment.service(crossing.isd_as)
        records = service.poll_and_deliver()
        if not records:
            raise RuntimeError(f"AS {crossing.isd_as} found no redeem request")
        for record in records:
            poll_delay = rng.uniform(*observation_delay)
            delivery_latency = poll_delay + record.submitted.latency
            response_latency = max(response_latency, delivery_latency)

    reservations = host.collect_reservations()
    return PurchaseOutcome(
        reservations=reservations,
        latency=LatencyBreakdown(request=request_latency, response=response_latency),
        price_mist=price,
        gas=submitted.effects.gas,
        estimated_price_mist=plan.estimated_price_mist,
        quote=quote,
    )


def execute_transfer(
    deployment: MarketDeployment,
    host: HostClient,
    crossings: list[AsCrossing],
    bytes_total: int,
    deadline: int,
    *,
    release: int | None = None,
    budget_mist: int | None = None,
    max_rate_kbps: int | None = None,
    best_effort: bool = False,
    preflight: bool = True,
):
    """Run one deadline transfer end-to-end: plan, buy+fuse+redeem
    atomically, then have every on-path AS deliver its reservations.

    Returns the :class:`~repro.transfers.TransferOutcome` with
    ``reservations`` filled in — one per hop per leg, already decrypted.
    Raises whatever :meth:`HostClient.transfer` raises (see its failure
    matrix); a raise means no reservation was created anywhere.
    """
    outcome = host.transfer(
        deployment.marketplace,
        crossings,
        bytes_total,
        deadline,
        release=release,
        budget_mist=budget_mist,
        max_rate_kbps=max_rate_kbps,
        best_effort=best_effort,
        preflight=preflight,
    )
    if outcome.submitted is None:  # empty best-effort plan, nothing redeemed
        return outcome
    for crossing in crossings:
        service = deployment.service(crossing.isd_as)
        records = service.poll_and_deliver()
        if not records:
            raise RuntimeError(f"AS {crossing.isd_as} found no redeem request")
    outcome.reservations = host.collect_reservations()
    return outcome


@dataclass
class PathAuctionHandle:
    """One open combinatorial path auction and who contributed its legs.

    ``legs`` holds ``(service, leg_index, interface, is_ingress)`` in path
    order — the bookkeeping :func:`settle_path_auction` needs to collect
    every leg's live supply from its own AS.
    """

    path_auction: str
    marketplace: str
    crossings: list[AsCrossing]
    legs: list[tuple[AsService, int, int, bool]]


def open_path_auction(
    deployment: MarketDeployment,
    crossings: list[AsCrossing],
    start: int,
    expiry: int,
    bandwidth_kbps: int,
    base_price_micromist: int = DEFAULT_PRICE_MICROMIST,
    granularity: int = 60,
    min_bandwidth_kbps: int = 100,
) -> PathAuctionHandle:
    """Open one combinatorial path auction across a list of AS crossings.

    The first crossing's AS creates the shell (any leg seller may); then
    every on-path AS contributes its own two legs — ``(ingress, True)``
    and ``(egress, False)`` — each one admission-checked against that AS's
    issued calendar and reserve-priced by its own scarcity quote.

    Raises:
        RuntimeError: the ledger refused the shell or a contribution.
        AdmissionRejected: some AS's calendar cannot cover its leg.
    """
    creator = deployment.service(crossings[0].isd_as)
    opened = creator.open_path_auction(deployment.marketplace, 2 * len(crossings))
    if not opened.effects.ok:
        raise RuntimeError(f"path auction creation failed: {opened.effects.error}")
    path_auction = opened.effects.returns[0]["path_auction"]
    legs: list[tuple[AsService, int, int, bool]] = []
    index = 0
    for crossing in crossings:
        service = deployment.service(crossing.isd_as)
        for interface, is_ingress in (
            (crossing.ingress, True),
            (crossing.egress, False),
        ):
            contributed = service.contribute_path_leg(
                deployment.marketplace,
                path_auction,
                index,
                interface,
                is_ingress,
                bandwidth_kbps,
                start,
                expiry,
                base_price_micromist,
                granularity,
                min_bandwidth_kbps,
            )
            if not contributed.effects.ok:
                raise RuntimeError(
                    f"leg {index} contribution failed: {contributed.effects.error}"
                )
            legs.append((service, index, interface, is_ingress))
            index += 1
    return PathAuctionHandle(
        path_auction=path_auction,
        marketplace=deployment.marketplace,
        crossings=list(crossings),
        legs=legs,
    )


def settle_path_auction(
    deployment: MarketDeployment, handle: PathAuctionHandle
) -> PathSettlementRecord:
    """Settle a path auction at every leg's live supply, all-or-nothing.

    Each on-path AS reports its own legs' sellable bandwidth (offered
    bandwidth clamped by live active-calendar headroom); the first leg's
    AS then submits the single settle transaction that clears the
    combinatorial book, awards pieces of every leg to the path winners,
    refunds everyone else, pays each leg seller, and relists remainders.
    """
    supplies = [
        service.path_leg_supply(handle.path_auction, leg_index)
        for service, leg_index, _, _ in handle.legs
    ]
    return handle.legs[0][0].settle_path_auction(
        handle.marketplace, handle.path_auction, supplies
    )
