"""Deadline-driven bulk transfers: the request and plan model.

The marketplace sells fixed rate-over-window rectangles, but the flagship
grid workload asks for *work*, not a shape: "move N bytes across this path
before deadline T, spending at most B MIST".  A
:class:`DeadlineTransfer` captures that request and a
:class:`TransferPlan` is the planner's malleable answer — a sequence of
time-disjoint :class:`TransferLeg`\\ s, each reserving one rate over one
granule-aligned window across every AS crossing, with per-direction
:class:`LegPiece` purchases stitched across listing boundaries (adjacent
pieces are fused on-chain before redeem, so each hop redeems once per
leg).

Payload accounting uses the data-plane identity ``1 kbps·s = 125 bytes``;
bytes only count inside ``[release, deadline)`` even when granule
alignment forces a purchased window to start earlier or end later.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Payload carried by one kbps-second of reserved bandwidth.
BYTES_PER_KBPS_SECOND = 125

#: Longest window one on-chain redeem accepts (duration < 2^16 s).
MAX_REDEEM_SECONDS = (1 << 16) - 1


class InfeasibleTransfer(RuntimeError):
    """No plan meets the transfer's bytes/deadline/budget constraints.

    Carries the best the planner *could* do so callers can degrade
    gracefully (``achievable_bytes`` / ``achievable_spend_mist`` describe
    the max-bytes-under-budget schedule, zero when nothing is buyable).
    """

    def __init__(
        self,
        message: str,
        achievable_bytes: int = 0,
        achievable_spend_mist: int = 0,
    ) -> None:
        super().__init__(message)
        self.achievable_bytes = achievable_bytes
        self.achievable_spend_mist = achievable_spend_mist


class TransferAborted(RuntimeError):
    """A planned transfer could not be executed against the live market.

    Raised client-side when a planned listing vanished before submission
    (``submitted`` is None — no transaction, no gas) or when the atomic
    buy+fuse+redeem transaction itself aborted (``submitted`` carries the
    failed transaction; the ledger rolled every command back, so no money
    moved and no assets changed hands).
    """

    def __init__(self, message: str, submitted=None) -> None:
        super().__init__(message)
        self.submitted = submitted


@dataclass(frozen=True)
class DeadlineTransfer:
    """"Move ``bytes_total`` over ``crossings`` before ``deadline``."

    ``release`` is the earliest instant data exists to send;
    ``budget_mist`` caps total spend (None = uncapped) and
    ``max_rate_kbps`` caps the instantaneous rate (None = whatever the
    market sells).
    """

    crossings: tuple
    bytes_total: int
    release: int
    deadline: int
    budget_mist: int | None = None
    max_rate_kbps: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "crossings", tuple(self.crossings))
        if not self.crossings:
            raise ValueError("transfer needs at least one AS crossing")
        if self.bytes_total <= 0:
            raise ValueError("bytes_total must be positive")
        if self.deadline <= self.release:
            raise ValueError("deadline must be after release")
        if self.budget_mist is not None and self.budget_mist < 0:
            raise ValueError("budget_mist must be non-negative")
        if self.max_rate_kbps is not None and self.max_rate_kbps <= 0:
            raise ValueError("max_rate_kbps must be positive")

    @property
    def horizon(self) -> int:
        return self.deadline - self.release


@dataclass(frozen=True)
class LegPiece:
    """One ``market.buy``: a sub-rectangle of one listing."""

    listing_id: str
    start: int
    expiry: int
    price_mist: int


@dataclass(frozen=True)
class HopLeg:
    """One AS crossing's purchases for one leg.

    Pieces are time-adjacent, cover the leg window exactly in each
    direction, and share the leg rate — so they fuse into one asset per
    direction and redeem as a single ingress/egress pair.
    """

    isd_as: object
    ingress: int
    egress: int
    ingress_pieces: tuple[LegPiece, ...]
    egress_pieces: tuple[LegPiece, ...]

    @property
    def price_mist(self) -> int:
        return sum(p.price_mist for p in self.ingress_pieces) + sum(
            p.price_mist for p in self.egress_pieces
        )


@dataclass(frozen=True)
class TransferLeg:
    """One purchased rectangle of the plan: one rate over one window.

    ``start``/``expiry`` is the granule-aligned *purchased* window;
    ``effective_start``/``effective_expiry`` clips it to the transfer's
    ``[release, deadline)`` — only bytes inside the clip count toward the
    request.  ``bytes_scheduled`` is how much of the request this leg
    actually carries (at most :attr:`bytes_capacity`).
    """

    start: int
    expiry: int
    rate_kbps: int
    effective_start: int
    effective_expiry: int
    bytes_scheduled: int
    hops: tuple[HopLeg, ...]

    @property
    def bytes_capacity(self) -> int:
        seconds = self.effective_expiry - self.effective_start
        return self.rate_kbps * seconds * BYTES_PER_KBPS_SECOND

    @property
    def price_mist(self) -> int:
        return sum(hop.price_mist for hop in self.hops)


@dataclass(frozen=True)
class TransferPlan:
    """A full malleable schedule answering one :class:`DeadlineTransfer`."""

    transfer: DeadlineTransfer
    legs: tuple[TransferLeg, ...]

    @property
    def bytes_scheduled(self) -> int:
        return sum(leg.bytes_scheduled for leg in self.legs)

    @property
    def bytes_capacity(self) -> int:
        return sum(leg.bytes_capacity for leg in self.legs)

    @property
    def spend_mist(self) -> int:
        """Exact MIST the atomic execution will pay: the sum of every
        piece's own ceil price (merged windows round once, not per slot)."""
        return sum(leg.price_mist for leg in self.legs)

    @property
    def buy_count(self) -> int:
        return sum(
            len(hop.ingress_pieces) + len(hop.egress_pieces)
            for leg in self.legs
            for hop in leg.hops
        )

    @property
    def redeem_count(self) -> int:
        return sum(len(leg.hops) for leg in self.legs)

    @property
    def meets_request(self) -> bool:
        return self.bytes_scheduled >= self.transfer.bytes_total


@dataclass
class TransferOutcome:
    """What one executed transfer achieved end-to-end."""

    plan: TransferPlan
    submitted: object
    price_mist: int
    reservations: list = field(default_factory=list)

    @property
    def bytes_moved(self) -> int:
        return self.plan.bytes_scheduled
