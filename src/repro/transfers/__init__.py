"""Deadline-driven bulk transfers: malleable reservation planning.

The grid workload "move N bytes across this path before deadline T,
under budget B" — requests (:mod:`~repro.transfers.request`), the frozen
market snapshot + common grid (:mod:`~repro.transfers.book`), the greedy
planner with exact fallback (:mod:`~repro.transfers.planner`), and the
offline-optimal differential baseline (:mod:`~repro.transfers.oracle`).
See ``docs/transfers.md``.
"""

from repro.marketdata.query import IncompatibleGranularity
from repro.transfers.book import (
    MAX_SLOTS,
    BookListing,
    Lattice,
    SlotOption,
    TransferBook,
    book_from_indexer,
    fold_lattices,
)
from repro.transfers.oracle import (
    MAX_FRONTIER,
    OracleOverflow,
    OracleResult,
    Solution,
    offline_optimum,
    solve_schedule,
)
from repro.transfers.planner import TransferPlanner
from repro.transfers.request import (
    BYTES_PER_KBPS_SECOND,
    MAX_REDEEM_SECONDS,
    DeadlineTransfer,
    HopLeg,
    InfeasibleTransfer,
    LegPiece,
    TransferAborted,
    TransferLeg,
    TransferOutcome,
    TransferPlan,
)

__all__ = [
    "BYTES_PER_KBPS_SECOND",
    "MAX_FRONTIER",
    "MAX_REDEEM_SECONDS",
    "MAX_SLOTS",
    "BookListing",
    "DeadlineTransfer",
    "HopLeg",
    "IncompatibleGranularity",
    "InfeasibleTransfer",
    "Lattice",
    "LegPiece",
    "OracleOverflow",
    "OracleResult",
    "SlotOption",
    "Solution",
    "TransferAborted",
    "TransferBook",
    "TransferLeg",
    "TransferOutcome",
    "TransferPlan",
    "TransferPlanner",
    "book_from_indexer",
    "fold_lattices",
    "offline_optimum",
    "solve_schedule",
]
