"""The transfer planner's market snapshot: common grid, slots, and offers.

A :class:`TransferBook` freezes everything a deadline transfer can buy:
for every direction the path crosses (each hop's ingress and egress
interface), the live listings overlapping ``[release, deadline)``, plus
one **common time grid** all of them accept.

Grid construction is the coarsest-common-granule alignment: every listing
accepts windows on its lattice ``start + k*granularity``; folding those
lattices pairwise (CRT over the anchors, step = lcm of the granularities)
yields either one shared lattice — whose step is the coarsest granule
every listing honors — or nothing, in which case
:class:`~repro.marketdata.query.IncompatibleGranularity` names the
irreconcilable classes instead of failing opaquely downstream.

>>> fold_lattices(Lattice(0, 60), Lattice(0, 120))
Lattice(anchor=0, step=120)
>>> fold_lattices(Lattice(0, 60), Lattice(15, 90)) is None  # incongruent
True
>>> fold_lattices(Lattice(30, 60), Lattice(0, 90))
Lattice(anchor=90, step=180)

The grid divides the horizon into *slots*.  Both the
:class:`~repro.transfers.planner.TransferPlanner` and the offline oracle
price the same action space over those slots — per slot, pick one rate
and (implicitly) the cheapest listing per direction that can sell it —
through the shared :meth:`TransferBook.slot_offer` primitive, so their
results are directly comparable.  Candidate rates per slot are the
breakpoints where some listing's feasibility flips (its minimum, its full
bandwidth, full-minus-minimum) plus the residual rate that would finish
the request in that slot alone; between breakpoints the cost is linear in
the rate, so optima over this set track the continuous optimum.

Plateau skipping: the per-slot covering sets are piecewise constant —
they change only where a listing's validity edge crosses the grid — so
:meth:`TransferBook.all_slot_options` enumerates those *segments* and
prices one representative slot per (segment, clip) class instead of
re-searching the book for every slot.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.marketdata.query import MICROMIST, IncompatibleGranularity
from repro.transfers.request import (
    BYTES_PER_KBPS_SECOND,
    MAX_REDEEM_SECONDS,
    InfeasibleTransfer,
)

#: Hard cap on grid slots per transfer — bounds planner and oracle work.
MAX_SLOTS = 4096


@dataclass(frozen=True)
class Lattice:
    """The set of instants ``anchor + k*step`` (k any integer)."""

    anchor: int
    step: int


def fold_lattices(first: Lattice, second: Lattice) -> Lattice | None:
    """Intersection of two lattices, or None when they never meet.

    The intersection is empty iff the anchors are incongruent modulo
    ``gcd(step1, step2)``; otherwise it is a lattice with step
    ``lcm(step1, step2)`` whose anchor CRT recovers.  The returned anchor
    is normalized into ``[0, step)``.
    """
    g = math.gcd(first.step, second.step)
    if (second.anchor - first.anchor) % g:
        return None
    step = first.step // g * second.step  # lcm
    m = second.step // g
    if m == 1:
        anchor = first.anchor
    else:
        t = (
            ((second.anchor - first.anchor) // g)
            * pow((first.step // g) % m, -1, m)
        ) % m
        anchor = first.anchor + first.step * t
    return Lattice(anchor % step, step)


@dataclass(frozen=True)
class BookListing:
    """One live listing, snapshotted for transfer planning."""

    listing_id: str
    unit_price: int  # micromist per kbps-second
    bandwidth_kbps: int
    min_bandwidth_kbps: int
    start: int
    expiry: int
    granularity: int

    @classmethod
    def from_indexed(cls, record) -> "BookListing":
        """From a :class:`~repro.marketdata.query.IndexedListing`."""
        return cls(
            listing_id=record.listing_id,
            unit_price=record.price_micromist_per_unit,
            bandwidth_kbps=record.bandwidth_kbps,
            min_bandwidth_kbps=record.min_bandwidth_kbps,
            start=record.start,
            expiry=record.expiry,
            granularity=record.granularity,
        )

    def covers(self, start: int, expiry: int) -> bool:
        return self.start <= start and expiry <= self.expiry

    def sellable(self, rate_kbps: int) -> bool:
        """The market contract's carve rule: the bought piece and any
        bandwidth remainder must both respect the listing's minimum."""
        remainder = self.bandwidth_kbps - rate_kbps
        if rate_kbps < self.min_bandwidth_kbps or remainder < 0:
            return False
        return remainder == 0 or remainder >= self.min_bandwidth_kbps

    def price_for(self, rate_kbps: int, start: int, expiry: int) -> int:
        """MIST price of one buy (ceil, exactly like the contract)."""
        units = rate_kbps * (expiry - start)
        return -(-units * self.unit_price // MICROMIST)

    @property
    def lattice(self) -> Lattice:
        return Lattice(self.start % self.granularity, self.granularity)


@dataclass(frozen=True)
class SlotOption:
    """One way to buy one slot: a rate, its total cost, its payload.

    ``cost_mist`` sums per-direction ceil prices over the full slot
    window (the executed plan merges adjacent pieces before buying, so
    the real spend can only round *down* from this).  ``bytes`` counts
    only the slot's overlap with ``[release, deadline)``.  ``picks`` maps
    each direction key to the chosen listing id.
    """

    rate_kbps: int
    cost_mist: int
    bytes: int
    picks: tuple

    @property
    def density(self) -> float:
        """Cost per payload byte — the greedy planner's sort key."""
        return self.cost_mist / self.bytes


class TransferBook:
    """Frozen view of everything one deadline transfer can buy.

    ``directions`` maps ``(hop_index, is_ingress)`` to that interface
    direction's listings sorted cheapest-first; ``slots`` is the common
    grid covering ``[release, deadline)``.
    """

    def __init__(self, crossings, release: int, deadline: int, directions):
        self.crossings = tuple(crossings)
        self.release = release
        self.deadline = deadline
        self.directions = {
            key: tuple(
                sorted(
                    listings,
                    key=lambda l: (l.unit_price, l.start, l.listing_id),
                )
            )
            for key, listings in directions.items()
        }
        self.by_id = {
            listing.listing_id: listing
            for listings in self.directions.values()
            for listing in listings
        }
        for key, listings in self.directions.items():
            if not listings:
                hop, is_ingress = key
                raise InfeasibleTransfer(
                    f"no live listing overlaps [{release},{deadline}) on "
                    f"crossing {hop} "
                    f"{'ingress' if is_ingress else 'egress'}"
                )
        self.lattice = self._common_lattice()
        self.slots = self._grid()

    # -- grid ----------------------------------------------------------------------

    def _common_lattice(self) -> Lattice:
        classes = sorted(
            {
                listing.lattice
                for listings in self.directions.values()
                for listing in listings
            },
            key=lambda lat: (lat.step, lat.anchor),
        )
        folded = classes[0]
        for lattice in classes[1:]:
            merged = fold_lattices(folded, lattice)
            if merged is None:
                named = ", ".join(
                    f"{lat.step}s@+{lat.anchor}" for lat in classes
                )
                raise IncompatibleGranularity(
                    f"listings on granule classes [{named}] admit no common "
                    "aligned grid (anchors incongruent); list assets on a "
                    "shared granule or split them to compatible boundaries"
                )
            folded = merged
        # The coarsest common granule must fit inside each direction's
        # supply: if every listing of some direction is shorter than one
        # grid step, no slot there is ever purchasable.
        for key, listings in self.directions.items():
            span = max(l.expiry - l.start for l in listings)
            if folded.step > span:
                hop, is_ingress = key
                raise IncompatibleGranularity(
                    f"coarsest common granule {folded.step}s exceeds every "
                    f"listing on crossing {hop} "
                    f"{'ingress' if is_ingress else 'egress'} "
                    f"(longest spans {span}s); no common alignment is usable"
                )
        return folded

    def _grid(self) -> tuple:
        step = self.lattice.step
        if step > MAX_REDEEM_SECONDS:
            raise IncompatibleGranularity(
                f"coarsest common granule {step}s exceeds the "
                f"{MAX_REDEEM_SECONDS}s redeem duration cap; no purchased "
                "window on this grid could ever be redeemed"
            )
        first = (
            self.lattice.anchor
            + (self.release - self.lattice.anchor) // step * step
        )
        count = -(-(self.deadline - first) // step)
        if count > MAX_SLOTS:
            raise InfeasibleTransfer(
                f"transfer window spans {count} grid slots of {step}s, above "
                f"the {MAX_SLOTS}-slot planner cap; shorten the window or "
                "coarsen the request"
            )
        return tuple(
            (first + i * step, first + (i + 1) * step) for i in range(count)
        )

    def effective_window(self, slot: tuple[int, int]) -> tuple[int, int]:
        """The slot clipped to ``[release, deadline)`` — payload time."""
        return max(slot[0], self.release), min(slot[1], self.deadline)

    def effective_seconds(self, slot: tuple[int, int]) -> int:
        start, expiry = self.effective_window(slot)
        return max(0, expiry - start)

    # -- offers --------------------------------------------------------------------

    def covering(self, slot: tuple[int, int]) -> dict:
        """Per direction, the listings covering the (purchase) slot."""
        start, expiry = slot
        return {
            key: tuple(l for l in listings if l.covers(start, expiry))
            for key, listings in self.directions.items()
        }

    def slot_offer(
        self, slot_index: int, rate_kbps: int, covering: dict | None = None
    ) -> SlotOption | None:
        """Price one slot at one rate, or None when some direction can't.

        Per direction the cheapest covering listing able to sell the rate
        wins — for a fixed rate the cost decomposes per direction, so
        this is optimal within the one-listing-per-direction action
        space.
        """
        if rate_kbps <= 0:
            return None
        slot = self.slots[slot_index]
        if covering is None:
            covering = self.covering(slot)
        cost = 0
        picks = []
        for key, listings in covering.items():
            chosen = None
            for listing in listings:
                if listing.sellable(rate_kbps):
                    chosen = listing
                    break
            if chosen is None:
                return None
            cost += chosen.price_for(rate_kbps, *slot)
            picks.append((key, chosen.listing_id))
        payload = (
            rate_kbps * self.effective_seconds(slot) * BYTES_PER_KBPS_SECOND
        )
        return SlotOption(rate_kbps, cost, payload, tuple(picks))

    def candidate_rates(
        self,
        covering: dict,
        max_rate_kbps: int | None,
        extra_rates=(),
    ) -> list[int]:
        """Breakpoint rates where some listing's feasibility flips."""
        rates: set[int] = set(extra_rates)
        for listings in covering.values():
            for l in listings:
                rates.add(l.min_bandwidth_kbps)
                rates.add(l.bandwidth_kbps)
                rates.add(l.bandwidth_kbps - l.min_bandwidth_kbps)
        rates = {r for r in rates if r > 0}
        if max_rate_kbps is not None:
            rates = {r for r in rates if r <= max_rate_kbps}
            rates.add(max_rate_kbps)
        return sorted(rates)

    def slot_options(
        self,
        slot_index: int,
        covering: dict | None = None,
        max_rate_kbps: int | None = None,
        target_bytes: int | None = None,
    ) -> list[SlotOption]:
        """Pareto-optimal purchase options for one slot, bytes ascending.

        Besides the structural breakpoints, includes the *residual* rate
        that would deliver ``target_bytes`` in this slot alone — the
        squeeze candidate a budget-tight schedule needs between
        breakpoints.
        """
        if covering is None:
            covering = self.covering(self.slots[slot_index])
        extra = ()
        seconds = self.effective_seconds(self.slots[slot_index])
        if target_bytes is not None and seconds > 0:
            extra = (
                -(-target_bytes // (seconds * BYTES_PER_KBPS_SECOND)),
            )
        options = []
        for rate in self.candidate_rates(covering, max_rate_kbps, extra):
            offer = self.slot_offer(slot_index, rate, covering)
            if offer is not None and offer.bytes > 0:
                options.append(offer)
        # Prune dominated offers: keep cost-sorted strictly-rising bytes.
        options.sort(key=lambda o: (o.cost_mist, -o.bytes))
        frontier: list[SlotOption] = []
        best = -1
        for option in options:
            if option.bytes > best:
                frontier.append(option)
                best = option.bytes
        frontier.sort(key=lambda o: o.bytes)
        return frontier

    def all_slot_options(
        self,
        max_rate_kbps: int | None = None,
        target_bytes: int | None = None,
        plateau_skip: bool = True,
    ) -> list[list[SlotOption]]:
        """Per-slot option lists for the whole grid.

        With ``plateau_skip`` (the default) the covering sets are computed
        once per *segment* — a run of slots no listing edge crosses — and
        whole option lists are shared between identically-clipped slots of
        a segment; the naive path re-derives everything per slot (kept as
        the benchmark baseline).
        """
        if not plateau_skip:
            return [
                self.slot_options(
                    i, None, max_rate_kbps, target_bytes
                )
                for i in range(len(self.slots))
            ]
        per_slot: list[list[SlotOption]] = [[] for _ in self.slots]
        cache: dict = {}
        for segment_id, indices in enumerate(self._segments()):
            covering = self.covering(self.slots[indices[0]])
            for i in indices:
                clip = self.effective_seconds(self.slots[i])
                key = (segment_id, clip)
                if key not in cache:
                    cache[key] = self.slot_options(
                        i, covering, max_rate_kbps, target_bytes
                    )
                per_slot[i] = cache[key]
        return per_slot

    def _segments(self) -> list[list[int]]:
        """Maximal runs of slots with identical covering sets.

        A slot's covering set depends only on which listings satisfy
        ``listing.start <= slot_start`` and ``slot_expiry <=
        listing.expiry`` — both flip at most once along the grid, at the
        slot index a listing edge crosses.  Collecting those indices
        yields every segment boundary without comparing sets.
        """
        if not self.slots:
            return []
        first, step = self.slots[0][0], self.lattice.step
        boundaries = {0}
        count = len(self.slots)
        for listings in self.directions.values():
            for l in listings:
                enters = -(-(l.start - first) // step)
                if 0 < enters < count:
                    boundaries.add(enters)
                leaves = (l.expiry - first) // step  # first slot past expiry
                if 0 < leaves < count:
                    boundaries.add(leaves)
        edges = sorted(boundaries) + [count]
        return [
            list(range(edges[i], edges[i + 1]))
            for i in range(len(edges) - 1)
            if edges[i] < edges[i + 1]
        ]

    @property
    def max_bytes(self) -> int:
        """Budget-ignored payload capacity of the whole grid."""
        total = 0
        for i in range(len(self.slots)):
            options = self.slot_options(i)
            if options:
                total += max(o.bytes for o in options)
        return total


def book_from_indexer(
    indexer, crossings, release: int, deadline: int, sync: bool = True
) -> TransferBook:
    """Snapshot a :class:`~repro.marketdata.MarketIndexer` into a book."""
    if sync:
        indexer.sync()
    wanted: dict = {}
    for hop, crossing in enumerate(crossings):
        wanted[(hop, True)] = (
            crossing.isd_as.isd,
            crossing.isd_as.asn,
            crossing.ingress,
            True,
        )
        wanted[(hop, False)] = (
            crossing.isd_as.isd,
            crossing.isd_as.asn,
            crossing.egress,
            False,
        )
    directions: dict = {key: [] for key in wanted}
    records = indexer.listings()
    for key, index_key in wanted.items():
        for record in records:
            if record.key != index_key:
                continue
            if record.start < deadline and record.expiry > release:
                directions[key].append(BookListing.from_indexed(record))
    return TransferBook(crossings, release, deadline, directions)
