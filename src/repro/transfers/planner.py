"""The malleable deadline-transfer planner.

Turns a :class:`~repro.transfers.request.DeadlineTransfer` into a
:class:`~repro.transfers.request.TransferPlan` over a frozen
:class:`~repro.transfers.book.TransferBook`:

1. **Offer enumeration** — the book's plateau-skipping
   ``all_slot_options`` yields, per grid slot, the pareto frontier of
   (rate, cost, payload) purchase options; the covering-listing search
   runs once per constant segment, not once per slot.
2. **Greedy schedule** — slots are claimed in cost-per-byte density
   order; the pick that crosses the byte target is *trimmed* by binary
   search over its slot's bytes-sorted frontier (the valley-edge bisect:
   smallest sufficient option = cheapest sufficient option, because the
   frontier is pareto).  A final descending-density pass re-trims or
   drops earlier picks the overshoot made unnecessary.
3. **Exact fallback** — when greedy can't reach the target under the
   budget, the planner re-solves the same slot/option instance with the
   oracle's exact pareto DP (:func:`~repro.transfers.oracle.solve_schedule`).
   Greedy and oracle share one action space, so by construction the
   planner never declares infeasible a request the offline oracle can
   meet (up to the oracle's own frontier cap).
4. **Leg assembly** — chosen slots coalesce into maximal same-rate runs
   (split below the on-chain redeem's 2^16-second duration cap); within
   a run, consecutive same-listing slots merge into one
   :class:`~repro.transfers.request.LegPiece` per direction, priced with
   a single ceil over the merged window (never more than the per-slot
   sum), fused on-chain before one redeem per hop per leg.
"""

from __future__ import annotations

from bisect import bisect_left

from repro.transfers.book import TransferBook, book_from_indexer
from repro.transfers.oracle import OracleOverflow, solve_schedule
from repro.transfers.request import (
    BYTES_PER_KBPS_SECOND,
    MAX_REDEEM_SECONDS,
    DeadlineTransfer,
    HopLeg,
    InfeasibleTransfer,
    LegPiece,
    TransferLeg,
    TransferPlan,
)


class TransferPlanner:
    """Plans deadline transfers against a live market index."""

    def __init__(self, indexer) -> None:
        self.indexer = indexer

    # -- public API ----------------------------------------------------------------

    def book(self, transfer: DeadlineTransfer, sync: bool = True) -> TransferBook:
        return book_from_indexer(
            self.indexer,
            transfer.crossings,
            transfer.release,
            transfer.deadline,
            sync=sync,
        )

    def plan(
        self,
        transfer: DeadlineTransfer,
        *,
        sync: bool = True,
        best_effort: bool = False,
        exact_fallback: bool = True,
    ) -> TransferPlan:
        try:
            book = self.book(transfer, sync=sync)
        except InfeasibleTransfer:
            # No supply at all (e.g. the book sold out).  Structural
            # errors (IncompatibleGranularity) still propagate.
            if not best_effort:
                raise
            return TransferPlan(transfer, ())
        return self.plan_on_book(
            book,
            transfer,
            best_effort=best_effort,
            exact_fallback=exact_fallback,
        )

    def plan_on_book(
        self,
        book: TransferBook,
        transfer: DeadlineTransfer,
        *,
        best_effort: bool = False,
        exact_fallback: bool = True,
    ) -> TransferPlan:
        """Plan over a frozen book.

        ``best_effort=False`` raises :class:`InfeasibleTransfer` (with
        the achievable bytes/spend attached) when no schedule reaches the
        target under the budget; ``best_effort=True`` returns the
        max-bytes plan instead.  ``exact_fallback=False`` disables the
        exact DP rescue — pure greedy, used by the differential suite to
        measure greedy quality in isolation.
        """
        option_sets = book.all_slot_options(
            max_rate_kbps=transfer.max_rate_kbps,
            target_bytes=transfer.bytes_total,
        )
        target = transfer.bytes_total
        budget = transfer.budget_mist
        chosen, got, spend = self._greedy(option_sets, target, budget)
        if got < target and exact_fallback:
            try:
                at_target, fallback_best = solve_schedule(
                    option_sets, target, budget
                )
            except OracleOverflow:
                at_target, fallback_best = None, None
            if at_target is not None:
                chosen = {
                    i: option
                    for i, option in enumerate(at_target.choices)
                    if option is not None
                }
                got, spend = at_target.bytes, at_target.cost_mist
            elif fallback_best is not None and fallback_best.bytes > got:
                chosen = {
                    i: option
                    for i, option in enumerate(fallback_best.choices)
                    if option is not None
                }
                got, spend = fallback_best.bytes, fallback_best.cost_mist
        if got < target and not best_effort:
            raise InfeasibleTransfer(
                f"cannot move {target} bytes by {transfer.deadline}: best "
                f"achievable schedule carries {got} bytes for {spend} MIST",
                achievable_bytes=got,
                achievable_spend_mist=spend,
            )
        legs = self._legs(book, option_sets, chosen, min(got, target))
        return TransferPlan(transfer, legs)

    # -- greedy search -------------------------------------------------------------

    def _greedy(self, option_sets, target: int, budget: int | None):
        """Density-greedy schedule with bisect trimming.

        Returns ``(chosen, bytes, spend)`` where ``chosen`` maps slot
        index to the picked :class:`SlotOption`.
        """
        ranked = sorted(
            (i for i, options in enumerate(option_sets) if options),
            key=lambda i: min(o.density for o in option_sets[i]),
        )
        chosen: dict = {}
        got = 0
        spend = 0
        for i in ranked:
            if got >= target:
                break
            options = option_sets[i]
            affordable = (
                options
                if budget is None
                else [o for o in options if spend + o.cost_mist <= budget]
            )
            if not affordable:
                continue
            pick = min(affordable, key=lambda o: o.density)
            residual = target - got
            if pick.bytes >= residual:
                # Valley-edge bisect: the frontier is bytes- and
                # cost-ascending, so the smallest sufficient option is
                # also the cheapest sufficient one.
                sizes = [o.bytes for o in options]
                for option in options[bisect_left(sizes, residual):]:
                    if budget is None or spend + option.cost_mist <= budget:
                        pick = option
                        break
            chosen[i] = pick
            got += pick.bytes
            spend += pick.cost_mist
        if got >= target:
            got, spend = self._retrim(option_sets, chosen, target, got, spend)
        return chosen, got, spend

    def _retrim(self, option_sets, chosen, target, got, spend):
        """Spend-reduction pass: shrink or drop picks the overshoot
        made unnecessary, worst density first."""
        for i in sorted(
            chosen, key=lambda i: chosen[i].density, reverse=True
        ):
            slack = got - target
            if slack <= 0:
                break
            current = chosen[i]
            if current.bytes <= slack:
                del chosen[i]
                got -= current.bytes
                spend -= current.cost_mist
                continue
            options = option_sets[i]
            sizes = [o.bytes for o in options]
            smaller = options[bisect_left(sizes, current.bytes - slack)]
            if smaller.cost_mist < current.cost_mist:
                chosen[i] = smaller
                got += smaller.bytes - current.bytes
                spend += smaller.cost_mist - current.cost_mist
        return got, spend

    # -- leg assembly --------------------------------------------------------------

    def _legs(self, book, option_sets, chosen, bytes_to_schedule) -> tuple:
        runs = self._runs(book, chosen)
        legs = []
        remaining = bytes_to_schedule
        for indices, option in runs:
            start = book.slots[indices[0]][0]
            expiry = book.slots[indices[-1]][1]
            eff_start = max(start, book.release)
            eff_expiry = min(expiry, book.deadline)
            capacity = (
                option.rate_kbps
                * (eff_expiry - eff_start)
                * BYTES_PER_KBPS_SECOND
            )
            scheduled = min(capacity, remaining)
            remaining -= scheduled
            hops = self._hop_legs(book, indices, chosen, option.rate_kbps)
            legs.append(
                TransferLeg(
                    start=start,
                    expiry=expiry,
                    rate_kbps=option.rate_kbps,
                    effective_start=eff_start,
                    effective_expiry=eff_expiry,
                    bytes_scheduled=scheduled,
                    hops=hops,
                )
            )
        return tuple(legs)

    def _runs(self, book, chosen):
        """Maximal contiguous same-rate slot runs, split below the
        redeem duration cap.  Yields ``(slot_indices, representative)``.
        """
        runs = []
        current: list[int] = []
        for i in range(len(book.slots)):
            option = chosen.get(i)
            if option is None:
                if current:
                    runs.append((current, chosen[current[0]]))
                    current = []
                continue
            if current:
                prev = chosen[current[0]]
                duration = book.slots[i][1] - book.slots[current[0]][0]
                if (
                    option.rate_kbps != prev.rate_kbps
                    or duration > MAX_REDEEM_SECONDS
                ):
                    runs.append((current, prev))
                    current = []
            current.append(i)
        if current:
            runs.append((current, chosen[current[0]]))
        return runs

    def _hop_legs(self, book, indices, chosen, rate_kbps) -> tuple:
        hops = []
        for hop, crossing in enumerate(book.crossings):
            pieces = {}
            for is_ingress in (True, False):
                key = (hop, is_ingress)
                merged: list[list] = []  # [listing_id, start, expiry]
                for i in indices:
                    picks = dict(chosen[i].picks)
                    listing_id = picks[key]
                    slot = book.slots[i]
                    if merged and merged[-1][0] == listing_id:
                        merged[-1][2] = slot[1]
                    else:
                        merged.append([listing_id, slot[0], slot[1]])
                pieces[is_ingress] = tuple(
                    LegPiece(
                        listing_id=listing_id,
                        start=start,
                        expiry=expiry,
                        price_mist=book.by_id[listing_id].price_for(
                            rate_kbps, start, expiry
                        ),
                    )
                    for listing_id, start, expiry in merged
                )
            hops.append(
                HopLeg(
                    isd_as=crossing.isd_as,
                    ingress=crossing.ingress,
                    egress=crossing.egress,
                    ingress_pieces=pieces[True],
                    egress_pieces=pieces[False],
                )
            )
        return tuple(hops)
