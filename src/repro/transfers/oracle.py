"""Offline-optimal baseline for deadline transfers.

Given the full listing book up front (no contention, no arrival order),
the deadline-transfer scheduling problem over the common grid is a
multiple-choice knapsack: per slot pick one purchase option (or nothing),
maximizing payload bytes subject to the budget — and, when the target is
reachable, minimizing spend among byte-sufficient schedules.

:func:`solve_schedule` solves it *exactly* by pareto-frontier dynamic
programming over (cost, bytes) states: after each slot only states that
are undominated — strictly more bytes for the money — survive.  Payload
is capped at the target while folding, which both keeps the frontier
small and makes "min cost at target" a by-product of the same pass.

The action space is the honest part of the contract: the oracle sees
exactly the :meth:`~repro.transfers.book.TransferBook.slot_options` the
planner sees (one listing per direction per slot, grid-aligned windows,
breakpoint + residual rates).  Within that space it is optimal, so the
differential suite's guarantees — the planner never misses a deadline the
oracle can meet, and achieves ≥90% of oracle bytes — are statements about
search quality, not about mismatched problem definitions.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.transfers.book import TransferBook
from repro.transfers.request import DeadlineTransfer

#: Pareto states retained per slot before the solver gives up.
MAX_FRONTIER = 200_000


class OracleOverflow(RuntimeError):
    """The exact solver's pareto frontier outgrew :data:`MAX_FRONTIER`.

    The oracle is a small-instance baseline; differential tests must
    size their books so this never fires.
    """


@dataclass(frozen=True)
class Solution:
    """One exact schedule: per-slot chosen options (None = idle slot)."""

    choices: tuple
    bytes: int
    cost_mist: int

    @property
    def feasible(self) -> bool:
        return True


@dataclass(frozen=True)
class OracleResult:
    """The offline optimum for one transfer over one frozen book.

    When ``feasible``, ``solution`` moves ≥ the requested bytes at the
    minimum spend any schedule in the action space can; otherwise it is
    the max-bytes-under-budget schedule (possibly empty).
    """

    feasible: bool
    solution: Solution

    @property
    def bytes(self) -> int:
        return self.solution.bytes

    @property
    def cost_mist(self) -> int:
        return self.solution.cost_mist


def solve_schedule(
    option_sets,
    target_bytes: int,
    budget_mist: int | None = None,
) -> tuple[Solution | None, Solution]:
    """Exact DP over per-slot option lists.

    Returns ``(at_target, best_effort)``: the min-cost schedule reaching
    ``target_bytes`` (None when no schedule can, under the budget), and
    the max-bytes schedule under the budget (ties broken toward cheaper;
    always present — the empty schedule qualifies).
    """
    # State: (cost, capped_bytes, chain) where chain is a linked list of
    # (slot_index, option) picks.  Bytes are capped at the target so all
    # byte-sufficient schedules collapse into one frontier band.
    frontier = [(0, 0, None)]
    for slot_index, options in enumerate(option_sets):
        if not options:
            continue
        grown = list(frontier)
        for cost, payload, chain in frontier:
            for option in options:
                new_cost = cost + option.cost_mist
                if budget_mist is not None and new_cost > budget_mist:
                    continue
                grown.append(
                    (
                        new_cost,
                        min(target_bytes, payload + option.bytes),
                        ((slot_index, option), chain),
                    )
                )
        # Pareto prune: sort by (cost, -bytes); keep strictly rising bytes.
        grown.sort(key=lambda state: (state[0], -state[1]))
        pruned = []
        best = -1
        for state in grown:
            if state[1] > best:
                pruned.append(state)
                best = state[1]
        if len(pruned) > MAX_FRONTIER:
            raise OracleOverflow(
                f"pareto frontier reached {len(pruned)} states at slot "
                f"{slot_index}; instance too large for the exact oracle"
            )
        frontier = pruned

    def unchain(chain) -> tuple:
        picks = {}
        while chain is not None:
            (slot_index, option), chain = chain
            picks[slot_index] = option
        return tuple(
            picks.get(i) for i in range(len(option_sets))
        )

    best_effort_state = max(frontier, key=lambda s: (s[1], -s[0]))
    best_effort = Solution(
        unchain(best_effort_state[2]),
        best_effort_state[1],
        best_effort_state[0],
    )
    at_target = None
    for cost, payload, chain in frontier:  # cost-ascending already
        if payload >= target_bytes:
            at_target = Solution(unchain(chain), payload, cost)
            break
    return at_target, best_effort


def offline_optimum(
    book: TransferBook, transfer: DeadlineTransfer
) -> OracleResult:
    """The exact offline optimum for ``transfer`` over ``book``."""
    option_sets = book.all_slot_options(
        max_rate_kbps=transfer.max_rate_kbps,
        target_bytes=transfer.bytes_total,
    )
    at_target, best_effort = solve_schedule(
        option_sets, transfer.bytes_total, transfer.budget_mist
    )
    if at_target is not None:
        return OracleResult(True, at_target)
    return OracleResult(False, best_effort)
