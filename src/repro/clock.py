"""Explicit clocks.

Nothing in the library reads the wall clock directly: sources, routers, the
ledger, and the network simulator all take a :class:`Clock`.  Tests and
benchmarks use :class:`SimClock` for determinism; interactive examples may
use :class:`WallClock`.
"""

from __future__ import annotations

import time
from typing import Protocol


class Clock(Protocol):
    """A monotonic-enough source of seconds since the Unix epoch."""

    def now(self) -> float:
        """Current time in seconds."""
        ...


class SimClock:
    """A manually advanced clock for deterministic simulations.

    >>> clock = SimClock(100.0)
    >>> clock.advance(2.5)
    >>> clock.now()
    102.5
    """

    __slots__ = ("_now",)

    def __init__(self, start: float = 1_700_000_000.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, delta: float) -> None:
        if delta < 0:
            raise ValueError("time cannot move backwards")
        self._now += delta

    def set(self, value: float) -> None:
        if value < self._now:
            raise ValueError("time cannot move backwards")
        self._now = float(value)


class WallClock:
    """The real system clock."""

    __slots__ = ()

    def now(self) -> float:
        return time.time()
