"""Online ResID assignment as interval colouring (§4.4).

Reservations on one ingress interface are time intervals; assigning ResIDs
such that concurrently active reservations never share an ID is exactly the
*online interval colouring* problem.  The prototype uses online First-Fit
(Gyárfás & Lehel), whose competitiveness is bounded (the optimal online
algorithm achieves R = 3; First-Fit is at least 5 in the worst case but much
better on practical workloads — the ablation bench measures this).

``ResIdAllocator`` also enforces the AS's capacity policy: with a total
reservable bandwidth ``TotalBW`` and a minimum reservation size ``MinBW``,
at most ``TotalBW/MinBW`` reservations are concurrently active, and the AS
sizes its policing array as ``R * TotalBW / MinBW`` (§4.4 examples: 24 MB
for 100 Gbps / 100 kbps, 600 kB for 100 Gbps / 4 Mbps).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Interval:
    """A half-open reservation validity interval [start, end)."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty interval [{self.start}, {self.end})")

    def overlaps(self, other: "Interval") -> bool:
        return self.start < other.end and other.start < self.end


@dataclass
class _ColorTrack:
    """Sorted interval bookkeeping for one colour (one ResID)."""

    starts: list[float] = field(default_factory=list)
    ends: list[float] = field(default_factory=list)

    def conflicts(self, interval: Interval) -> bool:
        """Does ``interval`` overlap any interval assigned to this colour?"""
        index = bisect.bisect_right(self.starts, interval.start)
        if index > 0 and self.ends[index - 1] > interval.start:
            return True
        if index < len(self.starts) and self.starts[index] < interval.end:
            return True
        return False

    def insert(self, interval: Interval) -> None:
        index = bisect.bisect_right(self.starts, interval.start)
        self.starts.insert(index, interval.start)
        self.ends.insert(index, interval.end)

    def remove(self, interval: Interval) -> None:
        index = bisect.bisect_left(self.starts, interval.start)
        while index < len(self.starts) and self.starts[index] == interval.start:
            if self.ends[index] == interval.end:
                del self.starts[index]
                del self.ends[index]
                return
            index += 1
        raise KeyError(f"interval {interval} not assigned to this colour")


class FirstFitColoring:
    """Online First-Fit interval colouring.

    >>> coloring = FirstFitColoring()
    >>> coloring.assign(Interval(0, 10))
    0
    >>> coloring.assign(Interval(5, 15))
    1
    >>> coloring.assign(Interval(10, 20))  # first interval ended; colour 0 free
    0
    """

    def __init__(self) -> None:
        self._tracks: list[_ColorTrack] = []
        self.max_color_used = -1

    def assign(self, interval: Interval) -> int:
        """Return the lowest colour with no overlapping assignment."""
        for color, track in enumerate(self._tracks):
            if not track.conflicts(interval):
                track.insert(interval)
                self.max_color_used = max(self.max_color_used, color)
                return color
        self._tracks.append(_ColorTrack())
        color = len(self._tracks) - 1
        self._tracks[color].insert(interval)
        self.max_color_used = max(self.max_color_used, color)
        return color

    def release(self, color: int, interval: Interval) -> None:
        """Remove a finished interval so its colour can be reused."""
        self._tracks[color].remove(interval)

    def prune_empty_tail(self) -> None:
        """Drop trailing colours with no assignments (rollback helper), so
        ``colors_in_use`` never counts colours created by a failed assign."""
        while self._tracks and not self._tracks[-1].starts:
            self._tracks.pop()

    @property
    def colors_in_use(self) -> int:
        return len(self._tracks)


class ResIdAllocator:
    """Per-ingress-interface ResID assignment with a capacity policy.

    ``capacity`` bounds the highest assignable ResID (the policing-array
    size); exceeding it raises, which on the control plane surfaces as "no
    bandwidth available" before any asset is sold.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._coloring = FirstFitColoring()

    def allocate(self, start: float, end: float) -> int:
        interval = Interval(start, end)
        high_water = self._coloring.max_color_used
        res_id = self._coloring.assign(interval)
        if res_id >= self.capacity:
            # Roll the rejected assignment back completely: the interval, the
            # track it may have created, AND the high-water mark (policing
            # arrays are sized off max_res_id, which must only reflect
            # reservations actually granted).
            self._coloring.release(res_id, interval)
            self._coloring.prune_empty_tail()
            self._coloring.max_color_used = high_water
            raise CapacityExhausted(
                f"ResID {res_id} exceeds policing capacity {self.capacity}"
            )
        return res_id

    def release(self, res_id: int, start: float, end: float) -> None:
        self._coloring.release(res_id, Interval(start, end))

    @property
    def max_res_id(self) -> int:
        return self._coloring.max_color_used


class CapacityExhausted(RuntimeError):
    """The AS cannot police more concurrent reservations on this interface."""


def policing_array_bytes(total_bw_kbps: int, min_bw_kbps: int, competitiveness: int = 3) -> int:
    """Worst-case policing array size per §4.4: 8 B * R * TotalBW / MinBW."""
    if min_bw_kbps <= 0:
        raise ValueError("minimum bandwidth must be positive")
    res_id_max = competitiveness * total_bw_kbps // min_bw_kbps
    return 8 * res_id_max
