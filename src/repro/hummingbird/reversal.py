"""Path reversal (Appendix A.8).

The destination of a Hummingbird packet can answer over the same path by
reversing it.  Reversal

* converts every FlyoverHopField back to a plain HopField (reservations are
  unidirectional; the flyover-specific fields are stripped and the flyover
  bit cleared) — this works because every on-path router replaced the
  AggMAC with the plain hop-field MAC after verification (A.7);
* reverses the order of segments and of the hop fields within each segment;
* flips each construction-direction flag;
* resets the cursors to the beginning.

The resulting path is a valid Hummingbird-type path without reservations;
:func:`to_standard_path` further converts it to the regular SCION path type
(drop the timestamp triple, re-encode the SegLen values).
"""

from __future__ import annotations

from repro.hummingbird.pathtype import HummingbirdPath, is_flyover
from repro.scion.packet import PacketPath
from repro.scion.paths import HopFieldData, SegmentInPath


def reverse_path(path: PacketPath) -> HummingbirdPath:
    """Reverse a fully traversed path for the return direction.

    Must be called at the destination, after all routers processed their hop
    fields: the SegID accumulators then hold exactly the values the reverse
    traversal needs as initial values, and all AggMACs have been replaced by
    plain hop-field MACs.
    """
    if not path.at_end():
        raise ValueError("can only reverse a fully traversed path")
    reversed_segments: list[SegmentInPath] = []
    reversed_segids: list[int] = []
    for seg_index in range(len(path.segments) - 1, -1, -1):
        segment = path.segments[seg_index]
        hopfields = [
            _strip_flyover(segment.hopfields[i])
            for i in range(len(segment.hopfields) - 1, -1, -1)
        ]
        ases = list(reversed(segment.ases)) if segment.ases else []
        segid = path.segids[seg_index]
        reversed_segments.append(
            SegmentInPath(
                cons_dir=not segment.cons_dir,
                timestamp=segment.timestamp,
                initial_segid=segid,
                hopfields=hopfields,
                ases=ases,
            )
        )
        reversed_segids.append(segid)
    base = path.base_timestamp if isinstance(path, HummingbirdPath) else 0
    return HummingbirdPath(
        segments=reversed_segments,
        segids=reversed_segids,
        curr_inf=0,
        curr_hf=0,
        base_timestamp=base,
        millis_timestamp=0,
        counter=0,
    )


def _strip_flyover(hop: HopFieldData) -> HopFieldData:
    """Convert a flyover hop field to a regular one (flyover fields removed)."""
    if is_flyover(hop):
        return HopFieldData(hop.cons_ingress, hop.cons_egress, hop.exp_time, hop.mac)
    return hop.copy()


def to_standard_path(path: HummingbirdPath) -> PacketPath:
    """Convert a reservation-free Hummingbird path to the SCION path type."""
    for segment in path.segments:
        for hop in segment.hopfields:
            if is_flyover(hop):
                raise ValueError("strip flyovers (reverse_path) before converting")
    return PacketPath(
        segments=[
            SegmentInPath(
                cons_dir=segment.cons_dir,
                timestamp=segment.timestamp,
                initial_segid=segment.initial_segid,
                hopfields=[hop.copy() for hop in segment.hopfields],
                ases=list(segment.ases),
            )
            for segment in path.segments
        ],
        segids=list(path.segids),
        curr_inf=path.curr_inf,
        curr_hf=path.curr_hf,
    )
