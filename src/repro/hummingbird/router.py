"""Hummingbird border-router pipeline (Algorithms 2-4, Fig. 13).

For each packet the ingress border router of AS *i*:

1. **Flyover processing** (Algorithm 3) if the current hop field has the F
   bit set: re-derive the reservation key :math:`A_i` from the packet's
   reservation information and the AS-local secret value, recompute the
   flyover MAC, XOR it into the AggMAC field — recovering the candidate
   SCION hop-field MAC — and run the freshness and reservation-active
   checks.  Timing failures demote the packet to best effort; a bad tag
   will surface as a hop-field MAC mismatch and drop the packet.
2. **Standard SCION processing** (Algorithm 4): hop-field expiry, MAC
   verification (on the candidate recovered above), SegID update, CurrHF
   advance — two hop fields at segment boundaries (A.5).
3. **Bandwidth monitoring** (Algorithm 1) plus optional duplicate
   suppression: overuse or replay demotes to best effort.
4. Forward with priority, forward best effort, or drop.

Step 1 leaves the plain hop-field MAC in the header (A.7), which is what
makes path reversal at the destination trivial.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clock import Clock
from repro.crypto.keys import derive_auth_key
from repro.crypto.prf import DEFAULT_PRF_FACTORY, PrfFactory
from repro.hummingbird.duplicate import DuplicateFilter
from repro.hummingbird.mac import compute_flyover_mac, checked_pkt_len
from repro.hummingbird.pathtype import FlyoverHopFieldData, HummingbirdPath, is_flyover
from repro.hummingbird.policing import PerInterfacePolicer, PolicingVerdict
from repro.scion.packet import PATH_TYPE_HUMMINGBIRD, ScionPacket
from repro.scion.router import Action, Decision, ScionRouter
from repro.scion.topology import AutonomousSystem

DEFAULT_MAX_PACKET_AGE = 1.0  # Delta: maximum packet age accepted as fresh
DEFAULT_CLOCK_SKEW = 0.5  # delta: maximum clock skew between host and AS (§3.2)
DEFAULT_POLICING_CAPACITY = 100_000  # matches the prototype's 800 kB array (§7.1)


@dataclass
class RouterStats:
    """Per-router counters, used by tests and the QoS experiments."""

    flyover_forwarded: int = 0
    best_effort_forwarded: int = 0
    dropped: int = 0
    demoted_stale: int = 0
    demoted_inactive: int = 0
    demoted_overuse: int = 0
    demoted_duplicate: int = 0
    drop_reasons: dict = field(default_factory=dict)

    def record_drop(self, reason: str) -> None:
        self.dropped += 1
        self.drop_reasons[reason] = self.drop_reasons.get(reason, 0) + 1


class HummingbirdRouter(ScionRouter):
    """Border router with flyover authentication, policing and prioritization."""

    def __init__(
        self,
        autonomous_system: AutonomousSystem,
        clock: Clock,
        prf_factory: PrfFactory = DEFAULT_PRF_FACTORY,
        policing_capacity: int = DEFAULT_POLICING_CAPACITY,
        burst_time: float | None = None,
        max_packet_age: float = DEFAULT_MAX_PACKET_AGE,
        clock_skew: float = DEFAULT_CLOCK_SKEW,
        duplicate_filter: DuplicateFilter | None = None,
    ) -> None:
        super().__init__(autonomous_system, clock, prf_factory)
        if burst_time is None:
            self.policer = PerInterfacePolicer(policing_capacity)
        else:
            self.policer = PerInterfacePolicer(policing_capacity, burst_time)
        self.max_packet_age = max_packet_age
        self.clock_skew = clock_skew
        self.duplicate_filter = duplicate_filter
        self.stats = RouterStats()

    # -- Algorithm 2 ---------------------------------------------------------

    def process(self, packet: ScionPacket, ingress_ifid: int) -> Decision:
        if packet.path_type != PATH_TYPE_HUMMINGBIRD:
            decision = super().process(packet, ingress_ifid)
            self._count(decision)
            return decision
        path = packet.path
        if not isinstance(path, HummingbirdPath):
            decision = Decision(Action.DROP, reason="path type 5 without meta header")
            self._count(decision)
            return decision
        if path.at_end():
            decision = Decision(Action.DROP, reason="path exhausted")
            self._count(decision)
            return decision

        seg_index, local, _, hop = path.current()
        flyover_verdict = PolicingVerdict.FWD_BEST_EFFORT
        flyover_hop: FlyoverHopFieldData | None = None
        resinfo_ingress = 0
        pkt_len = 0
        if is_flyover(hop):
            flyover_hop = hop  # type: ignore[assignment]
            try:
                flyover_verdict, resinfo_ingress, pkt_len = self._flyover_processing(
                    packet, path, seg_index, local
                )
            except OverflowError:
                decision = Decision(Action.DROP, reason="PktLen overflow")
                self._count(decision)
                return decision

        # Standard SCION processing (inherited Algorithm 4, incl. boundary).
        decision = super(HummingbirdRouter, self).process(packet, ingress_ifid)
        if decision.action is Action.DROP:
            self._count(decision)
            return decision

        if flyover_hop is not None and flyover_verdict is PolicingVerdict.FWD_FLYOVER:
            flyover_verdict = self._monitor(
                flyover_hop, resinfo_ingress, pkt_len, path
            )

        if flyover_hop is not None and flyover_verdict is PolicingVerdict.FWD_FLYOVER:
            if decision.action is Action.FORWARD:
                decision = Decision(
                    Action.FORWARD_PRIORITY, egress_ifid=decision.egress_ifid
                )
            elif decision.action is Action.DELIVER:
                # Terminal hop: nothing to forward, but the crossing consumed
                # reservation bandwidth — count it as prioritized.
                self.stats.flyover_forwarded += 1
                self.stats.best_effort_forwarded -= 1
        self._count(decision)
        return decision

    # -- Algorithm 3 ---------------------------------------------------------

    def _flyover_processing(
        self,
        packet: ScionPacket,
        path: HummingbirdPath,
        seg_index: int,
        local: int,
    ) -> tuple[PolicingVerdict, int, int]:
        """Recover the candidate hop-field MAC and run the timing checks.

        Returns (verdict, reservation ingress interface, PktLen).  Mutates
        the hop field's MAC: AggMAC -> candidate HopFieldMAC (A.7).
        """
        segment = path.segments[seg_index]
        hop: FlyoverHopFieldData = segment.hopfields[local]  # type: ignore[assignment]

        res_start = path.base_timestamp - hop.res_start_offset
        ingress, egress = self._effective_interfaces(path, seg_index, local)
        auth_key = derive_auth_key(
            self.autonomous_system.secret_value,
            ingress,
            egress,
            hop.res_id,
            hop.bw_cls,
            res_start,
            hop.res_duration,
            self.prf_factory,
        )
        pkt_len = checked_pkt_len(len(packet.payload), packet.hdr_len_units())
        flyover_mac = compute_flyover_mac(
            auth_key,
            packet.dst.isd_as,
            pkt_len,
            hop.res_start_offset,
            path.millis_timestamp,
            path.counter,
            self.prf_factory,
        )
        # Candidate hop-field MAC (Eq. 6); also the A.7 MAC replacement.
        hop.mac = bytes(a ^ b for a, b in zip(hop.mac, flyover_mac))

        now = self.clock.now()
        abs_ts = path.base_timestamp + path.millis_timestamp / 1000.0
        age = now - abs_ts
        if not -self.clock_skew <= age <= self.max_packet_age + self.clock_skew:
            self.stats.demoted_stale += 1
            return PolicingVerdict.FWD_BEST_EFFORT, ingress, pkt_len
        res_expiry = res_start + hop.res_duration
        if not res_start <= now <= res_expiry:  # no skew slack here (A.7 note)
            self.stats.demoted_inactive += 1
            return PolicingVerdict.FWD_BEST_EFFORT, ingress, pkt_len
        return PolicingVerdict.FWD_FLYOVER, ingress, pkt_len

    def _effective_interfaces(
        self, path: HummingbirdPath, seg_index: int, local: int
    ) -> tuple[int, int]:
        """Traffic-direction (In, Eg) of the reservation, spanning boundaries.

        The reservation covers the whole AS crossing; at a segment boundary
        the flyover hop field (first of the AS's two hop fields, A.5) shows
        traversal egress 0 and the true egress lives in the next segment's
        first hop field.
        """
        segment = path.segments[seg_index]
        ingress, egress = segment.traversal_interfaces(local)
        if (
            egress == 0
            and local == len(segment.hopfields) - 1
            and seg_index + 1 < len(path.segments)
        ):
            next_segment = path.segments[seg_index + 1]
            if next_segment.hopfields:
                _, egress = next_segment.traversal_interfaces(0)
        return ingress, egress

    # -- Algorithm 1 + optional duplicate suppression -------------------------

    def _monitor(
        self,
        hop: FlyoverHopFieldData,
        ingress: int,
        pkt_len: int,
        path: HummingbirdPath,
    ) -> PolicingVerdict:
        now = self.clock.now()
        if self.duplicate_filter is not None and self.duplicate_filter.is_duplicate(
            hop.res_id, path.base_timestamp, path.millis_timestamp, path.counter, now
        ):
            self.stats.demoted_duplicate += 1
            return PolicingVerdict.FWD_BEST_EFFORT
        verdict = self.policer.monitor(ingress, hop.res_id, hop.bw_cls, pkt_len, now)
        if verdict is PolicingVerdict.FWD_BEST_EFFORT:
            self.stats.demoted_overuse += 1
        return verdict

    # -- bookkeeping ----------------------------------------------------------

    def _count(self, decision: Decision) -> None:
        if decision.action is Action.FORWARD_PRIORITY:
            self.stats.flyover_forwarded += 1
        elif decision.action in (Action.FORWARD, Action.DELIVER):
            self.stats.best_effort_forwarded += 1
        else:
            self.stats.record_drop(decision.reason)
