"""The Hummingbird SCION path type (Appendix A): byte-exact header codec.

Layout (Fig. 6)::

    PathMetaHdr (12 B, Fig. 7)
    InfoField   (8 B each, up to 3, Fig. 8 — unchanged from SCION)
    HopField (12 B, Fig. 9) / FlyoverHopField (20 B, Fig. 10) mix

Changes relative to the standard SCION path type:

* ``CurrHF`` is an 8-bit index in **4-byte increments** (plain hop fields
  advance it by 3, flyover hop fields by 5);
* ``SegLen`` values are 7-bit and count the segment's hop-field bytes / 4;
* the meta header carries ``BaseTimestamp`` (32-bit seconds),
  ``MillisTimestamp`` (16-bit offset) and ``Counter`` (16-bit uniqueness);
* the first hop-field bit is the flyover flag ``F``.

The in-memory representation extends the generic :class:`PacketPath` with
the timestamp triple; flyover hop fields extend :class:`HopFieldData` with
the reservation fields.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.scion.packet import (
    PATH_TYPE_HUMMINGBIRD,
    PacketPath,
    PathCodec,
    register_path_codec,
)
from repro.scion.paths import HopFieldData, SegmentInPath
from repro.wire.bitfields import BitPacker, BitUnpacker

META_HDR_LEN = 12
INFO_FIELD_LEN = 8
HOPFIELD_LEN = 12
FLYOVER_HOPFIELD_LEN = 20
HOPFIELD_UNITS = HOPFIELD_LEN // 4  # CurrHF advances by 3
FLYOVER_UNITS = FLYOVER_HOPFIELD_LEN // 4  # ... or by 5


@dataclass
class FlyoverHopFieldData(HopFieldData):
    """A hop field carrying a flyover reservation (``mac`` holds the AggMAC)."""

    res_id: int = 0
    bw_cls: int = 0
    res_start_offset: int = 0
    res_duration: int = 0

    def copy(self) -> "FlyoverHopFieldData":
        return FlyoverHopFieldData(
            self.cons_ingress,
            self.cons_egress,
            self.exp_time,
            self.mac,
            self.res_id,
            self.bw_cls,
            self.res_start_offset,
            self.res_duration,
        )


def is_flyover(hop: HopFieldData) -> bool:
    """The F bit: does this hop field carry a reservation?"""
    return isinstance(hop, FlyoverHopFieldData)


def hopfield_units(hop: HopFieldData) -> int:
    return FLYOVER_UNITS if is_flyover(hop) else HOPFIELD_UNITS


@dataclass
class HummingbirdPath(PacketPath):
    """Packet path state for the Hummingbird path type.

    Adds the per-packet timestamp triple of the PathMetaHdr.  ``curr_hf``
    remains a logical hop-field index in memory; the codec converts to the
    wire's 4-byte-increment encoding.
    """

    base_timestamp: int = 0
    millis_timestamp: int = 0
    counter: int = 0

    def seg_len_units(self) -> tuple[int, int, int]:
        """Per-segment hop-field byte length divided by 4 (7-bit fields)."""
        lens = [
            sum(hopfield_units(hop) for hop in segment.hopfields)
            for segment in self.segments
        ]
        while len(lens) < 3:
            lens.append(0)
        return lens[0], lens[1], lens[2]

    def curr_hf_units(self) -> int:
        """Wire encoding of CurrHF: 4-byte units before the current hop field."""
        units = 0
        counted = 0
        for segment in self.segments:
            for hop in segment.hopfields:
                if counted == self.curr_hf:
                    return units
                units += hopfield_units(hop)
                counted += 1
        if counted == self.curr_hf:
            return units
        raise ValueError(f"curr_hf {self.curr_hf} beyond end of path")

    def flyover_count(self) -> int:
        return sum(
            1
            for segment in self.segments
            for hop in segment.hopfields
            if is_flyover(hop)
        )


# ---------------------------------------------------------------------------
# Wire codec
# ---------------------------------------------------------------------------


def encode_hummingbird_path(path: PacketPath) -> bytes:
    if not isinstance(path, HummingbirdPath):
        raise TypeError("hummingbird codec requires a HummingbirdPath")
    if len(path.segments) > 3:
        raise ValueError("at most three segments")
    seg_lens = path.seg_len_units()
    for seg_len in seg_lens:
        if seg_len >= 1 << 7:
            raise ValueError(f"segment length {seg_len} overflows 7 bits")
    curr_units = path.curr_hf_units()
    if curr_units >= 1 << 8:
        raise ValueError("CurrHF overflows 8 bits")

    meta = BitPacker()
    meta.put(path.curr_inf, 2)
    meta.put(curr_units, 8)
    meta.put(0, 1)  # r
    meta.put(seg_lens[0], 7)
    meta.put(seg_lens[1], 7)
    meta.put(seg_lens[2], 7)
    out = bytearray(meta.to_bytes())
    out += path.base_timestamp.to_bytes(4, "big")
    out += path.millis_timestamp.to_bytes(2, "big")
    out += path.counter.to_bytes(2, "big")

    for seg_index, segment in enumerate(path.segments):
        info = BitPacker()
        info.put(0, 6)
        info.put(0, 1)  # peering
        info.put(1 if segment.cons_dir else 0, 1)
        info.put(0, 8)
        info.put(path.segids[seg_index], 16)
        out += info.to_bytes()
        out += segment.timestamp.to_bytes(4, "big")

    for segment in path.segments:
        for hop in segment.hopfields:
            out += _encode_hopfield(hop)
    return bytes(out)


def _encode_hopfield(hop: HopFieldData) -> bytes:
    packer = BitPacker()
    packer.put(1 if is_flyover(hop) else 0, 1)  # F
    packer.put(0, 5)  # r
    packer.put(0, 1)  # I
    packer.put(0, 1)  # E
    packer.put(hop.exp_time, 8)
    packer.put(hop.cons_ingress, 16)
    packer.put(hop.cons_egress, 16)
    head = packer.to_bytes()
    if len(hop.mac) != 6:
        raise ValueError("hop-field MAC/AggMAC must be 6 bytes")
    body = head + hop.mac
    if not is_flyover(hop):
        return body
    tail = BitPacker()
    tail.put(hop.res_id, 22)
    tail.put(hop.bw_cls, 10)
    tail.put(hop.res_start_offset, 16)
    tail.put(hop.res_duration, 16)
    return body + tail.to_bytes()


def decode_hummingbird_path(data: bytes) -> PacketPath:
    if len(data) < META_HDR_LEN:
        raise ValueError("truncated Hummingbird path meta header")
    meta = BitUnpacker(data[:4])
    curr_inf = meta.take(2)
    curr_units = meta.take(8)
    meta.take(1)
    seg_lens = [meta.take(7) for _ in range(3)]
    num_inf = sum(1 for seg_len in seg_lens if seg_len > 0)
    for i in range(num_inf, 3):
        if seg_lens[i] > 0:
            raise ValueError("segment length after an empty segment")
    base_timestamp = int.from_bytes(data[4:8], "big")
    millis_timestamp = int.from_bytes(data[8:10], "big")
    counter = int.from_bytes(data[10:12], "big")

    offset = META_HDR_LEN
    infos: list[tuple[bool, int, int]] = []
    for _ in range(num_inf):
        info = BitUnpacker(data[offset : offset + 4])
        info.take(6)
        info.take(1)
        cons_dir = bool(info.take(1))
        info.take(8)
        segid = info.take(16)
        timestamp = int.from_bytes(data[offset + 4 : offset + 8], "big")
        infos.append((cons_dir, segid, timestamp))
        offset += INFO_FIELD_LEN

    segments: list[SegmentInPath] = []
    segids: list[int] = []
    units_seen = 0
    curr_hf_logical: int | None = 0 if curr_units == 0 else None
    hopfields_total = 0
    for seg_index in range(num_inf):
        cons_dir, segid, timestamp = infos[seg_index]
        remaining_units = seg_lens[seg_index]
        hopfields: list[HopFieldData] = []
        while remaining_units > 0:
            if offset >= len(data):
                raise ValueError("SegLen claims hop fields beyond the packet")
            flyover_bit = data[offset] >> 7
            length = FLYOVER_HOPFIELD_LEN if flyover_bit else HOPFIELD_LEN
            if offset + length > len(data):
                raise ValueError("truncated hop field")
            hop = _decode_hopfield(data[offset : offset + length], bool(flyover_bit))
            hopfields.append(hop)
            offset += length
            units = length // 4
            remaining_units -= units
            units_seen += units
            hopfields_total += 1
            if curr_hf_logical is None and units_seen == curr_units:
                curr_hf_logical = hopfields_total
        if remaining_units < 0:
            raise ValueError("hop fields overrun the declared SegLen")
        segments.append(
            SegmentInPath(
                cons_dir=cons_dir,
                timestamp=timestamp,
                initial_segid=segid,
                hopfields=hopfields,
                ases=[],
            )
        )
        segids.append(segid)
    if offset != len(data):
        raise ValueError(f"trailing {len(data) - offset} bytes after path")
    if curr_hf_logical is None:
        raise ValueError(f"CurrHF={curr_units} does not point at a hop-field start")
    return HummingbirdPath(
        segments=segments,
        segids=segids,
        curr_inf=curr_inf,
        curr_hf=curr_hf_logical,
        base_timestamp=base_timestamp,
        millis_timestamp=millis_timestamp,
        counter=counter,
    )


def _decode_hopfield(data: bytes, flyover: bool) -> HopFieldData:
    fields = BitUnpacker(data[:6])
    flyover_bit = fields.take(1)
    if bool(flyover_bit) != flyover:
        raise ValueError("inconsistent flyover bit")
    fields.take(5)
    fields.take(1)
    fields.take(1)
    exp_time = fields.take(8)
    cons_ingress = fields.take(16)
    cons_egress = fields.take(16)
    mac = data[6:12]
    if not flyover:
        return HopFieldData(cons_ingress, cons_egress, exp_time, mac)
    tail = BitUnpacker(data[12:20])
    res_id = tail.take(22)
    bw_cls = tail.take(10)
    res_start_offset = tail.take(16)
    res_duration = tail.take(16)
    return FlyoverHopFieldData(
        cons_ingress,
        cons_egress,
        exp_time,
        mac,
        res_id,
        bw_cls,
        res_start_offset,
        res_duration,
    )


def hummingbird_path_size(path: PacketPath) -> int:
    if not isinstance(path, HummingbirdPath):
        raise TypeError("hummingbird codec requires a HummingbirdPath")
    hop_bytes = sum(
        hopfield_units(hop) * 4
        for segment in path.segments
        for hop in segment.hopfields
    )
    return META_HDR_LEN + INFO_FIELD_LEN * len(path.segments) + hop_bytes


register_path_codec(
    PATH_TYPE_HUMMINGBIRD,
    PathCodec(
        encode=encode_hummingbird_path,
        decode=decode_hummingbird_path,
        size=hummingbird_path_size,
    ),
)
