"""Hummingbird gateway: multiplexing hosts over shared reservations (§5.4).

The paper removes the *requirement* for AS-level gateways (hosts hold their
own keys), but notes the gateway's aggregation function "is still
beneficial, and our system readily supports the implementation of gateways
to this end": a corporate LAN or ISP buys one large inter-domain
reservation and multiplexes many internal hosts over it.

:class:`HummingbirdGateway` does exactly that: it owns the reservations and
the path, admits intra-AS flows with per-flow rate limits (so the aggregate
can never exceed the purchased bandwidth — the on-path policers must never
demote gateway traffic), and stamps outgoing packets with the shared
flyover MACs.  Hosts behind the gateway never see the authentication keys,
mirroring the Colibri/Helia deployment model when an operator prefers it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.clock import Clock
from repro.crypto.prf import DEFAULT_PRF_FACTORY, PrfFactory
from repro.hummingbird.policing import TokenBucketArray, PolicingVerdict
from repro.hummingbird.reservation import FlyoverReservation
from repro.hummingbird.source import HummingbirdSource
from repro.scion.addresses import ScionAddr
from repro.scion.packet import ScionPacket
from repro.scion.paths import ForwardingPath


class AdmissionError(RuntimeError):
    """The gateway cannot admit the flow without risking overuse."""


@dataclass
class GatewayFlow:
    """One admitted intra-AS flow with its committed rate."""

    flow_id: int
    host: ScionAddr
    rate_kbps: int
    sent_packets: int = 0
    demoted_packets: int = 0


@dataclass
class GatewayStats:
    admitted_flows: int = 0
    rejected_flows: int = 0
    sent_packets: int = 0
    locally_demoted: int = 0


class HummingbirdGateway:
    """Aggregates many local flows onto one set of flyover reservations.

    Admission control is bandwidth-based: the sum of admitted flow rates
    can never exceed the reservation bandwidth.  A local token bucket per
    flow (same Algorithm 1 machinery the border routers use, with the same
    BurstTime) enforces the committed rates *before* packets leave, so the
    aggregate presented to the on-path policers is always conformant —
    gateway traffic is never demoted in the network.
    """

    def __init__(
        self,
        gateway_addr: ScionAddr,
        dst: ScionAddr,
        path: ForwardingPath,
        reservations: list[FlyoverReservation],
        clock: Clock,
        prf_factory: PrfFactory = DEFAULT_PRF_FACTORY,
        max_flows: int = 1024,
    ) -> None:
        if not reservations:
            raise ValueError("a gateway needs at least one reservation")
        self.clock = clock
        self.source = HummingbirdSource(
            gateway_addr, dst, path, reservations, clock, prf_factory
        )
        # The usable aggregate is the smallest reservation on the path.
        self.aggregate_kbps = min(
            r.resinfo.bandwidth_kbps for r in reservations
        )
        self._committed_kbps = 0
        self._flows: dict[int, GatewayFlow] = {}
        self._buckets = TokenBucketArray(capacity=max_flows)
        self._next_flow_id = 0
        self.stats = GatewayStats()

    # -- admission -------------------------------------------------------------

    @property
    def available_kbps(self) -> int:
        return self.aggregate_kbps - self._committed_kbps

    def admit(self, host: ScionAddr, rate_kbps: int) -> GatewayFlow:
        """Admit a local flow, reserving ``rate_kbps`` of the aggregate."""
        if rate_kbps <= 0:
            raise ValueError("flow rate must be positive")
        if rate_kbps > self.available_kbps:
            self.stats.rejected_flows += 1
            raise AdmissionError(
                f"flow wants {rate_kbps} kbps but only "
                f"{self.available_kbps} kbps of the reservation is free"
            )
        if self._next_flow_id >= self._buckets.capacity:
            self.stats.rejected_flows += 1
            raise AdmissionError("gateway flow table full")
        flow = GatewayFlow(
            flow_id=self._next_flow_id, host=host, rate_kbps=rate_kbps
        )
        self._next_flow_id += 1
        self._flows[flow.flow_id] = flow
        self._committed_kbps += rate_kbps
        self.stats.admitted_flows += 1
        return flow

    def release(self, flow_id: int) -> None:
        flow = self._flows.pop(flow_id, None)
        if flow is not None:
            self._committed_kbps -= flow.rate_kbps
            self._buckets.reset(flow_id)

    # -- forwarding ---------------------------------------------------------------

    def send(self, flow_id: int, payload: bytes) -> ScionPacket | None:
        """Build an authenticated packet for a local flow's payload.

        Returns ``None`` when the flow exceeds its committed rate — the
        gateway drops to best effort *locally* (the caller may send the
        payload unprotected) instead of letting the network policers see
        non-conformant reservation traffic.
        """
        flow = self._flows.get(flow_id)
        if flow is None:
            raise KeyError(f"unknown flow {flow_id}")
        packet = self.source.build_packet(payload, flow_id=flow_id + 1)
        verdict = self._buckets.monitor(
            flow_id, flow.rate_kbps, packet.packet_length(), self.clock.now()
        )
        flow.sent_packets += 1
        if verdict is PolicingVerdict.FWD_BEST_EFFORT:
            flow.demoted_packets += 1
            self.stats.locally_demoted += 1
            return None
        self.stats.sent_packets += 1
        return packet

    def flows(self) -> list[GatewayFlow]:
        return list(self._flows.values())
