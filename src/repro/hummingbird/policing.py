"""Deterministic traffic policing (§4.4, Algorithm 1).

Each AS polices its own reservations with a token-bucket variant that stores
a single 8-byte timestamp per reservation.  ``TSArray[ResID]`` holds the
virtual time up to which the reservation has already "paid for" traffic; a
packet of ``PktLen`` bytes on a reservation of bandwidth ``BW`` advances it
by ``PktLen/BW`` seconds.  A packet is forwarded with priority iff the
advanced timestamp stays within ``BurstTime`` of the current time — i.e. a
sender can never have more than ``BurstTime`` worth of its reserved rate in
flight as a burst.

ResIDs are unique per ingress interface, so the array is indexed directly by
the ResID from the packet header — no hashing, no per-flow state, exactly
one load, a handful of arithmetic ops, and one store per packet.  Timestamps
are int64 nanoseconds (numpy array), mirroring the paper's 8 B counters and
its cache-size analysis: 100 Gbps / 100 kbps minimum bandwidth gives
ResIDmax = 3e6 and a 24 MB array.
"""

from __future__ import annotations

import enum

import numpy as np

from repro.wire import bwcls

DEFAULT_BURST_TIME = 0.050  # 50 ms, per the router-buffer discussion in §4.4
NS = 1_000_000_000


class PolicingVerdict(enum.Enum):
    FWD_FLYOVER = "fwd_flyover"
    FWD_BEST_EFFORT = "fwd_best_effort"


class TokenBucketArray:
    """Algorithm 1: one 8-byte virtual timestamp per ResID.

    >>> array = TokenBucketArray(capacity=16)
    >>> array.monitor(res_id=3, bw_kbps=8, pkt_len=100, now=1000.0)
    <PolicingVerdict.FWD_FLYOVER: 'fwd_flyover'>
    """

    __slots__ = ("burst_time_ns", "_timestamps", "_usage_bytes", "_limits")

    def __init__(self, capacity: int, burst_time: float = DEFAULT_BURST_TIME) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        if burst_time <= 0:
            raise ValueError("BurstTime must be positive")
        self.burst_time_ns = int(burst_time * NS)
        self._timestamps = np.zeros(capacity, dtype=np.int64)
        # Per-ResID bytes forwarded with priority: the usage feed the
        # reclamation loop (and telemetry exports) consume.  One extra
        # store per in-profile packet; out-of-profile traffic is
        # best-effort and not attributed to the reservation.
        self._usage_bytes = np.zeros(capacity, dtype=np.int64)
        # Per-ResID rate overrides installed by the control plane when a
        # no-show's bandwidth is reclaimed: the header still advertises
        # the original class, but the bucket drains at the reclaimed
        # rate.  Sparse — only reclaimed reservations pay the lookup.
        self._limits: dict[int, int] = {}

    @property
    def capacity(self) -> int:
        return len(self._timestamps)

    @property
    def memory_bytes(self) -> int:
        """Size of the policing array (the cache-residency metric of §4.4)."""
        return self._timestamps.nbytes

    def monitor(self, res_id: int, bw_kbps: int, pkt_len: int, now: float) -> PolicingVerdict:
        """BandwidthMonitoring(ResID, BW, PktLen) — Algorithm 1 verbatim."""
        if not 0 <= res_id < len(self._timestamps):
            return PolicingVerdict.FWD_BEST_EFFORT
        if self._limits:
            bw_kbps = min(bw_kbps, self._limits.get(res_id, bw_kbps))
        if bw_kbps <= 0:
            return PolicingVerdict.FWD_BEST_EFFORT
        now_ns = int(now * NS)
        # PktLen / BW in nanoseconds: bytes * 8 bits / (kbps * 1000 bits/s).
        transmit_ns = pkt_len * 8 * 1_000_000 // bw_kbps
        timestamp = max(int(self._timestamps[res_id]), now_ns) + transmit_ns
        if timestamp <= now_ns + self.burst_time_ns:
            self._timestamps[res_id] = timestamp
            self._usage_bytes[res_id] += pkt_len
            return PolicingVerdict.FWD_FLYOVER
        return PolicingVerdict.FWD_BEST_EFFORT

    def usage_bytes(self, res_id: int) -> int:
        """Bytes forwarded with priority on one reservation so far."""
        if not 0 <= res_id < len(self._usage_bytes):
            return 0
        return int(self._usage_bytes[res_id])

    def usage_snapshot(self) -> dict[int, int]:
        """Every ResID with non-zero priority traffic -> bytes forwarded."""
        active = np.flatnonzero(self._usage_bytes)
        return {int(res_id): int(self._usage_bytes[res_id]) for res_id in active}

    def set_limit(self, res_id: int, bw_kbps: int) -> None:
        """Cap one reservation's policed rate below its header class.

        The reclamation loop's demotion hook: after a no-show's calendar
        bandwidth is reclaimed, the bucket drains at the reclaimed rate —
        a sender waking up late is forwarded best-effort beyond it.  A
        limit of 0 demotes every packet on the ResID.
        """
        if bw_kbps < 0:
            raise ValueError("limit must be >= 0")
        self._limits[int(res_id)] = int(bw_kbps)

    def clear_limit(self, res_id: int) -> None:
        """Drop a reclamation rate cap (e.g. a false reclaim reversed)."""
        self._limits.pop(int(res_id), None)

    def reset(self, res_id: int) -> None:
        """Clear one bucket (ResID reuse after a reservation expires)."""
        self._timestamps[res_id] = 0
        self._usage_bytes[res_id] = 0
        self._limits.pop(int(res_id), None)


class PerInterfacePolicer:
    """Per-ingress-interface policing arrays for one AS.

    The AS controls ``ResIDmax`` through the minimum-bandwidth attribute of
    the assets it sells (§4.4): ``capacity`` should be sized as
    R * TotalBW / MinBW for First-Fit competitiveness R.
    """

    __slots__ = ("capacity", "burst_time", "_arrays")

    def __init__(self, capacity: int, burst_time: float = DEFAULT_BURST_TIME) -> None:
        self.capacity = capacity
        self.burst_time = burst_time
        self._arrays: dict[int, TokenBucketArray] = {}

    def array_for(self, ingress_ifid: int) -> TokenBucketArray:
        array = self._arrays.get(ingress_ifid)
        if array is None:
            array = TokenBucketArray(self.capacity, self.burst_time)
            self._arrays[ingress_ifid] = array
        return array

    def monitor(
        self, ingress_ifid: int, res_id: int, bw_cls: int, pkt_len: int, now: float
    ) -> PolicingVerdict:
        """Police one packet; bandwidth arrives as the 10-bit header class."""
        return self.array_for(ingress_ifid).monitor(
            res_id, bwcls.decode(bw_cls), pkt_len, now
        )

    @property
    def memory_bytes(self) -> int:
        return sum(array.memory_bytes for array in self._arrays.values())

    def usage_bytes(self, ingress_ifid: int, res_id: int) -> int:
        """Priority bytes one reservation moved through one ingress."""
        array = self._arrays.get(ingress_ifid)
        return 0 if array is None else array.usage_bytes(res_id)

    def set_limit(self, ingress_ifid: int, res_id: int, bw_kbps: int) -> None:
        """Cap one reservation's policed rate (reclamation demotion)."""
        self.array_for(ingress_ifid).set_limit(res_id, bw_kbps)

    def clear_limit(self, ingress_ifid: int, res_id: int) -> None:
        array = self._arrays.get(ingress_ifid)
        if array is not None:
            array.clear_limit(res_id)

    def usage_snapshot(self) -> dict[int, dict[int, int]]:
        """Per-ingress ``{res_id: priority bytes}`` for active ResIDs."""
        snapshots = {
            ingress: array.usage_snapshot()
            for ingress, array in sorted(self._arrays.items())
        }
        return {ingress: used for ingress, used in snapshots.items() if used}

    def record_gauges(self, isd_as: str = "") -> None:
        """Publish array residency + per-flow byte gauges to the registry.

        On-demand (end of a scenario, or periodic sampling) — never on the
        per-packet path.  A no-op when telemetry is disabled.
        """
        from repro.telemetry import get_registry

        registry = get_registry()
        if not registry.enabled:
            return
        residency = registry.gauge(
            "policer_array_bytes",
            "Policing-array residency (the cache-size metric of §4.4).",
            ("isd_as", "ingress"),
        )
        flow_bytes = registry.gauge(
            "policer_flow_priority_bytes",
            "Bytes forwarded with priority per reservation.",
            ("isd_as", "ingress", "res_id"),
        )
        for ingress, array in sorted(self._arrays.items()):
            residency.labels(isd_as, ingress).set(array.memory_bytes)
            for res_id, used in array.usage_snapshot().items():
                flow_bytes.labels(isd_as, ingress, res_id).set(used)


def max_packet_size_for(bw_kbps: int, burst_time: float = DEFAULT_BURST_TIME) -> int:
    """Largest packet a fresh bucket admits (the §4.4 small-reservation limit).

    For reservations below ~240 kbps with a 50 ms BurstTime this drops under
    1500 B, which the paper notes is harmless for VoIP-class traffic.
    """
    return int(bw_kbps * 1000 * burst_time / 8)
