"""Optional duplicate suppression (§5.4, Fig. 13).

Hummingbird deliberately does *not* require duplicate suppression — there is
no penalty for overuse, so framing attacks are moot, and the only attack it
would prevent (on-reservation-set DoS) has the cheaper mitigation of
per-path reservations.  The header nevertheless carries a unique
``(BaseTimestamp, MillisTimestamp, Counter)`` triple per packet so that ASes
*can* deploy suppression incrementally; this module is that optional
component.

Duplicates are demoted to best effort (not dropped): a replayed packet must
not consume reservation bandwidth, but dropping it would let an on-path
adversary degrade the connection below best effort by racing the original.
"""

from __future__ import annotations

from collections import OrderedDict


class DuplicateFilter:
    """Sliding-window replay filter over packet timestamp triples.

    Entries expire after ``window`` seconds (which should cover the router's
    freshness window Δ + 2δ); memory is bounded by ``max_entries`` with FIFO
    eviction, so an adversary cannot blow up router state.
    """

    def __init__(self, window: float = 2.0, max_entries: int = 1 << 20) -> None:
        if window <= 0:
            raise ValueError("window must be positive")
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.window = window
        self.max_entries = max_entries
        self._seen: OrderedDict[tuple[int, int, int, int], float] = OrderedDict()

    def is_duplicate(
        self, res_id: int, base: int, millis: int, counter: int, now: float
    ) -> bool:
        """Record the packet ID and report whether it was already seen."""
        self._expire(now)
        key = (res_id, base, millis, counter)
        if key in self._seen:
            return True
        self._seen[key] = now
        if len(self._seen) > self.max_entries:
            self._seen.popitem(last=False)
        return False

    def _expire(self, now: float) -> None:
        cutoff = now - self.window
        while self._seen:
            key, seen_at = next(iter(self._seen.items()))
            if seen_at >= cutoff:
                break
            del self._seen[key]

    def __len__(self) -> int:
        return len(self._seen)
