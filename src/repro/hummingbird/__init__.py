"""Hummingbird data plane: the paper's primary contribution.

Flyover reservations (per-AS-hop, composable, identity-free), the
byte-exact Hummingbird SCION path type, per-packet MAC authentication with
XOR aggregation, the border-router pipeline of Algorithms 1-4, deterministic
token-bucket policing, online-interval-colouring ResID assignment, path
reversal, optional duplicate suppression, and bidirectional reservations.
"""

from repro.hummingbird.bidirectional import ReservationHandoff
from repro.hummingbird.duplicate import DuplicateFilter
from repro.hummingbird.gateway import AdmissionError, GatewayFlow, HummingbirdGateway
from repro.hummingbird.mac import (
    TAG_LEN,
    aggregate_mac,
    checked_pkt_len,
    compute_flyover_mac,
    pack_flyover_mac_input,
)
from repro.hummingbird.pathtype import (
    FLYOVER_HOPFIELD_LEN,
    HOPFIELD_LEN,
    FlyoverHopFieldData,
    HummingbirdPath,
    is_flyover,
)
from repro.hummingbird.policing import (
    DEFAULT_BURST_TIME,
    PerInterfacePolicer,
    PolicingVerdict,
    TokenBucketArray,
    max_packet_size_for,
)
from repro.hummingbird.reservation import (
    FlyoverReservation,
    ResInfo,
    grant_reservation,
)
from repro.hummingbird.resid import (
    CapacityExhausted,
    FirstFitColoring,
    Interval,
    ResIdAllocator,
    policing_array_bytes,
)
from repro.hummingbird.reversal import reverse_path, to_standard_path
from repro.hummingbird.router import HummingbirdRouter, RouterStats
from repro.hummingbird.source import (
    FlyoverPlacement,
    HummingbirdSource,
    ReservationMismatch,
    ScionBestEffortSource,
    match_reservations,
)

__all__ = [
    "ReservationHandoff",
    "DuplicateFilter",
    "AdmissionError",
    "GatewayFlow",
    "HummingbirdGateway",
    "TAG_LEN",
    "aggregate_mac",
    "checked_pkt_len",
    "compute_flyover_mac",
    "pack_flyover_mac_input",
    "FLYOVER_HOPFIELD_LEN",
    "HOPFIELD_LEN",
    "FlyoverHopFieldData",
    "HummingbirdPath",
    "is_flyover",
    "DEFAULT_BURST_TIME",
    "PerInterfacePolicer",
    "PolicingVerdict",
    "TokenBucketArray",
    "max_packet_size_for",
    "FlyoverReservation",
    "ResInfo",
    "grant_reservation",
    "CapacityExhausted",
    "FirstFitColoring",
    "Interval",
    "ResIdAllocator",
    "policing_array_bytes",
    "reverse_path",
    "to_standard_path",
    "HummingbirdRouter",
    "RouterStats",
    "FlyoverPlacement",
    "HummingbirdSource",
    "ReservationMismatch",
    "ScionBestEffortSource",
    "match_reservations",
]
