"""Source-side packet generation (§4.3, Table 4 pipeline).

A :class:`HummingbirdSource` owns a forwarding path, the flyover
reservations the host has redeemed for (some of) the path's AS crossings,
and a timestamp allocator.  ``build_packet`` performs the per-packet work
the paper benchmarks at the source gateway:

1. add Ethernet/IP/SCION header fields (here: compute header sizes and the
   authenticated ``PktLen``),
2. compute the flyover MAC for every reserved hop (Eq. 7a),
3. assemble the hop fields (plain and flyover, AggMAC aggregation),
4. attach the payload.

Reservations are matched to AS crossings by (AS, traversal ingress,
traversal egress); hops without a matching reservation stay plain hop
fields — partial paths are first-class (§3.1, "Independent & Composable
Flyover Reservations").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.clock import Clock
from repro.crypto.prf import DEFAULT_PRF_FACTORY, PrfFactory
from repro.hummingbird.mac import aggregate_mac, checked_pkt_len, compute_flyover_mac
from repro.hummingbird.pathtype import (
    FLYOVER_HOPFIELD_LEN,
    HOPFIELD_LEN,
    INFO_FIELD_LEN,
    META_HDR_LEN,
    FlyoverHopFieldData,
    HummingbirdPath,
)
from repro.hummingbird.reservation import FlyoverReservation
from repro.scion.addresses import ScionAddr
from repro.scion.packet import (
    ADDR_HDR_LEN,
    COMMON_HDR_LEN,
    PATH_TYPE_HUMMINGBIRD,
    PATH_TYPE_SCION,
    PacketPath,
    ScionPacket,
)
from repro.scion.paths import AsCrossing, ForwardingPath, as_crossings
from repro.wire.timestamps import PacketTimestamp, TimestampAllocator


@dataclass(frozen=True)
class FlyoverPlacement:
    """A reservation bound to a concrete hop-field position on the path."""

    seg_index: int
    hf_index: int
    reservation: FlyoverReservation
    crossing: AsCrossing


class ReservationMismatch(ValueError):
    """A reservation does not match any unreserved AS crossing on the path."""


def match_reservations(
    path: ForwardingPath, reservations: list[FlyoverReservation]
) -> list[FlyoverPlacement]:
    """Bind reservations to path crossings; flyovers go on the first hop field.

    Raises :class:`ReservationMismatch` for a reservation whose
    (AS, ingress, egress) triple does not appear on the path or is already
    covered by an earlier reservation in the list.
    """
    crossings = as_crossings(path)
    taken: set[int] = set()
    placements: list[FlyoverPlacement] = []
    for reservation in reservations:
        for index, crossing in enumerate(crossings):
            if index in taken:
                continue
            if (
                crossing.isd_as == reservation.isd_as
                and crossing.ingress == reservation.ingress
                and crossing.egress == reservation.egress
            ):
                seg_index, hf_index = crossing.positions[0]
                placements.append(
                    FlyoverPlacement(seg_index, hf_index, reservation, crossing)
                )
                taken.add(index)
                break
        else:
            raise ReservationMismatch(f"no unreserved crossing matches {reservation!r}")
    return placements


class HummingbirdSource:
    """Generates reservation-protected packets for one path."""

    def __init__(
        self,
        src: ScionAddr,
        dst: ScionAddr,
        path: ForwardingPath,
        reservations: list[FlyoverReservation],
        clock: Clock,
        prf_factory: PrfFactory = DEFAULT_PRF_FACTORY,
        base_timestamp: int | None = None,
    ) -> None:
        self.src = src
        self.dst = dst
        self.path = path
        self.clock = clock
        self.prf_factory = prf_factory
        self.placements = match_reservations(path, reservations)
        base = int(clock.now()) if base_timestamp is None else base_timestamp
        self._allocator = TimestampAllocator(base)
        self._validate_offsets()
        self._placement_index = {
            (p.seg_index, p.hf_index): p for p in self.placements
        }

    # -- public API ---------------------------------------------------------

    @property
    def base_timestamp(self) -> int:
        return self._allocator.base

    def header_bytes(self) -> int:
        """Total header size of packets from this source (fixed per path)."""
        path_bytes = META_HDR_LEN + INFO_FIELD_LEN * len(self.path.segments)
        for seg_index, segment in enumerate(self.path.segments):
            for hf_index in range(len(segment.hopfields)):
                if (seg_index, hf_index) in self._placement_index:
                    path_bytes += FLYOVER_HOPFIELD_LEN
                else:
                    path_bytes += HOPFIELD_LEN
        return COMMON_HDR_LEN + ADDR_HDR_LEN + path_bytes

    def build_packet(self, payload: bytes, flow_id: int = 1) -> ScionPacket:
        """Generate one authenticated packet (the Table 4 pipeline)."""
        timestamp = self._allocator.allocate(self.clock.now())
        pkt_len = self._begin_headers(payload)
        macs = self._compute_flyover_macs(pkt_len, timestamp)
        path = self._assemble_hopfields(timestamp, macs)
        return self._attach_payload(path, payload, flow_id)

    # -- pipeline stages (microbenchmarked individually by perfmodel) -------

    def _begin_headers(self, payload: bytes) -> int:
        """Stage 1: header setup — yields the authenticated PktLen (Eq. 7d)."""
        header = self.header_bytes()
        return checked_pkt_len(len(payload), header // 4)

    def _compute_flyover_macs(
        self, pkt_len: int, timestamp: PacketTimestamp
    ) -> dict[tuple[int, int], bytes]:
        """Stage 2: one flyover MAC per reserved AS hop (Eq. 7a)."""
        macs: dict[tuple[int, int], bytes] = {}
        for placement in self.placements:
            resinfo = placement.reservation.resinfo
            offset = timestamp.base - resinfo.start
            macs[(placement.seg_index, placement.hf_index)] = compute_flyover_mac(
                placement.reservation.auth_key,
                self.dst.isd_as,
                pkt_len,
                offset,
                timestamp.millis,
                timestamp.counter,
                self.prf_factory,
            )
        return macs

    def _assemble_hopfields(
        self, timestamp: PacketTimestamp, macs: dict[tuple[int, int], bytes]
    ) -> HummingbirdPath:
        """Stage 3: build the path header, aggregating MACs on flyover hops."""
        segments = []
        for seg_index, segment in enumerate(self.path.segments):
            hopfields = []
            for hf_index, hop in enumerate(segment.hopfields):
                placement = self._placement_index.get((seg_index, hf_index))
                if placement is None:
                    hopfields.append(hop.copy())
                    continue
                resinfo = placement.reservation.resinfo
                agg = aggregate_mac(hop.mac, macs[(seg_index, hf_index)])
                hopfields.append(
                    FlyoverHopFieldData(
                        cons_ingress=hop.cons_ingress,
                        cons_egress=hop.cons_egress,
                        exp_time=hop.exp_time,
                        mac=agg,
                        res_id=resinfo.res_id,
                        bw_cls=resinfo.bw_cls,
                        res_start_offset=timestamp.base - resinfo.start,
                        res_duration=resinfo.duration,
                    )
                )
            segments.append(
                type(segment)(
                    cons_dir=segment.cons_dir,
                    timestamp=segment.timestamp,
                    initial_segid=segment.initial_segid,
                    hopfields=hopfields,
                    ases=list(segment.ases),
                )
            )
        return HummingbirdPath(
            segments=segments,
            base_timestamp=timestamp.base,
            millis_timestamp=timestamp.millis,
            counter=timestamp.counter,
        )

    def _attach_payload(
        self, path: HummingbirdPath, payload: bytes, flow_id: int
    ) -> ScionPacket:
        """Stage 4: wrap everything into the packet object."""
        return ScionPacket(
            src=self.src,
            dst=self.dst,
            path=path,
            payload=payload,
            path_type=PATH_TYPE_HUMMINGBIRD,
            flow_id=flow_id,
        )

    # -- internals ----------------------------------------------------------

    def _validate_offsets(self) -> None:
        base = self._allocator.base
        for placement in self.placements:
            resinfo = placement.reservation.resinfo
            offset = base - resinfo.start
            if offset < 0:
                raise ValueError(
                    f"reservation {placement.reservation!r} starts after the "
                    f"source base timestamp {base}; wait until its start time"
                )
            if offset >= 1 << 16:
                raise ValueError(
                    f"reservation {placement.reservation!r} started more than "
                    "2^16 seconds before the base timestamp"
                )


class ScionBestEffortSource:
    """Baseline source: plain SCION packets over the same path (dashed lines)."""

    def __init__(self, src: ScionAddr, dst: ScionAddr, path: ForwardingPath) -> None:
        self.src = src
        self.dst = dst
        self.path = path

    def build_packet(self, payload: bytes, flow_id: int = 1) -> ScionPacket:
        return ScionPacket(
            src=self.src,
            dst=self.dst,
            path=PacketPath.from_forwarding_path(self.path),
            payload=payload,
            path_type=PATH_TYPE_SCION,
            flow_id=flow_id,
        )
