"""Flyover reservations (Eq. 1): the unit of bandwidth reservation.

A flyover is granted by one AS for one directed interface pair and a time
window::

    ResInfo_K = (In, Eg, ResID, BW, StrT, Dur)

``In``/``Eg`` are in *traffic direction*: the reservation prioritizes traffic
entering at ``In`` and leaving at ``Eg`` (interface 0 denotes "inside the
AS", for reservations starting or ending at this AS).  The granting AS is
identified implicitly by the authentication key :math:`A_K` (§4.1) — no
source address or network identity is part of the reservation, which is what
enables the tradable-asset control plane.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.crypto.keys import SecretValue, derive_auth_key
from repro.crypto.prf import DEFAULT_PRF_FACTORY, PrfFactory
from repro.scion.addresses import IsdAs
from repro.wire import bwcls

MAX_DURATION = (1 << 16) - 1  # 16-bit seconds, about 18.2 hours


@dataclass(frozen=True)
class ResInfo:
    """The public reservation parameters authenticated by the flyover MAC."""

    ingress: int
    egress: int
    res_id: int
    bw_cls: int
    start: int  # absolute Unix seconds (StrT)
    duration: int  # seconds (Dur)

    def __post_init__(self) -> None:
        if not 0 <= self.ingress < 1 << 16:
            raise ValueError(f"ingress {self.ingress} out of 16-bit range")
        if not 0 <= self.egress < 1 << 16:
            raise ValueError(f"egress {self.egress} out of 16-bit range")
        if not 0 <= self.res_id < 1 << 22:
            raise ValueError(f"ResID {self.res_id} out of 22-bit range")
        if not 0 <= self.bw_cls < 1 << 10:
            raise ValueError(f"bandwidth class {self.bw_cls} out of 10-bit range")
        if not 0 <= self.start < 1 << 32:
            raise ValueError(f"start {self.start} out of 32-bit range")
        if not 0 < self.duration <= MAX_DURATION:
            raise ValueError(f"duration {self.duration} outside (0, {MAX_DURATION}]")

    @property
    def expiry(self) -> int:
        """Absolute expiration time (StrT + Dur)."""
        return self.start + self.duration

    @property
    def bandwidth_kbps(self) -> int:
        """Decoded reservation bandwidth in kilobits per second."""
        return bwcls.decode(self.bw_cls)

    def active_at(self, now: float) -> bool:
        """Reservation-active check of Algorithm 3 (no clock-skew slack)."""
        return self.start <= now <= self.expiry


@dataclass(frozen=True)
class FlyoverReservation:
    """A redeemed reservation as held by a source host: ResInfo plus key."""

    isd_as: IsdAs
    resinfo: ResInfo
    auth_key: bytes  # A_K, 16 bytes

    def __post_init__(self) -> None:
        if len(self.auth_key) != 16:
            raise ValueError("authentication key must be 16 bytes")

    @property
    def ingress(self) -> int:
        return self.resinfo.ingress

    @property
    def egress(self) -> int:
        return self.resinfo.egress

    def __repr__(self) -> str:
        r = self.resinfo
        return (
            f"FlyoverReservation({self.isd_as}, in={r.ingress}, eg={r.egress}, "
            f"id={r.res_id}, bw={r.bandwidth_kbps}kbps, "
            f"[{r.start}, {r.expiry}])"
        )


def grant_reservation(
    isd_as: IsdAs,
    secret_value: SecretValue,
    resinfo: ResInfo,
    prf_factory: PrfFactory = DEFAULT_PRF_FACTORY,
) -> FlyoverReservation:
    """AS-side issuance: derive :math:`A_K` for ``resinfo`` (Eq. 2).

    The AS never stores per-reservation keys — any border router can
    re-derive :math:`A_K` from the packet's reservation information and the
    AS-local secret value.
    """
    auth_key = derive_auth_key(
        secret_value,
        resinfo.ingress,
        resinfo.egress,
        resinfo.res_id,
        resinfo.bw_cls,
        resinfo.start,
        resinfo.duration,
        prf_factory,
    )
    return FlyoverReservation(isd_as=isd_as, resinfo=resinfo, auth_key=auth_key)
