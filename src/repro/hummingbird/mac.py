"""Per-packet flyover MAC (Eq. 3 / Eqs. 7a-7d) and MAC aggregation (Eq. 6).

The source authenticates every packet with::

    V_K = PRF_{A_K}(DstAddr || PktLen || TS)[:6]

where ``TS = ResStartOffset || MillisTimestamp || Counter``, ``DstAddr =
DstISD || DstAS`` and ``PktLen = PayloadLen + 4 * HdrLen``.  The input is
exactly one AES block (Fig. 11), and the 6-byte tag is XOR-aggregated with
the SCION hop-field MAC into the ``AggMAC`` header field, saving 6 bytes per
hop (aggregate MACs, Katz & Lindell).

Binding the destination address prevents reservation stealing (§5.4);
binding the packet length makes the bandwidth accounting unforgeable;
binding the timestamp limits replay to the freshness window.
"""

from __future__ import annotations

from repro.crypto.prf import DEFAULT_PRF_FACTORY, PrfFactory
from repro.scion.addresses import IsdAs

TAG_LEN = 6  # l_tag: 6 bytes => online brute force needs ~2^47 packets on average
FLYOVER_MAC_INPUT_SIZE = 16


def pack_flyover_mac_input(
    dst: IsdAs,
    pkt_len: int,
    res_start_offset: int,
    millis_timestamp: int,
    counter: int,
) -> bytes:
    """Serialize the Fig. 11 MAC input block (exactly 16 bytes)."""
    if not 0 <= pkt_len < 1 << 16:
        raise ValueError(f"PktLen {pkt_len} out of 16-bit range")
    if not 0 <= res_start_offset < 1 << 16:
        raise ValueError(f"ResStartOffset {res_start_offset} out of 16-bit range")
    if not 0 <= millis_timestamp < 1 << 16:
        raise ValueError(f"MillisTimestamp {millis_timestamp} out of 16-bit range")
    if not 0 <= counter < 1 << 16:
        raise ValueError(f"Counter {counter} out of 16-bit range")
    return (
        dst.pack()  # DstISD (2 B) || DstAS (6 B), Eq. 7c
        + pkt_len.to_bytes(2, "big")
        + res_start_offset.to_bytes(2, "big")
        + millis_timestamp.to_bytes(2, "big")
        + counter.to_bytes(2, "big")
    )


def compute_flyover_mac(
    auth_key: bytes,
    dst: IsdAs,
    pkt_len: int,
    res_start_offset: int,
    millis_timestamp: int,
    counter: int,
    prf_factory: PrfFactory = DEFAULT_PRF_FACTORY,
) -> bytes:
    """Compute the truncated per-packet tag :math:`V_K` (Eq. 7a)."""
    block = pack_flyover_mac_input(dst, pkt_len, res_start_offset, millis_timestamp, counter)
    return prf_factory(auth_key).compute(block)[:TAG_LEN]


def aggregate_mac(hopfield_mac: bytes, flyover_mac: bytes) -> bytes:
    """XOR-aggregate the SCION hop-field MAC with the flyover MAC (Eq. 6).

    The same function recovers the candidate hop-field MAC at the router:
    ``HopFieldMAC = AggMAC XOR FlyoverMAC``.
    """
    if len(hopfield_mac) != TAG_LEN or len(flyover_mac) != TAG_LEN:
        raise ValueError("aggregate MAC requires two 6-byte tags")
    return bytes(a ^ b for a, b in zip(hopfield_mac, flyover_mac))


def checked_pkt_len(payload_len: int, hdr_len_units: int) -> int:
    """``PktLen = PayloadLen + 4 * HdrLen`` with the overflow check of Eq. 7d.

    Raises ``OverflowError`` if the sum does not fit the 2-byte field; the
    specification mandates dropping such packets.
    """
    pkt_len = payload_len + 4 * hdr_len_units
    if pkt_len >= 1 << 16:
        raise OverflowError(f"PktLen {pkt_len} overflows 16 bits")
    return pkt_len
