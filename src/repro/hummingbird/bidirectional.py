"""Bidirectional reservation support (Appendix C).

Hummingbird reservations are unidirectional, but the control-plane
independence means the *source* can obtain reservations for the reverse
path too — they are billed to the source yet act as backward reservations.
The recommended exchange (Appendix C) is:

1. the source obtains forward reservations normally;
2. the source obtains separate reservations for the reverse path;
3. the source hands the reverse reservations (ResInfo + authentication
   keys) to the destination over a separate channel;
4. both sides send over their respective reservations as normal.

:class:`ReservationHandoff` models step 3: a sealed bundle the destination
can decrypt with its own keypair, mirroring how reservation delivery works
on the control plane.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass

from repro.crypto.sealing import KeyPair, SealedBox, seal, unseal
from repro.hummingbird.reservation import FlyoverReservation, ResInfo
from repro.scion.addresses import IsdAs


@dataclass(frozen=True)
class ReservationHandoff:
    """A sealed bundle of reservations for the destination's reverse path."""

    box: SealedBox

    @staticmethod
    def create(
        reservations: list[FlyoverReservation],
        recipient_public: int,
        rng: random.Random,
    ) -> "ReservationHandoff":
        payload = json.dumps(
            [
                {
                    "isd": r.isd_as.isd,
                    "asn": r.isd_as.asn,
                    "ingress": r.resinfo.ingress,
                    "egress": r.resinfo.egress,
                    "res_id": r.resinfo.res_id,
                    "bw_cls": r.resinfo.bw_cls,
                    "start": r.resinfo.start,
                    "duration": r.resinfo.duration,
                    "auth_key": r.auth_key.hex(),
                }
                for r in reservations
            ]
        ).encode()
        return ReservationHandoff(
            box=seal(recipient_public, payload, rng, context=b"hummingbird-handoff")
        )

    def open(self, recipient: KeyPair) -> list[FlyoverReservation]:
        payload = unseal(recipient, self.box, context=b"hummingbird-handoff")
        records = json.loads(payload.decode())
        return [
            FlyoverReservation(
                isd_as=IsdAs(record["isd"], record["asn"]),
                resinfo=ResInfo(
                    ingress=record["ingress"],
                    egress=record["egress"],
                    res_id=record["res_id"],
                    bw_cls=record["bw_cls"],
                    start=record["start"],
                    duration=record["duration"],
                ),
                auth_key=bytes.fromhex(record["auth_key"]),
            )
            for record in records
        ]
