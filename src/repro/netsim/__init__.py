"""Discrete-event network simulator: links, routers, traffic, QoS scenarios."""

from repro.netsim.events import EventLoop
from repro.netsim.link import Link, LinkStats
from repro.netsim.metrics import FlowMetrics
from repro.netsim.nodes import HostSink, RouterNode, SimPacket
from repro.netsim.scenarios import (
    SIM_PRF,
    AuctionBuyerOutcome,
    AuctionExperimentResult,
    BuyerOutcome,
    CongestionResult,
    ContentionResult,
    FlexBuyerOutcome,
    FlexMarketResult,
    PathBuyerOutcome,
    PathContentionResult,
    PathSimulation,
    auction_experiment,
    build_path_simulation,
    congestion_experiment,
    contention_experiment,
    flex_market_experiment,
    linear_path,
    path_contention_experiment,
)
from repro.netsim.traffic import CbrSource, FloodSource, OnOffSource, ReplayAttacker

__all__ = [
    "EventLoop",
    "Link",
    "LinkStats",
    "FlowMetrics",
    "HostSink",
    "RouterNode",
    "SimPacket",
    "SIM_PRF",
    "AuctionBuyerOutcome",
    "AuctionExperimentResult",
    "BuyerOutcome",
    "CongestionResult",
    "ContentionResult",
    "FlexBuyerOutcome",
    "FlexMarketResult",
    "PathBuyerOutcome",
    "PathContentionResult",
    "PathSimulation",
    "auction_experiment",
    "build_path_simulation",
    "congestion_experiment",
    "contention_experiment",
    "flex_market_experiment",
    "linear_path",
    "path_contention_experiment",
    "CbrSource",
    "FloodSource",
    "OnOffSource",
    "ReplayAttacker",
]
