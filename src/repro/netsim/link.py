"""Links with strict priority queueing.

A link models the inter-AS wire *and* the egress queues in front of it: a
serial transmitter at ``rate_bps`` with two independent drop-tail buffers —
a priority queue (flyover traffic) and a best-effort queue.  Strict
priority: the transmitter always drains the priority queue first, which is
exactly the prioritization Hummingbird requires from the underlying AS
(§3.1 — reservation traffic is shielded from best-effort congestion, and
unused reservation bandwidth remains usable by best effort).  The buffers
are per class, as in any DiffServ-style router: a best-effort flood cannot
occupy the priority queue's memory.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.netsim.events import EventLoop


@dataclass
class LinkStats:
    delivered_priority: int = 0
    delivered_best_effort: int = 0
    dropped_priority: int = 0
    dropped_best_effort: int = 0
    busy_seconds: float = 0.0


@dataclass
class _Queued:
    payload: object
    size_bytes: int
    deliver: Callable[[object], None]


class Link:
    """A unidirectional link with two drop-tail queues and strict priority."""

    def __init__(
        self,
        loop: EventLoop,
        rate_bps: float,
        propagation_delay: float = 0.001,
        buffer_bytes: int = 256_000,
        name: str = "link",
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        self.loop = loop
        self.rate_bps = rate_bps
        self.propagation_delay = propagation_delay
        self.buffer_bytes = buffer_bytes
        self.name = name
        self.stats = LinkStats()
        self._priority: deque[_Queued] = deque()
        self._best_effort: deque[_Queued] = deque()
        self._priority_bytes = 0
        self._best_effort_bytes = 0
        self._transmitting = False

    # -- API -------------------------------------------------------------------

    def send(
        self,
        payload: object,
        size_bytes: int,
        priority: bool,
        deliver: Callable[[object], None],
    ) -> bool:
        """Enqueue a packet; returns False if its class buffer dropped it."""
        item = _Queued(payload, size_bytes, deliver)
        if priority:
            if self._priority_bytes + size_bytes > self.buffer_bytes:
                self.stats.dropped_priority += 1
                return False
            self._priority.append(item)
            self._priority_bytes += size_bytes
        else:
            if self._best_effort_bytes + size_bytes > self.buffer_bytes:
                self.stats.dropped_best_effort += 1
                return False
            self._best_effort.append(item)
            self._best_effort_bytes += size_bytes
        if not self._transmitting:
            self._start_next()
        return True

    @property
    def queued_bytes(self) -> int:
        return self._priority_bytes + self._best_effort_bytes

    def utilization(self, elapsed: float) -> float:
        return self.stats.busy_seconds / elapsed if elapsed > 0 else 0.0

    # -- internals ----------------------------------------------------------------

    def _start_next(self) -> None:
        if self._priority:
            item = self._priority.popleft()
            is_priority = True
            self._priority_bytes -= item.size_bytes
        elif self._best_effort:
            item = self._best_effort.popleft()
            is_priority = False
            self._best_effort_bytes -= item.size_bytes
        else:
            self._transmitting = False
            return
        self._transmitting = True
        tx_seconds = item.size_bytes * 8 / self.rate_bps
        self.stats.busy_seconds += tx_seconds

        def on_tx_done() -> None:
            if is_priority:
                self.stats.delivered_priority += 1
            else:
                self.stats.delivered_best_effort += 1
            self.loop.schedule(self.propagation_delay, lambda: item.deliver(item.payload))
            self._start_next()

        self.loop.schedule(tx_seconds, on_tx_done)
