"""Traffic sources: constant-bit-rate, bursty on/off, and flood attackers.

Sources build real packets through the data-plane source classes (so every
simulated packet carries genuine MACs and is verified hop by hop) and hand
them to a :class:`RouterNode`; the per-flow send metrics land in the same
:class:`FlowMetrics` the destination sink fills in.
"""

from __future__ import annotations

import random

from repro.netsim.events import EventLoop
from repro.netsim.metrics import FlowMetrics
from repro.netsim.nodes import RouterNode, SimPacket


class CbrSource:
    """Constant-bit-rate sender over a packet builder.

    ``builder`` is any object with ``build_packet(payload, flow_id)`` — a
    :class:`HummingbirdSource` (reservation traffic) or a
    :class:`ScionBestEffortSource` (plain traffic).
    """

    def __init__(
        self,
        loop: EventLoop,
        builder,
        entry: RouterNode,
        metrics: FlowMetrics,
        rate_bps: float,
        payload_bytes: int = 1000,
        flow_id: int = 1,
        jitter: float = 0.0,
        rng: random.Random | None = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.loop = loop
        self.builder = builder
        self.entry = entry
        self.metrics = metrics
        self.payload_bytes = payload_bytes
        self.flow_id = flow_id
        self.jitter = jitter
        self.rng = rng if rng is not None else random.Random(flow_id)
        self._payload = bytes(payload_bytes)
        probe = builder.build_packet(self._payload, flow_id)
        self._wire_bytes = probe.packet_length()
        self.interval = self._wire_bytes * 8 / rate_bps
        self._stopped = False

    def start(self, delay: float = 0.0) -> None:
        self.loop.schedule(delay, self._send)

    def stop(self) -> None:
        self._stopped = True

    def _send(self) -> None:
        if self._stopped:
            return
        packet = self.builder.build_packet(self._payload, self.flow_id)
        now = self.loop.now
        sim_packet = SimPacket(
            packet=packet,
            flow_id=self.flow_id,
            sent_at=now,
            size_bytes=packet.packet_length(),
        )
        self.metrics.record_sent(sim_packet.size_bytes, now)
        self.entry.inject(sim_packet)
        gap = self.interval
        if self.jitter > 0:
            gap *= self.rng.uniform(1 - self.jitter, 1 + self.jitter)
        self.loop.schedule(gap, self._send)


class FloodSource(CbrSource):
    """A best-effort flooder: a DoS adversary congesting the path.

    Identical machinery to :class:`CbrSource`; the distinction is semantic
    (it sends over a best-effort builder at far above the bottleneck rate).
    """


class OnOffSource(CbrSource):
    """Bursty sender: alternates active bursts with silent gaps."""

    def __init__(
        self,
        *args,
        on_seconds: float = 0.2,
        off_seconds: float = 0.8,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        if on_seconds <= 0 or off_seconds < 0:
            raise ValueError("invalid on/off durations")
        self.on_seconds = on_seconds
        self.off_seconds = off_seconds
        self._burst_end = 0.0

    def start(self, delay: float = 0.0) -> None:
        self._burst_end = self.loop.now + delay + self.on_seconds
        super().start(delay)

    def _send(self) -> None:
        if self._stopped:
            return
        now = self.loop.now
        if now >= self._burst_end:
            # Sleep through the off period, then start the next burst.
            self._burst_end = now + self.off_seconds + self.on_seconds
            self.loop.schedule(self.off_seconds, self._send)
            return
        super()._send()


class ReplayAttacker:
    """On-reservation-set adversary (§5.4, Fig. 3).

    Observes packets on one path and re-injects duplicates at a downstream
    AS to exhaust a shared reservation's policed bandwidth.  ``observe``
    is called with packets crossing the adversary; ``flood`` re-injects
    each observed packet ``amplification`` times.
    """

    def __init__(self, loop: EventLoop, entry: RouterNode, entry_ifid: int, amplification: int = 10) -> None:
        self.loop = loop
        self.entry = entry
        self.entry_ifid = entry_ifid
        self.amplification = amplification
        self.injected = 0

    def observe_and_flood(self, sim_packet: SimPacket) -> None:
        from copy import deepcopy

        for _ in range(self.amplification):
            clone = deepcopy(sim_packet)
            self.injected += 1
            self.entry.receive(clone, self.entry_ifid)
