"""Contending deadline-transfer mix with per-arrival differential oracles.

:func:`deadline_experiment` stands up one market over a linear AS chain
and pushes a randomized mix of deadline transfers through the *full*
stack — book snapshot, malleable planning, atomic multi-listing
buy+fuse+redeem, per-AS delivery — under genuine contention: every
executed transfer depletes the shared listings, so later arrivals plan
over the carved-up remainder book (exercising multi-listing stitching on
the seams earlier buys left behind).

At each arrival the experiment freezes the book the planner will see and
computes the exact offline optimum over it
(:func:`~repro.transfers.oracle.offline_optimum`).  That per-arrival
oracle is the honest baseline for an online planner: it sees the same
depleted supply, the same action space, and no future arrivals.  The
experiment then *asserts* the differential invariants end-to-end:

* the planner hits a deadline **iff** the oracle can (never misses a
  deadline the oracle can meet — and cannot beat an exact optimum);
* bytes moved ≥ 90% of oracle bytes-by-deadline, per transfer and in
  aggregate;
* the plan's predicted spend equals the MIST actually charged on-chain
  (summed ``Sold`` prices of the atomic transaction);
* one decrypted reservation arrives per hop per leg.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.clock import SimClock
from repro.crypto.prf import PrfFactory

from repro.netsim.scenarios import SIM_PRF

T0 = 1_700_000_000


@dataclass
class TransferRecord:
    """One transfer's fate in :func:`deadline_experiment`."""

    name: str
    bytes_requested: int
    release: int
    deadline: int
    budget_mist: int | None
    max_rate_kbps: int | None
    oracle_feasible: bool
    oracle_bytes: int
    oracle_cost_mist: int
    bytes_moved: int = 0
    spend_mist: int = 0
    chain_paid_mist: int = 0
    reservations: int = 0
    legs: int = 0
    buys: int = 0

    @property
    def deadline_hit(self) -> bool:
        return self.bytes_moved >= self.bytes_requested


@dataclass
class DeadlineExperimentResult:
    """Aggregate outcome of :func:`deadline_experiment`."""

    records: list[TransferRecord] = field(default_factory=list)

    @property
    def bytes_requested_total(self) -> int:
        return sum(r.bytes_requested for r in self.records)

    @property
    def bytes_moved_total(self) -> int:
        return sum(r.bytes_moved for r in self.records)

    @property
    def spend_total_mist(self) -> int:
        return sum(r.spend_mist for r in self.records)

    @property
    def oracle_bytes_total(self) -> int:
        return sum(r.oracle_bytes for r in self.records)

    @property
    def oracle_cost_total_mist(self) -> int:
        return sum(r.oracle_cost_mist for r in self.records)

    @property
    def deadline_hit_rate(self) -> float:
        if not self.records:
            return 0.0
        return sum(r.deadline_hit for r in self.records) / len(self.records)

    @property
    def bytes_vs_oracle(self) -> float:
        if self.oracle_bytes_total == 0:
            return 1.0
        return self.bytes_moved_total / self.oracle_bytes_total


def deadline_experiment(
    num_ases: int = 3,
    transfer_count: int = 6,
    horizon: int = 1800,
    market_bandwidth_kbps: int = 2_000,
    base_price_micromist: int = 50,
    seed: int = 3,
    prf_factory: PrfFactory = SIM_PRF,
    shard_seconds: float | None = None,
    engine=None,
) -> DeadlineExperimentResult:
    """Run a contending transfer mix end-to-end and return the tally.

    The mix is sized against the path's total capacity
    (``market_bandwidth_kbps`` over ``horizon``): early arrivals fit
    easily, the tail oversubscribes, so the run exercises both clean
    hits and best-effort partial deliveries on a depleted book.  Every
    invariant described in the module docstring is asserted inline — a
    violation raises, so a passing run *is* the differential test.
    """
    from repro.controlplane import deploy_market, execute_transfer
    from repro.scion.beaconing import run_beaconing
    from repro.scion.paths import PathLookup, as_crossings
    from repro.scion.topology import linear_topology
    from repro.transfers import (
        BYTES_PER_KBPS_SECOND,
        TransferPlanner,
        DeadlineTransfer,
        offline_optimum,
    )

    rng = random.Random(seed)
    topology = linear_topology(num_ases)
    store = run_beaconing(topology, timestamp=T0, prf_factory=prf_factory)
    path = PathLookup(store).find_paths(
        topology.ases[-1].isd_as, topology.ases[0].isd_as
    )[0]
    crossings = as_crossings(path)
    deployment = deploy_market(
        topology,
        clock=SimClock(float(T0)),
        seed=seed,
        asset_start=T0,
        asset_duration=horizon,
        asset_bandwidth_kbps=market_bandwidth_kbps,
        price_micromist_per_unit=base_price_micromist,
        shard_seconds=shard_seconds,
        engine=engine,
    )
    try:
        return _run_mix(
            deployment,
            crossings,
            transfer_count,
            horizon,
            market_bandwidth_kbps,
            rng,
            TransferPlanner,
            DeadlineTransfer,
            offline_optimum,
            execute_transfer,
            BYTES_PER_KBPS_SECOND,
        )
    finally:
        deployment.close()


def _run_mix(
    deployment,
    crossings,
    transfer_count,
    horizon,
    market_bandwidth_kbps,
    rng,
    TransferPlanner,
    DeadlineTransfer,
    offline_optimum,
    execute_transfer,
    bytes_per_kbps_second,
):
    from repro.transfers import InfeasibleTransfer

    result = DeadlineExperimentResult()
    path_capacity = market_bandwidth_kbps * horizon * bytes_per_kbps_second
    for index in range(transfer_count):
        # Mix: sizes from 10% to 55% of path capacity (the tail
        # oversubscribes), windows anywhere in the horizon, an occasional
        # rate cap forcing multi-slot legs, an occasional budget.
        release = T0 + rng.randrange(0, horizon // 3, 60)
        deadline = T0 + rng.randrange(2 * horizon // 3, horizon + 1, 60)
        window = deadline - release
        bytes_total = int(path_capacity * rng.uniform(0.10, 0.55))
        max_rate = None
        if index % 3 == 2:
            # Cap below the single-slot residual rate: the plan must
            # spread across several slots.
            max_rate = max(
                100,
                min(
                    market_bandwidth_kbps,
                    2 * bytes_total // (window * bytes_per_kbps_second),
                ),
            )
        budget = None
        host = deployment.new_host()
        host.fund(10**12)
        planner = TransferPlanner(host.indexer(deployment.marketplace))
        request = DeadlineTransfer(
            crossings=tuple(crossings),
            bytes_total=bytes_total,
            release=release,
            deadline=deadline,
            budget_mist=budget,
            max_rate_kbps=max_rate,
        )
        try:
            book = planner.book(request)
            oracle = offline_optimum(book, request)
            oracle_feasible = oracle.feasible
            oracle_bytes = oracle.bytes
            oracle_cost = oracle.cost_mist
        except InfeasibleTransfer:
            # The book sold out entirely: nothing overlaps the window,
            # so the offline optimum is trivially zero.
            oracle_feasible, oracle_bytes, oracle_cost = False, 0, 0
        outcome = execute_transfer(
            deployment,
            host,
            list(crossings),
            bytes_total,
            deadline,
            release=release,
            budget_mist=budget,
            max_rate_kbps=max_rate,
            best_effort=True,
        )
        chain_paid = (
            sum(
                ret.get("price_mist", 0)
                for ret in outcome.submitted.effects.returns
            )
            if outcome.submitted is not None
            else 0
        )
        record = TransferRecord(
            name=f"t{index}",
            bytes_requested=bytes_total,
            release=release,
            deadline=deadline,
            budget_mist=budget,
            max_rate_kbps=max_rate,
            oracle_feasible=oracle_feasible,
            oracle_bytes=oracle_bytes,
            oracle_cost_mist=oracle_cost,
            bytes_moved=outcome.bytes_moved,
            spend_mist=outcome.plan.spend_mist,
            chain_paid_mist=chain_paid,
            reservations=len(outcome.reservations),
            legs=len(outcome.plan.legs),
            buys=outcome.plan.buy_count,
        )
        result.records.append(record)

        # Differential invariants, end-to-end through buy+redeem:
        assert record.deadline_hit == oracle_feasible, (
            f"{record.name}: planner "
            f"{'hit' if record.deadline_hit else 'missed'} but the exact "
            f"oracle says feasible={oracle_feasible}"
        )
        assert record.bytes_moved >= int(0.9 * oracle_bytes), (
            f"{record.name}: moved {record.bytes_moved} bytes, under 90% "
            f"of the oracle's {oracle_bytes}"
        )
        assert record.chain_paid_mist == record.spend_mist, (
            f"{record.name}: plan predicted {record.spend_mist} MIST but "
            f"the chain charged {record.chain_paid_mist}"
        )
        assert record.reservations == outcome.plan.redeem_count, (
            f"{record.name}: {outcome.plan.redeem_count} redeems but "
            f"{record.reservations} reservations delivered"
        )
        if record.budget_mist is not None:
            assert record.spend_mist <= record.budget_mist
    return result
