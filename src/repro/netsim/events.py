"""Discrete-event simulation core.

A classic heap-based event loop.  The loop drives a shared
:class:`~repro.clock.SimClock` so that every component that takes a clock
(border routers, policers, traffic sources) observes simulation time
without any plumbing changes.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable

from repro.clock import SimClock


class EventLoop:
    """Priority-queue scheduler over a :class:`SimClock`."""

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock(0.0)
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._events_run = 0

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError("cannot schedule into the past")
        self.schedule_at(self.clock.now() + delay, callback)

    def schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` at absolute time ``when``.

        Events scheduled for the **same timestamp run in FIFO order**: each
        entry carries a monotonically increasing sequence number that breaks
        heap ties, so equal-time callbacks execute in the order they were
        scheduled (and no comparison ever reaches the callbacks themselves).
        """
        if when < self.clock.now():
            raise ValueError("cannot schedule into the past")
        heapq.heappush(self._queue, (when, next(self._sequence), callback))

    def run_until(self, end_time: float, max_events: int = 10_000_000) -> int:
        """Process events up to ``end_time``; returns the number executed."""
        executed = 0
        while self._queue and executed < max_events:
            when, _, callback = self._queue[0]
            if when > end_time:
                break
            heapq.heappop(self._queue)
            self.clock.set(when)
            callback()
            executed += 1
        self.clock.set(max(self.clock.now(), end_time))
        self._events_run += executed
        return executed

    @property
    def events_run(self) -> int:
        """Total events executed across all :meth:`run_until` calls."""
        return self._events_run

    @property
    def pending(self) -> int:
        return len(self._queue)

    @property
    def now(self) -> float:
        return self.clock.now()
