"""Per-flow measurement: goodput, latency percentiles, loss.

``FlowMetrics`` keeps the exact per-packet latency list (netsim runs are
small enough), but every observation is mirrored into a shared
:class:`repro.telemetry.registry.Histogram` so flow latency exports the
same way as every other instrument (bucket counts + sum + count).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.registry import DEFAULT_BUCKETS, Histogram

#: Bucket edges shared by every flow's latency histogram, in seconds.
LATENCY_BOUNDS: np.ndarray = np.asarray(DEFAULT_BUCKETS, dtype=np.float64)


def _latency_histogram() -> Histogram:
    return Histogram(LATENCY_BOUNDS)


@dataclass
class FlowMetrics:
    """Collected at the destination sink for one flow."""

    flow_id: int
    sent_packets: int = 0
    sent_bytes: int = 0
    received_packets: int = 0
    received_bytes: int = 0
    latencies: list[float] = field(default_factory=list)
    histogram: Histogram = field(
        default_factory=_latency_histogram, repr=False, compare=False
    )
    first_sent: float | None = None
    first_received: float | None = None
    last_received: float | None = None

    def record_sent(self, size_bytes: int, now: float) -> None:
        self.sent_packets += 1
        self.sent_bytes += size_bytes
        if self.first_sent is None:
            self.first_sent = now

    def record_received(self, size_bytes: int, sent_at: float, now: float) -> None:
        self.received_packets += 1
        self.received_bytes += size_bytes
        self.latencies.append(now - sent_at)
        self.histogram.observe(now - sent_at)
        if self.first_received is None:
            self.first_received = now
        self.last_received = now

    @property
    def loss_rate(self) -> float:
        """Fraction of sent packets never delivered, clamped to [0, 1].

        Duplicate deliveries (retransmit experiments) would otherwise push
        this negative.
        """
        if self.sent_packets == 0:
            return 0.0
        return min(1.0, max(0.0, 1.0 - self.received_packets / self.sent_packets))

    def goodput_bps(self, duration: float | None = None) -> float:
        """Received payload rate over the active window (or ``duration``).

        Defined for every edge case: a flow that never sent or never
        received, a receiver-only flow (no ``record_sent`` calls — the
        window falls back to first..last reception), and a zero-length
        window all report 0.0 instead of dividing by zero.
        """
        if duration is None:
            start = self.first_sent if self.first_sent is not None else self.first_received
            if start is None or self.last_received is None:
                return 0.0
            duration = self.last_received - start
        if duration <= 0:
            return 0.0
        return self.received_bytes * 8 / duration

    def latency_percentile(self, percentile: float) -> float:
        """Interpolation-free percentile of observed one-way latencies.

        Out-of-range percentiles raise even on an empty flow; no samples
        yields ``nan`` (a defined "no data" value, not an exception).
        """
        if not 0 <= percentile <= 100:
            raise ValueError("percentile must be within [0, 100]")
        if not self.latencies:
            return float("nan")
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(round(percentile / 100 * (len(ordered) - 1))))
        return ordered[index]

    def latency_quantile(self, q: float) -> float:
        """Bucketed estimate of the q-quantile (q in [0, 1]).

        Same estimator every telemetry histogram uses — cheaper than the
        exact :meth:`latency_percentile` and directly comparable to
        exported metrics; ``nan`` when no samples arrived.
        """
        return self.histogram.quantile(q)

    def summary(self) -> dict:
        return {
            "flow": self.flow_id,
            "sent": self.sent_packets,
            "received": self.received_packets,
            "loss_rate": round(self.loss_rate, 4),
            "goodput_mbps": round(self.goodput_bps() / 1e6, 3),
            "p50_ms": round(self.latency_percentile(50) * 1000, 3) if self.latencies else None,
            "p99_ms": round(self.latency_percentile(99) * 1000, 3) if self.latencies else None,
        }
