"""Per-flow measurement: goodput, latency percentiles, loss."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class FlowMetrics:
    """Collected at the destination sink for one flow."""

    flow_id: int
    sent_packets: int = 0
    sent_bytes: int = 0
    received_packets: int = 0
    received_bytes: int = 0
    latencies: list[float] = field(default_factory=list)
    first_sent: float | None = None
    last_received: float | None = None

    def record_sent(self, size_bytes: int, now: float) -> None:
        self.sent_packets += 1
        self.sent_bytes += size_bytes
        if self.first_sent is None:
            self.first_sent = now

    def record_received(self, size_bytes: int, sent_at: float, now: float) -> None:
        self.received_packets += 1
        self.received_bytes += size_bytes
        self.latencies.append(now - sent_at)
        self.last_received = now

    @property
    def loss_rate(self) -> float:
        if self.sent_packets == 0:
            return 0.0
        return 1.0 - self.received_packets / self.sent_packets

    def goodput_bps(self, duration: float | None = None) -> float:
        """Received payload rate over the active window (or ``duration``)."""
        if duration is None:
            if self.first_sent is None or self.last_received is None:
                return 0.0
            duration = self.last_received - self.first_sent
        if duration <= 0:
            return 0.0
        return self.received_bytes * 8 / duration

    def latency_percentile(self, percentile: float) -> float:
        """Interpolation-free percentile of observed one-way latencies."""
        if not self.latencies:
            return float("nan")
        if not 0 <= percentile <= 100:
            raise ValueError("percentile must be within [0, 100]")
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(round(percentile / 100 * (len(ordered) - 1))))
        return ordered[index]

    def summary(self) -> dict:
        return {
            "flow": self.flow_id,
            "sent": self.sent_packets,
            "received": self.received_packets,
            "loss_rate": round(self.loss_rate, 4),
            "goodput_mbps": round(self.goodput_bps() / 1e6, 3),
            "p50_ms": round(self.latency_percentile(50) * 1000, 3) if self.latencies else None,
            "p99_ms": round(self.latency_percentile(99) * 1000, 3) if self.latencies else None,
        }
