"""Canned simulation scenarios for the QoS experiments.

The central harness, :func:`build_path_simulation`, turns a forwarding path
into a chain of router nodes joined by priority-queue links, with a metrics
sink at the destination.  Reservations are granted directly by the on-path
ASes (the market is exercised elsewhere; here we study data-plane
behaviour).

The flagship experiment — :func:`congestion_experiment` — reproduces the
QoS property D2: a reservation-protected flow keeps its goodput and latency
through a best-effort flood that saturates the bottleneck link, while an
unprotected flow collapses.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.clock import SimClock
from repro.crypto.prf import PrfFactory
from repro.hummingbird.reservation import FlyoverReservation, ResInfo, grant_reservation
from repro.hummingbird.router import HummingbirdRouter
from repro.hummingbird.source import HummingbirdSource, ScionBestEffortSource
from repro.netsim.events import EventLoop
from repro.netsim.link import Link
from repro.netsim.metrics import FlowMetrics
from repro.netsim.nodes import HostSink, RouterNode
from repro.netsim.traffic import CbrSource, FloodSource
from repro.scion.addresses import HostAddr, ScionAddr
from repro.scion.paths import ForwardingPath, as_crossings
from repro.scion.topology import Topology
from repro.telemetry import ExperimentTelemetry
from repro.telemetry.tracing import use_trace
from repro.wire import bwcls

# Simulations hash millions of packets; the keyed-BLAKE2 backend keeps the
# event loop fast while exercising the identical MAC code paths.  Every
# MAC-producing component of one simulation (beaconing, sources, routers)
# must share one factory — use :func:`linear_path` to get consistent
# topology + path artifacts.
SIM_PRF = PrfFactory("blake2")


def linear_path(
    num_ases: int,
    timestamp: int = 1_700_000_000,
    prf_factory: PrfFactory = SIM_PRF,
):
    """Chain topology + leaf-to-core forwarding path, beaconing included.

    Returns ``(topology, path)`` whose hop-field MACs were produced with
    ``prf_factory`` — hand the same factory to
    :func:`build_path_simulation`.
    """
    from repro.scion.beaconing import run_beaconing
    from repro.scion.paths import PathLookup
    from repro.scion.topology import linear_topology

    topology = linear_topology(num_ases)
    store = run_beaconing(topology, timestamp=timestamp, prf_factory=prf_factory)
    lookup = PathLookup(store)
    path = lookup.find_paths(
        topology.ases[-1].isd_as, topology.ases[0].isd_as
    )[0]
    return topology, path


@dataclass
class PathSimulation:
    """A wired-up simulation of one forwarding path."""

    loop: EventLoop
    clock: SimClock
    topology: Topology
    path: ForwardingPath
    nodes: dict = field(default_factory=dict)  # IsdAs -> RouterNode
    links: list = field(default_factory=list)
    sink: HostSink | None = None
    src_addr: ScionAddr | None = None
    dst_addr: ScionAddr | None = None
    prf_factory: PrfFactory = SIM_PRF

    @property
    def entry(self) -> RouterNode:
        return self.nodes[self.path.src]

    def grant_full_path(
        self, bandwidth_kbps: int, start: int, duration: int, res_id: int = 0
    ) -> list[FlyoverReservation]:
        """Have every on-path AS grant a reservation for this path."""
        reservations = []
        for crossing in as_crossings(self.path):
            autonomous_system = self.topology.as_of(crossing.isd_as)
            resinfo = ResInfo(
                ingress=crossing.ingress,
                egress=crossing.egress,
                res_id=res_id,
                bw_cls=bwcls.encode_ceil(bandwidth_kbps),
                start=start,
                duration=duration,
            )
            reservations.append(
                grant_reservation(
                    crossing.isd_as,
                    autonomous_system.secret_value,
                    resinfo,
                    self.prf_factory,
                )
            )
        return reservations

    def hummingbird_source(self, reservations: list[FlyoverReservation]) -> HummingbirdSource:
        return HummingbirdSource(
            self.src_addr,
            self.dst_addr,
            self.path,
            reservations,
            self.clock,
            self.prf_factory,
        )

    def best_effort_source(self) -> ScionBestEffortSource:
        return ScionBestEffortSource(self.src_addr, self.dst_addr, self.path)


def build_path_simulation(
    topology: Topology,
    path: ForwardingPath,
    start_time: float = 1_700_000_000.0,
    link_rate_bps: float = 10_000_000.0,
    propagation_delay: float = 0.002,
    buffer_bytes: int = 64_000,
    burst_time: float | None = None,
    prf_factory: PrfFactory = SIM_PRF,
    link_rates: list[float] | None = None,
) -> PathSimulation:
    """Instantiate routers, links and the destination sink along ``path``.

    ``link_rates`` overrides ``link_rate_bps`` per link (one entry per
    inter-AS link in traversal order) — e.g. a slow first link makes a
    single-hop bottleneck.
    """
    clock = SimClock(start_time)
    loop = EventLoop(clock)
    simulation = PathSimulation(
        loop=loop,
        clock=clock,
        topology=topology,
        path=path,
        prf_factory=prf_factory,
        src_addr=ScionAddr(path.src, HostAddr.from_string("10.0.0.1")),
        dst_addr=ScionAddr(path.dst, HostAddr.from_string("10.0.0.2")),
    )
    crossings = as_crossings(path)
    for crossing in crossings:
        autonomous_system = topology.as_of(crossing.isd_as)
        router = HummingbirdRouter(
            autonomous_system, clock, prf_factory, burst_time=burst_time
        )
        simulation.nodes[crossing.isd_as] = RouterNode(router)
    for index, (first, second) in enumerate(zip(crossings, crossings[1:])):
        rate = link_rate_bps if link_rates is None else link_rates[index]
        link = Link(
            loop,
            rate_bps=rate,
            propagation_delay=propagation_delay,
            buffer_bytes=buffer_bytes,
            name=f"{first.isd_as}->{second.isd_as}",
        )
        simulation.links.append(link)
        simulation.nodes[first.isd_as].connect(
            first.egress, link, simulation.nodes[second.isd_as], second.ingress
        )
    sink = HostSink(clock)
    simulation.nodes[crossings[-1].isd_as].attach_sink(sink)
    simulation.sink = sink
    return simulation


@dataclass
class CongestionResult:
    """Outcome of :func:`congestion_experiment` for one flow setup."""

    victim: dict
    attacker: dict
    bottleneck_utilization: float


def congestion_experiment(
    topology: Topology,
    path: ForwardingPath,
    protected: bool,
    victim_rate_bps: float = 2_000_000.0,
    flood_rate_bps: float = 20_000_000.0,
    link_rate_bps: float = 10_000_000.0,
    duration: float = 3.0,
    payload_bytes: int = 1000,
    seed: int = 1,
    prf_factory: PrfFactory = SIM_PRF,
) -> CongestionResult:
    """Victim flow vs. best-effort flood over a shared bottleneck path.

    With ``protected=True`` the victim uses a full-path reservation sized to
    its sending rate; otherwise it competes as plain best effort.  The path
    must have been beaconed with ``prf_factory`` (see :func:`linear_path`).
    """
    simulation = build_path_simulation(
        topology, path, link_rate_bps=link_rate_bps, prf_factory=prf_factory
    )
    start = int(simulation.clock.now())
    rng = random.Random(seed)

    if protected:
        reservations = simulation.grant_full_path(
            bandwidth_kbps=int(victim_rate_bps * 1.25 / 1000),
            start=start,
            duration=int(duration) + 60,
        )
        victim_builder = simulation.hummingbird_source(reservations)
    else:
        victim_builder = simulation.best_effort_source()

    victim_metrics = simulation.sink.flow(1)
    victim = CbrSource(
        simulation.loop,
        victim_builder,
        simulation.entry,
        victim_metrics,
        rate_bps=victim_rate_bps,
        payload_bytes=payload_bytes,
        flow_id=1,
        jitter=0.05,
        rng=rng,
    )

    attacker_metrics = simulation.sink.flow(2)
    attacker = FloodSource(
        simulation.loop,
        simulation.best_effort_source(),
        simulation.entry,
        attacker_metrics,
        rate_bps=flood_rate_bps,
        payload_bytes=payload_bytes,
        flow_id=2,
        jitter=0.02,
        rng=rng,
    )

    victim.start(0.0)
    attacker.start(0.1)  # the flood ramps up shortly after the victim
    end = simulation.clock.now() + duration
    simulation.loop.run_until(end)
    victim.stop()
    attacker.stop()

    bottleneck = simulation.links[0] if simulation.links else None
    utilization = bottleneck.utilization(duration) if bottleneck else 0.0
    return CongestionResult(
        victim=victim_metrics.summary(),
        attacker=attacker_metrics.summary(),
        bottleneck_utilization=utilization,
    )


@dataclass
class BuyerOutcome:
    """One competing buyer's fate in :func:`contention_experiment`."""

    buyer: str
    requested_kbps: int
    admitted: bool
    quoted_price_micromist: int
    reason: str
    metrics: dict


@dataclass
class ContentionResult:
    """Outcome of :func:`contention_experiment`."""

    buyers: list[BuyerOutcome]
    capacity_kbps: int
    bottleneck_utilization: float

    @property
    def admitted(self) -> list[BuyerOutcome]:
        return [b for b in self.buyers if b.admitted]

    @property
    def rejected(self) -> list[BuyerOutcome]:
        return [b for b in self.buyers if not b.admitted]


@dataclass
class FlexBuyerOutcome:
    """One probe buyer's fate in :func:`flex_market_experiment`."""

    buyer: str
    flex_start: int  # seconds of start-time slack the buyer declared
    offset: int  # seconds the planner actually slid the window
    start: int  # service start of the purchased window
    expiry: int
    estimated_price_mist: int
    paid_price_mist: int
    metrics: dict


@dataclass
class FlexMarketResult:
    """Outcome of :func:`flex_market_experiment`."""

    buyers: list[FlexBuyerOutcome]
    peak_window: tuple[int, int]
    base_price_micromist: int
    peak_price_micromist: int  # scarcity-adjusted restock price in the peak
    curve_times: list[int]
    curve_prices: list[float]  # cheapest probe-sized quote per start time


def flex_market_experiment(
    num_ases: int = 3,
    probe_rate_bps: float = 2_000_000.0,
    flood_rate_bps: float = 20_000_000.0,
    link_rate_bps: float = 10_000_000.0,
    window_seconds: int = 600,
    flex_values: tuple[int, ...] = (0, 1800),
    market_bandwidth_kbps: int = 100_000,
    base_price_micromist: int = 50,
    duration: float = 1.5,
    payload_bytes: int = 1000,
    seed: int = 1,
    prf_factory: PrfFactory = SIM_PRF,
    shard_seconds: float | None = None,
    engine=None,
    telemetry: ExperimentTelemetry | None = None,
) -> FlexMarketResult:
    """Price-reactive purchasing end to end: buy the valley, not the peak.

    Builds a *scarcity-priced* market over the path, exhausts the cheap
    capacity in one peak window (a crowd buys it out and redeems, so the
    active calendars spike), has every AS restock the peak at its
    scarcity-adjusted quote, then sends probe buyers with different
    ``flex_start`` budgets through the full v2 purchase workflow
    (:class:`~repro.marketdata.PathSpec` -> planner -> atomic
    buy-and-redeem).  A zero-flex probe must pay the peak restock price; a
    probe with enough slack slides into the post-peak valley and pays the
    base price.  Each probe's reservations are then *used*: a short
    packet-level simulation runs its flow against a best-effort flood and
    records goodput/latency, proving the valley reservations are as real
    on the data plane as the peak ones.

    With ``telemetry`` the market side (indexer, ledger executor, per-AS
    admission) reports into the harness's registry and each probe's
    purchase is traced end to end.
    """
    if telemetry is not None:
        with telemetry.activate():
            return _flex_market_experiment_impl(
                num_ases, probe_rate_bps, flood_rate_bps, link_rate_bps,
                window_seconds, flex_values, market_bandwidth_kbps,
                base_price_micromist, duration, payload_bytes, seed,
                prf_factory, shard_seconds, engine, telemetry,
            )
    return _flex_market_experiment_impl(
        num_ases, probe_rate_bps, flood_rate_bps, link_rate_bps,
        window_seconds, flex_values, market_bandwidth_kbps,
        base_price_micromist, duration, payload_bytes, seed, prf_factory,
        shard_seconds, engine, None,
    )


def _flex_market_experiment_impl(
    num_ases: int,
    probe_rate_bps: float,
    flood_rate_bps: float,
    link_rate_bps: float,
    window_seconds: int,
    flex_values: tuple[int, ...],
    market_bandwidth_kbps: int,
    base_price_micromist: int,
    duration: float,
    payload_bytes: int,
    seed: int,
    prf_factory: PrfFactory,
    shard_seconds: float | None,
    engine,
    telemetry: ExperimentTelemetry | None,
) -> FlexMarketResult:
    from repro.admission import ScarcityPricer
    from repro.controlplane import deploy_market, purchase_path
    from repro.scion.beaconing import run_beaconing
    from repro.scion.paths import PathLookup
    from repro.scion.topology import linear_topology

    topology = linear_topology(num_ases)
    store = run_beaconing(
        topology, timestamp=1_700_000_000, prf_factory=prf_factory
    )
    path = PathLookup(store).find_paths(
        topology.ases[-1].isd_as, topology.ases[0].isd_as
    )[0]
    crossings = as_crossings(path)

    deploy_time = 1_700_000_000
    clock = SimClock(float(deploy_time))
    deployment = deploy_market(
        topology,
        clock=clock,
        seed=seed,
        asset_start=deploy_time,  # pin the granule anchor for clean windows
        asset_duration=7200,
        asset_bandwidth_kbps=market_bandwidth_kbps,
        price_micromist_per_unit=base_price_micromist,
        interface_capacity_kbps=2 * market_bandwidth_kbps,
        pricer=ScarcityPricer(),
        prf_factory=prf_factory,
        shard_seconds=shard_seconds,
        engine=engine,
    )
    peak = (deploy_time + 600, deploy_time + 600 + window_seconds)

    # A crowd buys the peak window out at the base price and redeems, so
    # the cheap capacity is gone and the active calendars record the load.
    crowd = deployment.new_host(name="crowd")
    purchase_path(
        deployment,
        crowd,
        crossings,
        start=peak[0],
        expiry=peak[1],
        bandwidth_kbps=market_bandwidth_kbps,
    )

    # Every AS restocks the sold-out peak; the quote now carries the
    # scarcity multiplier, so peak capacity exists again — at a premium.
    peak_price = base_price_micromist
    for crossing in crossings:
        service = deployment.service(crossing.isd_as)
        for interface, is_ingress in ((crossing.ingress, True), (crossing.egress, False)):
            peak_price = max(
                peak_price,
                service.admission.quote(
                    base_price_micromist, interface, is_ingress, *peak
                ),
            )
            restocked = service.issue_and_list(
                deployment.marketplace,
                interface,
                is_ingress,
                market_bandwidth_kbps,
                *peak,
                base_price_micromist,
            )
            if not restocked.effects.ok:
                raise RuntimeError(f"restock failed: {restocked.effects.error}")

    reserve_kbps = int(probe_rate_bps * 1.25 / 1000)  # cover wire overhead
    outcomes: list[FlexBuyerOutcome] = []
    for index, flex in enumerate(flex_values):
        buyer = f"probe-flex-{flex}"
        host = deployment.new_host(name=buyer)
        # Trace the whole purchase: plan -> atomic buy-and-redeem tx ->
        # per-AS admission -> sealed delivery.
        trace = telemetry.trace(buyer) if telemetry is not None else None
        with use_trace(trace):
            outcome = purchase_path(
                deployment,
                host,
                crossings,
                start=peak[0],
                expiry=peak[0] + window_seconds,
                bandwidth_kbps=reserve_kbps,
                flex_start=flex,
            )
        # Use the reservations on the data plane: the probe's protected
        # flow vs a best-effort flood over the bottleneck, simulated at
        # the window the planner actually bought.
        simulation = build_path_simulation(
            topology,
            path,
            start_time=float(outcome.quote.start) + 0.1,
            link_rate_bps=link_rate_bps,
            prf_factory=prf_factory,
        )
        rng = random.Random(seed + index)
        victim_metrics = simulation.sink.flow(1)
        victim = CbrSource(
            simulation.loop,
            simulation.hummingbird_source(outcome.reservations),
            simulation.entry,
            victim_metrics,
            rate_bps=probe_rate_bps,
            payload_bytes=payload_bytes,
            flow_id=1,
            jitter=0.05,
            rng=rng,
        )
        flood_metrics = simulation.sink.flow(2)
        flood = FloodSource(
            simulation.loop,
            simulation.best_effort_source(),
            simulation.entry,
            flood_metrics,
            rate_bps=flood_rate_bps,
            payload_bytes=payload_bytes,
            flow_id=2,
            jitter=0.02,
            rng=rng,
        )
        victim.start(0.0)
        flood.start(0.05)
        simulation.loop.run_until(simulation.clock.now() + duration)
        victim.stop()
        flood.stop()
        outcomes.append(
            FlexBuyerOutcome(
                buyer=buyer,
                flex_start=flex,
                offset=outcome.quote.offset,
                start=outcome.quote.start,
                expiry=outcome.quote.expiry,
                estimated_price_mist=outcome.estimated_price_mist,
                paid_price_mist=outcome.price_mist,
                metrics=victim_metrics.summary(),
            )
        )

    # Price-over-time curve at the bottleneck ingress: the peak plateau
    # and the valley the flexible probes slid into.
    bottleneck = crossings[1] if len(crossings) > 1 else crossings[0]
    curve_times = list(
        range(deploy_time, deploy_time + 3600 + window_seconds, window_seconds // 2)
    )
    curve_prices = deployment.indexer.price_curve(
        bottleneck.isd_as,
        bottleneck.ingress,
        True,
        reserve_kbps,
        window_seconds,
        curve_times,
    )
    result = FlexMarketResult(
        buyers=outcomes,
        peak_window=peak,
        base_price_micromist=base_price_micromist,
        peak_price_micromist=peak_price,
        curve_times=curve_times,
        curve_prices=[float(price) for price in curve_prices],
    )
    if telemetry is not None:
        for crossing in crossings:
            deployment.service(crossing.isd_as).admission.record_capacity_gauges(
                deploy_time, deploy_time + 7200, owner=str(crossing.isd_as)
            )
        telemetry.annotate(
            flex_market={
                "peak_window": list(peak),
                "base_price_micromist": base_price_micromist,
                "peak_price_micromist": peak_price,
                "buyers": [
                    {
                        "buyer": b.buyer,
                        "flex_start": b.flex_start,
                        "offset": b.offset,
                        "paid_price_mist": b.paid_price_mist,
                        "goodput_mbps": b.metrics.get("goodput_mbps"),
                    }
                    for b in outcomes
                ],
                "curve_times": curve_times,
                "curve_prices": result.curve_prices,
            }
        )
    deployment.close()
    return result


@dataclass
class AuctionBuyerOutcome:
    """One buyer's fate in BOTH arms of :func:`auction_experiment`."""

    buyer: str
    requested_kbps: int
    valuation_micromist: int  # per-unit willingness to pay
    posted_admitted: bool
    posted_quote_micromist: int  # the posted price this buyer faced
    posted_paid_mist: int
    posted_reason: str
    auction_won: bool
    auction_paid_mist: int
    auction_reason: str
    metrics: dict  # auction-arm data-plane metrics (empty when not simulated)


@dataclass
class AuctionExperimentResult:
    """Outcome of :func:`auction_experiment`: posted vs auctioned window."""

    buyers: list[AuctionBuyerOutcome]
    capacity_kbps: int
    supply_kbps: int
    reserve_micromist: int
    clearing_price_micromist: int
    posted_revenue_mist: int
    auction_revenue_mist: int
    posted_peak_kbps: int
    auction_peak_kbps: int
    bottleneck_utilization: float

    @property
    def oversold(self) -> bool:
        """Did either arm commit more than the physical capacity?"""
        return (
            self.posted_peak_kbps > self.capacity_kbps
            or self.auction_peak_kbps > self.capacity_kbps
        )

    def rejection_rate(self, arm: str) -> float:
        """Fraction of buyers who got nothing (``arm``: posted|auction)."""
        if not self.buyers:
            return 0.0
        if arm == "posted":
            losses = sum(1 for b in self.buyers if not b.posted_admitted)
        else:
            losses = sum(1 for b in self.buyers if not b.auction_won)
        return losses / len(self.buyers)

    def efficiency(self, arm: str) -> float:
        """Captured valuation: awarded value / best achievable value.

        The market-design fairness yardstick: 1.0 means the window went to
        exactly the buyers who value it most.  Posted prices allocate by
        *arrival order* among those who can afford the quote; the auction
        allocates by *bid order*, so it should sit at (or near) 1.0.
        """
        demands = sorted((b.valuation_micromist for b in self.buyers), reverse=True)
        per_buyer = self.buyers[0].requested_kbps if self.buyers else 0
        slots = per_buyer and self.capacity_kbps // per_buyer
        best = sum(demands[:slots])
        if best == 0:
            return 1.0
        if arm == "posted":
            captured = sum(
                b.valuation_micromist for b in self.buyers if b.posted_admitted
            )
        else:
            captured = sum(
                b.valuation_micromist for b in self.buyers if b.auction_won
            )
        return captured / best

    def jain_index(self, arm: str) -> float:
        """Jain's fairness index over awarded bandwidth across all buyers."""
        if arm == "posted":
            shares = [b.requested_kbps if b.posted_admitted else 0 for b in self.buyers]
        else:
            shares = [b.requested_kbps if b.auction_won else 0 for b in self.buyers]
        total = sum(shares)
        if total == 0:
            return 1.0
        return total * total / (len(shares) * sum(s * s for s in shares))


def auction_experiment(
    topology: Topology,
    path: ForwardingPath,
    num_buyers: int = 10,
    per_buyer_kbps: int = 2000,
    link_rate_bps: float = 10_000_000.0,
    reservable_fraction: float = 0.8,
    duration: float = 1.5,
    payload_bytes: int = 1000,
    base_price_micromist: int = 50,
    seed: int = 1,
    prf_factory: PrfFactory = SIM_PRF,
    shard_seconds: float | None = None,
    engine=None,
    max_share_fraction: float = 0.5,
    telemetry: ExperimentTelemetry | None = None,
) -> AuctionExperimentResult:
    """Sealed-bid uniform-price auction vs posted scarcity prices, head-on.

    The PR 1 contention workload — ``num_buyers`` buyers, heterogeneous
    willingness to pay, one bottleneck interface window — allocated two
    ways against identical admission controllers:

    * **posted arm**: buyers arrive in order and face the current
      scarcity-adjusted quote; a buyer purchases iff the quote is within
      their valuation and admission still fits.  Arrival order decides who
      wins the contended window, and early buyers pay *less* than late
      ones — the money the operator's guessed curve leaves on the table.
    * **auction arm**: the same buyers seal bids at their valuations into
      a :class:`~repro.admission.WindowAuction` (reserve = the posted
      quote at open, share cap = the proportional-share bound) and the
      window clears at one uniform price — the highest losing bid.

    The auction arm's winners then *use* their reservations: a packet
    simulation runs every buyer (winners protected, losers best effort)
    through the bottleneck, reproducing the contention experiment's
    data-plane picture on top of auction-allocated windows.  With
    ``duration = 0`` the packet phase is skipped (clearing-only runs).

    Returns:
        An :class:`AuctionExperimentResult`; its ``oversold`` property is
        False iff neither arm committed past physical capacity, and
        ``auction_revenue_mist >= posted_revenue_mist`` whenever demand
        actually contends (the experiment's headline claim, asserted in
        ``tests/netsim/test_netsim.py``).

    With ``telemetry`` both arms report into the harness's registry, and a
    *ledger-backed* companion run traces one reservation under a single
    correlation id through its entire lifecycle: auction-open transaction
    -> sealed bid -> uniform-price settlement -> posted egress buy ->
    redeem -> admission -> sealed delivery -> data-plane policer verdict.
    """
    if telemetry is not None:
        with telemetry.activate():
            return _auction_experiment_impl(
                topology, path, num_buyers, per_buyer_kbps, link_rate_bps,
                reservable_fraction, duration, payload_bytes,
                base_price_micromist, seed, prf_factory, shard_seconds,
                engine, max_share_fraction, telemetry,
            )
    return _auction_experiment_impl(
        topology, path, num_buyers, per_buyer_kbps, link_rate_bps,
        reservable_fraction, duration, payload_bytes, base_price_micromist,
        seed, prf_factory, shard_seconds, engine, max_share_fraction, None,
    )


def _auction_experiment_impl(
    topology: Topology,
    path: ForwardingPath,
    num_buyers: int,
    per_buyer_kbps: int,
    link_rate_bps: float,
    reservable_fraction: float,
    duration: float,
    payload_bytes: int,
    base_price_micromist: int,
    seed: int,
    prf_factory: PrfFactory,
    shard_seconds: float | None,
    engine,
    max_share_fraction: float,
    telemetry: ExperimentTelemetry | None,
) -> AuctionExperimentResult:
    from repro.admission import (
        ACTIVE,
        AdmissionController,
        ProportionalShare,
        ScarcityPricer,
    )

    crossings = as_crossings(path)
    if len(crossings) < 2:
        raise ValueError("need at least one inter-AS link for a bottleneck")
    bottleneck = crossings[1]  # ingress side of the first inter-AS link
    capacity_kbps = int(link_rate_bps / 1000 * reservable_fraction)
    simulate = duration > 0
    simulation = (
        build_path_simulation(
            topology, path, link_rate_bps=link_rate_bps, prf_factory=prf_factory
        )
        if simulate
        else None
    )
    start = (
        int(simulation.clock.now()) if simulate else 1_700_000_000
    )
    window_end = start + int(duration) + 60
    window_seconds = window_end - start
    reserve_kbps = int(per_buyer_kbps * 1.25)  # cover wire overhead
    rng = random.Random(seed)
    valuations = [
        int(base_price_micromist * rng.uniform(1.0, 12.0)) for _ in range(num_buyers)
    ]

    def paid_mist(unit_price: int) -> int:
        return -(-reserve_kbps * window_seconds * unit_price // 1_000_000)

    # -- posted arm: arrival order vs the scarcity curve -----------------------
    posted = AdmissionController(
        capacity_kbps, pricer=ScarcityPricer(), shard_seconds=shard_seconds,
        engine=engine,
    )
    posted_outcomes: list[tuple[bool, int, int, str]] = []
    posted_revenue = 0
    for index, valuation in enumerate(valuations):
        quote = posted.quote(
            base_price_micromist, bottleneck.ingress, True, start, window_end
        )
        if quote > valuation:
            posted_outcomes.append((False, quote, 0, "priced out"))
            continue
        decision = posted.admit_reservation(
            bottleneck.ingress, True, reserve_kbps, start, window_end,
            tag=f"buyer-{index}",
        )
        if decision.admitted:
            posted_revenue += paid_mist(quote)
            posted_outcomes.append((True, quote, paid_mist(quote), "admitted"))
        else:
            posted_outcomes.append((False, quote, 0, decision.reason))

    # -- auction arm: one sealed-bid book, cleared at a uniform price ----------
    auctioneer = AdmissionController(
        capacity_kbps,
        pricer=ScarcityPricer(),
        policy=ProportionalShare(max_share_fraction),
        shard_seconds=shard_seconds,
        engine=engine,
        auction_interfaces=True,
    )
    book = auctioneer.open_auction(
        bottleneck.ingress, True, capacity_kbps, start, window_end,
        base_price_micromist,
    )
    for index, valuation in enumerate(valuations):
        book.place(f"buyer-{index}", reserve_kbps, valuation)
    supply = auctioneer.settle_supply(
        bottleneck.ingress, True, start, window_end, capacity_kbps
    )
    outcome = book.clear(supply)
    winners = {bid.bidder for bid in outcome.winners}
    reasons = {lost.bid.bidder: lost.reason for lost in outcome.losers}
    for bid in outcome.winners:
        decision = auctioneer.admit_reservation(
            bottleneck.ingress, True, bid.bandwidth_kbps, start, window_end,
            tag=bid.bidder,
        )
        if not decision.admitted:  # cannot happen: clearing respects supply
            raise RuntimeError(f"auction oversold the window: {decision.reason}")
    auction_revenue = outcome.revenue_mist(window_seconds)

    # -- data plane: winners protected, everyone sends --------------------------
    sources = []
    flow_metrics: list[FlowMetrics | None] = []
    if simulate:
        for index in range(num_buyers):
            if f"buyer-{index}" in winners:
                reservations = simulation.grant_full_path(
                    reserve_kbps, start, int(duration) + 60, res_id=index
                )
                builder = simulation.hummingbird_source(reservations)
            else:
                builder = simulation.best_effort_source()
            metrics = simulation.sink.flow(index + 1)
            flow_metrics.append(metrics)
            source = CbrSource(
                simulation.loop,
                builder,
                simulation.entry,
                metrics,
                rate_bps=per_buyer_kbps * 1000.0,
                payload_bytes=payload_bytes,
                flow_id=index + 1,
                jitter=0.05,
                rng=rng,
            )
            sources.append(source)
            source.start(0.01 * index)
        simulation.loop.run_until(simulation.clock.now() + duration)
        for source in sources:
            source.stop()
    else:
        flow_metrics = [None] * num_buyers

    per_winner = paid_mist(outcome.clearing_price_micromist)
    buyers = []
    for index, valuation in enumerate(valuations):
        name = f"buyer-{index}"
        admitted, quote, paid, posted_reason = posted_outcomes[index]
        won = name in winners
        buyers.append(
            AuctionBuyerOutcome(
                buyer=name,
                requested_kbps=reserve_kbps,
                valuation_micromist=valuation,
                posted_admitted=admitted,
                posted_quote_micromist=quote,
                posted_paid_mist=paid,
                posted_reason=posted_reason,
                auction_won=won,
                auction_paid_mist=per_winner if won else 0,
                auction_reason="won" if won else reasons.get(name, "no bid"),
                metrics=flow_metrics[index].summary() if flow_metrics[index] else {},
            )
        )

    posted_peak = posted.calendar(bottleneck.ingress, True, ACTIVE).peak_commitment(
        start, window_end
    )
    auction_peak = auctioneer.calendar(
        bottleneck.ingress, True, ACTIVE
    ).peak_commitment(start, window_end)
    link = simulation.links[0] if simulate and simulation.links else None
    result = AuctionExperimentResult(
        buyers=buyers,
        capacity_kbps=capacity_kbps,
        supply_kbps=supply,
        reserve_micromist=book.reserve_micromist,
        clearing_price_micromist=outcome.clearing_price_micromist,
        posted_revenue_mist=posted_revenue,
        auction_revenue_mist=auction_revenue,
        posted_peak_kbps=int(posted_peak),
        auction_peak_kbps=int(auction_peak),
        bottleneck_utilization=link.utilization(duration) if link else 0.0,
    )
    if telemetry is not None:
        posted.record_capacity_gauges(start, window_end, owner="posted-arm")
        auctioneer.record_capacity_gauges(start, window_end, owner="auction-arm")
        if simulate:
            simulation.nodes[bottleneck.isd_as].router.policer.record_gauges(
                str(bottleneck.isd_as)
            )
        _traced_reservation_lifecycle(
            telemetry, topology, crossings, bottleneck, path, prf_factory
        )
        telemetry.annotate(
            auction={
                "capacity_kbps": capacity_kbps,
                "supply_kbps": supply,
                "reserve_micromist": result.reserve_micromist,
                "clearing_price_micromist": result.clearing_price_micromist,
                "posted_revenue_mist": posted_revenue,
                "auction_revenue_mist": auction_revenue,
                "posted_efficiency": result.efficiency("posted"),
                "auction_efficiency": result.efficiency("auction"),
                "posted_jain": result.jain_index("posted"),
                "auction_jain": result.jain_index("auction"),
                "oversold": result.oversold,
            }
        )
    posted.close()
    auctioneer.close()
    return result


def _traced_reservation_lifecycle(
    telemetry: ExperimentTelemetry,
    topology: Topology,
    crossings,
    bottleneck,
    path: ForwardingPath,
    prf_factory: PrfFactory,
) -> None:
    """One reservation, one correlation id, the whole Hummingbird story.

    A compact ledger-backed companion to the in-memory auction arms: an AS
    auctions a future bottleneck-ingress window on-chain, two hosts seal
    bids, the auction settles at one uniform price, the winner buys the
    posted egress piece, redeems the pair, the AS admits and delivers the
    sealed reservation, and the winner's traffic crosses a simulated
    bottleneck under flood — ending with the policer's per-ResID verdict.
    Every step lands on a single :class:`TraceContext`, which is the
    "follow one reservation end to end" acceptance check.
    """
    from repro.admission import ScarcityPricer
    from repro.controlplane import deploy_market, purchase_path

    t0 = 1_700_000_000
    window = (t0 + 3600, t0 + 4200)  # granule-aligned scarce future window
    bid_kbps = 2500
    clock = SimClock(float(t0))
    trace = telemetry.trace("traced-reservation")
    with use_trace(trace):
        deployment = deploy_market(
            topology,
            clock=clock,
            asset_start=t0,
            asset_duration=3600,
            asset_bandwidth_kbps=10_000,
            interface_capacity_kbps=20_000,
            pricer=ScarcityPricer(),
            prf_factory=prf_factory,
            auction_interfaces={(bottleneck.ingress, True)},
        )
        # Posted listings for the window everywhere except the auctioned
        # bottleneck ingress.
        for crossing in crossings:
            service = deployment.service(crossing.isd_as)
            for interface, is_ingress in (
                (crossing.ingress, True),
                (crossing.egress, False),
            ):
                if crossing is bottleneck and is_ingress:
                    continue
                service.issue_and_list(
                    deployment.marketplace, interface, is_ingress,
                    10_000, *window, 50,
                )
        auctioneer = deployment.service(bottleneck.isd_as)
        opened = auctioneer.open_auction(
            deployment.marketplace, bottleneck.ingress, True,
            bid_kbps, *window, 50,
        )
        if not opened.effects.ok:  # pragma: no cover - deploy is deterministic
            raise RuntimeError(f"traced auction failed: {opened.effects.error}")
        auction_id = next(iter(auctioneer.open_auctions))
        # Two sealed bids for one slot: the winner pays the loser's price.
        winner = deployment.new_host(name="traced-winner")
        rival = deployment.new_host(name="traced-rival")
        winner.acquire(
            deployment.marketplace, bottleneck.isd_as, bottleneck.ingress,
            True, *window, bid_kbps, max_price_mist=9_000,
        )
        rival.place_bid(deployment.marketplace, auction_id, bid_kbps, 300)
        clock.set(float(window[0]))
        auctioneer.settle_due_auctions()
        settlement = winner.await_settle(deployment.marketplace, auction_id)
        rival.await_settle(deployment.marketplace, auction_id)
        if settlement is None or not settlement.won:  # pragma: no cover
            raise RuntimeError("traced bidder should have won the auction")
        egress_buy = winner.acquire(
            deployment.marketplace, bottleneck.isd_as, bottleneck.egress,
            False, *window, bid_kbps, max_price_mist=10_000_000,
        )
        winner.redeem_pair(
            settlement.assets[0],
            egress_buy.submitted.effects.returns[0]["asset"],
        )
        deliveries = auctioneer.poll_and_deliver()
        bottleneck_reservations = winner.collect_reservations()
        res_id = deliveries[0].res_id if deliveries else 0
        # Posted purchases cover the rest of the path.
        other = purchase_path(
            deployment,
            winner,
            [crossing for crossing in crossings if crossing is not bottleneck],
            start=window[0],
            expiry=window[1],
            bandwidth_kbps=bid_kbps,
        )
        reservations = bottleneck_reservations + other.reservations
        # Data plane: the traced reservation crosses the bottleneck under
        # a 2x flood; the policer's usage array is the final verdict.
        simulation = build_path_simulation(
            topology,
            path,
            start_time=float(window[0]) + 0.1,
            prf_factory=prf_factory,
        )
        victim_metrics = simulation.sink.flow(1)
        victim = CbrSource(
            simulation.loop,
            simulation.hummingbird_source(reservations),
            simulation.entry,
            victim_metrics,
            rate_bps=1_500_000.0,
            payload_bytes=1000,
            flow_id=1,
        )
        flood = FloodSource(
            simulation.loop,
            simulation.best_effort_source(),
            simulation.entry,
            simulation.sink.flow(2),
            rate_bps=20_000_000.0,
            payload_bytes=1000,
            flow_id=2,
        )
        victim.start(0.0)
        flood.start(0.05)
        simulation.loop.run_until(simulation.clock.now() + 0.5)
        victim.stop()
        flood.stop()
        policer = simulation.nodes[bottleneck.isd_as].router.policer
        policer.record_gauges(str(bottleneck.isd_as))
        trace.event(
            "policer.verdict",
            isd_as=str(bottleneck.isd_as),
            ingress=bottleneck.ingress,
            res_id=res_id,
            priority_bytes=policer.usage_bytes(bottleneck.ingress, res_id),
            goodput_mbps=victim_metrics.summary()["goodput_mbps"],
        )


@dataclass
class PathBuyerOutcome:
    """One buyer's fate in :func:`path_contention_experiment`."""

    buyer: str
    requested_kbps: int
    admitted: bool
    failed_hop: int | None
    reason: str


@dataclass
class PathContentionResult:
    """Outcome of :func:`path_contention_experiment`.

    ``rollback_restores_state`` is the atomicity verdict: after a screen
    rejected mid-path *and* a commit whose per-hop effect hook failed
    mid-path, every hop's calendars fingerprinted byte-identical to the
    pre-probe state.  ``escrow_conserved`` checks the ledger companion's
    combinatorial settlement: awards plus refunds equal the escrows taken.
    """

    buyers: list[PathBuyerOutcome]
    hop_names: list[str]
    hop_capacities_kbps: list[int]
    hop_peaks_kbps: list[int]
    hop_modes: list[str]
    rollback_restores_state: bool
    escrow_conserved: bool
    path_auction_winners: int

    @property
    def admitted(self) -> list[PathBuyerOutcome]:
        return [b for b in self.buyers if b.admitted]

    @property
    def rejected(self) -> list[PathBuyerOutcome]:
        return [b for b in self.buyers if not b.admitted]

    @property
    def oversold(self) -> bool:
        """Did any hop commit more than its physical capacity?"""
        return any(
            peak > capacity
            for peak, capacity in zip(self.hop_peaks_kbps, self.hop_capacities_kbps)
        )


def path_contention_experiment(
    topology: Topology,
    path: ForwardingPath,
    num_buyers: int = 8,
    per_buyer_kbps: int = 2000,
    window_seconds: int = 600,
    base_price_micromist: int = 50,
    seed: int = 1,
    engine=None,
    telemetry: ExperimentTelemetry | None = None,
) -> PathContentionResult:
    """Whole paths contend for a mid-path bottleneck, admitted atomically.

    Every buyer wants ``per_buyer_kbps`` across **all** hops of the path
    or nothing.  Each on-path AS runs a deliberately different admission
    stack — monolithic first-come-first-served posted pricing, a
    time-sharded proportional-share calendar (the capacity bottleneck),
    and an auction-mode interface with scarcity quotes — and
    :class:`~repro.pathadm.PathAdmission` coordinates them through the
    two-phase screen -> commit protocol: every hop checked and
    provisionally held, then committed all-or-nothing.

    The experiment then probes the failure paths directly: a screen that
    must die at the bottleneck and a commit whose per-hop effect hook
    raises mid-path, asserting (via calendar fingerprints) that rollback
    left every upstream hop byte-identical to never-touched.

    A ledger-backed companion runs the same path through the *on-chain*
    machinery — one combinatorial path auction over every leg, two
    competing escrowed path bids, all-or-nothing settlement, atomic
    path-wide redemption, per-AS sealed deliveries — checking that the
    settlement conserved escrow to the MIST.  With ``telemetry`` the whole
    lifecycle (screen -> per-hop admits -> commit -> settle -> redeem ->
    release) lands on a single trace id.
    """
    if telemetry is not None:
        with telemetry.activate():
            return _path_contention_experiment_impl(
                topology, path, num_buyers, per_buyer_kbps, window_seconds,
                base_price_micromist, seed, engine, telemetry,
            )
    return _path_contention_experiment_impl(
        topology, path, num_buyers, per_buyer_kbps, window_seconds,
        base_price_micromist, seed, engine, None,
    )


def _path_contention_experiment_impl(
    topology: Topology,
    path: ForwardingPath,
    num_buyers: int,
    per_buyer_kbps: int,
    window_seconds: int,
    base_price_micromist: int,
    seed: int,
    engine,
    telemetry: ExperimentTelemetry | None,
) -> PathContentionResult:
    from repro.admission import (
        ACTIVE,
        AdmissionController,
        FirstComeFirstServed,
        ProportionalShare,
        ScarcityPricer,
    )
    from repro.pathadm import (
        PathAdmission,
        PathCommitError,
        PathHop,
        controller_fingerprint,
    )

    crossings = as_crossings(path)
    if len(crossings) < 3:
        raise ValueError("path contention needs at least three on-path ASes")
    # Bottleneck sized so roughly half the buyers fit, plus headroom for
    # the small rollback probe; the other hops are never the constraint.
    slots = (num_buyers + 1) // 2
    probe_kbps = max(per_buyer_kbps // 2, 1)
    bottleneck_capacity = slots * per_buyer_kbps + probe_kbps
    wide_capacity = 2 * num_buyers * per_buyer_kbps
    # One allocation stack per AS: the heterogeneity the protocol must
    # coordinate without caring what runs behind each hop.
    configs = [
        ("posted/fcfs/monolithic", AdmissionController(
            wide_capacity, policy=FirstComeFirstServed(),
        )),
        ("posted/proportional/sharded", AdmissionController(
            bottleneck_capacity,
            policy=ProportionalShare(0.5),
            shard_seconds=float(window_seconds),
            engine=engine,  # the sharded hop is the one the backend can move
        )),
        ("auction/scarcity/monolithic", AdmissionController(
            wide_capacity, pricer=ScarcityPricer(), auction_interfaces=True,
        )),
    ]
    hops = []
    hop_modes = []
    for index, crossing in enumerate(crossings):
        mode, controller = configs[index % len(configs)]
        hop_modes.append(mode)
        hops.append(
            PathHop(
                name=str(crossing.isd_as),
                controller=controller,
                ingress_interface=crossing.ingress,
                egress_interface=crossing.egress,
            )
        )
    admission = PathAdmission(hops)

    start = 1_700_000_000
    window_end = start + window_seconds
    outcomes: list[PathBuyerOutcome] = []
    for index in range(num_buyers):
        buyer = f"buyer-{index}"
        trace = telemetry.trace(buyer) if telemetry and index == 0 else None
        with use_trace(trace):
            ticket = admission.screen(
                per_buyer_kbps, start, window_end, tag=buyer, layer=ACTIVE
            )
            if ticket.admitted:
                admission.commit(ticket)
        outcomes.append(
            PathBuyerOutcome(
                buyer=buyer,
                requested_kbps=per_buyer_kbps,
                admitted=ticket.admitted,
                failed_hop=ticket.failed_hop,
                reason=ticket.reason,
            )
        )

    # -- atomicity probes: both failure paths must be invisible afterwards --
    baseline = [controller_fingerprint(hop.controller) for hop in hops]
    rejected_probe = admission.screen(
        wide_capacity, start, window_end, tag="oversized-probe", layer=ACTIVE
    )
    restored_after_reject = (
        not rejected_probe.admitted
        and [controller_fingerprint(hop.controller) for hop in hops] == baseline
    )
    probe = admission.screen(
        probe_kbps, start, window_end, tag="commit-probe", layer=ACTIVE
    )
    restored_after_commit_fail = False
    if probe.admitted:
        fail_at = len(hops) - 1

        def failing_hook(index, hop, hold):
            if index == fail_at:
                raise RuntimeError("downstream settlement refused")

        try:
            admission.commit(probe, hook=failing_hook)
        except PathCommitError:
            restored_after_commit_fail = (
                [controller_fingerprint(hop.controller) for hop in hops]
                == baseline
            )

    hop_peaks = []
    for hop in hops:
        hop_peaks.append(
            int(
                max(
                    hop.controller.calendar(interface, is_ingress, ACTIVE)
                    .peak_commitment(start, window_end)
                    for interface, is_ingress in hop.claims
                )
            )
        )

    escrow_conserved, winners = _traced_path_lifecycle(
        telemetry, topology, crossings, per_buyer_kbps, base_price_micromist, seed
    )

    result = PathContentionResult(
        buyers=outcomes,
        hop_names=[hop.name for hop in hops],
        hop_capacities_kbps=[
            int(hop.controller.capacity_kbps(hop.ingress_interface, True))
            for hop in hops
        ],
        hop_peaks_kbps=hop_peaks,
        hop_modes=hop_modes,
        rollback_restores_state=(
            restored_after_reject and restored_after_commit_fail
        ),
        escrow_conserved=escrow_conserved,
        path_auction_winners=winners,
    )
    if telemetry is not None:
        for hop in hops:
            hop.controller.record_capacity_gauges(
                start, window_end, owner=f"path-hop-{hop.name}"
            )
        telemetry.annotate(
            path_contention={
                "hops": len(hops),
                "hop_modes": hop_modes,
                "admitted": len(result.admitted),
                "rejected": len(result.rejected),
                "oversold": result.oversold,
                "rollback_restores_state": result.rollback_restores_state,
                "escrow_conserved": result.escrow_conserved,
                "path_auction_winners": result.path_auction_winners,
            }
        )
    for _, controller in configs:
        controller.close()
    return result


def _traced_path_lifecycle(
    telemetry: ExperimentTelemetry | None,
    topology: Topology,
    crossings,
    bandwidth_kbps: int,
    base_price_micromist: int,
    seed: int,
) -> tuple[bool, int]:
    """One path reservation, one correlation id, the whole on-chain story.

    Every on-path AS contributes its two legs into a single combinatorial
    path auction; two hosts place escrowed path bids (the richer one via
    :meth:`~repro.controlplane.HostClient.acquire_path`); a path-wide
    screen -> commit holds every hop's calendar while the auction settles
    all-or-nothing and the winner redeems every (ingress, egress) pair in
    one atomic transaction; each AS admits and delivers its sealed
    reservation, after which the provisional path hold is released in
    favour of the delivered reservations.  Returns ``(escrow conserved,
    number of path winners)``.
    """
    from repro.admission import ACTIVE
    from repro.controlplane import (
        deploy_market,
        open_path_auction,
        settle_path_auction,
    )

    t0 = 1_700_000_000
    window = (t0 + 3600, t0 + 4200)
    duration = window[1] - window[0]
    clock = SimClock(float(t0))
    trace = telemetry.trace("traced-path") if telemetry else None
    with use_trace(trace):
        deployment = deploy_market(
            topology,
            clock=clock,
            seed=seed,
            asset_start=t0,
            asset_duration=3600,
            asset_bandwidth_kbps=4 * bandwidth_kbps,
            interface_capacity_kbps=8 * bandwidth_kbps,
        )
        handle = open_path_auction(
            deployment,
            crossings,
            *window,
            bandwidth_kbps=2 * bandwidth_kbps,
            base_price_micromist=base_price_micromist,
        )
        winner = deployment.new_host(name="path-winner")
        rival = deployment.new_host(name="path-rival")
        num_legs = 2 * len(crossings)
        escrow_cap = (
            -(-bandwidth_kbps * duration * 40 * base_price_micromist // 1_000_000)
            * num_legs
        )
        acquired = winner.acquire_path(
            deployment.marketplace,
            crossings,
            *window,
            bandwidth_kbps=bandwidth_kbps,
            max_price_mist=escrow_cap,
        )
        if acquired.mode != "path_bid":  # pragma: no cover - auction covers
            raise RuntimeError("path auction should have covered the spec")
        rival.place_path_bid(
            deployment.marketplace,
            handle.path_auction,
            2 * bandwidth_kbps,
            escrow_cap // 8,
        )
        # Path-wide provisional hold across every hop's live calendar,
        # kept through settlement and redemption, released once the
        # delivered reservations own the capacity.
        admission = deployment.path_admission(crossings)
        hold = admission.screen(
            bandwidth_kbps, *window, tag=winner.account.address, layer=ACTIVE
        )
        if not hold.admitted:  # pragma: no cover - capacity is ample
            raise RuntimeError(f"path hold rejected: {hold.reason}")
        admission.commit(hold)
        clock.set(float(window[0]))
        settle_path_auction(deployment, handle)
        settlement = winner.await_path_settle(
            deployment.marketplace, handle.path_auction
        )
        if settlement is None or not settlement.won:  # pragma: no cover
            raise RuntimeError("the funded path bid should have won")
        pairs = list(zip(settlement.assets[0::2], settlement.assets[1::2]))
        winner.redeem_path(pairs)
        for crossing in crossings:
            deployment.service(crossing.isd_as).poll_and_deliver()
        winner.collect_reservations()
        admission.rollback(hold)
        # Escrow conservation, straight from the event stream: everything
        # escrowed at bid time came back as awards plus refunds.
        placed = deployment.ledger.events_since(0, "PathBidPlaced")
        settled = deployment.ledger.events_since(0, "PathAuctionSettled")
        escrow_total = sum(event.payload["escrow_mist"] for event in placed)
        payload = settled[0].payload
        paid = sum(w["paid_mist"] for w in payload["winners"])
        refunds = sum(w["refund_mist"] for w in payload["winners"]) + sum(
            l["refund_mist"] for l in payload["losers"]
        )
        conserved = paid + refunds == escrow_total
        return conserved, len(payload["winners"])


def contention_experiment(
    topology: Topology,
    path: ForwardingPath,
    num_buyers: int = 8,
    per_buyer_kbps: int = 2000,
    link_rate_bps: float = 10_000_000.0,
    reservable_fraction: float = 0.8,
    duration: float = 1.5,
    payload_bytes: int = 1000,
    base_price_micromist: int = 50,
    seed: int = 1,
    prf_factory: PrfFactory = SIM_PRF,
    pricer=None,
    policy=None,
    shard_seconds: float | None = None,
    engine=None,
    telemetry: ExperimentTelemetry | None = None,
) -> ContentionResult:
    """Many buyers compete for one bottleneck interface's capacity.

    Each buyer asks the bottleneck AS to admit ``1.25 * per_buyer_kbps``
    (rate plus header overhead) against a capacity calendar sized to
    ``reservable_fraction`` of the bottleneck link.  Admitted buyers get a
    full-path reservation (distinct ResIDs) and send at ``per_buyer_kbps``
    with priority protection; rejected buyers *fall back to best effort*
    and fight over whatever the reserved traffic leaves behind.  Quoted
    prices rise with utilization when a scarcity pricer is installed
    (default), so the result doubles as a price-discovery trace.

    With ``telemetry`` the run collects admission counters/histograms,
    capacity gauges, and policer residency into the harness's registry
    (``telemetry.write(...)`` dumps them for
    ``tools/report_experiment.py``).
    """
    if telemetry is not None:
        with telemetry.activate():
            return _contention_experiment_impl(
                topology, path, num_buyers, per_buyer_kbps, link_rate_bps,
                reservable_fraction, duration, payload_bytes,
                base_price_micromist, seed, prf_factory, pricer, policy,
                shard_seconds, engine, telemetry,
            )
    return _contention_experiment_impl(
        topology, path, num_buyers, per_buyer_kbps, link_rate_bps,
        reservable_fraction, duration, payload_bytes, base_price_micromist,
        seed, prf_factory, pricer, policy, shard_seconds, engine, None,
    )


def _contention_experiment_impl(
    topology: Topology,
    path: ForwardingPath,
    num_buyers: int,
    per_buyer_kbps: int,
    link_rate_bps: float,
    reservable_fraction: float,
    duration: float,
    payload_bytes: int,
    base_price_micromist: int,
    seed: int,
    prf_factory: PrfFactory,
    pricer,
    policy,
    shard_seconds: float | None,
    engine,
    telemetry: ExperimentTelemetry | None,
) -> ContentionResult:
    from repro.admission import AdmissionController, ScarcityPricer

    simulation = build_path_simulation(
        topology, path, link_rate_bps=link_rate_bps, prf_factory=prf_factory
    )
    crossings = as_crossings(path)
    if len(crossings) < 2:
        raise ValueError("need at least one inter-AS link for a bottleneck")
    bottleneck = crossings[1]  # ingress side of the first inter-AS link
    capacity_kbps = int(link_rate_bps / 1000 * reservable_fraction)
    controller = AdmissionController(
        capacity_kbps,
        policy=policy,
        pricer=pricer if pricer is not None else ScarcityPricer(),
        shard_seconds=shard_seconds,
        engine=engine,
    )

    start = int(simulation.clock.now())
    reserve_kbps = int(per_buyer_kbps * 1.25)  # cover wire overhead
    window_end = start + int(duration) + 60
    rng = random.Random(seed)
    sources = []
    outcomes: list[BuyerOutcome] = []
    flow_metrics: list[FlowMetrics] = []
    for index in range(num_buyers):
        buyer = f"buyer-{index}"
        quote = controller.quote(
            base_price_micromist, bottleneck.ingress, True, start, window_end
        )
        # Trace buyer-0's lifecycle end to end (admission through policer).
        trace = telemetry.trace(buyer) if telemetry and index == 0 else None
        with use_trace(trace):
            decision = controller.admit_reservation(
                bottleneck.ingress, True, reserve_kbps, start, window_end, tag=buyer
            )
        if decision.admitted:
            reservations = simulation.grant_full_path(
                reserve_kbps, start, int(duration) + 60, res_id=index
            )
            builder = simulation.hummingbird_source(reservations)
        else:
            builder = simulation.best_effort_source()
        metrics = simulation.sink.flow(index + 1)
        flow_metrics.append(metrics)
        source = CbrSource(
            simulation.loop,
            builder,
            simulation.entry,
            metrics,
            rate_bps=per_buyer_kbps * 1000.0,
            payload_bytes=payload_bytes,
            flow_id=index + 1,
            jitter=0.05,
            rng=rng,
        )
        sources.append(source)
        source.start(0.01 * index)  # slight stagger, arrival order = index order
        outcomes.append(
            BuyerOutcome(
                buyer=buyer,
                requested_kbps=reserve_kbps,
                admitted=decision.admitted,
                quoted_price_micromist=quote,
                reason=decision.reason,
                metrics={},
            )
        )

    simulation.loop.run_until(simulation.clock.now() + duration)
    for source in sources:
        source.stop()
    for outcome, metrics in zip(outcomes, flow_metrics):
        outcome.metrics = metrics.summary()

    link = simulation.links[0]
    result = ContentionResult(
        buyers=outcomes,
        capacity_kbps=capacity_kbps,
        bottleneck_utilization=link.utilization(duration),
    )
    if telemetry is not None:
        controller.record_capacity_gauges(start, window_end, owner="bottleneck-as")
        router = simulation.nodes[bottleneck.isd_as].router
        router.policer.record_gauges(str(bottleneck.isd_as))
        if telemetry.traces and telemetry.traces[0].name == "buyer-0":
            telemetry.traces[0].event(
                "policer.verdict",
                isd_as=str(bottleneck.isd_as),
                ingress=bottleneck.ingress,
                res_id=0,
                priority_bytes=router.policer.usage_bytes(bottleneck.ingress, 0),
            )
        telemetry.annotate(
            contention={
                "capacity_kbps": capacity_kbps,
                "admitted": len(result.admitted),
                "rejected": len(result.rejected),
                "bottleneck_utilization": result.bottleneck_utilization,
                "revenue_proxy_micromist": sum(
                    b.quoted_price_micromist for b in result.admitted
                ),
            }
        )
    controller.close()
    return result


@dataclass
class ReclaimBuyerOutcome:
    """One buyer of :func:`reclamation_experiment`."""

    buyer: str
    kind: str  # "honest" | "no-show" | "late"
    reserved: bool
    admitted_at: float | None
    quoted_price_micromist: int
    reason: str
    metrics: dict


@dataclass
class ReclamationArmResult:
    """One policy arm of :func:`reclamation_experiment`."""

    arm: str
    capacity_kbps: int
    buyers: list[ReclaimBuyerOutcome]
    revenue_mist: int
    reserved_goodput_bps: float
    honest_demotions: int
    reclaim_events: int
    reclaimed_kbps: int
    false_reclaims: int
    live_factor: float
    bottleneck_utilization: float

    # revenue_mist sums ceil(units * quote / 1e6) over every admission —
    # the exact MIST a posted-price sale of each admitted rectangle earns.

    @property
    def reserved_buyers(self) -> list[ReclaimBuyerOutcome]:
        return [buyer for buyer in self.buyers if buyer.reserved]


@dataclass
class ReclamationResult:
    """All arms of :func:`reclamation_experiment`, keyed by arm name."""

    arms: dict

    def arm(self, name: str) -> ReclamationArmResult:
        return self.arms[name]


def reclamation_experiment(
    topology: Topology,
    path: ForwardingPath,
    num_buyers: int = 8,
    num_no_shows: int = 4,
    num_late: int = 4,
    per_buyer_kbps: int = 1000,
    link_rate_bps: float = 10_000_000.0,
    reservable_fraction: float = 1.0,
    duration: float = 3.0,
    payload_bytes: int = 1000,
    base_price_micromist: int = 50,
    static_factor: float = 1.25,
    max_factor: float = 3.0,
    grace_seconds: float = 0.4,
    scan_interval: float = 0.25,
    no_show_threshold: float = 0.5,
    seed: int = 1,
    prf_factory: PrfFactory = SIM_PRF,
    pricer=None,
    telemetry: ExperimentTelemetry | None = None,
) -> ReclamationResult:
    """The closed control loop vs an open one, on an overbooked bottleneck.

    Three arms share one scenario: ``num_buyers`` early buyers reserve the
    whole bottleneck, but ``num_no_shows`` of them never send a packet;
    ``num_late`` more buyers arrive wanting the same window.

    * ``"none"`` — no overbooking: the no-shows' bandwidth stays parked,
      late buyers are rejected to best effort.
    * ``"static"`` — a fixed overbooking factor admits some late buyers up
      front, but nothing ever reclaims the no-shows.
    * ``"adaptive"`` — :class:`~repro.reclaim.AdaptiveOverbooking` plus a
      policer-fed :class:`~repro.reclaim.ReclamationEngine`: no-shows are
      detected from observed usage, their calendar bandwidth is reclaimed
      and demoted at the policer, the freed capacity admits the waiting
      buyers mid-run, and the overbooking factor converges on the
      observed show-up rate.

    The closed loop must dominate: at least the revenue and at least the
    reserved-traffic goodput of both open arms, with zero policer
    demotions of honest traffic (``tests/netsim/test_reclamation.py``
    asserts all three).
    """
    if telemetry is not None:
        with telemetry.activate():
            return _reclamation_experiment_impl(
                topology, path, num_buyers, num_no_shows, num_late,
                per_buyer_kbps, link_rate_bps, reservable_fraction, duration,
                payload_bytes, base_price_micromist, static_factor,
                max_factor, grace_seconds, scan_interval, no_show_threshold,
                seed, prf_factory, pricer, telemetry,
            )
    return _reclamation_experiment_impl(
        topology, path, num_buyers, num_no_shows, num_late, per_buyer_kbps,
        link_rate_bps, reservable_fraction, duration, payload_bytes,
        base_price_micromist, static_factor, max_factor, grace_seconds,
        scan_interval, no_show_threshold, seed, prf_factory, pricer, None,
    )


def _reclamation_experiment_impl(
    topology: Topology,
    path: ForwardingPath,
    num_buyers: int,
    num_no_shows: int,
    num_late: int,
    per_buyer_kbps: int,
    link_rate_bps: float,
    reservable_fraction: float,
    duration: float,
    payload_bytes: int,
    base_price_micromist: int,
    static_factor: float,
    max_factor: float,
    grace_seconds: float,
    scan_interval: float,
    no_show_threshold: float,
    seed: int,
    prf_factory: PrfFactory,
    pricer,
    telemetry: ExperimentTelemetry | None,
) -> ReclamationResult:
    from repro.admission.policy import FirstComeFirstServed, OverbookingPolicy
    from repro.reclaim import AdaptiveOverbooking

    if num_no_shows > num_buyers:
        raise ValueError("cannot have more no-shows than buyers")
    arms = {}
    for arm, policy, reclaim in (
        ("none", FirstComeFirstServed(), False),
        ("static", OverbookingPolicy(static_factor), False),
        (
            "adaptive",
            AdaptiveOverbooking(initial_factor=1.0, max_factor=max_factor),
            True,
        ),
    ):
        arms[arm] = _reclamation_arm(
            arm, policy, reclaim, topology, path, num_buyers, num_no_shows,
            num_late, per_buyer_kbps, link_rate_bps, reservable_fraction,
            duration, payload_bytes, base_price_micromist, grace_seconds,
            scan_interval, no_show_threshold, seed, prf_factory, pricer,
        )
    result = ReclamationResult(arms=arms)
    if telemetry is not None:
        telemetry.annotate(
            reclamation={
                arm: {
                    "revenue_mist": outcome.revenue_mist,
                    "reserved_goodput_mbps": round(
                        outcome.reserved_goodput_bps / 1e6, 3
                    ),
                    "reserved_buyers": len(outcome.reserved_buyers),
                    "honest_demotions": outcome.honest_demotions,
                    "reclaim_events": outcome.reclaim_events,
                    "reclaimed_kbps": outcome.reclaimed_kbps,
                    "false_reclaims": outcome.false_reclaims,
                    "live_factor": round(outcome.live_factor, 3),
                    "bottleneck_utilization": outcome.bottleneck_utilization,
                }
                for arm, outcome in arms.items()
            }
        )
    return result


def _reclamation_arm(
    arm: str,
    policy,
    reclaim: bool,
    topology: Topology,
    path: ForwardingPath,
    num_buyers: int,
    num_no_shows: int,
    num_late: int,
    per_buyer_kbps: int,
    link_rate_bps: float,
    reservable_fraction: float,
    duration: float,
    payload_bytes: int,
    base_price_micromist: int,
    grace_seconds: float,
    scan_interval: float,
    no_show_threshold: float,
    seed: int,
    prf_factory: PrfFactory,
    pricer,
) -> ReclamationArmResult:
    from repro.admission import ACTIVE, AdmissionController
    from repro.reclaim import ReclamationEngine, UsageReporter

    simulation = build_path_simulation(
        topology, path, link_rate_bps=link_rate_bps, prf_factory=prf_factory
    )
    crossings = as_crossings(path)
    if len(crossings) < 2:
        raise ValueError("need at least one inter-AS link for a bottleneck")
    bottleneck = crossings[1]
    router = simulation.nodes[bottleneck.isd_as].router
    capacity_kbps = int(link_rate_bps / 1000 * reservable_fraction)
    # The default flat pricer keeps revenue proportional to volume sold,
    # so the arm comparison measures reclamation, not price spikes.
    controller = AdmissionController(capacity_kbps, policy=policy, pricer=pricer)
    engine = None
    if reclaim:
        engine = ReclamationEngine(
            controller,
            UsageReporter(router.policer.usage_snapshot, interval=scan_interval / 2),
            grace_seconds=grace_seconds,
            no_show_threshold=no_show_threshold,
            demote=router.policer.set_limit,
        )

    start = int(simulation.clock.now())
    reserve_kbps = int(per_buyer_kbps * 1.25)  # cover wire overhead
    window_end = start + int(duration) + 60
    rng = random.Random(seed)
    sources = []
    outcomes: list[ReclaimBuyerOutcome] = []
    flow_metrics: dict[str, FlowMetrics] = {}
    revenue = 0

    def admit(index: int, buyer: str, kind: str, now: float):
        """One admission attempt; on success the buyer sends with priority."""
        nonlocal revenue
        quote = controller.quote(
            base_price_micromist, bottleneck.ingress, True, int(now), window_end
        )
        decision = controller.admit_reservation(
            bottleneck.ingress, True, reserve_kbps, int(now), window_end, tag=buyer
        )
        if not decision.admitted:
            return None, quote, decision.reason
        units = reserve_kbps * (window_end - int(now))
        revenue += -(-units * quote // 1_000_000)  # ceil, as the contract prices
        if engine is not None:
            engine.track(
                index,
                bottleneck.ingress,
                reserve_kbps,
                now,
                start + duration,
                [(bottleneck.ingress, True, decision.commitment.commitment_id)],
                tag=buyer,
            )
        if kind != "no-show":
            reservations = simulation.grant_full_path(
                reserve_kbps, int(now), window_end - int(now), res_id=index
            )
            metrics = simulation.sink.flow(index + 1)
            flow_metrics[buyer] = metrics
            source = CbrSource(
                simulation.loop,
                builder := simulation.hummingbird_source(reservations),
                simulation.entry,
                metrics,
                rate_bps=per_buyer_kbps * 1000.0,
                payload_bytes=payload_bytes,
                flow_id=index + 1,
                jitter=0.05,
                rng=rng,
            )
            sources.append(source)
            source.start(0.005 * index)
        return decision, quote, decision.reason

    # Early buyers: the first num_no_shows never send a packet.
    for index in range(num_buyers):
        kind = "no-show" if index < num_no_shows else "honest"
        buyer = f"{kind}-{index}"
        decision, quote, reason = admit(index, buyer, kind, simulation.clock.now())
        outcomes.append(
            ReclaimBuyerOutcome(
                buyer=buyer,
                kind=kind,
                reserved=decision is not None,
                admitted_at=simulation.clock.now() if decision else None,
                quoted_price_micromist=quote,
                reason=reason,
                metrics={},
            )
        )

    # Late buyers: admitted now if the policy has room, retried at every
    # scan otherwise; a buyer still waiting at the end falls back to best
    # effort for the whole run (accounted as unreserved).
    waiting: list[tuple[int, ReclaimBuyerOutcome]] = []
    for offset in range(num_late):
        index = num_buyers + offset
        buyer = f"late-{index}"
        decision, quote, reason = admit(index, buyer, "late", simulation.clock.now())
        outcome = ReclaimBuyerOutcome(
            buyer=buyer,
            kind="late",
            reserved=decision is not None,
            admitted_at=simulation.clock.now() if decision else None,
            quoted_price_micromist=quote,
            reason=reason,
            metrics={},
        )
        outcomes.append(outcome)
        if decision is None:
            waiting.append((index, outcome))

    end_time = simulation.clock.now() + duration
    next_scan = simulation.clock.now() + scan_interval
    while simulation.clock.now() < end_time:
        simulation.loop.run_until(min(next_scan, end_time))
        next_scan += scan_interval
        now = simulation.clock.now()
        if engine is not None:
            engine.scan(now)
        if now >= end_time:
            break
        still_waiting = []
        for index, outcome in waiting:
            decision, quote, reason = admit(index, outcome.buyer, "late", now)
            if decision is not None:
                outcome.reserved = True
                outcome.admitted_at = now
                outcome.quoted_price_micromist = quote
                outcome.reason = reason
            else:
                still_waiting.append((index, outcome))
        waiting = still_waiting
    for source in sources:
        source.stop()

    for outcome in outcomes:
        metrics = flow_metrics.get(outcome.buyer)
        outcome.metrics = metrics.summary() if metrics is not None else {}
    reserved_goodput = sum(
        flow_metrics[outcome.buyer].goodput_bps(duration)
        for outcome in outcomes
        if outcome.reserved and outcome.buyer in flow_metrics
    )
    honest_demotions = (
        router.stats.demoted_overuse
        + router.stats.demoted_inactive
        + router.stats.demoted_stale
    )
    link = simulation.links[0]
    result = ReclamationArmResult(
        arm=arm,
        capacity_kbps=capacity_kbps,
        buyers=outcomes,
        revenue_mist=revenue,
        reserved_goodput_bps=reserved_goodput,
        honest_demotions=honest_demotions,
        reclaim_events=len(engine.events) if engine is not None else 0,
        reclaimed_kbps=sum(e.freed_kbps for e in engine.events) if engine else 0,
        false_reclaims=engine.false_reclaims if engine is not None else 0,
        live_factor=policy.limit_factor(
            controller.calendar(bottleneck.ingress, True, ACTIVE)
        )
        if hasattr(policy, "limit_factor")
        else 1.0,
        bottleneck_utilization=link.utilization(duration),
    )
    controller.close()
    return result
