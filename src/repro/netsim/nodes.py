"""Simulation nodes: border routers and host sinks.

A :class:`RouterNode` wraps a :class:`HummingbirdRouter` (which also
processes plain SCION packets) and forwards its verdicts onto per-interface
:class:`Link` objects — priority traffic into the priority queue, demoted
or best-effort traffic into the best-effort queue, drops into statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hummingbird.router import HummingbirdRouter
from repro.netsim.link import Link
from repro.netsim.metrics import FlowMetrics
from repro.scion.packet import ScionPacket
from repro.scion.router import Action


@dataclass
class SimPacket:
    """A packet in flight plus simulation metadata."""

    packet: ScionPacket
    flow_id: int
    sent_at: float
    size_bytes: int


class HostSink:
    """Destination host: records per-flow metrics."""

    def __init__(self, clock) -> None:
        self.clock = clock
        self.flows: dict[int, FlowMetrics] = {}

    def flow(self, flow_id: int) -> FlowMetrics:
        metrics = self.flows.get(flow_id)
        if metrics is None:
            metrics = FlowMetrics(flow_id)
            self.flows[flow_id] = metrics
        return metrics

    def deliver(self, sim_packet: SimPacket) -> None:
        self.flow(sim_packet.flow_id).record_received(
            sim_packet.size_bytes, sim_packet.sent_at, self.clock.now()
        )


class RouterNode:
    """One AS's border router inside the simulation."""

    def __init__(self, router: HummingbirdRouter) -> None:
        self.router = router
        # egress interface id -> (link, next node receive callback taking
        # (sim_packet, ingress_ifid at the neighbor))
        self._egress: dict[int, tuple[Link, "RouterNode | HostSink", int]] = {}
        self.local_sink: HostSink | None = None
        self.dropped = 0

    @property
    def isd_as(self):
        return self.router.autonomous_system.isd_as

    def connect(self, egress_ifid: int, link: Link, neighbor: "RouterNode", neighbor_ifid: int) -> None:
        self._egress[egress_ifid] = (link, neighbor, neighbor_ifid)

    def attach_sink(self, sink: HostSink) -> None:
        self.local_sink = sink

    def receive(self, sim_packet: SimPacket, ingress_ifid: int) -> None:
        decision = self.router.process(sim_packet.packet, ingress_ifid)
        if decision.action is Action.DROP:
            self.dropped += 1
            return
        if decision.action is Action.DELIVER:
            if self.local_sink is not None:
                self.local_sink.deliver(sim_packet)
            return
        connection = self._egress.get(decision.egress_ifid)
        if connection is None:
            self.dropped += 1
            return
        link, neighbor, neighbor_ifid = connection
        link.send(
            sim_packet,
            sim_packet.size_bytes,
            priority=decision.action is Action.FORWARD_PRIORITY,
            deliver=lambda item: neighbor.receive(item, neighbor_ifid),
        )

    def inject(self, sim_packet: SimPacket) -> None:
        """Entry point for packets originating inside this AS."""
        self.receive(sim_packet, ingress_ifid=0)
