"""Coin contract: the payment token of the bandwidth market.

Coins are owned objects with an integer MIST balance (1 SUI = 1e9 MIST).
The faucet ``mint`` stands in for acquiring SUI out of band; ``split``,
``merge`` and ``transfer`` mirror the standard coin operations the market
relies on.
"""

from __future__ import annotations

from repro.contracts.framework import CallContext, Contract
from repro.ledger.accounts import COIN_TYPE


class CoinContract(Contract):
    name = "coin"

    def mint(self, ctx: CallContext, amount: int) -> dict:
        """Faucet: create a coin with ``amount`` MIST owned by the sender."""
        ctx.require(amount > 0, "mint amount must be positive")
        coin = ctx.create_object(COIN_TYPE, {"balance": int(amount)})
        return {"coin": coin.object_id}

    def split(self, ctx: CallContext, coin: str, amount: int) -> dict:
        """Split ``amount`` MIST off into a new coin."""
        source = ctx.take_owned(coin, COIN_TYPE)
        ctx.require(0 < amount < source.payload["balance"], "invalid split amount")
        source.payload["balance"] -= amount
        ctx.mutate(source)
        piece = ctx.create_object(COIN_TYPE, {"balance": int(amount)})
        return {"coin": piece.object_id}

    def merge(self, ctx: CallContext, coin: str, other: str) -> dict:
        """Merge ``other`` into ``coin`` and delete it."""
        target = ctx.take_owned(coin, COIN_TYPE)
        source = ctx.take_owned(other, COIN_TYPE)
        target.payload["balance"] += source.payload["balance"]
        ctx.mutate(target)
        ctx.delete_object(source)
        return {"coin": target.object_id}

    def transfer(self, ctx: CallContext, coin: str, recipient: str) -> dict:
        """Send a whole coin to ``recipient``."""
        target = ctx.take_owned(coin, COIN_TYPE)
        ctx.transfer(target, recipient)
        return {"coin": target.object_id}


def coin_balance(ledger, owner: str) -> int:
    """Total MIST owned by ``owner`` (test/bench helper)."""
    return sum(
        obj.payload["balance"] for obj in ledger.objects_owned_by(owner, COIN_TYPE)
    )
