"""Smart contracts: coin, bandwidth asset, marketplace, and the runtime."""

from repro.contracts.asset import (
    ASSET_TYPE,
    DELIVERY_TYPE,
    REQUEST_TYPE,
    TOKEN_TYPE,
    AssetContract,
    asset_units,
)
from repro.contracts.coin import CoinContract, coin_balance
from repro.contracts.framework import CallContext, Contract, ContractAbort
from repro.contracts.market import (
    LISTING_TYPE,
    MARKETPLACE_TYPE,
    SELLER_CAP_TYPE,
    MarketContract,
)

__all__ = [
    "ASSET_TYPE",
    "DELIVERY_TYPE",
    "REQUEST_TYPE",
    "TOKEN_TYPE",
    "AssetContract",
    "asset_units",
    "CoinContract",
    "coin_balance",
    "CallContext",
    "Contract",
    "ContractAbort",
    "LISTING_TYPE",
    "MARKETPLACE_TYPE",
    "SELLER_CAP_TYPE",
    "MarketContract",
]
