"""The bandwidth-asset contract (§4.2): tradable reservation vouchers.

Bandwidth assets are on-chain objects representing reserved bandwidth on a
single AS interface (used as ingress *or* egress) over a time interval.
They are:

* **authenticated** — only ASes that registered with a CP-PKI proof of
  possession can issue assets, and the AS identity inside each asset comes
  from the authorization token, never from user input;
* **splittable** — in the time dimension (multiples of the AS-chosen time
  granularity) and the bandwidth dimension (not below the AS-chosen
  minimum bandwidth, which bounds the AS's policing state, §4.4);
* **fusable** — adjacent-time or same-interval assets recombine;
* **redeemable** — a compatible ingress/egress pair plus an ephemeral
  public key becomes a redeem request routed to the issuing AS, which
  answers with the sealed reservation data (``ResInfo``, :math:`A_K`).

Asset attributes follow §4.2 "Asset Representation" exactly; see
:data:`ASSET_TYPE` payload keys.
"""

from __future__ import annotations

from repro.contracts.framework import CallContext, Contract, ContractAbort
from repro.crypto.signatures import Signature, verify
from repro.ledger.objects import LedgerObject, Ownership

ASSET_TYPE = "asset::BandwidthAsset"
TOKEN_TYPE = "asset::AuthorizationToken"
REQUEST_TYPE = "asset::RedeemRequest"
DELIVERY_TYPE = "asset::EncryptedReservation"

# Payload keys of a BandwidthAsset (the attribute list of §4.2):
#   isd, asn            AS identifier (set from the authorization token)
#   issuer              AS on-chain address (redeem-request routing)
#   bandwidth_kbps      Bandwidth (-> BW on the data plane)
#   start, expiry       StrT and StrT + Dur
#   interface           AS interface identifier (-> In or Eg)
#   is_ingress          ingress/egress indicator
#   granularity         minimum reservation duration (seconds)
#   min_bandwidth_kbps  minimum reservation bandwidth


class AssetContract(Contract):
    """Issuance, splitting, fusing and redemption of bandwidth assets."""

    name = "asset"

    def __init__(self, pki) -> None:
        """``pki`` is a :class:`repro.controlplane.pki.CpPki` trust anchor."""
        self._pki = pki

    # -- AS registration -------------------------------------------------------

    def register_as(
        self,
        ctx: CallContext,
        certificate: dict,
        commitment: int,
        response: int,
    ) -> dict:
        """Verify an AS certificate + proof of possession; issue a token.

        The proof of possession is a Schnorr signature over the sender's
        address, which binds the AS key to the on-chain account and
        prevents replaying someone else's registration.
        """
        ctx.require(self._pki.verify_certificate(certificate), "invalid AS certificate")
        public_key = int.from_bytes(certificate["public_key"], "big")
        proof_ok = verify(
            public_key,
            ctx.sender.encode(),
            Signature(commitment=commitment, response=response),
        )
        ctx.require(proof_ok, "proof of possession failed")
        token = ctx.create_object(
            TOKEN_TYPE,
            {
                "isd": certificate["isd"],
                "asn": certificate["asn"],
                "as_address": ctx.sender,
            },
        )
        ctx.emit("AsRegistered", {"isd": certificate["isd"], "asn": certificate["asn"]})
        return {"token": token.object_id}

    # -- issuance ----------------------------------------------------------------

    def issue(
        self,
        ctx: CallContext,
        token: str,
        bandwidth_kbps: int,
        start: int,
        expiry: int,
        interface: int,
        is_ingress: bool,
        granularity: int,
        min_bandwidth_kbps: int,
    ) -> dict:
        """Issue a bandwidth asset; AS identity comes from the token."""
        auth = ctx.take_owned(token, TOKEN_TYPE)
        ctx.require(expiry > start, "expiry must exceed start")
        ctx.require(granularity > 0, "granularity must be positive")
        ctx.require(
            (expiry - start) % granularity == 0,
            "asset duration must be a multiple of the time granularity",
        )
        ctx.require(min_bandwidth_kbps > 0, "minimum bandwidth must be positive")
        ctx.require(
            bandwidth_kbps >= min_bandwidth_kbps,
            "asset bandwidth below the minimum bandwidth",
        )
        asset = ctx.create_object(
            ASSET_TYPE,
            {
                "isd": auth.payload["isd"],
                "asn": auth.payload["asn"],
                "issuer": auth.payload["as_address"],
                "bandwidth_kbps": int(bandwidth_kbps),
                "start": int(start),
                "expiry": int(expiry),
                "interface": int(interface),
                "is_ingress": bool(is_ingress),
                "granularity": int(granularity),
                "min_bandwidth_kbps": int(min_bandwidth_kbps),
            },
        )
        return {"asset": asset.object_id}

    # -- splitting & fusing ---------------------------------------------------

    def split_time(self, ctx: CallContext, asset: str, split_at: int) -> dict:
        """Split into [start, split_at) and [split_at, expiry)."""
        original = ctx.take_owned(asset, ASSET_TYPE)
        piece = split_time_inner(ctx, original, split_at, new_owner=ctx.sender)
        return {"first": original.object_id, "second": piece.object_id}

    def split_bandwidth(self, ctx: CallContext, asset: str, bandwidth_kbps: int) -> dict:
        """Split ``bandwidth_kbps`` off into a new asset (same interval)."""
        original = ctx.take_owned(asset, ASSET_TYPE)
        piece = split_bandwidth_inner(ctx, original, bandwidth_kbps, new_owner=ctx.sender)
        return {"first": original.object_id, "second": piece.object_id}

    def fuse_time(self, ctx: CallContext, first: str, second: str) -> dict:
        """Recombine two time-adjacent assets; the second is destroyed."""
        a = ctx.take_owned(first, ASSET_TYPE)
        b = ctx.take_owned(second, ASSET_TYPE)
        ctx.require(a.payload["expiry"] == b.payload["start"], "assets not adjacent in time")
        for key in ("isd", "asn", "interface", "is_ingress", "bandwidth_kbps"):
            ctx.require(a.payload[key] == b.payload[key], f"assets differ in {key}")
        a.payload["expiry"] = b.payload["expiry"]
        ctx.mutate(a)
        ctx.delete_object(b)
        return {"asset": a.object_id}

    def fuse_bandwidth(self, ctx: CallContext, first: str, second: str) -> dict:
        """Recombine two same-interval assets; bandwidths add up."""
        a = ctx.take_owned(first, ASSET_TYPE)
        b = ctx.take_owned(second, ASSET_TYPE)
        for key in ("isd", "asn", "interface", "is_ingress", "start", "expiry"):
            ctx.require(a.payload[key] == b.payload[key], f"assets differ in {key}")
        a.payload["bandwidth_kbps"] += b.payload["bandwidth_kbps"]
        ctx.mutate(a)
        ctx.delete_object(b)
        return {"asset": a.object_id}

    # -- redemption ---------------------------------------------------------------

    def redeem(self, ctx: CallContext, ingress: str, egress: str, public_key: bytes) -> dict:
        """Exchange a compatible asset pair for a redeem request (Fig. 2, step 5).

        The two assets are wrapped into the request (they leave the object
        store and can no longer be traded); the request is transferred to
        the issuing AS, which will answer with
        :meth:`deliver_reservation`.
        """
        ingress_asset = ctx.take_owned(ingress, ASSET_TYPE)
        egress_asset = ctx.take_owned(egress, ASSET_TYPE)
        ctx.require(ingress_asset.payload["is_ingress"], "first asset is not ingress")
        ctx.require(not egress_asset.payload["is_ingress"], "second asset is not egress")
        for key in ("isd", "asn", "issuer", "bandwidth_kbps", "start", "expiry"):
            ctx.require(
                ingress_asset.payload[key] == egress_asset.payload[key],
                f"assets incompatible in {key}",
            )
        duration = ingress_asset.payload["expiry"] - ingress_asset.payload["start"]
        ctx.require(
            duration < 1 << 16,
            "reservation duration exceeds the 16-bit ResDuration field; "
            "split the assets in time before redeeming",
        )
        request = ctx.create_object(
            REQUEST_TYPE,
            {
                "redeemer": ctx.sender,
                "public_key": bytes(public_key),
                "ingress": dict(ingress_asset.payload),
                "egress": dict(egress_asset.payload),
            },
            owner=ingress_asset.payload["issuer"],
        )
        ctx.delete_object(ingress_asset)
        ctx.delete_object(egress_asset)
        ctx.emit(
            "RedeemRequested",
            {
                "request": request.object_id,
                "isd": ingress_asset.payload["isd"],
                "asn": ingress_asset.payload["asn"],
            },
        )
        return {"request": request.object_id}

    def deliver_reservation(
        self,
        ctx: CallContext,
        request: str,
        kem_share: bytes,
        ciphertext: bytes,
        tag: bytes,
    ) -> dict:
        """AS answer (Fig. 2, steps 7-8): sealed reservation to the redeemer.

        Destroys the redeem request (and with it the wrapped assets), so the
        voucher cannot be redeemed or traded again.
        """
        req = ctx.take_owned(request, REQUEST_TYPE)  # sender must be the issuer
        delivery = ctx.create_object(
            DELIVERY_TYPE,
            {
                "kem_share": bytes(kem_share),
                "ciphertext": bytes(ciphertext),
                "tag": bytes(tag),
            },
            owner=req.payload["redeemer"],
        )
        redeemer = req.payload["redeemer"]
        ctx.delete_object(req)
        ctx.emit("ReservationDelivered", {"delivery": delivery.object_id, "redeemer": redeemer})
        return {"delivery": delivery.object_id}


# ---------------------------------------------------------------------------
# Split helpers shared with the market contract (which splits listed assets
# it owns on behalf of buyers).
# ---------------------------------------------------------------------------


def split_time_inner(
    ctx: CallContext, original: LedgerObject, split_at: int, new_owner: str
) -> LedgerObject:
    payload = original.payload
    if not payload["start"] < split_at < payload["expiry"]:
        raise ContractAbort("split point outside the asset interval")
    granularity = payload["granularity"]
    if (split_at - payload["start"]) % granularity or (payload["expiry"] - split_at) % granularity:
        raise ContractAbort("split pieces must be multiples of the time granularity")
    piece_payload = dict(payload)
    piece_payload["start"] = int(split_at)
    payload["expiry"] = int(split_at)
    ctx.mutate(original)
    piece = ctx.create_object(ASSET_TYPE, piece_payload, owner=new_owner)
    return piece


def split_bandwidth_inner(
    ctx: CallContext, original: LedgerObject, bandwidth_kbps: int, new_owner: str
) -> LedgerObject:
    payload = original.payload
    minimum = payload["min_bandwidth_kbps"]
    remainder = payload["bandwidth_kbps"] - bandwidth_kbps
    if bandwidth_kbps < minimum:
        raise ContractAbort("split bandwidth below the minimum bandwidth")
    if remainder < minimum:
        raise ContractAbort("remaining bandwidth below the minimum bandwidth")
    piece_payload = dict(payload)
    piece_payload["bandwidth_kbps"] = int(bandwidth_kbps)
    payload["bandwidth_kbps"] = int(remainder)
    ctx.mutate(original)
    piece = ctx.create_object(ASSET_TYPE, piece_payload, owner=new_owner)
    return piece


def asset_units(payload: dict) -> int:
    """Pricing unit of an asset: kbps-seconds of reserved bandwidth."""
    return payload["bandwidth_kbps"] * (payload["expiry"] - payload["start"])
