"""The marketplace contract: decentralized trading of bandwidth assets.

The marketplace is a *shared* object (anyone may interact with it, which is
why purchases go through consensus, §6.1).  ASes list assets at a posted
price; buyers purchase any sub-rectangle (time × bandwidth) of a listing,
and the contract splits the asset accordingly — the remainders stay listed.

Prices are linear in reserved volume: ``price_micromist_per_unit`` is the
posted price per kbps-second, so a purchase costs::

    ceil(units(bw, duration) * price / 1e6)  MIST

Payment flows buyer-coin -> seller-coin inside the same transaction, so an
atomic multi-hop purchase either pays every AS or nobody (C1/atomicity).

Every listing state change emits an event carrying the full listing
snapshot — ``Listed`` (new listing), ``Relisted`` (a sale remainder kept
on the market under a fresh listing), ``Delisted`` (seller cancel),
``Sold`` (with ``listing_closed`` or the surviving listing's ``remaining``
rectangle), and ``Reclaimed`` (the provenance marker preceding a listing
whose supply was reclaimed from a no-show reservation) — so an off-chain
:class:`~repro.marketdata.MarketIndexer` can track the market
incrementally and never needs to rescan the object store.

Beyond posted-price listings, the contract runs **sealed-bid uniform-price
auctions** per asset window (``create_auction`` / ``place_bid`` /
``settle_auction``).  Bids escrow their maximum payment at placement;
settlement re-runs :func:`repro.admission.auction.uniform_price_clearing`
on-chain — the exact function the AS-side admission layer uses — carves
the asset for every winner, pays the seller at the single clearing price,
and refunds every loser (and every winner's escrow surplus) *inside the
same transaction*, so either the whole settlement lands or no money moves.
Unawarded bandwidth reverts to a posted listing at the reserve price.
The protocol is specified in ``docs/auctions.md``.

For whole inter-domain paths the contract additionally runs
**combinatorial path auctions** (``create_path_auction`` /
``contribute_path_leg`` / ``place_path_bid`` / ``settle_path_auction``):
every AS on the path contributes one leg asset into custody, a bidder
escrows **one** payment covering every leg, and settlement runs
:func:`repro.pathadm.auction.combinatorial_path_clearing` — all legs or
none per bid — carving every leg asset for every winner, paying each leg
seller its own proceeds, and refunding losers (and winners' surplus) in
the same transaction.  Settlement conserves escrow exactly:
``sum(paid) + sum(refunds) == sum(escrows)``.  The lifecycle is
specified in ``docs/paths.md``.
"""

from __future__ import annotations

from repro.admission.auction import Bid, uniform_price_clearing
from repro.contracts.asset import (
    ASSET_TYPE,
    asset_units,
    split_bandwidth_inner,
    split_time_inner,
)
from repro.contracts.framework import CallContext, Contract
from repro.ledger.accounts import COIN_TYPE
from repro.ledger.objects import Ownership
from repro.pathadm.auction import (
    LegSupply,
    PathBid,
    combinatorial_path_clearing,
    path_escrow_mist,
)

MARKETPLACE_TYPE = "market::Marketplace"
LISTING_TYPE = "market::Listing"
SELLER_CAP_TYPE = "market::SellerCap"
AUCTION_TYPE = "market::Auction"
BID_TYPE = "market::Bid"
PATH_AUCTION_TYPE = "market::PathAuction"
PATH_BID_TYPE = "market::PathBid"

MICROMIST = 1_000_000


class MarketContract(Contract):
    name = "market"

    # -- setup ----------------------------------------------------------------

    def create_marketplace(self, ctx: CallContext) -> dict:
        marketplace = ctx.create_object(
            MARKETPLACE_TYPE,
            {"creator": ctx.sender, "sellers": {}, "listing_count": 0},
            ownership=Ownership.SHARED,
        )
        return {"marketplace": marketplace.object_id}

    def register_seller(self, ctx: CallContext, marketplace: str) -> dict:
        """Register the sender as a seller; returns a capability object."""
        market = ctx.take_shared(marketplace, MARKETPLACE_TYPE)
        ctx.require(
            ctx.sender not in market.payload["sellers"], "seller already registered"
        )
        market.payload["sellers"][ctx.sender] = True
        ctx.mutate(market)
        cap = ctx.create_object(SELLER_CAP_TYPE, {"marketplace": marketplace})
        return {"cap": cap.object_id}

    # -- listing ----------------------------------------------------------------

    def create_listing(
        self,
        ctx: CallContext,
        marketplace: str,
        asset: str,
        price_micromist_per_unit: int,
        provenance: dict | None = None,
    ) -> dict:
        """List an asset for sale; the marketplace takes custody of it.

        ``provenance`` marks a listing whose bandwidth was *reclaimed*
        from a no-show reservation (``{"res_id", "original_holder",
        "reclaimed_kbps", ...}``): a ``Reclaimed`` event carrying the
        listing snapshot plus the provenance lands immediately before the
        ``Listed`` event, so an off-chain indexer can attribute the
        supply without reading the object store.  The seller is the
        listing AS either way — a later sale pays the AS, never the
        original holder (whose asset the reclamation did not touch).
        """
        market = ctx.take_shared(marketplace, MARKETPLACE_TYPE)
        ctx.require(ctx.sender in market.payload["sellers"], "seller not registered")
        ctx.require(price_micromist_per_unit > 0, "price must be positive")
        asset_object = ctx.take_owned(asset, ASSET_TYPE)
        ctx.transfer(asset_object, marketplace)
        listing = ctx.create_object(
            LISTING_TYPE,
            {
                "marketplace": marketplace,
                "asset": asset,
                "seller": ctx.sender,
                "price_micromist_per_unit": int(price_micromist_per_unit),
            },
            owner=marketplace,
        )
        market.payload["listing_count"] += 1
        ctx.mutate(market)
        if provenance is not None:
            ctx.emit(
                "Reclaimed",
                {**_listing_snapshot(listing, asset_object), "provenance": dict(provenance)},
            )
        ctx.emit("Listed", _listing_snapshot(listing, asset_object))
        return {"listing": listing.object_id}

    def cancel_listing(self, ctx: CallContext, marketplace: str, listing: str) -> dict:
        """Seller takes an unsold asset back off the market."""
        market = ctx.take_shared(marketplace, MARKETPLACE_TYPE)
        listing_object = ctx.take_owned(listing, LISTING_TYPE, owner=marketplace)
        ctx.require(listing_object.payload["seller"] == ctx.sender, "not the seller")
        asset_object = ctx.take_owned(
            listing_object.payload["asset"], ASSET_TYPE, owner=marketplace
        )
        ctx.transfer(asset_object, ctx.sender)
        ctx.delete_object(listing_object)
        market.payload["listing_count"] -= 1
        ctx.mutate(market)
        ctx.emit(
            "Delisted",
            {
                "marketplace": marketplace,
                "listing": listing,
                "asset": asset_object.object_id,
            },
        )
        return {"asset": asset_object.object_id}

    # -- buying -------------------------------------------------------------------

    def buy(
        self,
        ctx: CallContext,
        marketplace: str,
        listing: str,
        start: int,
        expiry: int,
        bandwidth_kbps: int,
        payment: str,
    ) -> dict:
        """Buy a (time × bandwidth) sub-rectangle of a listed asset.

        Splits the listed asset as needed (worst case: two time splits plus
        one bandwidth split); remainders are re-listed at the same unit
        price.  The bought piece transfers to the buyer, the payment to the
        seller.
        """
        market = ctx.take_shared(marketplace, MARKETPLACE_TYPE)
        listing_object = ctx.take_owned(listing, LISTING_TYPE, owner=marketplace)
        asset_object = ctx.take_owned(
            listing_object.payload["asset"], ASSET_TYPE, owner=marketplace
        )
        payload = asset_object.payload
        ctx.require(
            payload["start"] <= start < expiry <= payload["expiry"],
            "requested interval outside the listed asset",
        )
        ctx.require(
            0 < bandwidth_kbps <= payload["bandwidth_kbps"],
            "requested bandwidth exceeds the listed asset",
        )

        # `target` is the piece being carved towards the purchase.  The
        # original asset stays bound to the original listing as long as it
        # keeps a remainder; every other remainder gets a fresh listing.
        target = asset_object
        if start > payload["start"]:
            # Head remainder [asset.start, start) stays with the original
            # asset (and its listing); the returned piece continues.
            target = split_time_inner(ctx, target, start, new_owner=marketplace)
        if expiry < target.payload["expiry"]:
            # split keeps [*, expiry) in `target`, returns the tail.
            tail = split_time_inner(ctx, target, expiry, new_owner=marketplace)
            self._relist(ctx, market, listing_object, tail)
        if bandwidth_kbps < target.payload["bandwidth_kbps"]:
            bought = split_bandwidth_inner(
                ctx, target, bandwidth_kbps, new_owner=marketplace
            )
            # `target` keeps the bandwidth remainder.
            if target.object_id != asset_object.object_id:
                self._relist(ctx, market, listing_object, target)
        else:
            bought = target

        if bought.object_id == asset_object.object_id:
            # The purchase consumed the original asset: the listing dies.
            ctx.delete_object(listing_object)
            market.payload["listing_count"] -= 1

        # Pricing and payment (ceil division).
        unit_price = listing_object.payload["price_micromist_per_unit"]
        price_mist = -(-asset_units(bought.payload) * unit_price // MICROMIST)
        coin = ctx.take_owned(payment, COIN_TYPE)
        ctx.require(coin.payload["balance"] >= price_mist, "insufficient payment")
        coin.payload["balance"] -= price_mist
        ctx.mutate(coin)
        ctx.create_object(
            COIN_TYPE,
            {"balance": int(price_mist)},
            owner=listing_object.payload["seller"],
        )

        ctx.transfer(bought, ctx.sender)
        ctx.mutate(market)
        listing_closed = bought.object_id == asset_object.object_id
        ctx.emit(
            "Sold",
            {
                "marketplace": marketplace,
                "listing": listing,
                "asset": bought.object_id,
                "price_mist": int(price_mist),
                "buyer": ctx.sender,
                "listing_closed": listing_closed,
                # The rectangle the original listing keeps (its asset was
                # mutated by the splits above) — what an indexer needs to
                # shrink the listing without reading the object store.
                "remaining": None
                if listing_closed
                else {
                    "bandwidth_kbps": asset_object.payload["bandwidth_kbps"],
                    "start": asset_object.payload["start"],
                    "expiry": asset_object.payload["expiry"],
                },
            },
        )
        return {"asset": bought.object_id, "price_mist": int(price_mist)}

    # -- auctions -----------------------------------------------------------------

    def create_auction(
        self,
        ctx: CallContext,
        marketplace: str,
        asset: str,
        reserve_micromist_per_unit: int,
        share_cap_kbps: int | None = None,
    ) -> dict:
        """Open a sealed-bid uniform-price auction for a whole asset window.

        The marketplace takes custody of the asset (exactly like a
        listing); bids arrive via :meth:`place_bid` and the seller closes
        the book with :meth:`settle_auction`.  ``reserve_micromist_per_unit``
        floors the clearing price (the AS seeds it with the
        scarcity-adjusted posted quote) and ``share_cap_kbps`` optionally
        caps any single bidder's total award (the proportional-share rule).
        """
        market = ctx.take_shared(marketplace, MARKETPLACE_TYPE)
        ctx.require(ctx.sender in market.payload["sellers"], "seller not registered")
        ctx.require(reserve_micromist_per_unit > 0, "reserve price must be positive")
        ctx.require(
            share_cap_kbps is None or share_cap_kbps > 0,
            "share cap must be positive when given",
        )
        asset_object = ctx.take_owned(asset, ASSET_TYPE)
        ctx.transfer(asset_object, marketplace)
        auction = ctx.create_object(
            AUCTION_TYPE,
            {
                "marketplace": marketplace,
                "asset": asset,
                "seller": ctx.sender,
                "reserve_micromist_per_unit": int(reserve_micromist_per_unit),
                "share_cap_kbps": None if share_cap_kbps is None else int(share_cap_kbps),
                "bids": [],
            },
            owner=marketplace,
        )
        payload = asset_object.payload
        ctx.emit(
            "AuctionOpened",
            {
                "marketplace": marketplace,
                "auction": auction.object_id,
                "asset": asset,
                "seller": ctx.sender,
                "reserve_micromist_per_unit": int(reserve_micromist_per_unit),
                "share_cap_kbps": None if share_cap_kbps is None else int(share_cap_kbps),
                "isd": payload["isd"],
                "asn": payload["asn"],
                "interface": payload["interface"],
                "is_ingress": payload["is_ingress"],
                "bandwidth_kbps": payload["bandwidth_kbps"],
                "start": payload["start"],
                "expiry": payload["expiry"],
                "granularity": payload["granularity"],
                "min_bandwidth_kbps": payload["min_bandwidth_kbps"],
            },
        )
        return {"auction": auction.object_id}

    def place_bid(
        self,
        ctx: CallContext,
        marketplace: str,
        auction: str,
        bandwidth_kbps: int,
        price_micromist_per_unit: int,
        payment: str,
    ) -> dict:
        """Place one sealed bid, escrowing the maximum payment.

        The escrow is ``ceil(bandwidth * duration * price / 1e6)`` MIST —
        what the bid would cost if it cleared at its own price.  Settlement
        refunds the difference to the clearing price (winners) or the whole
        escrow (losers) atomically; there is no way to withdraw a bid
        early, which is what makes the bids *sealed* commitments.  The
        seller may not bid in their own auction (a riskless shill bid
        would otherwise inflate the uniform clearing price).
        """
        ctx.take_shared(marketplace, MARKETPLACE_TYPE)
        auction_object = ctx.take_owned(auction, AUCTION_TYPE, owner=marketplace)
        asset_object = ctx.take_owned(
            auction_object.payload["asset"], ASSET_TYPE, owner=marketplace
        )
        payload = asset_object.payload
        ctx.require(
            ctx.sender != auction_object.payload["seller"],
            "seller cannot bid in their own auction",
        )
        ctx.require(price_micromist_per_unit > 0, "bid price must be positive")
        ctx.require(
            payload["min_bandwidth_kbps"] <= bandwidth_kbps <= payload["bandwidth_kbps"],
            "bid bandwidth outside [asset minimum, asset bandwidth]",
        )
        duration = payload["expiry"] - payload["start"]
        escrow_mist = -(
            -bandwidth_kbps * duration * int(price_micromist_per_unit) // MICROMIST
        )
        coin = ctx.take_owned(payment, COIN_TYPE)
        ctx.require(coin.payload["balance"] >= escrow_mist, "insufficient escrow")
        coin.payload["balance"] -= escrow_mist
        ctx.mutate(coin)
        seq = len(auction_object.payload["bids"])
        bid = ctx.create_object(
            BID_TYPE,
            {
                "marketplace": marketplace,
                "auction": auction,
                "bidder": ctx.sender,
                "bandwidth_kbps": int(bandwidth_kbps),
                "price_micromist_per_unit": int(price_micromist_per_unit),
                "escrow_mist": int(escrow_mist),
                "seq": seq,
            },
            owner=marketplace,
        )
        auction_object.payload["bids"].append(bid.object_id)
        ctx.mutate(auction_object)
        ctx.emit(
            "BidPlaced",
            {
                "marketplace": marketplace,
                "auction": auction,
                "bid": bid.object_id,
                "bidder": ctx.sender,
                "bandwidth_kbps": int(bandwidth_kbps),
                "price_micromist_per_unit": int(price_micromist_per_unit),
                "escrow_mist": int(escrow_mist),
                "seq": seq,
            },
        )
        return {"bid": bid.object_id, "escrow_mist": int(escrow_mist)}

    def settle_auction(
        self,
        ctx: CallContext,
        marketplace: str,
        auction: str,
        supply_kbps: int | None = None,
    ) -> dict:
        """Clear the book, carve the asset, pay the seller, refund the rest.

        Only the seller may settle.  ``supply_kbps`` lets the seller clamp
        the sellable bandwidth below the auctioned amount (the admission
        layer reports lost calendar headroom at settle time); it can never
        exceed the asset's bandwidth.  The clearing rule is
        :func:`repro.admission.auction.uniform_price_clearing` — byte-for-
        byte the function hosts use to preview the outcome — so on- and
        off-chain clearing can never disagree.

        Effects, all inside this one transaction:

        * every winner receives a bandwidth-split piece of the asset and
          pays ``ceil(units * clearing_price / 1e6)`` MIST; the escrow
          surplus comes back as a fresh coin;
        * every loser's full escrow comes back as a fresh coin;
        * the seller receives one coin with the total proceeds;
        * unawarded bandwidth reverts to a **posted listing at the reserve
          price** (so a failed or thin auction degrades to the posted
          market instead of stranding capacity), unless nothing remains;
        * the auction and all bid objects are destroyed.
        """
        market = ctx.take_shared(marketplace, MARKETPLACE_TYPE)
        auction_object = ctx.take_owned(auction, AUCTION_TYPE, owner=marketplace)
        ctx.require(auction_object.payload["seller"] == ctx.sender, "not the seller")
        asset_object = ctx.take_owned(
            auction_object.payload["asset"], ASSET_TYPE, owner=marketplace
        )
        payload = asset_object.payload
        total_kbps = payload["bandwidth_kbps"]
        if supply_kbps is None:
            supply_kbps = total_kbps
        ctx.require(
            0 <= supply_kbps <= total_kbps,
            "supply must be within [0, asset bandwidth]",
        )
        duration = payload["expiry"] - payload["start"]
        reserve = auction_object.payload["reserve_micromist_per_unit"]

        bid_objects = {}
        bids = []
        for bid_id in auction_object.payload["bids"]:
            bid_object = ctx.take_owned(bid_id, BID_TYPE, owner=marketplace)
            bid_objects[bid_object.payload["seq"]] = bid_object
            bids.append(
                Bid(
                    bidder=bid_object.payload["bidder"],
                    bandwidth_kbps=bid_object.payload["bandwidth_kbps"],
                    price_micromist_per_unit=bid_object.payload[
                        "price_micromist_per_unit"
                    ],
                    seq=bid_object.payload["seq"],
                )
            )
        outcome = uniform_price_clearing(
            bids,
            supply_kbps=int(supply_kbps),
            reserve_micromist=reserve,
            share_cap_kbps=auction_object.payload["share_cap_kbps"],
            total_kbps=total_kbps,
            min_fragment_kbps=payload["min_bandwidth_kbps"],
        )
        clearing = outcome.clearing_price_micromist

        target = asset_object
        proceeds = 0
        winner_reports = []
        for bid in outcome.winners:
            bid_object = bid_objects[bid.seq]
            if bid.bandwidth_kbps == target.payload["bandwidth_kbps"]:
                piece, target = target, None
            else:
                piece = split_bandwidth_inner(
                    ctx, target, bid.bandwidth_kbps, new_owner=marketplace
                )
            paid_mist = -(-bid.bandwidth_kbps * duration * clearing // MICROMIST)
            refund_mist = bid_object.payload["escrow_mist"] - paid_mist
            proceeds += paid_mist
            if refund_mist > 0:
                ctx.create_object(
                    COIN_TYPE, {"balance": int(refund_mist)}, owner=bid.bidder
                )
            ctx.transfer(piece, bid.bidder)
            winner_reports.append(
                {
                    "bidder": bid.bidder,
                    "bid": bid_object.object_id,
                    "bandwidth_kbps": bid.bandwidth_kbps,
                    "paid_mist": int(paid_mist),
                    "refund_mist": int(max(refund_mist, 0)),
                    "asset": piece.object_id,
                }
            )
            ctx.delete_object(bid_object)

        loser_reports = []
        for lost in outcome.losers:
            bid_object = bid_objects[lost.bid.seq]
            refund_mist = bid_object.payload["escrow_mist"]
            if refund_mist > 0:
                ctx.create_object(
                    COIN_TYPE, {"balance": int(refund_mist)}, owner=lost.bid.bidder
                )
            loser_reports.append(
                {
                    "bidder": lost.bid.bidder,
                    "bid": bid_object.object_id,
                    "refund_mist": int(refund_mist),
                    "reason": lost.reason,
                }
            )
            ctx.delete_object(bid_object)

        if proceeds > 0:
            ctx.create_object(COIN_TYPE, {"balance": int(proceeds)}, owner=ctx.sender)

        listing_id = None
        if target is not None:
            # Unawarded bandwidth reverts to the posted market at the
            # reserve price — the "zero bids / thin demand" degradation.
            listing = ctx.create_object(
                LISTING_TYPE,
                {
                    "marketplace": marketplace,
                    "asset": target.object_id,
                    "seller": ctx.sender,
                    "price_micromist_per_unit": int(reserve),
                },
                owner=marketplace,
            )
            market.payload["listing_count"] += 1
            ctx.emit("Listed", _listing_snapshot(listing, target))
            listing_id = listing.object_id

        ctx.delete_object(auction_object)
        ctx.mutate(market)
        ctx.emit(
            "AuctionSettled",
            {
                "marketplace": marketplace,
                "auction": auction,
                "asset": asset_object.object_id,
                "seller": ctx.sender,
                "clearing_price_micromist": int(clearing),
                "reserve_micromist_per_unit": int(reserve),
                "supply_kbps": int(supply_kbps),
                "awarded_kbps": int(outcome.awarded_kbps),
                "winners": winner_reports,
                "losers": loser_reports,
                "listing": listing_id,
                "proceeds_mist": int(proceeds),
            },
        )
        return {
            "clearing_price_micromist": int(clearing),
            "awarded_kbps": int(outcome.awarded_kbps),
            "proceeds_mist": int(proceeds),
            "listing": listing_id,
            "winners": winner_reports,
            "losers": loser_reports,
        }

    # -- path auctions -------------------------------------------------------------

    def create_path_auction(
        self, ctx: CallContext, marketplace: str, num_legs: int
    ) -> dict:
        """Open the shell of a combinatorial path auction.

        The creator (any registered seller — typically the first AS on the
        path) declares how many legs the path has; each leg's AS then
        contributes its asset via :meth:`contribute_path_leg`.  Bidding
        opens only once every leg is contributed.
        """
        market = ctx.take_shared(marketplace, MARKETPLACE_TYPE)
        ctx.require(ctx.sender in market.payload["sellers"], "seller not registered")
        ctx.require(num_legs > 0, "a path auction needs at least one leg")
        path_auction = ctx.create_object(
            PATH_AUCTION_TYPE,
            {
                "marketplace": marketplace,
                "creator": ctx.sender,
                "legs": [None] * int(num_legs),
                "bids": [],
            },
            owner=marketplace,
        )
        ctx.emit(
            "PathAuctionOpened",
            {
                "marketplace": marketplace,
                "path_auction": path_auction.object_id,
                "creator": ctx.sender,
                "num_legs": int(num_legs),
            },
        )
        return {"path_auction": path_auction.object_id}

    def contribute_path_leg(
        self,
        ctx: CallContext,
        marketplace: str,
        path_auction: str,
        leg_index: int,
        asset: str,
        reserve_micromist_per_unit: int,
        share_cap_kbps: int | None = None,
    ) -> dict:
        """One AS places its leg asset into the path auction's custody.

        The sender becomes that leg's seller: settlement pays it the leg's
        proceeds and relists the leg's unawarded remainder under its name.
        Every leg must cover the *same* time window (a path reservation is
        one window on every hop); the first contribution fixes it.
        """
        market = ctx.take_shared(marketplace, MARKETPLACE_TYPE)
        ctx.require(ctx.sender in market.payload["sellers"], "seller not registered")
        ctx.require(reserve_micromist_per_unit > 0, "reserve price must be positive")
        ctx.require(
            share_cap_kbps is None or share_cap_kbps > 0,
            "share cap must be positive when given",
        )
        auction_object = ctx.take_owned(
            path_auction, PATH_AUCTION_TYPE, owner=marketplace
        )
        legs = auction_object.payload["legs"]
        ctx.require(0 <= leg_index < len(legs), "leg index out of range")
        ctx.require(legs[leg_index] is None, "leg already contributed")
        ctx.require(not auction_object.payload["bids"], "bidding already open")
        asset_object = ctx.take_owned(asset, ASSET_TYPE)
        payload = asset_object.payload
        for other in legs:
            if other is not None:
                ctx.require(
                    other["start"] == payload["start"]
                    and other["expiry"] == payload["expiry"],
                    "every leg must cover the same time window",
                )
                break
        ctx.transfer(asset_object, marketplace)
        legs[leg_index] = {
            "asset": asset,
            "seller": ctx.sender,
            "reserve_micromist_per_unit": int(reserve_micromist_per_unit),
            "share_cap_kbps": None if share_cap_kbps is None else int(share_cap_kbps),
            "isd": payload["isd"],
            "asn": payload["asn"],
            "interface": payload["interface"],
            "is_ingress": payload["is_ingress"],
            "bandwidth_kbps": payload["bandwidth_kbps"],
            "start": payload["start"],
            "expiry": payload["expiry"],
            "granularity": payload["granularity"],
            "min_bandwidth_kbps": payload["min_bandwidth_kbps"],
        }
        ctx.mutate(auction_object)
        ctx.emit(
            "PathLegContributed",
            {
                "marketplace": marketplace,
                "path_auction": path_auction,
                "leg_index": int(leg_index),
                "legs_missing": sum(1 for leg in legs if leg is None),
                **legs[leg_index],
            },
        )
        return {"leg_index": int(leg_index)}

    def place_path_bid(
        self,
        ctx: CallContext,
        marketplace: str,
        path_auction: str,
        bandwidth_kbps: int,
        price_micromist_per_unit: int,
        payment: str,
    ) -> dict:
        """One sealed combinatorial bid: the same bandwidth on every leg.

        ``price_micromist_per_unit`` is the maximum unit price **per
        leg**; the escrow is the worst case on every leg —
        ``num_legs * ceil(bandwidth * duration * price / 1e6)`` MIST
        (:func:`repro.pathadm.auction.path_escrow_mist`).  The bid wins on
        all legs or none; no leg seller may bid.
        """
        ctx.take_shared(marketplace, MARKETPLACE_TYPE)
        auction_object = ctx.take_owned(
            path_auction, PATH_AUCTION_TYPE, owner=marketplace
        )
        legs = auction_object.payload["legs"]
        ctx.require(all(leg is not None for leg in legs), "path not fully contributed")
        ctx.require(
            all(leg["seller"] != ctx.sender for leg in legs),
            "a leg seller cannot bid in their own path auction",
        )
        ctx.require(price_micromist_per_unit > 0, "bid price must be positive")
        min_bw = max(leg["min_bandwidth_kbps"] for leg in legs)
        max_bw = min(leg["bandwidth_kbps"] for leg in legs)
        ctx.require(
            min_bw <= bandwidth_kbps <= max_bw,
            "bid bandwidth outside [widest leg minimum, narrowest leg]",
        )
        duration = legs[0]["expiry"] - legs[0]["start"]
        escrow_mist = path_escrow_mist(
            int(bandwidth_kbps), duration, int(price_micromist_per_unit), len(legs)
        )
        coin = ctx.take_owned(payment, COIN_TYPE)
        ctx.require(coin.payload["balance"] >= escrow_mist, "insufficient escrow")
        coin.payload["balance"] -= escrow_mist
        ctx.mutate(coin)
        seq = len(auction_object.payload["bids"])
        bid = ctx.create_object(
            PATH_BID_TYPE,
            {
                "marketplace": marketplace,
                "path_auction": path_auction,
                "bidder": ctx.sender,
                "bandwidth_kbps": int(bandwidth_kbps),
                "price_micromist_per_unit": int(price_micromist_per_unit),
                "escrow_mist": int(escrow_mist),
                "seq": seq,
            },
            owner=marketplace,
        )
        auction_object.payload["bids"].append(bid.object_id)
        ctx.mutate(auction_object)
        ctx.emit(
            "PathBidPlaced",
            {
                "marketplace": marketplace,
                "path_auction": path_auction,
                "bid": bid.object_id,
                "bidder": ctx.sender,
                "bandwidth_kbps": int(bandwidth_kbps),
                "price_micromist_per_unit": int(price_micromist_per_unit),
                "escrow_mist": int(escrow_mist),
                "seq": seq,
            },
        )
        return {"bid": bid.object_id, "escrow_mist": int(escrow_mist)}

    def settle_path_auction(
        self,
        ctx: CallContext,
        marketplace: str,
        path_auction: str,
        supplies_kbps: list[int] | None = None,
    ) -> dict:
        """Clear the path book all-or-nothing and settle every leg atomically.

        Any leg seller (or the creator) may settle; ``supplies_kbps``
        optionally clamps each leg's sellable bandwidth to its live
        calendar headroom.  The clearing rule is
        :func:`repro.pathadm.auction.combinatorial_path_clearing` — the
        same pure function hosts use to preview — composing the per-leg
        uniform-price rule with the all-legs-or-nothing eviction pass.

        Effects, all inside this one transaction:

        * every path winner receives a bandwidth-split piece of **every**
          leg asset and pays the sum of the per-leg clearing prices
          (ceil-priced per leg); the escrow surplus comes back as a coin;
        * every loser's full escrow comes back as a coin;
        * each leg's seller receives one coin with that leg's proceeds;
        * each leg's unawarded bandwidth reverts to a posted listing at
          the leg's reserve, under the leg seller's name;
        * the path auction and all bid objects are destroyed.

        Escrow is conserved exactly: total paid to sellers plus total
        refunds equals total escrow taken at bid time.
        """
        market = ctx.take_shared(marketplace, MARKETPLACE_TYPE)
        auction_object = ctx.take_owned(
            path_auction, PATH_AUCTION_TYPE, owner=marketplace
        )
        legs = auction_object.payload["legs"]
        ctx.require(all(leg is not None for leg in legs), "path not fully contributed")
        sellers = {leg["seller"] for leg in legs}
        ctx.require(
            ctx.sender in sellers or ctx.sender == auction_object.payload["creator"],
            "only a leg seller or the creator may settle",
        )
        leg_assets = [
            ctx.take_owned(leg["asset"], ASSET_TYPE, owner=marketplace) for leg in legs
        ]
        duration = legs[0]["expiry"] - legs[0]["start"]
        if supplies_kbps is None:
            supplies_kbps = [leg["bandwidth_kbps"] for leg in legs]
        ctx.require(len(supplies_kbps) == len(legs), "one supply per leg required")
        for supply, leg in zip(supplies_kbps, legs):
            ctx.require(
                0 <= supply <= leg["bandwidth_kbps"],
                "supply must be within [0, leg bandwidth]",
            )

        bid_objects = {}
        bids = []
        for bid_id in auction_object.payload["bids"]:
            bid_object = ctx.take_owned(bid_id, PATH_BID_TYPE, owner=marketplace)
            bid_objects[bid_object.payload["seq"]] = bid_object
            bids.append(
                PathBid(
                    bidder=bid_object.payload["bidder"],
                    bandwidth_kbps=bid_object.payload["bandwidth_kbps"],
                    price_micromist_per_unit=bid_object.payload[
                        "price_micromist_per_unit"
                    ],
                    seq=bid_object.payload["seq"],
                )
            )
        outcome = combinatorial_path_clearing(
            bids,
            [
                LegSupply(
                    supply_kbps=int(supply),
                    reserve_micromist=leg["reserve_micromist_per_unit"],
                    share_cap_kbps=leg["share_cap_kbps"],
                    total_kbps=leg["bandwidth_kbps"],
                    min_fragment_kbps=leg["min_bandwidth_kbps"],
                )
                for supply, leg in zip(supplies_kbps, legs)
            ],
        )
        clearing_prices = outcome.clearing_prices_micromist

        targets = list(leg_assets)
        leg_proceeds = [0] * len(legs)
        winner_reports = []
        for bid in outcome.winners:
            bid_object = bid_objects[bid.seq]
            pieces = []
            paid_mist = 0
            for index, price in enumerate(clearing_prices):
                target = targets[index]
                if bid.bandwidth_kbps == target.payload["bandwidth_kbps"]:
                    piece, targets[index] = target, None
                else:
                    piece = split_bandwidth_inner(
                        ctx, target, bid.bandwidth_kbps, new_owner=marketplace
                    )
                leg_paid = -(-bid.bandwidth_kbps * duration * price // MICROMIST)
                leg_proceeds[index] += leg_paid
                paid_mist += leg_paid
                ctx.transfer(piece, bid.bidder)
                pieces.append(piece.object_id)
            refund_mist = bid_object.payload["escrow_mist"] - paid_mist
            if refund_mist > 0:
                ctx.create_object(
                    COIN_TYPE, {"balance": int(refund_mist)}, owner=bid.bidder
                )
            winner_reports.append(
                {
                    "bidder": bid.bidder,
                    "bid": bid_object.object_id,
                    "bandwidth_kbps": bid.bandwidth_kbps,
                    "paid_mist": int(paid_mist),
                    "refund_mist": int(max(refund_mist, 0)),
                    "assets": pieces,
                }
            )
            ctx.delete_object(bid_object)

        loser_reports = []
        for lost in outcome.losers:
            bid_object = bid_objects[lost.bid.seq]
            refund_mist = bid_object.payload["escrow_mist"]
            if refund_mist > 0:
                ctx.create_object(
                    COIN_TYPE, {"balance": int(refund_mist)}, owner=lost.bid.bidder
                )
            loser_reports.append(
                {
                    "bidder": lost.bid.bidder,
                    "bid": bid_object.object_id,
                    "leg": int(lost.leg),
                    "refund_mist": int(refund_mist),
                    "reason": lost.reason,
                }
            )
            ctx.delete_object(bid_object)

        leg_reports = []
        for index, (leg, target) in enumerate(zip(legs, targets)):
            if leg_proceeds[index] > 0:
                ctx.create_object(
                    COIN_TYPE,
                    {"balance": int(leg_proceeds[index])},
                    owner=leg["seller"],
                )
            listing_id = None
            if target is not None:
                listing = ctx.create_object(
                    LISTING_TYPE,
                    {
                        "marketplace": marketplace,
                        "asset": target.object_id,
                        "seller": leg["seller"],
                        "price_micromist_per_unit": leg[
                            "reserve_micromist_per_unit"
                        ],
                    },
                    owner=marketplace,
                )
                market.payload["listing_count"] += 1
                ctx.emit("Listed", _listing_snapshot(listing, target))
                listing_id = listing.object_id
            leg_reports.append(
                {
                    "leg_index": index,
                    "seller": leg["seller"],
                    "clearing_price_micromist": int(clearing_prices[index]),
                    "proceeds_mist": int(leg_proceeds[index]),
                    "listing": listing_id,
                }
            )

        ctx.delete_object(auction_object)
        ctx.mutate(market)
        ctx.emit(
            "PathAuctionSettled",
            {
                "marketplace": marketplace,
                "path_auction": path_auction,
                "num_legs": len(legs),
                "clearing_prices_micromist": [int(p) for p in clearing_prices],
                "supplies_kbps": [int(s) for s in supplies_kbps],
                "winners": winner_reports,
                "losers": loser_reports,
                "legs": leg_reports,
                "proceeds_mist": int(sum(leg_proceeds)),
            },
        )
        return {
            "clearing_prices_micromist": [int(p) for p in clearing_prices],
            "supplies_kbps": [int(s) for s in supplies_kbps],
            "winners": winner_reports,
            "losers": loser_reports,
            "legs": leg_reports,
            "proceeds_mist": int(sum(leg_proceeds)),
        }

    # -- internals ------------------------------------------------------------------

    def _relist(self, ctx: CallContext, market, original_listing, asset_object) -> None:
        """Keep a remainder asset on the market under a fresh listing."""
        listing = ctx.create_object(
            LISTING_TYPE,
            {
                "marketplace": original_listing.payload["marketplace"],
                "asset": asset_object.object_id,
                "seller": original_listing.payload["seller"],
                "price_micromist_per_unit": original_listing.payload[
                    "price_micromist_per_unit"
                ],
            },
            owner=original_listing.payload["marketplace"],
        )
        market.payload["listing_count"] += 1
        ctx.emit("Relisted", _listing_snapshot(listing, asset_object))


def _listing_snapshot(listing, asset_object) -> dict:
    """Full listing state for Listed/Relisted events (indexer consumption)."""
    asset = asset_object.payload
    return {
        "marketplace": listing.payload["marketplace"],
        "listing": listing.object_id,
        "asset": asset_object.object_id,
        "seller": listing.payload["seller"],
        "price_micromist_per_unit": listing.payload["price_micromist_per_unit"],
        "isd": asset["isd"],
        "asn": asset["asn"],
        "interface": asset["interface"],
        "is_ingress": asset["is_ingress"],
        "bandwidth_kbps": asset["bandwidth_kbps"],
        "start": asset["start"],
        "expiry": asset["expiry"],
        "granularity": asset["granularity"],
        "min_bandwidth_kbps": asset["min_bandwidth_kbps"],
    }
