"""The marketplace contract: decentralized trading of bandwidth assets.

The marketplace is a *shared* object (anyone may interact with it, which is
why purchases go through consensus, §6.1).  ASes list assets at a posted
price; buyers purchase any sub-rectangle (time × bandwidth) of a listing,
and the contract splits the asset accordingly — the remainders stay listed.

Prices are linear in reserved volume: ``price_micromist_per_unit`` is the
posted price per kbps-second, so a purchase costs::

    ceil(units(bw, duration) * price / 1e6)  MIST

Payment flows buyer-coin -> seller-coin inside the same transaction, so an
atomic multi-hop purchase either pays every AS or nobody (C1/atomicity).

Every listing state change emits an event carrying the full listing
snapshot — ``Listed`` (new listing), ``Relisted`` (a sale remainder kept
on the market under a fresh listing), ``Delisted`` (seller cancel), and
``Sold`` (with ``listing_closed`` or the surviving listing's ``remaining``
rectangle) — so an off-chain :class:`~repro.marketdata.MarketIndexer` can
track the market incrementally and never needs to rescan the object store.
"""

from __future__ import annotations

from repro.contracts.asset import (
    ASSET_TYPE,
    asset_units,
    split_bandwidth_inner,
    split_time_inner,
)
from repro.contracts.framework import CallContext, Contract
from repro.ledger.accounts import COIN_TYPE
from repro.ledger.objects import Ownership

MARKETPLACE_TYPE = "market::Marketplace"
LISTING_TYPE = "market::Listing"
SELLER_CAP_TYPE = "market::SellerCap"

MICROMIST = 1_000_000


class MarketContract(Contract):
    name = "market"

    # -- setup ----------------------------------------------------------------

    def create_marketplace(self, ctx: CallContext) -> dict:
        marketplace = ctx.create_object(
            MARKETPLACE_TYPE,
            {"creator": ctx.sender, "sellers": {}, "listing_count": 0},
            ownership=Ownership.SHARED,
        )
        return {"marketplace": marketplace.object_id}

    def register_seller(self, ctx: CallContext, marketplace: str) -> dict:
        """Register the sender as a seller; returns a capability object."""
        market = ctx.take_shared(marketplace, MARKETPLACE_TYPE)
        ctx.require(
            ctx.sender not in market.payload["sellers"], "seller already registered"
        )
        market.payload["sellers"][ctx.sender] = True
        ctx.mutate(market)
        cap = ctx.create_object(SELLER_CAP_TYPE, {"marketplace": marketplace})
        return {"cap": cap.object_id}

    # -- listing ----------------------------------------------------------------

    def create_listing(
        self,
        ctx: CallContext,
        marketplace: str,
        asset: str,
        price_micromist_per_unit: int,
    ) -> dict:
        """List an asset for sale; the marketplace takes custody of it."""
        market = ctx.take_shared(marketplace, MARKETPLACE_TYPE)
        ctx.require(ctx.sender in market.payload["sellers"], "seller not registered")
        ctx.require(price_micromist_per_unit > 0, "price must be positive")
        asset_object = ctx.take_owned(asset, ASSET_TYPE)
        ctx.transfer(asset_object, marketplace)
        listing = ctx.create_object(
            LISTING_TYPE,
            {
                "marketplace": marketplace,
                "asset": asset,
                "seller": ctx.sender,
                "price_micromist_per_unit": int(price_micromist_per_unit),
            },
            owner=marketplace,
        )
        market.payload["listing_count"] += 1
        ctx.mutate(market)
        ctx.emit("Listed", _listing_snapshot(listing, asset_object))
        return {"listing": listing.object_id}

    def cancel_listing(self, ctx: CallContext, marketplace: str, listing: str) -> dict:
        """Seller takes an unsold asset back off the market."""
        market = ctx.take_shared(marketplace, MARKETPLACE_TYPE)
        listing_object = ctx.take_owned(listing, LISTING_TYPE, owner=marketplace)
        ctx.require(listing_object.payload["seller"] == ctx.sender, "not the seller")
        asset_object = ctx.take_owned(
            listing_object.payload["asset"], ASSET_TYPE, owner=marketplace
        )
        ctx.transfer(asset_object, ctx.sender)
        ctx.delete_object(listing_object)
        market.payload["listing_count"] -= 1
        ctx.mutate(market)
        ctx.emit(
            "Delisted",
            {
                "marketplace": marketplace,
                "listing": listing,
                "asset": asset_object.object_id,
            },
        )
        return {"asset": asset_object.object_id}

    # -- buying -------------------------------------------------------------------

    def buy(
        self,
        ctx: CallContext,
        marketplace: str,
        listing: str,
        start: int,
        expiry: int,
        bandwidth_kbps: int,
        payment: str,
    ) -> dict:
        """Buy a (time × bandwidth) sub-rectangle of a listed asset.

        Splits the listed asset as needed (worst case: two time splits plus
        one bandwidth split); remainders are re-listed at the same unit
        price.  The bought piece transfers to the buyer, the payment to the
        seller.
        """
        market = ctx.take_shared(marketplace, MARKETPLACE_TYPE)
        listing_object = ctx.take_owned(listing, LISTING_TYPE, owner=marketplace)
        asset_object = ctx.take_owned(
            listing_object.payload["asset"], ASSET_TYPE, owner=marketplace
        )
        payload = asset_object.payload
        ctx.require(
            payload["start"] <= start < expiry <= payload["expiry"],
            "requested interval outside the listed asset",
        )
        ctx.require(
            0 < bandwidth_kbps <= payload["bandwidth_kbps"],
            "requested bandwidth exceeds the listed asset",
        )

        # `target` is the piece being carved towards the purchase.  The
        # original asset stays bound to the original listing as long as it
        # keeps a remainder; every other remainder gets a fresh listing.
        target = asset_object
        if start > payload["start"]:
            # Head remainder [asset.start, start) stays with the original
            # asset (and its listing); the returned piece continues.
            target = split_time_inner(ctx, target, start, new_owner=marketplace)
        if expiry < target.payload["expiry"]:
            # split keeps [*, expiry) in `target`, returns the tail.
            tail = split_time_inner(ctx, target, expiry, new_owner=marketplace)
            self._relist(ctx, market, listing_object, tail)
        if bandwidth_kbps < target.payload["bandwidth_kbps"]:
            bought = split_bandwidth_inner(
                ctx, target, bandwidth_kbps, new_owner=marketplace
            )
            # `target` keeps the bandwidth remainder.
            if target.object_id != asset_object.object_id:
                self._relist(ctx, market, listing_object, target)
        else:
            bought = target

        if bought.object_id == asset_object.object_id:
            # The purchase consumed the original asset: the listing dies.
            ctx.delete_object(listing_object)
            market.payload["listing_count"] -= 1

        # Pricing and payment (ceil division).
        unit_price = listing_object.payload["price_micromist_per_unit"]
        price_mist = -(-asset_units(bought.payload) * unit_price // MICROMIST)
        coin = ctx.take_owned(payment, COIN_TYPE)
        ctx.require(coin.payload["balance"] >= price_mist, "insufficient payment")
        coin.payload["balance"] -= price_mist
        ctx.mutate(coin)
        ctx.create_object(
            COIN_TYPE,
            {"balance": int(price_mist)},
            owner=listing_object.payload["seller"],
        )

        ctx.transfer(bought, ctx.sender)
        ctx.mutate(market)
        listing_closed = bought.object_id == asset_object.object_id
        ctx.emit(
            "Sold",
            {
                "marketplace": marketplace,
                "listing": listing,
                "asset": bought.object_id,
                "price_mist": int(price_mist),
                "buyer": ctx.sender,
                "listing_closed": listing_closed,
                # The rectangle the original listing keeps (its asset was
                # mutated by the splits above) — what an indexer needs to
                # shrink the listing without reading the object store.
                "remaining": None
                if listing_closed
                else {
                    "bandwidth_kbps": asset_object.payload["bandwidth_kbps"],
                    "start": asset_object.payload["start"],
                    "expiry": asset_object.payload["expiry"],
                },
            },
        )
        return {"asset": bought.object_id, "price_mist": int(price_mist)}

    # -- internals ------------------------------------------------------------------

    def _relist(self, ctx: CallContext, market, original_listing, asset_object) -> None:
        """Keep a remainder asset on the market under a fresh listing."""
        listing = ctx.create_object(
            LISTING_TYPE,
            {
                "marketplace": original_listing.payload["marketplace"],
                "asset": asset_object.object_id,
                "seller": original_listing.payload["seller"],
                "price_micromist_per_unit": original_listing.payload[
                    "price_micromist_per_unit"
                ],
            },
            owner=original_listing.payload["marketplace"],
        )
        market.payload["listing_count"] += 1
        ctx.emit("Relisted", _listing_snapshot(listing, asset_object))


def _listing_snapshot(listing, asset_object) -> dict:
    """Full listing state for Listed/Relisted events (indexer consumption)."""
    asset = asset_object.payload
    return {
        "marketplace": listing.payload["marketplace"],
        "listing": listing.object_id,
        "asset": asset_object.object_id,
        "seller": listing.payload["seller"],
        "price_micromist_per_unit": listing.payload["price_micromist_per_unit"],
        "isd": asset["isd"],
        "asn": asset["asn"],
        "interface": asset["interface"],
        "is_ingress": asset["is_ingress"],
        "bandwidth_kbps": asset["bandwidth_kbps"],
        "start": asset["start"],
        "expiry": asset["expiry"],
        "granularity": asset["granularity"],
        "min_bandwidth_kbps": asset["min_bandwidth_kbps"],
    }
