"""Contract runtime re-export.

The execution machinery lives in :mod:`repro.ledger.runtime` (it is part of
the ledger); contract modules import it from here for locality.
"""

from repro.ledger.runtime import (
    CallContext,
    Contract,
    ContractAbort,
    ExecutionView,
)

__all__ = ["CallContext", "Contract", "ContractAbort", "ExecutionView"]
