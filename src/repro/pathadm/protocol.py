"""Atomic path-wide admission: two-phase screen → commit across ASes.

Hummingbird's headline object is a reservation on *every* hop of an
inter-domain path, but each AS admits independently — its own
:class:`~repro.admission.controller.AdmissionController`, its own policy,
pricing, sharding, and allocation mode.  A path-wide grant therefore
needs a coordinator that makes N independent admission authorities act
like one atomic one:

1. **screen** — walk the hops in path order; at each hop admit the
   window on both interface directions the path crosses (ingress in,
   egress out).  An admit *is* the provisional hold: the capacity is
   committed into the hop's calendar, so no concurrent path (or single-
   interface sale) can take it while downstream hops are still being
   checked.  The first rejection aborts the walk and releases every
   upstream hold in reverse order.
2. **commit** — run the caller's per-hop effect (ledger transaction,
   asset mint, reservation delivery) under the holds.  If the effect
   fails at hop *k*, holds at *every* hop — including the already-
   effected 0..k-1 — are released.

Because a calendar's ``release`` exactly re-subtracts the levels a
``commit`` added and prunes the boundaries it introduced, rollback
leaves each upstream calendar **byte-identical** to one that never saw
the path (see :mod:`repro.pathadm.fingerprint` for the precise claim and
``tests/pathadm/test_path_rollback_property.py`` for the hypothesis
proof over sharded and monolithic calendars alike).

>>> from repro.admission import AdmissionController
>>> hops = [PathHop(f"as{i}", AdmissionController(1000), 1, 2) for i in range(3)]
>>> path = PathAdmission(hops)
>>> ticket = path.screen(600, 0.0, 3600.0, tag="alice")
>>> ticket.admitted, len(ticket.holds)
(True, 3)
>>> path.screen(600, 0.0, 3600.0).failed_hop  # contends with the hold
0
>>> path.rollback(ticket).state
'rolled_back'
>>> path.screen(600, 0.0, 3600.0).admitted    # capacity restored
True
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.admission.controller import ACTIVE, ISSUED, AdmissionController
from repro.admission.calendar import Commitment
from repro.telemetry import get_registry
from repro.telemetry.tracing import current_trace

__all__ = [
    "HELD",
    "COMMITTED",
    "REJECTED",
    "ROLLED_BACK",
    "HopHold",
    "PathAdmission",
    "PathCommitError",
    "PathHop",
    "PathTicket",
]

HELD = "held"
COMMITTED = "committed"
REJECTED = "rejected"
ROLLED_BACK = "rolled_back"


@dataclass(frozen=True)
class PathHop:
    """One AS on the path: its admission authority and the crossed interfaces.

    A path enters the AS on ``ingress_interface`` and leaves on
    ``egress_interface``; the hop claims capacity on *both* directions —
    ``(ingress, True)`` and ``(egress, False)`` — exactly the pair
    ``AsService`` admits when delivering a reservation.
    """

    name: str
    controller: AdmissionController
    ingress_interface: int
    egress_interface: int

    @property
    def claims(self) -> tuple[tuple[int, bool], ...]:
        return ((self.ingress_interface, True), (self.egress_interface, False))


@dataclass(frozen=True)
class HopHold:
    """The provisional calendar claims screening took at one hop."""

    hop_index: int
    claims: tuple[tuple[int, bool, Commitment], ...]


@dataclass
class PathTicket:
    """One path-wide admission attempt and its lifecycle state.

    ``state`` moves ``held -> committed`` on success, ``held ->
    rolled_back`` on abort, and is ``rejected`` from birth when screening
    failed (``failed_hop``/``reason`` say where and why).  A committed
    ticket may still be rolled back later — that releases the granted
    capacity (expiry by hand).
    """

    bandwidth_kbps: int
    start: float
    end: float
    tag: str
    layer: str
    state: str
    holds: tuple[HopHold, ...] = ()
    failed_hop: int | None = None
    reason: str = ""
    attrs: dict = field(default_factory=dict)

    @property
    def admitted(self) -> bool:
        return self.state in (HELD, COMMITTED)


class PathCommitError(RuntimeError):
    """A per-hop commit effect failed; every hold has been rolled back."""

    def __init__(self, hop_index: int, cause: BaseException) -> None:
        super().__init__(
            f"path commit failed at hop {hop_index}: {cause!r}; "
            "all holds rolled back"
        )
        self.hop_index = hop_index
        self.cause = cause


class PathAdmission:
    """Coordinator turning per-AS admission into an all-hops-or-nothing grant.

    The coordinator is stateless between tickets — all state lives in the
    per-hop calendars (via the holds) and in the tickets themselves, so
    any number of paths can interleave over shared controllers.
    """

    def __init__(self, hops, telemetry: bool | None = None) -> None:
        """Wrap ``hops`` (an iterable of :class:`PathHop`) in a coordinator.

        ``telemetry=False`` disarms the coordinator's own counters even
        under a live registry (the per-hop controllers carry their own
        override) — used by ``tools/perf_guard.py`` to benchmark an armed
        and a disarmed path side by side in one process.
        """
        self.hops: tuple[PathHop, ...] = tuple(hops)
        if not self.hops:
            raise ValueError("a path needs at least one hop")
        registry = get_registry()
        self._telemetry = registry.enabled if telemetry is None else (
            bool(telemetry) and registry.enabled
        )
        screens = registry.counter(
            "pathadm_screen_total",
            "Path-wide screens by outcome (held = every hop admitted).",
            ("outcome",),
        )
        commits = registry.counter(
            "pathadm_commit_total",
            "Path-wide commits by outcome.",
            ("outcome",),
        )
        self._m_screen = {
            HELD: screens.labels(HELD),
            REJECTED: screens.labels(REJECTED),
        }
        self._m_commit = {
            COMMITTED: commits.labels(COMMITTED),
            ROLLED_BACK: commits.labels(ROLLED_BACK),
        }
        self._m_rollbacks = registry.counter(
            "pathadm_rollback_total",
            "Tickets rolled back (screen aborts excluded).",
        ).labels()
        self._m_hops_admitted = registry.counter(
            "pathadm_hop_admits_total",
            "Per-hop interface-direction admits taken by screens.",
        ).labels()

    def __len__(self) -> int:
        return len(self.hops)

    # -- screen -------------------------------------------------------------------

    def screen(
        self,
        bandwidth_kbps: int,
        start: float,
        end: float,
        tag: str = "",
        layer: str = ISSUED,
    ) -> PathTicket:
        """Check and provisionally hold the window on every hop.

        Args:
            bandwidth_kbps: bandwidth wanted on every hop.
            start, end: the reservation window (seconds).
            tag: buyer label recorded on every hop commitment (drives
                per-buyer policies like
                :class:`~repro.admission.policy.ProportionalShare`).
            layer: :data:`~repro.admission.controller.ISSUED` (minting
                path assets) or :data:`~repro.admission.controller.ACTIVE`
                (delivering / directly granting a live reservation).

        Returns:
            A :class:`PathTicket` — ``held`` with one :class:`HopHold`
            per hop, or ``rejected`` with ``failed_hop``/``reason`` and
            every upstream hold already released.
        """
        if layer not in (ISSUED, ACTIVE):
            raise ValueError(f"unknown calendar layer {layer!r}")
        trace = current_trace()
        span = (
            trace.span(
                "path.screen",
                hops=len(self.hops),
                bandwidth_kbps=int(bandwidth_kbps),
                layer=layer,
                tag=tag,
            )
            if trace is not None
            else None
        )
        issued = layer == ISSUED
        holds: list[HopHold] = []
        claims_taken = 0
        ticket = None
        for index, hop in enumerate(self.hops):
            taken: list[tuple[int, bool, Commitment]] = []
            for interface, is_ingress in hop.claims:
                admit = (
                    hop.controller.admit_issue
                    if issued
                    else hop.controller.admit_reservation
                )
                decision = admit(
                    interface, is_ingress, bandwidth_kbps, start, end, tag=tag
                )
                if not decision.admitted:
                    for t_interface, t_ingress, commitment in reversed(taken):
                        hop.controller.release(
                            t_interface, t_ingress, commitment, layer=layer
                        )
                    self._release_holds(holds, layer)
                    reason = (
                        f"hop {index} ({hop.name}) interface {interface} "
                        f"{'ingress' if is_ingress else 'egress'}: "
                        f"{decision.reason}"
                    )
                    ticket = PathTicket(
                        bandwidth_kbps=int(bandwidth_kbps),
                        start=float(start),
                        end=float(end),
                        tag=tag,
                        layer=layer,
                        state=REJECTED,
                        failed_hop=index,
                        reason=reason,
                    )
                    break
                taken.append((interface, is_ingress, decision.commitment))
            if ticket is not None:
                break
            holds.append(HopHold(hop_index=index, claims=tuple(taken)))
            claims_taken += len(taken)
        if ticket is None:
            ticket = PathTicket(
                bandwidth_kbps=int(bandwidth_kbps),
                start=float(start),
                end=float(end),
                tag=tag,
                layer=layer,
                state=HELD,
                holds=tuple(holds),
            )
        if self._telemetry:
            self._m_screen[HELD if ticket.admitted else REJECTED].value += 1.0
            if ticket.admitted:
                self._m_hops_admitted.value += float(claims_taken)
        if span is not None:
            span.set(
                outcome=ticket.state,
                failed_hop=ticket.failed_hop,
                reason=ticket.reason,
            )
            span.__exit__(None, None, None)
        return ticket

    # -- commit / rollback --------------------------------------------------------

    def commit(self, ticket: PathTicket, hook=None) -> PathTicket:
        """Make the held path permanent, all hops or none.

        Args:
            ticket: a ``held`` ticket from :meth:`screen`.
            hook: optional per-hop effect ``hook(hop_index, hop, hold)``
                run in path order — the ledger transaction, delivery, or
                mint that the hold was protecting.  The holds themselves
                already live in the calendars, so a hook-less commit just
                flips the ticket state.

        Returns:
            The ticket, now ``committed``.

        Raises:
            ValueError: the ticket is not in the ``held`` state.
            PathCommitError: the hook failed at some hop; *every* hold
                (including hops whose hook already ran) has been released
                and the ticket is ``rolled_back``.
        """
        if ticket.state != HELD:
            raise ValueError(f"cannot commit a {ticket.state!r} ticket")
        trace = current_trace()
        if hook is not None:
            for hold in ticket.holds:
                hop = self.hops[hold.hop_index]
                try:
                    hook(hold.hop_index, hop, hold)
                except BaseException as exc:
                    self._release_holds(ticket.holds, ticket.layer)
                    ticket.state = ROLLED_BACK
                    ticket.failed_hop = hold.hop_index
                    ticket.reason = f"commit effect failed: {exc!r}"
                    if self._telemetry:
                        self._m_commit[ROLLED_BACK].value += 1.0
                    if trace is not None:
                        trace.event(
                            "path.rollback",
                            hops=len(self.hops),
                            failed_hop=hold.hop_index,
                            reason=ticket.reason,
                        )
                    raise PathCommitError(hold.hop_index, exc) from exc
        ticket.state = COMMITTED
        if self._telemetry:
            self._m_commit[COMMITTED].value += 1.0
        if trace is not None:
            trace.event(
                "path.commit",
                hops=len(self.hops),
                bandwidth_kbps=ticket.bandwidth_kbps,
                layer=ticket.layer,
                tag=ticket.tag,
            )
        return ticket

    def rollback(self, ticket: PathTicket) -> PathTicket:
        """Release every hold of a held or committed ticket.

        Idempotent: rolling back a ``rejected`` or already ``rolled_back``
        ticket is a no-op (screen already released everything).
        """
        if ticket.state in (REJECTED, ROLLED_BACK):
            return ticket
        self._release_holds(ticket.holds, ticket.layer)
        ticket.state = ROLLED_BACK
        if self._telemetry:
            self._m_rollbacks.value += 1.0
        trace = current_trace()
        if trace is not None:
            trace.event(
                "path.rollback",
                hops=len(self.hops),
                bandwidth_kbps=ticket.bandwidth_kbps,
                layer=ticket.layer,
                tag=ticket.tag,
            )
        return ticket

    def _release_holds(self, holds, layer: str) -> None:
        for hold in reversed(list(holds)):
            hop = self.hops[hold.hop_index]
            for interface, is_ingress, commitment in reversed(hold.claims):
                hop.controller.release(interface, is_ingress, commitment, layer=layer)
