"""Canonical calendar fingerprints: the byte-identical-rollback oracle.

The two-phase path protocol promises that rolling a screened (or even
committed) path back leaves every upstream calendar **byte-identical** to
one that never saw the path at all.  "Byte-identical" is made precise
here: a fingerprint canonicalizes every piece of *state* a calendar
carries — step-function boundaries, levels, live commitments, tag index,
and (for sharded calendars) the shard map, end-shard index, and piece
projections — while excluding the two things that are *allocators or
caches*, not state:

* ``_ids`` — the monotonically increasing commitment-id counter.  It
  advances on every commit and never rewinds; it decides nothing about
  admission, pricing, or expiry, so two calendars that differ only in the
  next id to hand out answer every query identically.
* the lazily compiled numpy arrays behind ``bulk_peak`` (``_dirty`` /
  ``_np_*``) — derived verbatim from ``_times``/``_levels`` on demand.

Everything else is included, so a stray boundary, a leaked commitment, a
stale tag-index entry, an undropped empty shard, or a dangling projection
piece all change the fingerprint and fail the rollback property suite.
"""

from __future__ import annotations

from repro.admission.calendar import CapacityCalendar
from repro.admission.controller import AdmissionController
from repro.admission.sharded import ShardedCalendar

__all__ = [
    "calendar_fingerprint",
    "controller_fingerprint",
]


def calendar_fingerprint(calendar: CapacityCalendar | ShardedCalendar) -> tuple:
    """Hashable canonical form of one calendar's complete state.

    Two calendars with equal fingerprints answer every admission, peak,
    headroom, tag-peak, and expiry query identically; only their next
    commitment id (and compiled numpy caches) may differ.

    Delegates to the calendar's own ``fingerprint()`` — every backend
    behind the shard-engine boundary (monolithic, in-process sharded, and
    the multiprocess facade, which gathers shard state from its worker
    processes) renders the same canonical tuple shapes, so fingerprints
    compare across backends and across process restarts.
    """
    return calendar.fingerprint()


def _is_pristine(fingerprint: tuple) -> bool:
    if fingerprint[0] == "monolithic":
        _, _, times, levels, commitments, by_tag = fingerprint
        return len(times) == 1 and levels == (0,) and not commitments and not by_tag
    _, _, _, dropped, shards, commitments, by_end, projections = fingerprint
    return not (dropped or shards or commitments or by_end or projections)


def controller_fingerprint(controller: AdmissionController) -> tuple:
    """Fingerprint of every calendar a controller has materialized.

    Calendars are created lazily, so a *rejected* admit materializes an
    empty calendar without recording any state in it.  Pristine calendars
    are therefore skipped: a controller whose only trace of a path is an
    empty lazily-created calendar fingerprints identically to one that
    never saw the path at all — which is exactly the rollback guarantee.
    """
    return tuple(
        sorted(
            (key, fingerprint)
            for key, calendar in controller._calendars.items()
            for fingerprint in [calendar_fingerprint(calendar)]
            if not _is_pristine(fingerprint)
        )
    )
