"""Canonical calendar fingerprints: the byte-identical-rollback oracle.

The two-phase path protocol promises that rolling a screened (or even
committed) path back leaves every upstream calendar **byte-identical** to
one that never saw the path at all.  "Byte-identical" is made precise
here: a fingerprint canonicalizes every piece of *state* a calendar
carries — step-function boundaries, levels, live commitments, tag index,
and (for sharded calendars) the shard map, end-shard index, and piece
projections — while excluding the two things that are *allocators or
caches*, not state:

* ``_ids`` — the monotonically increasing commitment-id counter.  It
  advances on every commit and never rewinds; it decides nothing about
  admission, pricing, or expiry, so two calendars that differ only in the
  next id to hand out answer every query identically.
* the lazily compiled numpy arrays behind ``bulk_peak`` (``_dirty`` /
  ``_np_*``) — derived verbatim from ``_times``/``_levels`` on demand.

Everything else is included, so a stray boundary, a leaked commitment, a
stale tag-index entry, an undropped empty shard, or a dangling projection
piece all change the fingerprint and fail the rollback property suite.
"""

from __future__ import annotations

from repro.admission.calendar import CapacityCalendar
from repro.admission.controller import AdmissionController
from repro.admission.sharded import ShardedCalendar

__all__ = [
    "calendar_fingerprint",
    "controller_fingerprint",
]


def _commitment_rows(commitments: dict) -> tuple:
    return tuple(
        sorted(
            (cid, c.bandwidth_kbps, c.start, c.end, c.tag)
            for cid, c in commitments.items()
        )
    )


def _monolithic_fingerprint(calendar: CapacityCalendar) -> tuple:
    return (
        "monolithic",
        calendar.capacity_kbps,
        tuple(calendar._times),
        tuple(calendar._levels),
        _commitment_rows(calendar._commitments),
        tuple(
            sorted(
                (tag, tuple(sorted(ids)))
                for tag, ids in calendar._by_tag.items()
            )
        ),
    )


def _sharded_fingerprint(calendar: ShardedCalendar) -> tuple:
    return (
        "sharded",
        calendar.capacity_kbps,
        calendar.shard_seconds,
        calendar.shards_dropped,
        tuple(
            sorted(
                (key, _monolithic_fingerprint(shard))
                for key, shard in calendar._shards.items()
            )
        ),
        _commitment_rows(calendar._commitments),
        tuple(
            sorted(
                (key, tuple(sorted(ids)))
                for key, ids in calendar._by_end_shard.items()
            )
        ),
        tuple(
            sorted(
                (cid, tuple((key, piece_id) for _, key, piece_id in pieces))
                for cid, pieces in calendar._projections.items()
            )
        ),
    )


def calendar_fingerprint(calendar: CapacityCalendar | ShardedCalendar) -> tuple:
    """Hashable canonical form of one calendar's complete state.

    Two calendars with equal fingerprints answer every admission, peak,
    headroom, tag-peak, and expiry query identically; only their next
    commitment id (and compiled numpy caches) may differ.
    """
    if isinstance(calendar, ShardedCalendar):
        return _sharded_fingerprint(calendar)
    return _monolithic_fingerprint(calendar)


def _is_pristine(fingerprint: tuple) -> bool:
    if fingerprint[0] == "monolithic":
        _, _, times, levels, commitments, by_tag = fingerprint
        return len(times) == 1 and levels == (0,) and not commitments and not by_tag
    _, _, _, dropped, shards, commitments, by_end, projections = fingerprint
    return not (dropped or shards or commitments or by_end or projections)


def controller_fingerprint(controller: AdmissionController) -> tuple:
    """Fingerprint of every calendar a controller has materialized.

    Calendars are created lazily, so a *rejected* admit materializes an
    empty calendar without recording any state in it.  Pristine calendars
    are therefore skipped: a controller whose only trace of a path is an
    empty lazily-created calendar fingerprints identically to one that
    never saw the path at all — which is exactly the rollback guarantee.
    """
    return tuple(
        sorted(
            (key, fingerprint)
            for key, calendar in controller._calendars.items()
            for fingerprint in [calendar_fingerprint(calendar)]
            if not _is_pristine(fingerprint)
        )
    )
