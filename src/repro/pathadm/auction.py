"""Combinatorial path auctions: one bid, every hop, all-or-nothing.

A path bidder does not want *some* hops — bandwidth on four of five legs
is worthless.  A :class:`PathBid` therefore covers every leg of the path
at one unit price per leg, backed by one escrow, and either wins on
**all** legs or loses entirely.

Clearing composes the existing pure per-window rule
(:func:`repro.admission.auction.uniform_price_clearing`, shared verbatim
with the on-chain contract) with a path-level accept/reject pass:

1. project the live path bids into each leg's book and clear every leg
   independently under its own supply, reserve, share cap, and fragment
   rule;
2. a **partial** bid — one that won on some legs but lost on at least
   one — violates all-or-nothing: it can never be completed, yet it
   holds supply hostage on the legs it won.  The highest-priced partial
   bid (ties: latest arrival) is evicted from *all* books, recording the
   first leg that rejected it and why;
3. repeat — evicting a partial frees supply on the legs it had won,
   which can turn other partials into full winners and lower clearing
   prices — until every remaining bid either wins on **every** leg or
   loses on every leg.  Evictions are one per round and bids are never
   re-admitted, so the loop terminates in at most ``len(bids)`` rounds.

Bids that lose on every leg stay in the books: they are ordinary
uniform-price losers whose presence supports the per-leg clearing
prices.  Every winner pays the final per-leg clearing prices summed over
legs (ceil-priced per leg, exactly like posted listings), which is never
more than its own bid — the per-leg rule already clamps each leg's
clearing price to the lowest winning bid there.

>>> legs = [LegSupply(supply_kbps=800, reserve_micromist=10),
...         LegSupply(supply_kbps=500, reserve_micromist=10)]
>>> bids = [PathBid("a", 400, 90, seq=0), PathBid("b", 400, 70, seq=1)]
>>> out = combinatorial_path_clearing(bids, legs)
>>> [bid.bidder for bid in out.winners]   # both fit leg 0; only a fits leg 1
['a']
>>> out.losers[0].bid.bidder, out.losers[0].leg
('b', 1)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.admission.auction import (
    Bid,
    ClearingOutcome,
    uniform_price_clearing,
)

__all__ = [
    "LegSupply",
    "LostPathBid",
    "PathBid",
    "PathClearingOutcome",
    "combinatorial_path_clearing",
    "path_escrow_mist",
]

MICROMIST = 1_000_000


@dataclass(frozen=True)
class PathBid:
    """One combinatorial bid: ``bandwidth_kbps`` on every leg of the path.

    ``price_micromist_per_unit`` is the maximum unit price (per
    kbps-second) the bidder pays **per leg**; the escrow backing the bid
    is that price times the window on every leg
    (:func:`path_escrow_mist`).  ``seq`` is the arrival index — the same
    deterministic tie-breaker the per-window rule uses.
    """

    bidder: str
    bandwidth_kbps: int
    price_micromist_per_unit: int
    seq: int = 0

    def __post_init__(self) -> None:
        if self.bandwidth_kbps <= 0:
            raise ValueError("bid bandwidth must be positive")
        if self.price_micromist_per_unit <= 0:
            raise ValueError("bid price must be positive")


@dataclass(frozen=True)
class LegSupply:
    """One leg's clearing inputs, as its AS reported them at settle time."""

    supply_kbps: int
    reserve_micromist: int
    share_cap_kbps: int | None = None
    total_kbps: int | None = None
    min_fragment_kbps: int = 0


@dataclass(frozen=True)
class LostPathBid:
    """A losing path bid, the first leg that rejected it, and why."""

    bid: PathBid
    leg: int
    reason: str


@dataclass(frozen=True)
class PathClearingOutcome:
    """The all-or-nothing result of clearing one combinatorial path auction.

    ``leg_outcomes`` holds the final round's per-leg
    :class:`~repro.admission.auction.ClearingOutcome`; each leg's winners
    are exactly ``winners`` (the all-legs survivors), so the leg clearing
    prices in ``clearing_prices_micromist`` are consistent across legs.
    """

    winners: tuple[PathBid, ...]
    losers: tuple[LostPathBid, ...]
    leg_outcomes: tuple[ClearingOutcome, ...]
    clearing_prices_micromist: tuple[int, ...]
    rounds: int

    @property
    def cleared(self) -> bool:
        return bool(self.winners)

    @property
    def path_clearing_price_micromist(self) -> int:
        """Sum of the per-leg clearing prices — the path's unit price."""
        return sum(self.clearing_prices_micromist)

    def winner_payment_mist(self, bid: PathBid, duration_seconds: int) -> int:
        """MIST one winner pays: per-leg ceil pricing, summed over legs."""
        return sum(
            -(-bid.bandwidth_kbps * duration_seconds * price // MICROMIST)
            for price in self.clearing_prices_micromist
        )

    def revenue_mist(self, duration_seconds: int) -> int:
        """Total MIST all winners pay across all legs."""
        return sum(
            self.winner_payment_mist(bid, duration_seconds)
            for bid in self.winners
        )


def path_escrow_mist(
    bandwidth_kbps: int,
    duration_seconds: int,
    price_micromist_per_unit: int,
    num_legs: int,
) -> int:
    """Escrow locking a path bid: worst-case payment on every leg.

    Per leg the worst case is the bid's own unit price (a leg's clearing
    price never exceeds it), ceil-priced like every listing, so the
    escrow always covers the final payment and the refund
    ``escrow - payment`` is never negative.
    """
    per_leg = -(
        -bandwidth_kbps * duration_seconds * price_micromist_per_unit // MICROMIST
    )
    return per_leg * num_legs


def combinatorial_path_clearing(
    bids, legs
) -> PathClearingOutcome:
    """Clear path bids all-or-nothing over per-leg uniform-price books.

    Args:
        bids: iterable of :class:`PathBid` (any order).
        legs: iterable of :class:`LegSupply`, one per leg in path order.

    Returns:
        A :class:`PathClearingOutcome`; when nothing survives every leg,
        ``winners`` is empty and each leg's clearing price equals its
        reserve.

    Raises:
        ValueError: no legs, or a leg with negative supply / reserve
            below 1 (propagated from the per-leg rule).
    """
    legs = tuple(legs)
    if not legs:
        raise ValueError("a path auction needs at least one leg")
    live: list[PathBid] = sorted(bids, key=lambda b: b.seq)
    evicted: list[LostPathBid] = []
    rounds = 0
    while True:
        rounds += 1
        leg_outcomes = tuple(
            uniform_price_clearing(
                [
                    Bid(
                        bidder=bid.bidder,
                        bandwidth_kbps=bid.bandwidth_kbps,
                        price_micromist_per_unit=bid.price_micromist_per_unit,
                        seq=bid.seq,
                    )
                    for bid in live
                ],
                supply_kbps=leg.supply_kbps,
                reserve_micromist=leg.reserve_micromist,
                share_cap_kbps=leg.share_cap_kbps,
                total_kbps=leg.total_kbps,
                min_fragment_kbps=leg.min_fragment_kbps,
            )
            for leg in legs
        )
        winning_seqs = [
            {bid.seq for bid in outcome.winners} for outcome in leg_outcomes
        ]
        first_loss: dict[int, tuple[int, str]] = {}
        for leg_index, outcome in enumerate(leg_outcomes):
            for lost in outcome.losers:
                first_loss.setdefault(lost.bid.seq, (leg_index, lost.reason))
        partials = [
            bid
            for bid in live
            if bid.seq in first_loss
            and any(bid.seq in winners for winners in winning_seqs)
        ]
        if not partials:
            break
        victim = max(
            partials, key=lambda b: (b.price_micromist_per_unit, b.seq)
        )
        leg_index, reason = first_loss[victim.seq]
        evicted.append(LostPathBid(bid=victim, leg=leg_index, reason=reason))
        live = [bid for bid in live if bid.seq != victim.seq]
    all_leg_winners = set.intersection(*winning_seqs) if winning_seqs else set()
    losers = list(evicted)
    losers.extend(
        LostPathBid(bid=bid, leg=first_loss[bid.seq][0], reason=first_loss[bid.seq][1])
        for bid in live
        if bid.seq not in all_leg_winners
    )
    return PathClearingOutcome(
        winners=tuple(bid for bid in live if bid.seq in all_leg_winners),
        losers=tuple(losers),
        leg_outcomes=leg_outcomes,
        clearing_prices_micromist=tuple(
            outcome.clearing_price_micromist for outcome in leg_outcomes
        ),
        rounds=rounds,
    )
