"""Path-wide admission and combinatorial path auctions.

The layer that makes the repo inter-domain: :class:`PathAdmission` turns
independent per-AS :class:`~repro.admission.controller.AdmissionController`s
into an all-hops-or-nothing admission authority (two-phase screen →
commit with byte-identical rollback), and
:func:`combinatorial_path_clearing` clears one-escrow path bids
all-or-nothing on top of the per-window uniform-price rule.  See
``docs/paths.md`` for the protocol and the failure/refund matrix.
"""

from repro.pathadm.auction import (
    LegSupply,
    LostPathBid,
    PathBid,
    PathClearingOutcome,
    combinatorial_path_clearing,
    path_escrow_mist,
)
from repro.pathadm.fingerprint import calendar_fingerprint, controller_fingerprint
from repro.pathadm.protocol import (
    COMMITTED,
    HELD,
    REJECTED,
    ROLLED_BACK,
    HopHold,
    PathAdmission,
    PathCommitError,
    PathHop,
    PathTicket,
)

__all__ = [
    "COMMITTED",
    "HELD",
    "REJECTED",
    "ROLLED_BACK",
    "HopHold",
    "LegSupply",
    "LostPathBid",
    "PathAdmission",
    "PathBid",
    "PathClearingOutcome",
    "PathCommitError",
    "PathHop",
    "PathTicket",
    "calendar_fingerprint",
    "combinatorial_path_clearing",
    "controller_fingerprint",
    "path_escrow_mist",
]
