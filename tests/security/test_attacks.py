"""Security analysis (§5): adversarial behaviours against both planes.

Each test is one row of the paper's analysis: the attack, the defender's
mechanism, and the guaranteed outcome (C1/C2 on the control plane, D1/D2 on
the data plane).
"""

import math
from copy import deepcopy

import pytest

from tests.conftest import BLAKE2, T0, addresses, grant_full_path, walk_path

from repro.clock import SimClock
from repro.hummingbird import (
    DuplicateFilter,
    FlyoverReservation,
    HummingbirdRouter,
    HummingbirdSource,
    ResInfo,
)
from repro.hummingbird.mac import TAG_LEN
from repro.scion.addresses import HostAddr, IsdAs, ScionAddr
from repro.scion.router import Action


def router_for(topology, isd_as, clock, **kwargs):
    return HummingbirdRouter(topology.as_of(isd_as), clock, BLAKE2, **kwargs)


class TestOveruseProtectionD1:
    def test_spoofed_reservation_dropped(self, chain3, clock):
        """A reservation invented out of thin air fails authentication."""
        topology, path = chain3
        from repro.crypto.keys import SecretValue
        from repro.hummingbird.reservation import grant_reservation
        from repro.scion.paths import as_crossings

        crossings = as_crossings(path)
        forged = [
            grant_reservation(
                crossing.isd_as,
                SecretValue.from_seed("attacker guess"),  # not the AS's SV
                ResInfo(
                    ingress=crossing.ingress, egress=crossing.egress, res_id=7,
                    bw_cls=500, start=T0 - 5, duration=600,
                ),
                BLAKE2,
            )
            for crossing in crossings
        ]
        src, dst = addresses(path)
        source = HummingbirdSource(src, dst, path, forged, clock, BLAKE2)
        decision = router_for(topology, path.src, clock).process(
            source.build_packet(b"x"), 0
        )
        assert decision.action is Action.DROP

    def test_pre_start_use_via_lying_dropped(self, chain3, clock):
        """Claiming an earlier ResStart changes the derived key: drop."""
        topology, path = chain3
        real = grant_full_path(topology, path, start=T0 + 500)
        lied = [
            FlyoverReservation(
                isd_as=r.isd_as,
                resinfo=ResInfo(
                    ingress=r.resinfo.ingress, egress=r.resinfo.egress,
                    res_id=r.resinfo.res_id, bw_cls=r.resinfo.bw_cls,
                    start=T0 - 1, duration=r.resinfo.duration,
                ),
                auth_key=r.auth_key,
            )
            for r in real
        ]
        src, dst = addresses(path)
        source = HummingbirdSource(src, dst, path, lied, clock, BLAKE2)
        decision = router_for(topology, path.src, clock).process(
            source.build_packet(b"x"), 0
        )
        assert decision.action is Action.DROP

    def test_post_expiry_use_demoted(self, chain3):
        topology, path = chain3
        reservations = grant_full_path(topology, path, start=T0, duration=60)
        clock = SimClock(float(T0 + 61))
        src, dst = addresses(path)
        source = HummingbirdSource(src, dst, path, reservations, clock, BLAKE2)
        router = router_for(topology, path.src, clock)
        decision = router.process(source.build_packet(b"x"), 0)
        assert decision.action is Action.FORWARD  # best effort, not priority
        assert router.stats.demoted_inactive == 1

    def test_claiming_more_bandwidth_dropped(self, chain3, clock):
        """Inflating the BW class in the header invalidates the key."""
        topology, path = chain3
        real = grant_full_path(topology, path, start=T0 - 5, bandwidth_kbps=1000)
        inflated = [
            FlyoverReservation(
                isd_as=r.isd_as,
                resinfo=ResInfo(
                    ingress=r.resinfo.ingress, egress=r.resinfo.egress,
                    res_id=r.resinfo.res_id, bw_cls=1023,  # claim ~64 Tbps
                    start=r.resinfo.start, duration=r.resinfo.duration,
                ),
                auth_key=r.auth_key,
            )
            for r in real
        ]
        src, dst = addresses(path)
        source = HummingbirdSource(src, dst, path, inflated, clock, BLAKE2)
        decision = router_for(topology, path.src, clock).process(
            source.build_packet(b"x"), 0
        )
        assert decision.action is Action.DROP

    def test_packet_length_is_authenticated(self, chain3, clock):
        """Shrinking len(pkt) after MAC computation is detected."""
        topology, path = chain3
        reservations = grant_full_path(topology, path, start=T0 - 5)
        src, dst = addresses(path)
        source = HummingbirdSource(src, dst, path, reservations, clock, BLAKE2)
        packet = source.build_packet(b"y" * 500)
        packet.payload = packet.payload[:100]  # lie about consumed bandwidth
        decision = router_for(topology, path.src, clock).process(packet, 0)
        assert decision.action is Action.DROP


class TestQosD2:
    def test_reservation_stealing_blocked_by_dst_binding(self, chain3, clock):
        """§5.4: redirecting a stolen packet to another AS breaks the tag."""
        topology, path = chain3
        reservations = grant_full_path(topology, path, start=T0 - 5)
        src, dst = addresses(path)
        source = HummingbirdSource(src, dst, path, reservations, clock, BLAKE2)
        stolen = source.build_packet(b"z" * 100)
        stolen.dst = ScionAddr(IsdAs(1, 999), stolen.dst.host)
        decision = router_for(topology, path.src, clock).process(stolen, 0)
        assert decision.action is Action.DROP

    def test_on_reservation_set_replay_without_suppression(self, chain3, clock):
        """Fig. 3: a shared reservation can be drained by replays..."""
        topology, path = chain3
        reservations = grant_full_path(
            topology, path, start=T0 - 5, bandwidth_kbps=1000
        )
        src, dst = addresses(path)
        source = HummingbirdSource(src, dst, path, reservations, clock, BLAKE2)
        router = router_for(topology, path.src, clock)
        original = source.build_packet(b"v" * 400)
        assert router.process(deepcopy(original), 0).action is Action.FORWARD_PRIORITY
        # The adversary replays the observed packet to exhaust the bucket
        # (the 50 ms burst budget at 1 Mbps is ~6250 B, ~11 packets)...
        for _ in range(25):
            router.process(deepcopy(original), 0)
        # ...and the victim's next legitimate packet is demoted.
        victim_next = source.build_packet(b"v" * 400)
        assert router.process(victim_next, 0).action is Action.FORWARD

    def test_mitigation_separate_reservations_per_path(self, chain3, clock):
        """§5.4 mitigation: per-path reservations are replay-isolated."""
        topology, path = chain3
        path_a = grant_full_path(topology, path, start=T0 - 5, bandwidth_kbps=1000, res_id_base=0)
        path_b = grant_full_path(topology, path, start=T0 - 5, bandwidth_kbps=1000, res_id_base=10)
        src, dst = addresses(path)
        source_a = HummingbirdSource(src, dst, path, path_a, clock, BLAKE2)
        source_b = HummingbirdSource(src, dst, path, path_b, clock, BLAKE2)
        router = router_for(topology, path.src, clock)
        observed = source_a.build_packet(b"v" * 400)
        for _ in range(12):  # adversary drains reservation A via replays
            router.process(deepcopy(observed), 0)
        # Path B's reservation is untouched.
        decision = router.process(source_b.build_packet(b"v" * 400), 0)
        assert decision.action is Action.FORWARD_PRIORITY

    def test_mitigation_incremental_duplicate_suppression(self, chain3, clock):
        """§5.4: an AS may deploy duplicate suppression unilaterally."""
        topology, path = chain3
        reservations = grant_full_path(topology, path, start=T0 - 5, bandwidth_kbps=1000)
        src, dst = addresses(path)
        source = HummingbirdSource(src, dst, path, reservations, clock, BLAKE2)
        router = router_for(
            topology, path.src, clock, duplicate_filter=DuplicateFilter()
        )
        observed = source.build_packet(b"v" * 400)
        assert router.process(deepcopy(observed), 0).action is Action.FORWARD_PRIORITY
        for _ in range(12):
            replay = router.process(deepcopy(observed), 0)
            assert replay.action is Action.FORWARD  # demoted, bucket untouched
        fresh = source.build_packet(b"v" * 400)
        assert router.process(fresh, 0).action is Action.FORWARD_PRIORITY


class TestBruteForceEconomics:
    def test_online_attack_expectation(self):
        """§5.4: 6-byte tags need >140 trillion packets per success."""
        expected_packets = 2 ** (8 * TAG_LEN) / 2
        assert expected_packets > 140e12

    def test_offline_attack_not_possible_without_key(self, chain3, clock):
        """Tag validity is only observable through the router (online)."""
        topology, path = chain3
        reservations = grant_full_path(topology, path, start=T0 - 5)
        src, dst = addresses(path)
        source = HummingbirdSource(src, dst, path, reservations, clock, BLAKE2)
        packet = source.build_packet(b"x")
        router = router_for(topology, path.src, clock)
        # A wrong tag and a right tag are indistinguishable except by the
        # router's forwarding behaviour (drop vs priority).
        tampered = deepcopy(packet)
        hop = tampered.path.segments[0].hopfields[0]
        hop.mac = bytes(b ^ 1 for b in hop.mac)
        assert router.process(tampered, 0).action is Action.DROP
        assert router.process(packet, 0).action is Action.FORWARD_PRIORITY


class TestEconomicFairnessC2:
    def test_sybil_accounts_pay_the_same_total(self, deployment3):
        """C2: N accounts buying N slices pay what 1 account pays for N."""
        from repro.controlplane import HopRequirement
        from repro.scion.beaconing import run_beaconing
        from repro.scion.paths import PathLookup, as_crossings

        deployment = deployment3
        topology = deployment.topology
        store = run_beaconing(topology, timestamp=T0)
        path = PathLookup(store).find_paths(
            topology.ases[2].isd_as, topology.ases[0].isd_as
        )[0]
        crossing = as_crossings(path)[1]
        # Stay well inside the deployed assets' one-hour window.
        start = int(deployment.clock.now()) + 120
        start -= start % 60

        single = deployment.new_host(funding_sui=100)
        plan = single.plan_purchase(
            deployment.marketplace,
            [HopRequirement.from_crossing(crossing, start, start + 240, 4000)],
        )
        single_price = plan.estimated_price_mist

        sybil_total = 0
        for i in range(4):
            sybil = deployment.new_host(funding_sui=100)
            plan = sybil.plan_purchase(
                deployment.marketplace,
                [
                    HopRequirement.from_crossing(
                        crossing, start + 240 * (i + 1), start + 240 * (i + 2), 1000
                    )
                ],
            )
            sybil_total += plan.estimated_price_mist
        # 4 x (1000 kbps x 240 s) == 1 x (4000 kbps x 240 s): same volume,
        # same cost — splitting across accounts buys nothing.
        assert sybil_total == single_price

    def test_starving_requires_buying_the_bandwidth(self, deployment3):
        """C2: denying others the hop means paying for the whole hop."""
        from repro.contracts.asset import asset_units
        from repro.contracts.market import LISTING_TYPE, MICROMIST

        deployment = deployment3
        ledger = deployment.ledger
        # The cost of making one interface unavailable = sum of list prices
        # of every remaining listed rectangle on it: linear in the volume.
        total_cost = 0
        for obj in ledger.objects.values():
            if obj.type_tag != LISTING_TYPE:
                continue
            asset = ledger.objects.get(obj.payload["asset"])
            if asset is None:
                continue
            total_cost += (
                asset_units(asset.payload)
                * obj.payload["price_micromist_per_unit"]
                // MICROMIST
            )
        assert total_cost > 0
