"""Tracing tests: ambient contextvar plumbing and span records."""

import pytest

from repro.telemetry.tracing import (
    NOOP_SPAN,
    TraceContext,
    current_trace,
    event,
    span,
    use_trace,
)


def test_no_ambient_trace_is_free():
    assert current_trace() is None
    assert span("anything") is NOOP_SPAN
    assert event("anything") is None
    NOOP_SPAN.set(ignored=True)  # no-op handle accepts attributes silently


def test_use_trace_installs_and_restores():
    trace = TraceContext("res")
    with use_trace(trace) as installed:
        assert installed is trace
        assert current_trace() is trace
        event("step", key="value")
    assert current_trace() is None
    assert trace.span_names() == ["step"]
    assert trace.spans[0].attrs == {"key": "value"}
    assert trace.spans[0].duration == 0.0


def test_use_trace_none_is_harmless():
    outer = TraceContext("outer")
    with use_trace(outer):
        with use_trace(None):
            assert current_trace() is None
            assert event("dropped") is None
        assert current_trace() is outer
    assert outer.span_names() == []


def test_span_times_and_records_error():
    trace = TraceContext("res")
    with use_trace(trace):
        with span("work", phase="one") as handle:
            handle.set(extra=1)
        with pytest.raises(RuntimeError):
            with span("failing"):
                raise RuntimeError("boom")
    work, failing = trace.spans
    assert work.duration is not None and work.duration >= 0.0
    assert work.attrs == {"phase": "one", "extra": 1}
    assert failing.attrs["error"] == "RuntimeError"
    assert failing.end is not None


def test_trace_ids_are_unique_and_shared_by_spans():
    first, second = TraceContext("a"), TraceContext("b")
    assert first.trace_id != second.trace_id
    first.event("x")
    first.event("y")
    assert {s.trace_id for s in first.spans} == {first.trace_id}


def test_to_dict_shape():
    trace = TraceContext("res", trace_id="trace-fixed")
    trace.event("step", admitted=True)
    dumped = trace.to_dict()
    assert dumped["trace_id"] == "trace-fixed"
    assert dumped["spans"][0]["name"] == "step"
    assert dumped["spans"][0]["attrs"] == {"admitted": True}
    assert dumped["spans"][0]["duration"] == 0.0
