"""End-to-end acceptance: one correlation id traces a reservation through
tx submit -> admission -> auction settle -> redeem -> delivery -> policing,
and the experiment harness captures metrics from every instrumented layer.
"""

import json

import pytest

from repro.netsim.scenarios import auction_experiment, linear_path
from repro.telemetry import ExperimentTelemetry, get_registry

LIFECYCLE_SPANS = [
    "ledger.submit",
    "admission.decision",
    "bid.placed",
    "auction.settle",
    "bid.settled",
    "listing.bought",
    "redeem.requested",
    "reservation.delivered",
    "policer.verdict",
]


@pytest.fixture(scope="module")
def auction_run():
    topology, path = linear_path(3)
    telemetry = ExperimentTelemetry("auction_experiment")
    result = auction_experiment(
        topology, path, num_buyers=4, duration=0.4, telemetry=telemetry
    )
    return telemetry, result


def test_one_correlation_id_covers_the_whole_lifecycle(auction_run):
    telemetry, _ = auction_run
    trace = next(t for t in telemetry.traces if t.name == "traced-reservation")
    names = trace.span_names()
    for required in LIFECYCLE_SPANS:
        assert required in names, f"missing lifecycle span {required}"
    # Every span carries the one correlation id.
    assert {s.trace_id for s in trace.spans} == {trace.trace_id}
    # The winning bid settled and the policer saw priority traffic.
    settled = [s for s in trace.spans if s.name == "bid.settled"]
    assert any(s.attrs.get("won") for s in settled)
    verdict = [s for s in trace.spans if s.name == "policer.verdict"][-1]
    assert verdict.attrs["priority_bytes"] > 0


def test_lifecycle_spans_are_causally_ordered(auction_run):
    telemetry, _ = auction_run
    trace = next(t for t in telemetry.traces if t.name == "traced-reservation")
    names = trace.span_names()
    order = [names.index(name) for name in LIFECYCLE_SPANS if name != "admission.decision"]
    assert order == sorted(order), "lifecycle milestones out of order"


def test_metrics_cover_every_instrumented_layer(auction_run):
    telemetry, _ = auction_run
    families = {family.name for family in telemetry.registry.families()}
    for expected in (
        "admission_decisions_total",
        "admission_admit_seconds",
        "indexer_events_total",
        "ledger_tx_latency_seconds",
        "as_auction_settlements_total",
        "host_bid_settlements_total",
        "policer_flow_priority_bytes",
        "admission_utilization_ratio",
    ):
        assert expected in families, f"missing metric family {expected}"


def test_registry_restored_after_experiment(auction_run):
    telemetry, _ = auction_run
    assert get_registry() is not telemetry.registry


def test_experiment_dump_and_dashboard(auction_run, tmp_path):
    telemetry, result = auction_run
    dump_path = telemetry.write(tmp_path / "auction_telemetry.json")
    dump = json.loads(dump_path.read_text())
    assert dump["scenario"] == "auction_experiment"
    assert dump["extra"]["auction"]["oversold"] == result.oversold
    assert any(t["name"] == "traced-reservation" for t in dump["traces"])

    import importlib.util
    import pathlib

    tool_path = pathlib.Path(__file__).parents[2] / "tools" / "report_experiment.py"
    spec = importlib.util.spec_from_file_location("report_experiment", tool_path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    dashboard = module.render_dashboard(dump)
    assert "admission_decisions_total" in dashboard
    assert "traced-reservation" in dashboard
