"""Registry unit tests: buckets, cardinality guard, null fast path, merge."""

import math

import pytest

from repro.telemetry import (
    DEFAULT_BUCKETS,
    LabelCardinalityError,
    MetricsRegistry,
    NULL_REGISTRY,
    get_registry,
    set_registry,
)
from repro.telemetry.export import snapshot
from repro.telemetry.registry import _NULL_INSTRUMENT


# -- histogram bucket boundaries ----------------------------------------------


def test_histogram_edge_observation_lands_in_its_bucket():
    registry = MetricsRegistry()
    child = registry.histogram("h", buckets=(1.0, 2.0, 4.0)).labels()
    child.observe(2.0)  # exactly on an edge: the bucket with bound >= value
    assert child.counts == [0, 1, 0, 0]
    child.observe(1.5)
    assert child.counts == [0, 2, 0, 0]
    child.observe(0.0)
    assert child.counts == [1, 2, 0, 0]


def test_histogram_overflow_bucket():
    registry = MetricsRegistry()
    child = registry.histogram("h", buckets=(1.0, 2.0)).labels()
    child.observe(99.0)
    assert child.counts == [0, 0, 1]
    assert child.count == 1
    assert child.sum == 99.0
    # The overflow bucket reports the last finite edge for any quantile.
    assert child.quantile(0.5) == 2.0


def test_histogram_bucket_count_is_edges_plus_one():
    registry = MetricsRegistry()
    child = registry.histogram("h", buckets=DEFAULT_BUCKETS).labels()
    assert len(child.counts) == len(DEFAULT_BUCKETS) + 1


def test_histogram_unsorted_buckets_are_sorted():
    registry = MetricsRegistry()
    family = registry.histogram("h", buckets=(4.0, 1.0, 2.0))
    assert list(family.bounds) == [1.0, 2.0, 4.0]


def test_histogram_empty_bucket_list_rejected():
    registry = MetricsRegistry()
    with pytest.raises(ValueError):
        registry.histogram("h", buckets=())


def test_quantile_empty_and_range():
    registry = MetricsRegistry()
    child = registry.histogram("h", buckets=(1.0,)).labels()
    assert math.isnan(child.quantile(0.5))
    with pytest.raises(ValueError):
        child.quantile(1.5)
    with pytest.raises(ValueError):
        child.quantile(-0.1)


def test_quantile_interpolates_within_bucket():
    registry = MetricsRegistry()
    child = registry.histogram("h", buckets=(1.0, 2.0)).labels()
    for _ in range(10):
        child.observe(1.5)  # all ten in the (1, 2] bucket
    # rank q*10 sits inside the bucket; interpolation stays within its edges
    assert 1.0 <= child.quantile(0.1) <= 2.0
    assert child.quantile(1.0) == 2.0
    assert child.mean == pytest.approx(1.5)


# -- label cardinality guard --------------------------------------------------


def test_label_cardinality_guard_trips():
    registry = MetricsRegistry(max_label_sets=3)
    family = registry.counter("c", labelnames=("id",))
    for value in range(3):
        family.labels(value).inc()
    with pytest.raises(LabelCardinalityError):
        family.labels("one-too-many")
    # Existing children keep working after the guard trips.
    family.labels(0).inc()
    assert family.labels(0).value == 2.0


def test_labels_arity_checked():
    registry = MetricsRegistry()
    family = registry.gauge("g", labelnames=("a", "b"))
    with pytest.raises(ValueError):
        family.labels("only-one")


def test_labels_are_stringified_and_cached():
    registry = MetricsRegistry()
    family = registry.counter("c", labelnames=("interface",))
    assert family.labels(3) is family.labels("3")


def test_redeclare_same_schema_returns_same_family():
    registry = MetricsRegistry()
    first = registry.counter("c", "help", ("x",))
    assert registry.counter("c", "other help", ("x",)) is first


def test_redeclare_different_schema_rejected():
    registry = MetricsRegistry()
    registry.counter("c", labelnames=("x",))
    with pytest.raises(ValueError):
        registry.counter("c", labelnames=("y",))
    with pytest.raises(ValueError):
        registry.gauge("c", labelnames=("x",))


# -- null-recorder fast path --------------------------------------------------


def test_null_registry_hands_out_one_noop_singleton():
    assert NULL_REGISTRY.counter("a") is _NULL_INSTRUMENT
    assert NULL_REGISTRY.gauge("b") is _NULL_INSTRUMENT
    assert NULL_REGISTRY.histogram("c") is _NULL_INSTRUMENT
    assert _NULL_INSTRUMENT.labels("any", "labels") is _NULL_INSTRUMENT
    assert not NULL_REGISTRY.enabled


def test_null_instrument_is_stateless_identity():
    before = (_NULL_INSTRUMENT.value, _NULL_INSTRUMENT.sum, _NULL_INSTRUMENT.count)
    _NULL_INSTRUMENT.inc(7)
    _NULL_INSTRUMENT.dec(3)
    _NULL_INSTRUMENT.set(42.0)
    _NULL_INSTRUMENT.observe(1.0)
    after = (_NULL_INSTRUMENT.value, _NULL_INSTRUMENT.sum, _NULL_INSTRUMENT.count)
    assert before == after == (0.0, 0.0, 0)
    assert math.isnan(_NULL_INSTRUMENT.quantile(0.5))
    assert list(NULL_REGISTRY.families()) == []


def test_set_registry_installs_and_restores():
    live = MetricsRegistry()
    previous = set_registry(live)
    try:
        assert get_registry() is live
    finally:
        assert set_registry(previous) is live
    assert get_registry() is previous


# -- cross-registry merge (shard-engine workers -> parent) --------------------


def _worker_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("ops", "ops", ("op",)).labels("commit").inc(3)
    registry.gauge("shards", "held", ("worker",)).labels("0").set(7)
    hist = registry.histogram("lat", "latency", ("op",), buckets=(1.0, 2.0))
    hist.labels("commit").observe(0.5)
    hist.labels("commit").observe(1.5)
    return registry


def test_merge_counters_add_and_gauges_take_last_value():
    parent = MetricsRegistry()
    parent.counter("ops", "ops", ("op",)).labels("commit").inc(1)
    merged = parent.merge(snapshot(_worker_registry()))
    assert merged == 3  # one counter child + one gauge child + one histogram child
    assert parent.counter("ops", labelnames=("op",)).labels("commit").value == 4.0
    assert parent.gauge("shards", labelnames=("worker",)).labels("0").value == 7.0
    # Re-merging the same gauge snapshot must not double-count.
    parent.merge(snapshot(_worker_registry()))
    assert parent.gauge("shards", labelnames=("worker",)).labels("0").value == 7.0
    assert parent.counter("ops", labelnames=("op",)).labels("commit").value == 7.0


def test_merge_histograms_add_counts_sum_and_count():
    parent = MetricsRegistry()
    parent.merge(snapshot(_worker_registry()))
    parent.merge(snapshot(_worker_registry()))
    child = parent.histogram(
        "lat", labelnames=("op",), buckets=(1.0, 2.0)
    ).labels("commit")
    assert child.counts == [2, 2, 0]
    assert child.count == 4
    assert child.sum == pytest.approx(4.0)


def test_merge_declares_missing_families_on_demand():
    parent = MetricsRegistry()
    parent.merge(snapshot(_worker_registry()))
    names = {family.name for family in parent.families()}
    assert {"ops", "shards", "lat"} <= names


def test_merge_rejects_mismatched_histogram_buckets():
    parent = MetricsRegistry()
    parent.histogram("lat", "latency", ("op",), buckets=(5.0, 10.0))
    with pytest.raises(ValueError):
        parent.merge(snapshot(_worker_registry()))


def test_merge_rejects_unknown_kind():
    parent = MetricsRegistry()
    with pytest.raises(ValueError):
        parent.merge(
            [{"name": "x", "kind": "summary", "labelnames": [], "children": []}]
        )


def test_merge_roundtrips_through_export_snapshot():
    parent = MetricsRegistry()
    parent.merge(snapshot(_worker_registry()))
    assert snapshot(parent) == snapshot(_worker_registry())
