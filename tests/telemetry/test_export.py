"""Exporter tests: JSONL round-trip (property-based) and Prometheus text."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.telemetry import MetricsRegistry
from repro.telemetry.export import load_jsonl, snapshot, to_jsonl, to_prometheus

label_values = st.lists(
    st.text(
        alphabet=st.characters(
            codec="ascii", categories=("L", "N"), include_characters="-_.:"
        ),
        min_size=1,
        max_size=8,
    ),
    min_size=0,
    max_size=2,
    unique=True,
)

family_spec = st.fixed_dictionaries(
    {
        "kind": st.sampled_from(["counter", "gauge", "histogram"]),
        "labelnames": st.sampled_from([(), ("a",), ("a", "b")]),
        "children": st.integers(min_value=0, max_value=3),
        "observations": st.lists(
            st.floats(
                min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
            ),
            max_size=5,
        ),
        "buckets": st.sampled_from([(1e-3, 1.0), (0.5,), (1.0, 2.0, 4.0, 8.0)]),
    }
)


def build_registry(specs) -> MetricsRegistry:
    registry = MetricsRegistry()
    for index, spec in enumerate(specs):
        name = f"fam_{index}_{spec['kind']}"
        labelnames = spec["labelnames"]
        if spec["kind"] == "counter":
            family = registry.counter(name, "h", labelnames)
        elif spec["kind"] == "gauge":
            family = registry.gauge(name, "h", labelnames)
        else:
            family = registry.histogram(name, "h", labelnames, buckets=spec["buckets"])
        for child_index in range(spec["children"]):
            child = family.labels(*[f"v{child_index}"] * len(labelnames))
            for value in spec["observations"]:
                if spec["kind"] == "counter":
                    child.inc(abs(value))
                elif spec["kind"] == "gauge":
                    child.set(value)
                else:
                    child.observe(value)
    return registry


@settings(max_examples=50, deadline=None)
@given(st.lists(family_spec, max_size=4))
def test_jsonl_round_trip_is_exact(specs):
    registry = build_registry(specs)
    restored = load_jsonl(to_jsonl(registry))
    assert snapshot(restored) == snapshot(registry)


def test_round_trip_preserves_quantiles():
    registry = MetricsRegistry()
    child = registry.histogram("lat", "h", ("op",), buckets=(0.1, 1.0, 10.0)).labels("x")
    for value in (0.05, 0.5, 0.5, 5.0):
        child.observe(value)
    restored_child = load_jsonl(to_jsonl(registry)).histogram(
        "lat", "h", ("op",), buckets=(0.1, 1.0, 10.0)
    ).labels("x")
    for q in (0.0, 0.25, 0.5, 0.9, 1.0):
        assert restored_child.quantile(q) == child.quantile(q)


def test_prometheus_text_format():
    registry = MetricsRegistry()
    registry.counter("reqs_total", "Requests.", ("code",)).labels("200").inc(3)
    registry.gauge("depth", "Queue depth.").labels().set(7)
    hist = registry.histogram("lat_seconds", "Latency.", buckets=(0.1, 1.0))
    hist.labels().observe(0.05)
    hist.labels().observe(0.5)
    hist.labels().observe(99.0)
    text = to_prometheus(registry)
    assert '# TYPE reqs_total counter' in text
    assert 'reqs_total{code="200"} 3.0' in text
    assert "depth 7" in text
    assert 'lat_seconds_bucket{le="0.1"} 1' in text
    assert 'lat_seconds_bucket{le="1.0"} 2' in text
    assert 'lat_seconds_bucket{le="+Inf"} 3' in text
    assert "lat_seconds_count 3" in text


def test_empty_registry_exports_empty():
    registry = MetricsRegistry()
    assert to_jsonl(registry) == ""
    assert to_prometheus(registry) == ""
    assert snapshot(load_jsonl("")) == []
