"""ShardedCalendar: boundary-spanning projections, O(1) expiry, wiring."""

import numpy as np
import pytest

from repro.admission import (
    AdmissionController,
    AdmissionRejected,
    CapacityCalendar,
    ProportionalShare,
    ShardedCalendar,
)

SHARD = 100.0


def sharded(capacity=1000):
    return ShardedCalendar(capacity, shard_seconds=SHARD)


class TestProjection:
    def test_spanning_commitment_projects_into_each_shard(self):
        calendar = sharded()
        calendar.commit(600, 50, 250, tag="alice")
        assert calendar.shard_count == 3
        assert calendar.commitment_count == 1  # recorded once at the top
        for window in [(50, 100), (100, 200), (200, 250), (50, 250)]:
            assert calendar.peak_commitment(*window) == 600
        assert calendar.peak_commitment(250, 300) == 0
        assert calendar.tag_peak("alice", 0, 300) == 600

    def test_exact_boundary_window_touches_one_shard(self):
        calendar = sharded()
        calendar.commit(400, 100, 200)
        assert calendar.shard_count == 1
        assert calendar.peak_commitment(0, 300) == 400

    def test_admit_rejects_over_capacity_across_boundary(self):
        calendar = sharded()
        calendar.admit(600, 50, 150)
        with pytest.raises(AdmissionRejected):
            calendar.admit(500, 140, 160)  # peak 600 spans the boundary
        assert calendar.admit(400, 140, 160).bandwidth_kbps == 400

    def test_release_restores_every_shard(self):
        calendar = sharded()
        commitment = calendar.commit(600, 50, 350)
        calendar.release(commitment.commitment_id)
        assert calendar.peak_commitment(0, 400) == 0
        assert calendar.shard_count == 0  # emptied shards are reclaimed
        with pytest.raises(KeyError):
            calendar.release(commitment.commitment_id)

    def test_absurd_shard_span_rejected(self):
        calendar = sharded()
        with pytest.raises(ValueError, match="larger shard_seconds"):
            calendar.commit(100, 0, 1e12)  # ~10^10 shards: a unit typo
        with pytest.raises(ValueError, match="larger shard_seconds"):
            calendar.commit_batch([100], [0.0], [1e12])
        assert calendar.shard_count == 0  # rejected before materializing

    def test_missing_shards_count_as_level_zero(self):
        calendar = sharded()
        calendar.commit(500, 0, 50)
        calendar.commit(300, 950, 1000)
        assert calendar.peak_commitment(0, 1000) == 500
        assert calendar.headroom(400, 600) == 1000
        assert calendar.mean_commitment(0, 100) == pytest.approx(250.0)


class TestBulkPath:
    def test_bulk_peak_partitions_per_shard(self):
        mono = CapacityCalendar(100_000)
        shard = sharded(100_000)
        rng = np.random.default_rng(5)
        bandwidths = rng.integers(1, 500, 400)
        starts = rng.uniform(0, 900, 400)
        ends = starts + rng.uniform(1, 350, 400)
        mono.commit_batch(bandwidths, starts, ends, track=False)
        shard.commit_batch(bandwidths, starts, ends, track=False)
        query_starts = rng.uniform(0, 1200, 300)
        query_ends = query_starts + rng.uniform(1, 400, 300)
        assert np.array_equal(
            mono.bulk_peak(query_starts, query_ends),
            shard.bulk_peak(query_starts, query_ends),
        )
        assert np.array_equal(
            mono.bulk_admissible(400, query_starts, query_ends),
            shard.bulk_admissible(400, query_starts, query_ends),
        )

    def test_bulk_peak_empty_and_invalid(self):
        calendar = sharded()
        assert calendar.bulk_peak([], []).size == 0
        with pytest.raises(ValueError):
            calendar.bulk_peak([10.0], [10.0])

    def test_tracked_batch_is_individually_releasable(self):
        calendar = sharded()
        commitments = calendar.commit_batch(
            [100, 200], [50, 150], [250, 350], tag="bulk"
        )
        assert len(commitments) == 2
        calendar.release(commitments[0].commitment_id)
        assert calendar.peak_commitment(0, 400) == 200
        calendar.release(commitments[1].commitment_id)
        assert calendar.peak_commitment(0, 400) == 0


class TestExpire:
    def test_whole_shards_behind_now_are_dropped(self):
        calendar = sharded()
        rng = np.random.default_rng(9)
        starts = rng.uniform(0, 900, 500)
        calendar.commit_batch(
            rng.integers(1, 100, 500), starts, starts + 30, track=False
        )
        shards_before = calendar.shard_count
        assert calendar.expire(500.0) == 0  # untracked: nothing to count
        assert calendar.shard_count < shards_before
        assert all(key * SHARD >= 400 for key in calendar._shards)

    def test_expire_counts_and_releases_like_monolithic(self):
        mono = CapacityCalendar(10_000)
        shard = sharded(10_000)
        windows = [(0, 80), (80, 100), (90, 210), (150, 430), (300, 500)]
        for index, (start, end) in enumerate(windows):
            mono.commit(100, start, end, tag=f"t{index}")
            shard.commit(100, start, end, tag=f"t{index}")
        for now in (100, 150, 210, 1000):
            assert mono.expire(now) == shard.expire(now), now
            assert mono.commitment_count == shard.commitment_count
        assert shard.commitment_count == 0

    def test_active_spanning_commitment_survives_shard_drop(self):
        calendar = sharded()
        spanning = calendar.commit(500, 50, 450, tag="live")
        assert calendar.expire(200.0) == 0  # still active: not released
        # History behind now is forgotten with the dropped shard, but the
        # live tail is intact and still releasable.
        assert calendar.peak_commitment(200, 450) == 500
        calendar.release(spanning.commitment_id)
        assert calendar.peak_commitment(200, 450) == 0

    def test_end_exactly_at_now_expires(self):
        calendar = sharded()
        calendar.commit(100, 20, 200)
        assert calendar.expire(200.0) == 1
        assert calendar.commitment_count == 0


class TestSurgery:
    def test_split_time_across_boundary(self):
        calendar = sharded()
        spanning = calendar.commit(300, 50, 250, tag="a")
        first, second = calendar.split_time(spanning.commitment_id, 120.0)
        assert (first.start, first.end) == (50, 120)
        assert (second.start, second.end) == (120, 250)
        assert calendar.peak_commitment(0, 300) == 300  # profile unchanged
        calendar.release(first.commitment_id)
        assert calendar.peak_commitment(50, 120) == 0
        assert calendar.peak_commitment(120, 250) == 300

    def test_split_time_at_shard_boundary(self):
        calendar = sharded()
        spanning = calendar.commit(300, 50, 250)
        first, second = calendar.split_time(spanning.commitment_id, 100.0)
        calendar.release(second.commitment_id)
        assert calendar.peak_commitment(50, 100) == 300
        assert calendar.peak_commitment(100, 250) == 0

    def test_split_bandwidth_and_fuse_roundtrip(self):
        calendar = sharded()
        spanning = calendar.commit(300, 50, 250, tag="a")
        thick, thin = calendar.split_bandwidth(spanning.commitment_id, 100)
        assert (thick.bandwidth_kbps, thin.bandwidth_kbps) == (200, 100)
        assert calendar.peak_commitment(0, 300) == 300
        fused = calendar.fuse(thick.commitment_id, thin.commitment_id)
        assert fused.bandwidth_kbps == 300
        calendar.release(fused.commitment_id)
        assert calendar.peak_commitment(0, 300) == 0

    def test_fused_commitment_splits_again(self):
        # Same-window fusion must stack the per-shard pieces too; a fused
        # commitment whose inner pieces kept their pre-fusion bandwidth
        # would reject a later split_bandwidth at the fused total.
        calendar = sharded()
        spanning = calendar.commit(300, 50, 250, tag="a")
        thick, thin = calendar.split_bandwidth(spanning.commitment_id, 100)
        fused = calendar.fuse(thick.commitment_id, thin.commitment_id)
        head, tail = calendar.split_bandwidth(fused.commitment_id, 250)
        assert (head.bandwidth_kbps, tail.bandwidth_kbps) == (50, 250)
        assert calendar.peak_commitment(0, 300) == 300
        calendar.release(tail.commitment_id)
        assert calendar.peak_commitment(50, 250) == 50

    def test_fuse_after_time_adjacent_fuse_inside_one_shard(self):
        # A time-adjacent fuse can leave two chained pieces in one shard;
        # a following same-window fuse has to coalesce each arm's chain
        # before stacking.
        calendar = sharded()
        spanning = calendar.commit(300, 20, 60, tag="a")
        first, second = calendar.split_time(spanning.commitment_id, 40.0)
        rejoined = calendar.fuse(first.commitment_id, second.commitment_id)
        thick, thin = calendar.split_bandwidth(rejoined.commitment_id, 100)
        fused = calendar.fuse(thick.commitment_id, thin.commitment_id)
        assert fused.bandwidth_kbps == 300
        head, tail = calendar.split_bandwidth(fused.commitment_id, 200)
        assert (head.bandwidth_kbps, tail.bandwidth_kbps) == (100, 200)
        assert calendar.peak_commitment(0, 100) == 300

    def test_fuse_time_adjacent_relabels_second_tag(self):
        calendar = sharded()
        first = calendar.commit(300, 50, 150, tag="a")
        second = calendar.commit(300, 150, 250, tag="b")
        fused = calendar.fuse(first.commitment_id, second.commitment_id)
        assert fused.tag == "a"
        assert calendar.tag_peak("a", 0, 300) == 300
        assert calendar.tag_peak("b", 0, 300) == 0

    def test_transfer_moves_tag_attribution_in_every_shard(self):
        calendar = sharded()
        spanning = calendar.commit(300, 50, 250, tag="a")
        moved = calendar.transfer(spanning.commitment_id, "b")
        assert moved.commitment_id == spanning.commitment_id
        assert calendar.tag_peak("a", 0, 300) == 0
        assert calendar.tag_peak("b", 0, 300) == 300

    def test_invalid_surgery_leaves_state_intact(self):
        calendar = sharded()
        spanning = calendar.commit(300, 50, 250)
        with pytest.raises(ValueError):
            calendar.split_time(spanning.commitment_id, 250.0)
        with pytest.raises(ValueError):
            calendar.split_bandwidth(spanning.commitment_id, 300)
        other = calendar.commit(100, 400, 500)
        with pytest.raises(ValueError):
            calendar.fuse(spanning.commitment_id, other.commitment_id)
        assert calendar.commitment_count == 2
        assert calendar.peak_commitment(0, 600) == 300


class TestWiring:
    def test_controller_shard_knob(self):
        monolithic = AdmissionController(1000)
        assert isinstance(monolithic.calendar(1, True), CapacityCalendar)
        controller = AdmissionController(1000, shard_seconds=3600.0)
        calendar = controller.calendar(1, True)
        assert isinstance(calendar, ShardedCalendar)
        assert calendar.shard_seconds == 3600.0
        with pytest.raises(ValueError):
            AdmissionController(1000, shard_seconds=0)

    def test_policies_run_against_sharded_calendars(self):
        controller = AdmissionController(
            1000, policy=ProportionalShare(0.5), shard_seconds=SHARD
        )
        granted = controller.admit_issue(1, True, 400, 50.0, 250.0, tag="alice")
        assert granted.admitted
        capped = controller.admit_issue(1, True, 200, 150.0, 350.0, tag="alice")
        assert not capped.admitted  # 400 + 200 > 50% of 1000
        assert controller.quote(50, 1, True, 50.0, 250.0) >= 50
        controller.release(1, True, granted.commitment)
        assert controller.expire(1_000.0) == 0

    def test_as_service_threads_shard_seconds(self):
        import inspect

        from repro.controlplane.asclient import AsService
        from repro.controlplane.workflow import deploy_market
        from repro.netsim.scenarios import contention_experiment

        for callable_ in (AsService.__init__, deploy_market, contention_experiment):
            assert "shard_seconds" in inspect.signature(callable_).parameters
