"""Property: every shard-engine backend IS the monolithic calendar.

Hypothesis drives arbitrary interleavings of commit / commit_batch
(tracked and untracked) / release / split_time / split_bandwidth / fuse /
transfer / expire against an engine-built calendar (shard width chosen
so windows routinely span shard boundaries) and a monolithic
:class:`CapacityCalendar`, and checks after every step that
``peak_commitment`` / ``bulk_peak`` / ``tag_peak`` / ``headroom`` answer
identically — mirroring ``tests/marketdata/test_indexer_property.py``.

The machine is parametrized over the three shard-engine backends
(monolithic, in-process sharded, multiprocess) via the ``SPEC`` class
attribute, so the same rule set exercises the whole boundary; the
multiprocess run keeps example counts low because every example forks a
worker pool.

One deliberate divergence is excluded by construction: ``expire(now)``
drops whole shards behind ``now``, forgetting the *history* of
commitments that are still active, so probes only ask about windows at or
after the largest ``now`` ever expired (the watermark).  Admission never
queries behind the present, so that is the surface that must agree.
"""

import random

import numpy as np
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, initialize, invariant, rule

from repro.admission import CapacityCalendar
from repro.shardengine import EngineSpec, build_engine

SHARD = 100.0
HORIZON = 1000  # 10 shards' worth of commitment starts
MAX_DURATION = 350  # spans up to 4 shard boundaries
PROBE_SPAN = HORIZON + 4 * MAX_DURATION
CAPACITY = 1_000_000  # commit() is unconditional; capacity only scales headroom
TAGS = ("alice", "bob", "")


class ShardedDifferentialMachine(RuleBasedStateMachine):
    SPEC = EngineSpec(kind="sharded", shard_seconds=SHARD)

    @initialize()
    def setup(self) -> None:
        self.mono = CapacityCalendar(CAPACITY)
        self.engine = build_engine(self.SPEC)
        self.shard = self.engine.calendar(("prop", 0, True), CAPACITY)
        self.handles: list[tuple[int, int]] = []  # (mono id, engine id)
        self.watermark = 0.0
        self.rng = random.Random(4321)

    def teardown(self) -> None:
        if hasattr(self, "engine"):
            self.engine.close()

    # -- helpers ---------------------------------------------------------------

    def _pick(self, index: int) -> tuple[int, int] | None:
        if not self.handles:
            return None
        return self.handles[index % len(self.handles)]

    def _forget(self, handle: tuple[int, int]) -> None:
        self.handles.remove(handle)

    # -- rules -----------------------------------------------------------------

    @rule(
        start=st.integers(0, HORIZON),
        duration=st.integers(1, MAX_DURATION),
        bandwidth=st.integers(1, 1000),
        tag=st.sampled_from(TAGS),
    )
    def commit(self, start, duration, bandwidth, tag):
        mono = self.mono.commit(bandwidth, start, start + duration, tag)
        shard = self.shard.commit(bandwidth, start, start + duration, tag)
        self.handles.append((mono.commitment_id, shard.commitment_id))

    @rule(
        seed=st.integers(0, 2**16),
        count=st.integers(1, 8),
        tag=st.sampled_from(TAGS),
        track=st.booleans(),
    )
    def commit_batch(self, seed, count, tag, track):
        rng = np.random.default_rng(seed)
        starts = rng.integers(0, HORIZON, count).astype(np.float64)
        ends = starts + rng.integers(1, MAX_DURATION, count)
        bandwidths = rng.integers(1, 1000, count)
        mono = self.mono.commit_batch(bandwidths, starts, ends, tag=tag, track=track)
        shard = self.shard.commit_batch(bandwidths, starts, ends, tag=tag, track=track)
        if track:
            self.handles.extend(
                (m.commitment_id, s.commitment_id) for m, s in zip(mono, shard)
            )

    @rule(index=st.integers(0, 1_000_000))
    def release(self, index):
        handle = self._pick(index)
        if handle is None:
            return
        self._forget(handle)
        mono_id, shard_id = handle
        released_mono = self.mono.release(mono_id)
        released_shard = self.shard.release(shard_id)
        assert (released_mono.start, released_mono.end, released_mono.tag) == (
            released_shard.start, released_shard.end, released_shard.tag,
        )

    @rule(index=st.integers(0, 1_000_000), fraction=st.floats(0.1, 0.9))
    def split_time(self, index, fraction):
        handle = self._pick(index)
        if handle is None:
            return
        mono_id, shard_id = handle
        commitment = self.mono.get(mono_id)
        at = float(int(commitment.start + fraction * commitment.duration))
        if not commitment.start < at < commitment.end:
            return
        self._forget(handle)
        mono_first, mono_second = self.mono.split_time(mono_id, at)
        shard_first, shard_second = self.shard.split_time(shard_id, at)
        self.handles.append((mono_first.commitment_id, shard_first.commitment_id))
        self.handles.append((mono_second.commitment_id, shard_second.commitment_id))

    @rule(index=st.integers(0, 1_000_000), fraction=st.floats(0.1, 0.9))
    def split_bandwidth(self, index, fraction):
        handle = self._pick(index)
        if handle is None:
            return
        mono_id, shard_id = handle
        commitment = self.mono.get(mono_id)
        carved = int(fraction * commitment.bandwidth_kbps)
        if not 0 < carved < commitment.bandwidth_kbps:
            return
        self._forget(handle)
        mono_first, mono_second = self.mono.split_bandwidth(mono_id, carved)
        shard_first, shard_second = self.shard.split_bandwidth(shard_id, carved)
        self.handles.append((mono_first.commitment_id, shard_first.commitment_id))
        self.handles.append((mono_second.commitment_id, shard_second.commitment_id))

    @rule(first=st.integers(0, 1_000_000), second=st.integers(0, 1_000_000))
    def fuse(self, first, second):
        handle_a = self._pick(first)
        handle_b = self._pick(second)
        if handle_a is None or handle_b is None or handle_a == handle_b:
            return
        a = self.mono.get(handle_a[0])
        b = self.mono.get(handle_b[0])
        same_window = (a.start, a.end) == (b.start, b.end)
        adjacent = a.bandwidth_kbps == b.bandwidth_kbps and (
            a.end == b.start or b.end == a.start
        )
        if not (same_window or adjacent):
            return
        self._forget(handle_a)
        self._forget(handle_b)
        mono = self.mono.fuse(handle_a[0], handle_b[0])
        shard = self.shard.fuse(handle_a[1], handle_b[1])
        assert (mono.start, mono.end, mono.bandwidth_kbps, mono.tag) == (
            shard.start, shard.end, shard.bandwidth_kbps, shard.tag,
        )
        self.handles.append((mono.commitment_id, shard.commitment_id))

    @rule(index=st.integers(0, 1_000_000), tag=st.sampled_from(TAGS))
    def transfer(self, index, tag):
        handle = self._pick(index)
        if handle is None:
            return
        self.mono.transfer(handle[0], tag)
        self.shard.transfer(handle[1], tag)

    @rule(now=st.integers(0, PROBE_SPAN))
    def expire(self, now):
        released_mono = self.mono.expire(float(now))
        released_shard = self.shard.expire(float(now))
        assert released_mono == released_shard, (now, released_mono, released_shard)
        self.watermark = max(self.watermark, float(now))
        self.handles = [
            handle for handle in self.handles if handle[0] in self.mono._commitments
        ]
        assert self.mono.commitment_count == self.shard.commitment_count

    # -- the property ------------------------------------------------------------

    @invariant()
    def answers_match_at_or_after_the_watermark(self):
        if not hasattr(self, "mono"):
            return
        lo = int(self.watermark)
        for _ in range(4):
            start = self.rng.randint(lo, lo + PROBE_SPAN)
            end = start + self.rng.randint(1, 2 * MAX_DURATION)
            assert self.mono.peak_commitment(start, end) == self.shard.peak_commitment(
                start, end
            ), (start, end)
            assert self.mono.headroom(start, end) == self.shard.headroom(start, end)
            tag = self.rng.choice(TAGS)
            assert self.mono.tag_peak(tag, start, end) == self.shard.tag_peak(
                tag, start, end
            ), (tag, start, end)
        probe_rng = np.random.default_rng(self.rng.randrange(2**16))
        starts = probe_rng.integers(lo, lo + PROBE_SPAN, 24).astype(np.float64)
        ends = starts + probe_rng.integers(1, 2 * MAX_DURATION, 24)
        assert np.array_equal(
            self.mono.bulk_peak(starts, ends), self.shard.bulk_peak(starts, ends)
        )


class MonolithicEngineMachine(ShardedDifferentialMachine):
    SPEC = EngineSpec(kind="monolithic")


class MultiprocessEngineMachine(ShardedDifferentialMachine):
    SPEC = EngineSpec(kind="multiprocess", shard_seconds=SHARD, num_workers=2)


ShardedDifferentialMachine.TestCase.settings = settings(
    max_examples=20, stateful_step_count=20, deadline=None
)
MonolithicEngineMachine.TestCase.settings = settings(
    max_examples=10, stateful_step_count=20, deadline=None
)
# Every multiprocess example forks a 2-worker pool: keep the count small.
MultiprocessEngineMachine.TestCase.settings = settings(
    max_examples=5, stateful_step_count=15, deadline=None
)
TestShardedMatchesMonolithic = ShardedDifferentialMachine.TestCase
TestMonolithicEngineMatches = MonolithicEngineMachine.TestCase
TestMultiprocessEngineMatches = MultiprocessEngineMachine.TestCase
