"""Sealed-bid uniform-price clearing: rule, edge cases, controller wiring."""

import pytest

from repro.admission import (
    ACTIVE,
    AUCTION,
    POSTED,
    AdmissionController,
    Bid,
    OverbookingPolicy,
    ProportionalShare,
    ScarcityPricer,
    WindowAuction,
    uniform_price_clearing,
)


def bid(name, bw, price, seq):
    return Bid(bidder=name, bandwidth_kbps=bw, price_micromist_per_unit=price, seq=seq)


class TestUniformPriceClearing:
    def test_winners_pay_the_highest_losing_bid(self):
        bids = [bid("a", 400, 90, 0), bid("b", 400, 70, 1), bid("c", 400, 50, 2)]
        out = uniform_price_clearing(bids, supply_kbps=800, reserve_micromist=20)
        assert [b.bidder for b in out.winners] == ["a", "b"]
        assert out.clearing_price_micromist == 50  # c's losing price
        assert out.awarded_kbps == 800

    def test_no_losers_clears_at_reserve(self):
        bids = [bid("a", 400, 90, 0), bid("b", 400, 70, 1)]
        out = uniform_price_clearing(bids, supply_kbps=800, reserve_micromist=20)
        assert len(out.winners) == 2
        assert out.clearing_price_micromist == 20

    def test_zero_bids_clears_empty_at_reserve(self):
        out = uniform_price_clearing([], supply_kbps=800, reserve_micromist=33)
        assert out.winners == ()
        assert not out.cleared
        assert out.clearing_price_micromist == 33
        assert out.awarded_kbps == 0

    def test_all_bids_below_reserve_lose(self):
        bids = [bid("a", 400, 10, 0), bid("b", 400, 19, 1)]
        out = uniform_price_clearing(bids, supply_kbps=800, reserve_micromist=20)
        assert out.winners == ()
        assert {lost.reason for lost in out.losers} == {"below reserve"}
        # Below-reserve demand must NOT set the clearing price.
        assert out.clearing_price_micromist == 20

    def test_tie_at_the_clearing_price_breaks_by_arrival_order(self):
        """Two equal-priced bids, supply for one: the earlier seq wins."""
        bids = [bid("late", 600, 70, 1), bid("early", 600, 70, 0)]
        out = uniform_price_clearing(bids, supply_kbps=600, reserve_micromist=20)
        assert [b.bidder for b in out.winners] == ["early"]
        assert out.losers[0].bid.bidder == "late"
        # The loser's equal price becomes the clearing price — the winner
        # pays exactly the tied amount, never more than its own bid.
        assert out.clearing_price_micromist == 70

    def test_tie_break_is_by_seq_not_input_order(self):
        bids = [bid("second", 600, 70, 5), bid("first", 600, 70, 2)]
        out = uniform_price_clearing(bids, supply_kbps=600, reserve_micromist=20)
        assert [b.bidder for b in out.winners] == ["first"]

    def test_greedy_skips_too_wide_and_fills_with_later_bid(self):
        bids = [bid("a", 600, 90, 0), bid("wide", 500, 80, 1), bid("thin", 400, 60, 2)]
        out = uniform_price_clearing(bids, supply_kbps=1000, reserve_micromist=20)
        assert [b.bidder for b in out.winners] == ["a", "thin"]
        reasons = {lost.bid.bidder: lost.reason for lost in out.losers}
        assert reasons["wide"] == "supply exhausted"
        # The skipped bid is the marginal demand: it sets the price, clamped
        # to the lowest winning bid so no winner pays above its own bid.
        assert out.clearing_price_micromist == 60

    def test_clearing_clamped_to_lowest_winning_bid(self):
        """A high-priced share-cap loser cannot push winners above their bids."""
        bids = [
            bid("whale", 500, 100, 0),
            bid("whale", 500, 95, 1),  # rejected by cap despite high price
            bid("small", 500, 40, 2),
        ]
        out = uniform_price_clearing(
            bids, supply_kbps=1000, reserve_micromist=20, share_cap_kbps=500
        )
        assert [b.bidder for b in out.winners] == ["whale", "small"]
        assert out.clearing_price_micromist == 40  # not 95

    def test_share_cap_rejects_cornering(self):
        bids = [bid("whale", 400, 90, 0), bid("whale", 400, 80, 1), bid("other", 400, 30, 2)]
        out = uniform_price_clearing(
            bids, supply_kbps=1200, reserve_micromist=20, share_cap_kbps=400
        )
        winners = [(b.bidder, b.seq) for b in out.winners]
        assert winners == [("whale", 0), ("other", 2)]
        assert {lost.reason for lost in out.losers} == {"share cap"}

    def test_min_fragment_rule_protects_the_remainder(self):
        """Awarding a bid may not strand an unsellable asset fragment."""
        bids = [bid("a", 950, 90, 0), bid("b", 900, 80, 1)]
        out = uniform_price_clearing(
            bids,
            supply_kbps=1000,
            reserve_micromist=20,
            total_kbps=1000,
            min_fragment_kbps=100,
        )
        # 950 would leave 50 < 100 stranded; 900 leaves a listable 100.
        assert [b.bidder for b in out.winners] == ["b"]
        assert out.losers[0].reason == "would strand a sub-minimum fragment"

    def test_zero_supply_rejects_everything(self):
        bids = [bid("a", 400, 90, 0)]
        out = uniform_price_clearing(bids, supply_kbps=0, reserve_micromist=20)
        assert out.winners == ()
        assert out.losers[0].reason == "supply exhausted"

    def test_revenue_uses_ceil_pricing(self):
        bids = [bid("a", 333, 90, 0), bid("b", 333, 70, 1)]
        out = uniform_price_clearing(bids, supply_kbps=700, reserve_micromist=20)
        assert out.clearing_price_micromist == 20
        # ceil(333 * 600 * 20 / 1e6) = ceil(3.996) = 4, per winner
        assert out.revenue_mist(600) == 8

    def test_validation(self):
        with pytest.raises(ValueError, match="supply"):
            uniform_price_clearing([], supply_kbps=-1, reserve_micromist=20)
        with pytest.raises(ValueError, match="reserve"):
            uniform_price_clearing([], supply_kbps=10, reserve_micromist=0)
        with pytest.raises(ValueError, match="bandwidth"):
            Bid("a", 0, 10)
        with pytest.raises(ValueError, match="price"):
            Bid("a", 10, 0)


class TestWindowAuction:
    def test_place_assigns_arrival_seq(self):
        auction = WindowAuction(1, True, 0, 600, 1000, 10)
        first = auction.place("a", 400, 50)
        second = auction.place("b", 400, 50)
        assert (first.seq, second.seq) == (0, 1)
        assert auction.bid_count == 2

    def test_oversized_bid_rejected_at_placement(self):
        auction = WindowAuction(1, True, 0, 600, 1000, 10)
        with pytest.raises(ValueError, match="exceeds"):
            auction.place("a", 1001, 50)

    def test_clear_preserves_the_book(self):
        auction = WindowAuction(1, True, 0, 600, 1000, 10)
        auction.place("a", 400, 50)
        first = auction.clear()
        second = auction.clear()
        assert first == second  # preview == settle on an unchanged book

    def test_supply_clamped_to_offer(self):
        auction = WindowAuction(1, True, 0, 600, 1000, 10)
        auction.place("a", 1000, 50)
        out = auction.clear(supply_kbps=5000)  # cannot exceed the offer
        assert out.supply_kbps == 1000

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            WindowAuction(1, True, 600, 600, 1000, 10)


class TestControllerAuctionMode:
    def test_default_mode_is_posted(self):
        controller = AdmissionController(1000)
        assert controller.allocation_mode(1, True) == POSTED
        with pytest.raises(ValueError, match="posted"):
            controller.open_auction(1, True, 500, 0, 600, 50)

    def test_per_interface_mode(self):
        controller = AdmissionController(1000, auction_interfaces={(1, True)})
        assert controller.allocation_mode(1, True) == AUCTION
        assert controller.allocation_mode(1, False) == POSTED
        assert controller.allocation_mode(2, True) == POSTED

    def test_auction_everywhere(self):
        controller = AdmissionController(1000, auction_interfaces=True)
        assert controller.allocation_mode(7, False) == AUCTION

    def test_reserve_seeded_by_scarcity_quote(self):
        controller = AdmissionController(
            1000, pricer=ScarcityPricer(), auction_interfaces=True
        )
        # Half-fill the issued calendar, then open: reserve carries the
        # scarcity multiplier of the pre-auction utilization.
        assert controller.admit_issue(1, True, 500, 0, 600).admitted
        auction = controller.open_auction(1, True, 500, 0, 600, 50)
        assert auction.reserve_micromist == controller.quote(50, 1, True, 0, 600)
        assert auction.reserve_micromist > 50

    def test_share_cap_seeded_by_proportional_share(self):
        controller = AdmissionController(
            1000, policy=ProportionalShare(0.25), auction_interfaces=True
        )
        auction = controller.open_auction(1, True, 1000, 0, 600, 50)
        assert auction.share_cap_kbps == 250
        no_cap = AdmissionController(1000, auction_interfaces=True)
        assert no_cap.open_auction(1, True, 1000, 0, 600, 50).share_cap_kbps is None

    def test_share_cap_seeded_by_capped_overbooking(self):
        # Regression: switching the AS to overbooking used to drop the
        # share cap from its auctions (isinstance check on the policy).
        controller = AdmissionController(
            1000,
            policy=OverbookingPolicy(2.0, max_fraction=0.25),
            auction_interfaces=True,
        )
        auction = controller.open_auction(1, True, 1000, 0, 600, 50)
        assert auction.share_cap_kbps == 250  # of physical, not overbooked

    def test_duplicate_window_rejected_and_close_reopens(self):
        controller = AdmissionController(1000, auction_interfaces=True)
        controller.open_auction(1, True, 500, 0, 600, 50)
        with pytest.raises(ValueError, match="already open"):
            controller.open_auction(1, True, 500, 0, 600, 50)
        assert controller.auction_for(1, True, 0, 600) is not None
        controller.close_auction(1, True, 0, 600)
        assert controller.auction_for(1, True, 0, 600) is None
        controller.open_auction(1, True, 500, 0, 600, 50)

    def test_settle_supply_clamps_by_lost_active_headroom(self):
        """A window that loses headroom before settle sells less."""
        controller = AdmissionController(1000, auction_interfaces=True)
        auction = controller.open_auction(1, True, 800, 0, 600, 50)
        auction.place("a", 500, 90)
        auction.place("b", 300, 80)
        # A direct grant claims live capacity between open and settle.
        assert controller.admit_reservation(1, True, 600, 0, 600).admitted
        supply = controller.settle_supply(1, True, 0, 600, auction.offered_kbps)
        assert supply == 400  # 1000 capacity - 600 granted
        out = auction.clear(supply)
        assert [b.bidder for b in out.winners] == ["b"]
        assert {lost.bid.bidder for lost in out.losers} == {"a"}

    def test_settle_supply_never_negative(self):
        controller = AdmissionController(1000, auction_interfaces=True)
        assert controller.admit_reservation(1, True, 1000, 0, 600).admitted
        assert controller.settle_supply(1, True, 0, 600, 800) == 0

    def test_cleared_winners_fit_the_active_calendar(self):
        """End to end at the admission layer: no oversell is possible."""
        controller = AdmissionController(1000, auction_interfaces=True)
        auction = controller.open_auction(1, True, 1000, 0, 600, 50)
        for index in range(6):
            auction.place(f"h{index}", 300, 100 - index)
        out = auction.clear(controller.settle_supply(1, True, 0, 600, 1000))
        for winner in out.winners:
            assert controller.admit_reservation(
                1, True, winner.bandwidth_kbps, 0, 600, tag=winner.bidder
            ).admitted
        peak = controller.calendar(1, True, ACTIVE).peak_commitment(0, 600)
        assert peak == out.awarded_kbps <= 1000
